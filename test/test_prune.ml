(* Tier-1 tests for the Prop 3.1 search reducers: free-face collapse of the
   protocol complex, task automorphisms and their SDS lifts, the structural
   Sds.iterate memo key, the wire codec of the reducer flags, and the
   headline guarantee — the pruned engine answers byte-identically to the
   seed engine on every mode, domain count and builtin model. *)

open Wfc_topology
open Wfc_tasks
open Wfc_core
open Wfc_serve

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Collapse                                                             *)
(* ------------------------------------------------------------------ *)

(* SDS^b(s^n) subdivides a simplex, so it is collapsible; the greedy
   free-face strategy must find a full collapsing sequence on the small
   instances the engine actually schedules. *)
let test_collapse_sds () =
  List.iter
    (fun (dim, levels) ->
      let sds = Sds.standard ~dim ~levels in
      let cx = Chromatic.complex (Sds.complex sds) in
      let r = Collapse.run cx in
      let nverts = List.length (Complex.vertices cx) in
      checki
        (Printf.sprintf "SDS^%d(s^%d): schedule is a total order" levels dim)
        nverts
        (List.length r.Collapse.order);
      checkb
        (Printf.sprintf "SDS^%d(s^%d): collapses to a point" levels dim)
        true r.Collapse.collapsed_to_point;
      checkb
        (Printf.sprintf "SDS^%d(s^%d): is_collapsible" levels dim)
        true
        (Collapse.is_collapsible cx))
    [ (1, 1); (1, 2); (2, 1) ]

let test_collapse_schedule_total () =
  (* even when nothing collapses (a hollow triangle has no free face), the
     schedule is still a total order over the vertices *)
  let cx = Complex.of_facets ~name:"hollow" [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  let r = Collapse.run cx in
  checki "hollow triangle: order covers every vertex" 3 (List.length r.Collapse.order);
  checki "hollow triangle: nothing eliminated" 0 r.Collapse.eliminated;
  checkb "hollow triangle: not a point" false r.Collapse.collapsed_to_point

(* ------------------------------------------------------------------ *)
(* Automorphisms                                                        *)
(* ------------------------------------------------------------------ *)

let test_color_permutations () =
  checki "3 colors: 6 permutations" 6 (List.length (Automorphism.color_permutations [ 0; 1; 2 ]));
  checki "duplicates collapse" 2 (List.length (Automorphism.color_permutations [ 1; 0; 1 ]))

let test_task_automorphisms () =
  (* binary consensus is symmetric under swapping the processes together
     with their inputs, and under swapping the two values *)
  let t = Instances.binary_consensus ~procs:2 in
  let autos = Task.automorphisms t in
  checkb "consensus-2 has task symmetries" true (autos <> []);
  (* every reported automorphism lifts through the subdivision: that lift
     is what the engine installs *)
  let sds = Sds.iterate t.Task.input 1 in
  List.iter
    (fun a ->
      checkb "input automorphism lifts through SDS" true
        (Automorphism.lift sds a.Task.a_input <> None))
    autos;
  (* set consensus is fully symmetric in the processes *)
  let sc = Instances.set_consensus ~procs:3 ~k:2 in
  checkb "set-consensus-3-2 has task symmetries" true (Task.automorphisms sc <> [])

(* ------------------------------------------------------------------ *)
(* Sds.iterate memo key                                                 *)
(* ------------------------------------------------------------------ *)

(* Regression: the memo used to key by complex name alone, so two distinct
   complexes sharing a name evicted each other's subdivision chains on
   every alternation. The structural-digest key must keep both. *)
let test_sds_memo_structural_key () =
  Sds.clear_cache ();
  let mk facets =
    Chromatic.make (Complex.of_facets ~name:"dup" facets) ~color:(fun v -> v)
  in
  let a = mk [ [ 0; 1 ] ] in
  let b = mk [ [ 0; 1; 2 ] ] in
  let ta = Sds.iterate a 2 in
  let tb = Sds.iterate b 2 in
  let hits = Wfc_obs.Metrics.counter "sds.memo.hits" in
  let hits0 = Wfc_obs.Metrics.value hits in
  let ta' = Sds.iterate a 2 in
  let tb' = Sds.iterate b 2 in
  checkb "same-name complex A re-served from cache" true (ta == ta');
  checkb "same-name complex B re-served from cache" true (tb == tb');
  checkb "alternation hits the memo" true (Wfc_obs.Metrics.value hits >= hits0 + 2);
  checkb "cached chains are distinct" true (not (ta == tb))

(* ------------------------------------------------------------------ *)
(* Wire codec of the reducer flags                                      *)
(* ------------------------------------------------------------------ *)

let test_wire_reducer_flags () =
  let spec =
    {
      Wire.task = "consensus";
      procs = 2;
      param = 2;
      max_level = 1;
      model = "wait-free";
      symmetry = false;
      collapse = true;
    }
  in
  (match Wire.request_of_json (Wire.request_to_json (Wire.Query { spec; req_id = None })) with
  | Ok (Wire.Query { spec = s; _ }) ->
    checkb "symmetry=false round-trips" false s.Wire.symmetry;
    checkb "collapse=true round-trips" true s.Wire.collapse
  | _ -> Alcotest.fail "query did not round-trip");
  (* pre-reducer clients omit the fields: absent means on *)
  let legacy =
    Wfc_obs.Json.Obj
      [
        ("op", Wfc_obs.Json.String "query");
        ("task", Wfc_obs.Json.String "consensus");
        ("procs", Wfc_obs.Json.Int 2);
        ("param", Wfc_obs.Json.Int 2);
        ("max_level", Wfc_obs.Json.Int 1);
      ]
  in
  match Wire.request_of_json legacy with
  | Ok (Wire.Query { spec = s; _ }) ->
    checkb "absent symmetry defaults on" true s.Wire.symmetry;
    checkb "absent collapse defaults on" true s.Wire.collapse;
    checks "absent model still defaults" "wait-free" s.Wire.model
  | _ -> Alcotest.fail "legacy query rejected"

(* ------------------------------------------------------------------ *)
(* Pruned engine == seed engine                                         *)
(* ------------------------------------------------------------------ *)

let tasks_under_test =
  [
    ("consensus-2", fun () -> Instances.binary_consensus ~procs:2);
    ("consensus-3", fun () -> Instances.binary_consensus ~procs:3);
    ("set-consensus-3-2", fun () -> Instances.set_consensus ~procs:3 ~k:2);
    ("identity-3", fun () -> Instances.id_task ~procs:3);
    ("approx-2-3", fun () -> Instances.approximate_agreement ~procs:2 ~grid:3);
  ]

let models_under_test =
  [
    Model.wait_free;
    Model.k_set_affine ~k:1;
    Model.k_set_affine ~k:2;
    Model.t_resilient ~t:1;
  ]

(* The canonical verdict object, as solve/query/store render it: every byte
   must be independent of the reducers. *)
let verdict_bytes task model max_level v =
  let r =
    Store.record ~task ~spec:"spec" ~model:(Model.to_string model) ~max_level
      ~budget:Solvability.default_budget
      (Solvability.outcome_of_verdict v)
  in
  Wfc_obs.Json.to_string (Store.verdict_json r)

let qcheck_reducers_preserve_verdicts =
  QCheck.Test.make ~count:60
    ~name:"reducers preserve verdict bytes (all modes, domains 1-4, builtin models)"
    QCheck.(
      quad
        (int_bound (List.length tasks_under_test - 1))
        (int_bound (List.length models_under_test - 1))
        (int_range 1 4) bool)
    (fun (ti, mi, domains, portfolio) ->
      let _, mk = List.nth tasks_under_test ti in
      let model = List.nth models_under_test mi in
      let mode = if portfolio then `Portfolio else `Batch in
      let t_on = mk () and t_off = mk () in
      let on =
        Solvability.solve
          ~opts:(Solvability.options ~mode ~model ())
          ~domains ~max_level:1 t_on
      in
      let off =
        Solvability.solve
          ~opts:(Solvability.options ~model ~symmetry:false ~collapse:false ())
          ~domains:1 ~max_level:1 t_off
      in
      verdict_bytes t_on model 1 on = verdict_bytes t_off model 1 off)

(* Each reducer alone must also be verdict-preserving. *)
let test_single_reducer_verdicts () =
  List.iter
    (fun (name, mk) ->
      let off =
        Solvability.solve
          ~opts:(Solvability.options ~symmetry:false ~collapse:false ())
          ~domains:1 ~max_level:1 (mk ())
      in
      let expect = verdict_bytes (mk ()) Model.wait_free 1 off in
      List.iter
        (fun (label, symmetry, collapse) ->
          let v =
            Solvability.solve
              ~opts:(Solvability.options ~symmetry ~collapse ())
              ~domains:1 ~max_level:1 (mk ())
          in
          checks (Printf.sprintf "%s under %s" name label) expect
            (verdict_bytes (mk ()) Model.wait_free 1 v))
        [ ("symmetry only", true, false); ("collapse only", false, true); ("both", true, true) ])
    tasks_under_test

(* A map found under reducers is re-derived canonically, and still verifies. *)
let test_sat_canonical_map () =
  match
    Solvability.solve_at
      ~opts:(Solvability.options ~model:(Model.k_set_affine ~k:2) ())
      ~domains:1
      (Instances.binary_consensus ~procs:2)
      1
  with
  | Solvability.Solvable { map; _ } -> (
    match Solvability.verify map with
    | Ok () -> ()
    | Error e -> Alcotest.failf "canonicalized map fails verify: %s" e)
  | v -> Alcotest.failf "expected solvable, got %s" (Solvability.verdict_name v)

(* Batch stats exactness survives the reducers: the lex check is a pure
   function of the resumed assignment, so parallel jobs replicate the
   sequential candidate scan tally for tally. *)
let test_batch_exact_stats () =
  let t () = Instances.set_consensus ~procs:3 ~k:2 in
  let s1 = Solvability.stats_of_verdict (Solvability.solve_at ~domains:1 (t ()) 1) in
  let s4 = Solvability.stats_of_verdict (Solvability.solve_at ~domains:4 (t ()) 1) in
  checki "nodes" s1.Solvability.nodes s4.Solvability.nodes;
  checki "backtracks" s1.Solvability.backtracks s4.Solvability.backtracks;
  checki "prunes" s1.Solvability.prunes s4.Solvability.prunes

(* The refutation-heavy target actually gets pruned, and says so in the
   wfc.obs.v1 counters. *)
let test_reducer_counters () =
  let open Wfc_obs.Metrics in
  let orbits = counter "solvability.symmetry.orbits" in
  let pruned = counter "solvability.symmetry.pruned" in
  let sched = counter "solvability.collapse.schedule_len" in
  let o0 = value orbits and p0 = value pruned and s0 = value sched in
  let t = Instances.set_consensus ~procs:3 ~k:2 in
  let off =
    Solvability.solve_at
      ~opts:(Solvability.options ~symmetry:false ~collapse:false ())
      ~domains:1 t 1
  in
  let on = Solvability.solve_at ~domains:1 t 1 in
  (match (off, on) with
  | Solvability.Unsolvable_at _, Solvability.Unsolvable_at _ -> ()
  | _ -> Alcotest.fail "set-consensus-3-2 must be unsolvable at level 1");
  let s_off = Solvability.stats_of_verdict off in
  let s_on = Solvability.stats_of_verdict on in
  checkb
    (Printf.sprintf "reducers shrink the refutation (%d -> %d nodes)" s_off.Solvability.nodes
       s_on.Solvability.nodes)
    true
    (s_on.Solvability.nodes * 2 <= s_off.Solvability.nodes);
  checkb "symmetry group installed" true (value orbits > o0);
  checkb "symmetry pruned candidates" true (value pruned > p0);
  checkb "collapse schedule recorded" true (value sched > s0)

let () =
  Alcotest.run "wfc_prune"
    [
      ( "collapse",
        [
          Alcotest.test_case "SDS of a simplex collapses to a point" `Quick test_collapse_sds;
          Alcotest.test_case "schedule is total even without free faces" `Quick
            test_collapse_schedule_total;
        ] );
      ( "automorphism",
        [
          Alcotest.test_case "color permutations" `Quick test_color_permutations;
          Alcotest.test_case "task automorphisms exist and lift" `Quick
            test_task_automorphisms;
        ] );
      ( "sds-memo",
        [
          Alcotest.test_case "structural key keeps same-name complexes apart" `Quick
            test_sds_memo_structural_key;
        ] );
      ( "wire",
        [ Alcotest.test_case "reducer flags codec and defaults" `Quick test_wire_reducer_flags ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest qcheck_reducers_preserve_verdicts;
          Alcotest.test_case "each reducer alone preserves verdicts" `Quick
            test_single_reducer_verdicts;
          Alcotest.test_case "canonicalized maps verify" `Quick test_sat_canonical_map;
          Alcotest.test_case "batch stats stay exact under reducers" `Quick
            test_batch_exact_stats;
          Alcotest.test_case "counters and node reduction" `Quick test_reducer_counters;
        ] );
    ]
