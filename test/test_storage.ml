(* Tests for the storage engine: LRU mechanics, codec round-trips, manifest
   durability and rebuild, quarantine-on-damage, concurrent writers, and
   persisted SDS skeletons replaying bit-for-bit. *)

open Wfc_core
open Wfc_storage
open Wfc_topology

let checkb = Alcotest.check Alcotest.bool

let checki = Alcotest.check Alcotest.int

let checks = Alcotest.check Alcotest.string

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let counter_value name = Wfc_obs.Metrics.value (Wfc_obs.Metrics.counter name)

(* A deterministic record family: every field a function of the seed, so
   qcheck shrinks meaningfully and failures reproduce. *)
let record_of_params ~seed ~kind ~ndecide ~level =
  let seed = abs seed and kind = abs kind and ndecide = abs ndecide and level = abs level in
  let digest = Digest.to_hex (Digest.string (Printf.sprintf "test-record-%d" seed)) in
  let verdict =
    match kind mod 3 with 0 -> "solvable" | 1 -> "unsolvable" | _ -> "exhausted"
  in
  let decide =
    if verdict = "solvable" then
      List.init (1 + (ndecide mod 64)) (fun v -> (v * (1 + (seed mod 5)), v mod 3))
    else []
  in
  {
    Record.digest;
    task = Printf.sprintf "t%d(procs=2,param=2)" seed;
    model = (if seed mod 2 = 0 then "wait-free" else "k-set:2");
    procs = 2 + (seed mod 3);
    max_level = level mod 4;
    budget = 1 + (abs seed mod 1000) * 997;
    outcome =
      {
        Solvability.o_verdict = verdict;
        o_level = level mod 4;
        o_nodes = abs seed mod 100_000;
        o_backtracks = abs seed mod 777;
        o_prunes = abs seed mod 333;
        o_elapsed = float_of_int (abs seed mod 10_000) /. 7.;
        o_decide = decide;
      };
    created_at = float_of_int (abs seed mod 1_000_000) /. 3.;
  }

(* ------------------------------------------------------------------ *)
(* LRU                                                                  *)
(* ------------------------------------------------------------------ *)

let lru_tests =
  [
    Alcotest.test_case "eviction follows recency, find refreshes" `Quick (fun () ->
        let evicted = ref [] in
        let l = Lru.create 3 ~on_evict:(fun k _ -> evicted := k :: !evicted) in
        Lru.put l "a" 1;
        Lru.put l "b" 2;
        Lru.put l "c" 3;
        (* touch [a]: [b] becomes the coldest *)
        checkb "hit" true (Lru.find l "a" = Some 1);
        Lru.put l "d" 4;
        checks "b evicted first" "b" (String.concat "," !evicted);
        checkb "a survived its refresh" true (Lru.mem l "a");
        Lru.put l "e" 5;
        checks "then c" "c,b" (String.concat "," !evicted);
        checks "warmest first" "e,d,a" (String.concat "," (Lru.keys_mru_first l));
        checki "bounded" 3 (Lru.size l));
    Alcotest.test_case "overwrite refreshes without growing" `Quick (fun () ->
        let l = Lru.create 2 in
        Lru.put l "a" 1;
        Lru.put l "b" 2;
        Lru.put l "a" 10;
        checki "size" 2 (Lru.size l);
        checkb "new value" true (Lru.find l "a" = Some 10);
        Lru.put l "c" 3;
        (* [b] was coldest after the overwrite refreshed [a] *)
        checkb "b evicted" false (Lru.mem l "b");
        checkb "a stays" true (Lru.mem l "a"));
    Alcotest.test_case "remove and clear" `Quick (fun () ->
        let l = Lru.create 4 in
        Lru.put l "a" 1;
        Lru.put l "b" 2;
        Lru.remove l "a";
        checki "size after remove" 1 (Lru.size l);
        checkb "gone" true (Lru.find l "a" = None);
        Lru.clear l;
        checki "empty" 0 (Lru.size l);
        (* the list structure survives a clear *)
        Lru.put l "c" 3;
        checkb "usable after clear" true (Lru.find l "c" = Some 3));
  ]

(* ------------------------------------------------------------------ *)
(* Codecs                                                               *)
(* ------------------------------------------------------------------ *)

let qcheck_compact_roundtrip =
  QCheck.Test.make ~count:200 ~name:"compact codec round-trips exactly"
    QCheck.(quad int int int int)
    (fun (seed, kind, ndecide, level) ->
      let r = record_of_params ~seed ~kind ~ndecide ~level in
      Codec.decode Codec.Compact (Codec.encode Codec.Compact r) = Ok r)

let qcheck_codecs_agree =
  QCheck.Test.make ~count:200
    ~name:"json and compact round-trips render identical canonical records"
    QCheck.(quad int int int int)
    (fun (seed, kind, ndecide, level) ->
      let r = record_of_params ~seed ~kind ~ndecide ~level in
      let via codec =
        match Codec.decode codec (Codec.encode codec r) with
        | Ok r' -> Wfc_obs.Json.to_string (Record.record_to_json r')
        | Error e -> "decode error: " ^ e
      in
      via Codec.Json = via Codec.Compact)

let codec_tests =
  [
    QCheck_alcotest.to_alcotest qcheck_compact_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_codecs_agree;
    Alcotest.test_case "compact is smaller than json on real decide tables" `Quick
      (fun () ->
        let r = record_of_params ~seed:42 ~kind:0 ~ndecide:40 ~level:2 in
        let j = String.length (Codec.encode Codec.Json r) in
        let c = String.length (Codec.encode Codec.Compact r) in
        checkb (Printf.sprintf "compact %d < json %d" c j) true (c < j));
    Alcotest.test_case "every truncation of a compact record decodes to Error" `Quick
      (fun () ->
        let r = record_of_params ~seed:7 ~kind:0 ~ndecide:10 ~level:1 in
        let bytes = Codec.encode Codec.Compact r in
        for cut = 0 to String.length bytes - 1 do
          match Codec.decode Codec.Compact (String.sub bytes 0 cut) with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "prefix of %d bytes decoded" cut
        done);
    Alcotest.test_case "extension negotiates the codec" `Quick (fun () ->
        checkb "json" true (Codec.of_path "ab/cd/x.wait-free.L1.json" = Some Codec.Json);
        checkb "wfcb" true (Codec.of_path "ab/cd/x.wait-free.L1.wfcb" = Some Codec.Compact);
        checkb "tmp is neither" true (Codec.of_path "x.json.12.0.wtmp" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Manifest                                                             *)
(* ------------------------------------------------------------------ *)

let manifest_tests =
  [
    Alcotest.test_case "torn trailing line is tolerated and counted" `Quick (fun () ->
        let dir = temp_dir "wfc-manifest" in
        let path = Filename.concat dir "MANIFEST.jsonl" in
        let m = Manifest.create path in
        let e =
          {
            Manifest.op = Manifest.Put;
            kind = Manifest.Verdict;
            rel = "ab/cd/x.json";
            digest = String.make 32 'a';
            model = "wait-free";
            max_level = 1;
            budget = 5;
            verdict = "unsolvable";
            level = 1;
            codec = "json";
            created_at = 1.5;
          }
        in
        Manifest.append m e;
        Manifest.close m;
        (* a crash mid-append leaves a prefix of a line *)
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "{\"schema\": \"wfc.mani";
        close_out oc;
        let { Manifest.entries; bad_lines } = Manifest.load path in
        checki "entries" 1 (List.length entries);
        checki "bad lines" 1 bad_lines;
        (* appending after the torn line still yields parseable lines: every
           append starts fresh content, and load drops only the torn one *)
        let m = Manifest.create path in
        Manifest.append m { e with rel = "ab/cd/y.json" };
        Manifest.close m;
        let { Manifest.entries; bad_lines = _ } = Manifest.load path in
        checki "both live" 2 (List.length (Manifest.live entries)));
    Alcotest.test_case "live replays puts and dels in order" `Quick (fun () ->
        let base rel op =
          {
            Manifest.op;
            kind = Manifest.Verdict;
            rel;
            digest = String.make 32 'b';
            model = "wait-free";
            max_level = 1;
            budget = 5;
            verdict = "solvable";
            level = 1;
            codec = "json";
            created_at = 0.;
          }
        in
        let log =
          [
            base "x" Manifest.Put;
            base "y" Manifest.Put;
            base "x" Manifest.Del;
            base "z" Manifest.Put;
            base "y" Manifest.Put;
          ]
        in
        let live = Manifest.live log in
        checks "sorted live set" "y,z"
          (String.concat "," (List.map (fun e -> e.Manifest.rel) live)));
  ]

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let engine_tests =
  [
    Alcotest.test_case "manifest rebuild is equivalent to the directory walk" `Quick
      (fun () ->
        let dir = temp_dir "wfc-engine" in
        let eng = Engine.open_store dir in
        Engine.seed eng ~count:25;
        (* rebuild stamps skeleton entries created_at = 0., so write ours
           the same way and the full views must match byte-for-byte *)
        Engine.put_skeleton eng ~digest:(String.make 32 'c') ~level:2 ~created_at:0.
          "{\"fake\": true}";
        let render () =
          String.concat "\n"
            (List.map (fun e -> Wfc_obs.Json.to_line (Manifest.entry_to_json e))
               (Engine.ls eng))
        in
        let before = render () in
        checki "seeded" 26 (List.length (Engine.ls eng));
        (* lose the index entirely; the tree rebuilds it *)
        Engine.close eng;
        Sys.remove (Filename.concat dir "MANIFEST.jsonl");
        checki "index gone" 0 (List.length (Engine.ls eng));
        let n = Engine.rebuild_manifest eng in
        checki "all entries recovered" 26 n;
        checks "identical live view" before (render ()));
    Alcotest.test_case "cache tier: hits skip the disk, eviction is counted" `Quick
      (fun () ->
        let dir = temp_dir "wfc-engine" in
        let eng = Engine.open_store ~cache_cap:2 dir in
        let r1 = record_of_params ~seed:1 ~kind:1 ~ndecide:0 ~level:1 in
        let r2 = record_of_params ~seed:3 ~kind:1 ~ndecide:0 ~level:1 in
        let r3 = record_of_params ~seed:5 ~kind:1 ~ndecide:0 ~level:1 in
        let hits0 = counter_value "storage.cache.hit" in
        let evict0 = counter_value "storage.cache.evict" in
        Engine.put eng r1;
        Engine.put eng r2;
        let find (r : Record.record) =
          Engine.find eng ~digest:r.Record.digest ~model:r.Record.model
            ~max_level:r.Record.max_level ~budget:r.Record.budget
        in
        (* warm: both live in the cache from their puts *)
        checkb "r1 warm" true (find r1 <> None);
        checkb "r2 warm" true (find r2 <> None);
        checki "two cache hits" 2 (counter_value "storage.cache.hit" - hits0);
        (* a third put overflows cap=2 *)
        Engine.put eng r3;
        checki "one eviction" 1 (counter_value "storage.cache.evict" - evict0);
        checki "cache bounded" 2 (List.length (Engine.cache_keys eng));
        (* the evicted record still answers — from disk *)
        let reads0 = counter_value "serve.store.reads" in
        checkb "evicted record still found" true (find r1 <> None);
        checkb "that lookup hit the disk" true (counter_value "serve.store.reads" > reads0));
    Alcotest.test_case "truncated record: quarantine keeps manifest consistent" `Quick
      (fun () ->
        let dir = temp_dir "wfc-engine" in
        let eng = Engine.open_store dir in
        let r = record_of_params ~seed:11 ~kind:0 ~ndecide:5 ~level:1 in
        Engine.put eng r;
        let path =
          Engine.path_of eng ~digest:r.Record.digest ~model:r.Record.model
            ~max_level:r.Record.max_level
        in
        (* cut mid-byte, as only a non-atomic writer could *)
        let full = In_channel.with_open_bin path In_channel.input_all in
        let oc = open_out_bin path in
        output_string oc (String.sub full 0 (String.length full / 2));
        close_out oc;
        let cold = Engine.open_store dir in
        checkb "miss" true
          (Engine.find cold ~digest:r.Record.digest ~model:r.Record.model
             ~max_level:r.Record.max_level ~budget:r.Record.budget
          = None);
        checkb "moved aside" false (Sys.file_exists path);
        let v = Engine.verify cold in
        checki "quarantined" 1 v.Engine.quarantined;
        checki "corrupt in place" 0 (List.length v.Engine.corrupt);
        checki "manifest consistent: nothing live is missing" 0 v.Engine.missing);
    Alcotest.test_case "crash-orphaned temp files: reported by verify, reaped by gc" `Quick
      (fun () ->
        let dir = temp_dir "wfc-engine" in
        let eng = Engine.open_store dir in
        Engine.seed eng ~count:3;
        (* the shape an interrupted atomic write leaves, deep in a shard —
           named *.json.<pid>.<n>.wtmp precisely so no scan can read it as a
           record (the old flat store suffix-matched .json and could) *)
        let shard = Filename.concat dir "ab/cd" in
        Layout.mkdir_p shard;
        let stray = Filename.concat shard "deadbeef.wait-free.L1.json.999.0.wtmp" in
        let oc = open_out stray in
        output_string oc "{\"schema\": \"wfc.st";
        close_out oc;
        let v = Engine.verify eng in
        checki "stray temp reported" 1 v.Engine.stray_tmp;
        checki "not read as a record" 0 (List.length v.Engine.corrupt);
        let removed = ref 0 in
        Engine.gc eng ~removed;
        checki "reaped" 1 !removed;
        checkb "gone" false (Sys.file_exists stray);
        let v = Engine.verify eng in
        checki "clean" 0 v.Engine.stray_tmp;
        checki "records untouched" 3 v.Engine.valid);
    Alcotest.test_case "concurrent puts on one key from two domains" `Quick (fun () ->
        let dir = temp_dir "wfc-engine" in
        let eng = Engine.open_store dir in
        let mk nodes =
          let r = record_of_params ~seed:21 ~kind:1 ~ndecide:0 ~level:1 in
          { r with Record.outcome = { r.Record.outcome with Solvability.o_nodes = nodes } }
        in
        let racer lo =
          Domain.spawn (fun () -> for i = lo to lo + 39 do Engine.put eng (mk i) done)
        in
        let d1 = racer 0 and d2 = racer 1000 in
        Domain.join d1;
        Domain.join d2;
        let r = mk 0 in
        (* whoever won, the stored record is whole and answers the question *)
        (match
           Engine.find eng ~digest:r.Record.digest ~model:r.Record.model
             ~max_level:r.Record.max_level ~budget:r.Record.budget
         with
        | None -> Alcotest.fail "record lost in the race"
        | Some r' ->
          checks "same verdict bytes"
            (Wfc_obs.Json.to_string (Record.verdict_json r))
            (Wfc_obs.Json.to_string (Record.verdict_json r')));
        let v = Engine.verify eng in
        checki "one whole record" 1 v.Engine.valid;
        checki "no torn files" 0 (List.length v.Engine.corrupt);
        checki "no manifest entry without a file" 0 v.Engine.missing;
        checki "no file without a manifest entry" 0 v.Engine.unindexed);
    Alcotest.test_case "ls is deterministic and sorted" `Quick (fun () ->
        let dir = temp_dir "wfc-engine" in
        let eng = Engine.open_store dir in
        Engine.seed eng ~count:12;
        let rels () = List.map (fun e -> e.Manifest.rel) (Engine.ls eng) in
        let a = rels () in
        checkb "sorted" true (a = List.sort compare a);
        checkb "stable across calls" true (a = rels ()));
  ]

(* ------------------------------------------------------------------ *)
(* Persisted SDS skeletons                                              *)
(* ------------------------------------------------------------------ *)

let skeleton_tests =
  [
    Alcotest.test_case "cold iterate replays persisted skeletons bit-for-bit" `Quick
      (fun () ->
        let dir = temp_dir "wfc-skel" in
        let eng = Engine.open_store dir in
        Sds.set_skeleton_store
          (Some
             {
               Sds.load = (fun ~digest ~level -> Engine.find_skeleton eng ~digest ~level);
               save =
                 (fun ~digest ~level data ->
                   Engine.put_skeleton eng ~digest ~level ~created_at:0. data);
             });
        Fun.protect
          ~finally:(fun () -> Sds.set_skeleton_store None)
          (fun () ->
            Sds.clear_cache ();
            let misses0 = counter_value "sds.skeleton.misses" in
            let hits0 = counter_value "sds.skeleton.hits" in
            let warm = Sds.standard ~dim:2 ~levels:2 in
            checki "first build enumerates and saves" 2
              (counter_value "sds.skeleton.misses" - misses0);
            (* a "new process": no memo, same store *)
            Sds.clear_cache ();
            let cold = Sds.standard ~dim:2 ~levels:2 in
            checki "both levels replayed" 2 (counter_value "sds.skeleton.hits" - hits0);
            checks "structurally identical complex"
              (Sds.structural_digest (Sds.complex warm))
              (Sds.structural_digest (Sds.complex cold));
            checki "same facet count"
              (List.length (Complex.facets (Chromatic.complex (Sds.complex warm))))
              (List.length (Complex.facets (Chromatic.complex (Sds.complex cold))));
            (* a corrupted artifact must fall back to enumeration, silently *)
            let skel_digest =
              Sds.structural_digest (Chromatic.standard_simplex 2)
            in
            Engine.put_skeleton eng ~digest:skel_digest ~level:1 ~created_at:0.
              "{\"not\": \"a skeleton\"}";
            Sds.clear_cache ();
            let m0 = counter_value "sds.skeleton.misses" in
            let again = Sds.standard ~dim:2 ~levels:1 in
            checkb "fell back to a fresh subdivision" true
              (counter_value "sds.skeleton.misses" - m0 >= 1);
            checks "and produced the right complex"
              (Sds.structural_digest (Sds.complex warm))
              (Sds.structural_digest (Sds.complex (Sds.subdivide again)))));
  ]

let () =
  Alcotest.run "wfc_storage"
    [
      ("lru", lru_tests);
      ("codec", codec_tests);
      ("manifest", manifest_tests);
      ("engine", engine_tests);
      ("skeleton", skeleton_tests);
    ]
