(* Tier-1 tests for persistent execution traces: the flight-recorder ring,
   the wfc.trace.v1 codec, deterministic replay (record -> replay must
   reproduce a byte-identical canonical trace and re-pass the correctness
   checkers), runtime trace sinks, Perfetto export, and the solvability
   search trail. *)

open Wfc_model
open Wfc_core

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flight_basics () =
  let r = Wfc_obs.Flight.create ~capacity:3 in
  checki "empty" 0 (Wfc_obs.Flight.length r);
  Wfc_obs.Flight.push r 1;
  Wfc_obs.Flight.push r 2;
  checkb "partial contents" true (Wfc_obs.Flight.contents r = [ 1; 2 ]);
  Wfc_obs.Flight.push r 3;
  Wfc_obs.Flight.push r 4;
  Wfc_obs.Flight.push r 5;
  checki "bounded" 3 (Wfc_obs.Flight.length r);
  checki "dropped counts evictions" 2 (Wfc_obs.Flight.dropped r);
  checkb "retains newest, oldest first" true (Wfc_obs.Flight.contents r = [ 3; 4; 5 ]);
  Wfc_obs.Flight.clear r;
  checki "clear empties" 0 (Wfc_obs.Flight.length r);
  checki "clear resets dropped" 0 (Wfc_obs.Flight.dropped r);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Flight.create: capacity 0 must be positive") (fun () ->
      ignore (Wfc_obs.Flight.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* §3.5 round-trip: views of a legal ordered partition reconstruct it  *)
(* ------------------------------------------------------------------ *)

let partition_roundtrip =
  qtest "partition_of_views inverts Ordered_partition.views"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 5))
    (fun (seed, n) ->
      let st = Random.State.make [| seed |] in
      let procs = List.init n (fun i -> i) in
      let p = Wfc_topology.Ordered_partition.random st procs in
      let views = Wfc_topology.Ordered_partition.views p in
      let normalized = List.map (List.sort Stdlib.compare) p in
      Trace.partition_of_views views = Some normalized)

(* ------------------------------------------------------------------ *)
(* wfc.trace.v1 codec                                                  *)
(* ------------------------------------------------------------------ *)

let sample_meta =
  Trace_io.meta ~seed:42 ~crash:[ 1 ] ~protocol:"emulation.full-info" ~procs:2 ~rounds:1 ()

let sample_trace : string Trace.t =
  [
    Trace.E_write { time = 0; proc = 0; value = "a" };
    Trace.E_read { time = 1; proc = 1; cell = 0; value = Some "a" };
    Trace.E_read { time = 2; proc = 1; cell = 1; value = None };
    Trace.E_snapshot { time = 3; proc = 0; view = [| Some "a"; None |] };
    Trace.E_arrive { time = 4; proc = 0; level = 0; value = "x" };
    Trace.E_fire { time = 5; level = 0; block = [ 0 ] };
    Trace.E_note { time = 6; proc = 1; note = "hello" };
    Trace.E_decide { time = 7; proc = 0; value = "d" };
    Trace.E_crash { time = 8; proc = 1 };
  ]

let test_trace_json_roundtrip () =
  let j = Trace_io.to_json Trace_io.string_value sample_meta sample_trace in
  (match Trace_io.of_json Trace_io.string_of_value j with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok (m, tr) ->
    checkb "meta survives" true (m = sample_meta);
    checkb "events survive" true (tr = sample_trace));
  (* canonical emitter: serialize twice, same bytes *)
  checks "canonical bytes" (Wfc_obs.Json.to_string j) (Wfc_obs.Json.to_string j);
  (* parse back through text too *)
  match Wfc_obs.Json.parse (Wfc_obs.Json.to_string j) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j' -> checkb "text round-trip" true (Wfc_obs.Json.equal j j')

let test_trace_validate_rejects () =
  let open Wfc_obs.Json in
  let ok j = Trace_io.validate j = Ok () in
  let good = Trace_io.to_json Trace_io.string_value sample_meta sample_trace in
  checkb "good trace validates" true (ok good);
  checkb "missing schema" false (ok (Obj [ ("meta", Null); ("events", Arr []) ]));
  checkb "wrong schema" false
    (ok (Obj [ ("schema", String "wfc.obs.v1"); ("meta", Null); ("events", Arr []) ]));
  let meta_json =
    Obj
      [
        ("protocol", String "p");
        ("procs", Int 2);
        ("rounds", Int 1);
        ("seed", Null);
        ("crash", Arr []);
      ]
  in
  let with_events evs =
    Obj [ ("schema", String Trace_io.schema_version); ("meta", meta_json); ("events", Arr evs) ]
  in
  checkb "minimal empty trace validates" true (ok (with_events []));
  checkb "unknown event kind" false
    (ok (with_events [ Obj [ ("ev", String "warp"); ("t", Int 0) ] ]));
  checkb "missing time" false
    (ok (with_events [ Obj [ ("ev", String "crash"); ("proc", Int 0) ] ]));
  checkb "fire without block" false
    (ok (with_events [ Obj [ ("ev", String "fire"); ("t", Int 0); ("level", Int 0) ] ]));
  checkb "events must be an array" false
    (ok (Obj [ ("schema", String Trace_io.schema_version); ("meta", meta_json); ("events", Int 3) ]))

(* ------------------------------------------------------------------ *)
(* Runtime sinks                                                       *)
(* ------------------------------------------------------------------ *)

let emulate ~sink ~seed ~crash =
  let spec = Emulation.full_information_spec ~procs:3 ~k:2 in
  let strategy =
    match crash with
    | [] -> Runtime.random ~seed ()
    | victims -> Runtime.random_with_crashes ~seed ~crash:victims ()
  in
  Emulation.run ~sink ~show:Fun.id spec strategy

let test_sink_semantics () =
  let full = Lazy.force (emulate ~sink:Runtime.Full ~seed:11 ~crash:[]).Emulation.trace in
  let ring = Lazy.force (emulate ~sink:(Runtime.Ring 8) ~seed:11 ~crash:[]).Emulation.trace in
  let off = Lazy.force (emulate ~sink:Runtime.Off ~seed:11 ~crash:[]).Emulation.trace in
  checkb "full sink records" true (List.length full > 8);
  checkb "off records nothing" true (off = []);
  checki "ring is bounded" 8 (List.length ring);
  let suffix =
    let n = List.length full in
    List.filteri (fun i _ -> i >= n - 8) full
  in
  checkb "ring retains the newest suffix of full" true (ring = suffix)

let test_on_trap_fires () =
  let dumped = ref None in
  let spec = Emulation.full_information_spec ~procs:2 ~k:1 in
  (* stepping a process that is waiting inside a memory is an invalid
     decision: the flight recorder must dump what it retained *)
  let bad _ = Runtime.Step 0 in
  (try
     ignore
       (Emulation.run ~sink:(Runtime.Ring 16) ~on_trap:(fun tr -> dumped := Some tr)
          ~show:Fun.id spec bad);
     Alcotest.fail "expected Invalid_decision"
   with Runtime.Invalid_decision _ -> ());
  match !dumped with
  | None -> Alcotest.fail "on_trap did not fire"
  | Some tr -> checkb "dump holds the retained prefix" true (tr <> [])

(* ------------------------------------------------------------------ *)
(* Deterministic replay                                                *)
(* ------------------------------------------------------------------ *)

let canonical meta tr = Wfc_obs.Json.to_string (Trace_io.to_json Trace_io.string_value meta tr)

let check_is_levels tr =
  List.for_all
    (fun (_, views) -> Trace.check_immediate_snapshot views = Ok ())
    (Trace.is_views_by_level tr)

let test_emulation_replay_identical () =
  List.iter
    (fun seed ->
      List.iter
        (fun crash ->
          let meta =
            Trace_io.meta ~seed ~crash ~protocol:"emulation.full-info" ~procs:3 ~rounds:2 ()
          in
          let recorded = emulate ~sink:Runtime.Full ~seed ~crash in
          let decisions = Trace_io.decisions_of (Lazy.force recorded.Emulation.trace) in
          let spec = Emulation.full_information_spec ~procs:3 ~k:2 in
          let replayed =
            Emulation.run ~sink:Runtime.Full ~show:Fun.id spec (Trace_io.replay decisions)
          in
          let ctx = Printf.sprintf "seed=%d crash=[%s]" seed
              (String.concat ";" (List.map string_of_int crash))
          in
          checks (ctx ^ ": byte-identical")
            (canonical meta (Lazy.force recorded.Emulation.trace))
            (canonical meta (Lazy.force replayed.Emulation.trace));
          checkb (ctx ^ ": §3.5 views legal on replay") true
            (check_is_levels (Lazy.force replayed.Emulation.trace));
          checkb (ctx ^ ": atomicity holds on replay") true
            (Emulation.check replayed = Ok ()))
        [ []; [ 0 ]; [ 1 ] ])
    [ 0; 1; 2; 3; 4 ]

let test_bg_replay_identical () =
  List.iter
    (fun seed ->
      let spec = Bg_simulation.full_information_spec ~procs:3 ~k:1 in
      let strategy () = Runtime.random ~seed () in
      let recorded = Bg_simulation.run ~sink:Runtime.Full ~simulators:2 spec (strategy ()) in
      let decisions = Trace_io.decisions_of (Lazy.force recorded.Bg_simulation.trace) in
      let replayed =
        Bg_simulation.run ~sink:Runtime.Full ~simulators:2 spec (Trace_io.replay decisions)
      in
      let meta = Trace_io.meta ~seed ~protocol:"bg.full-info:3" ~procs:2 ~rounds:1 () in
      checks
        (Printf.sprintf "bg seed=%d: byte-identical" seed)
        (canonical meta (Lazy.force recorded.Bg_simulation.trace))
        (canonical meta (Lazy.force replayed.Bg_simulation.trace));
      checkb "bg history legal on replay" true (Bg_simulation.check spec replayed = Ok ()))
    [ 0; 1; 2 ]

let test_replay_halts_when_exhausted () =
  (* a truncated decision list must halt cleanly, not invent scheduling *)
  let recorded = emulate ~sink:Runtime.Full ~seed:5 ~crash:[] in
  let decisions = Trace_io.decisions_of (Lazy.force recorded.Emulation.trace) in
  let truncated = List.filteri (fun i _ -> i < 4) decisions in
  let spec = Emulation.full_information_spec ~procs:3 ~k:2 in
  let r = Emulation.run ~sink:Runtime.Full ~show:Fun.id spec (Trace_io.replay truncated) in
  checkb "partial replay stops early" true
    (List.length (Lazy.force r.Emulation.trace) < List.length (Lazy.force recorded.Emulation.trace))

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let test_perfetto_valid () =
  let r = emulate ~sink:Runtime.Full ~seed:9 ~crash:[ 2 ] in
  let events = Trace_io.to_trace_events ~show:Fun.id (Lazy.force r.Emulation.trace) in
  let j = Wfc_obs.Trace_event.to_json events in
  (match Wfc_obs.Trace_event.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "perfetto export invalid: %s" e);
  (* the timeline names every process track plus the adversary *)
  let thread_names =
    match Wfc_obs.Json.member "traceEvents" j with
    | Some (Wfc_obs.Json.Arr evs) ->
      List.length
        (List.filter
           (fun e -> Wfc_obs.Json.member "name" e = Some (Wfc_obs.Json.String "thread_name"))
           evs)
    | _ -> 0
  in
  checki "3 procs + adversary named" 4 thread_names

let test_trace_event_validate_rejects () =
  let open Wfc_obs.Json in
  checkb "missing traceEvents" true
    (Wfc_obs.Trace_event.validate (Obj [ ("displayTimeUnit", String "ms") ]) <> Ok ());
  checkb "event without ph" true
    (Wfc_obs.Trace_event.validate (Obj [ ("traceEvents", Arr [ Obj [ ("name", String "x") ] ]) ])
    <> Ok ())

(* ------------------------------------------------------------------ *)
(* Solvability search trail                                            *)
(* ------------------------------------------------------------------ *)

let test_solvability_trail () =
  let task = Wfc_tasks.Instances.binary_consensus ~procs:2 in
  (match Solvability.solve_at ~opts:(Solvability.options ~trace:false ()) task 1 with
  | Solvability.Unsolvable_at { trail; _ } -> checkb "trail empty when off" true (trail = [])
  | _ -> Alcotest.fail "consensus-2 should be unsolvable at level 1");
  match Solvability.solve_at ~opts:(Solvability.options ~trace:true ()) task 1 with
  | Solvability.Unsolvable_at { trail; _ } ->
    checkb "trail recorded when on" true (trail <> []);
    List.iter
      (fun e ->
        match Solvability.search_event_to_json e with
        | Wfc_obs.Json.Obj fields -> checkb "event tagged" true (List.mem_assoc "ev" fields)
        | _ -> Alcotest.fail "search event must serialize to an object")
      trail
  | _ -> Alcotest.fail "consensus-2 should be unsolvable at level 1 (traced)"

let () =
  Alcotest.run "wfc-trace"
    [
      ("flight", [ Alcotest.test_case "ring semantics" `Quick test_flight_basics ]);
      ("partition", [ partition_roundtrip ]);
      ( "codec",
        [
          Alcotest.test_case "json round-trip" `Quick test_trace_json_roundtrip;
          Alcotest.test_case "validate rejects bad input" `Quick test_trace_validate_rejects;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "full / ring / off" `Quick test_sink_semantics;
          Alcotest.test_case "on_trap dump" `Quick test_on_trap_fires;
        ] );
      ( "replay",
        [
          Alcotest.test_case "emulation byte-identity + checkers" `Quick
            test_emulation_replay_identical;
          Alcotest.test_case "bg byte-identity + checker" `Quick test_bg_replay_identical;
          Alcotest.test_case "exhausted decisions halt" `Quick test_replay_halts_when_exhausted;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "export validates" `Quick test_perfetto_valid;
          Alcotest.test_case "validator rejects bad input" `Quick
            test_trace_event_validate_rejects;
        ] );
      ("solvability", [ Alcotest.test_case "refutation trail" `Quick test_solvability_trail ]);
    ]
