(* Tests for the paper's core results: solvability, emulation,
   approximation, convergence, boundedness, Sperner. *)

open Wfc_topology
open Wfc_model
open Wfc_tasks
open Wfc_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let solvable_at task max_level =
  match Solvability.solve ~max_level task with
  | Solvability.Solvable { map; _ } -> Some map
  | Solvability.Unsolvable_at _ | Solvability.Exhausted _ -> None

(* ------------------------------------------------------------------ *)
(* Solvability                                                          *)
(* ------------------------------------------------------------------ *)

let solvability_unit_tests =
  [
    Alcotest.test_case "identity solvable at level 0" `Quick (fun () ->
        match solvable_at (Instances.id_task ~procs:3) 0 with
        | Some m ->
          checki "level" 0 m.Solvability.level;
          checkb "verifies" true (Solvability.verify m = Ok ())
        | None -> Alcotest.fail "identity must be solvable");
    Alcotest.test_case "consensus unsolvable (2 procs, b <= 3)" `Quick (fun () ->
        match Solvability.solve ~max_level:3 (Instances.binary_consensus ~procs:2) with
        | Solvability.Unsolvable_at { level = 3; _ } -> ()
        | Solvability.Unsolvable_at { level = b; _ } -> checki "last level" 3 b
        | _ -> Alcotest.fail "consensus must be unsolvable");
    Alcotest.test_case "consensus unsolvable (3 procs, b <= 1)" `Quick (fun () ->
        match Solvability.solve ~max_level:1 (Instances.binary_consensus ~procs:3) with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "consensus must be unsolvable");
    Alcotest.test_case "set consensus verdicts" `Quick (fun () ->
        checkb "(3,3) trivially solvable" true
          (solvable_at (Instances.set_consensus ~procs:3 ~k:3) 0 <> None);
        (match Solvability.solve ~max_level:1 (Instances.set_consensus ~procs:3 ~k:2) with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "(3,2) must be unsolvable at level <= 1");
        checkb "(2,2) trivially solvable" true
          (solvable_at (Instances.set_consensus ~procs:2 ~k:2) 0 <> None);
        match Solvability.solve ~max_level:2 (Instances.set_consensus ~procs:2 ~k:1) with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "(2,1) is consensus, must be unsolvable");
    Alcotest.test_case "adaptive renaming verdicts" `Quick (fun () ->
        (match solvable_at (Instances.adaptive_renaming ~procs:2 ~names:3) 2 with
        | Some m -> checki "needs one round" 1 m.Solvability.level
        | None -> Alcotest.fail "3-name renaming solvable");
        match Solvability.solve ~max_level:2 (Instances.adaptive_renaming ~procs:2 ~names:2) with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "2-name adaptive renaming unsolvable");
    Alcotest.test_case "approximate agreement: rounds grow with 1/eps" `Quick (fun () ->
        let min_level grid =
          match solvable_at (Instances.approximate_agreement ~procs:2 ~grid) 3 with
          | Some m -> m.Solvability.level
          | None -> -1
        in
        checki "grid 1 level 0" 0 (min_level 1);
        checki "grid 3 level 1" 1 (min_level 3);
        checki "grid 9 level 2" 2 (min_level 9);
        checki "grid 27 level 3" 3 (min_level 27));
    Alcotest.test_case "verify rejects corrupted maps" `Quick (fun () ->
        match solvable_at (Instances.approximate_agreement ~procs:2 ~grid:3) 2 with
        | None -> Alcotest.fail "should be solvable"
        | Some m ->
          let out_vertices =
            Complex.vertices (Chromatic.complex m.Solvability.task.Task.output)
          in
          let corrupt =
            {
              m with
              Solvability.decide =
                (fun v ->
                  let w = m.Solvability.decide v in
                  (* move every vertex to some other output vertex of the
                     same color: breaks the delta condition somewhere *)
                  match
                    List.find_opt
                      (fun w' ->
                        w' <> w
                        && Chromatic.color m.Solvability.task.Task.output w'
                           = Chromatic.color m.Solvability.task.Task.output w)
                      out_vertices
                  with
                  | Some w' -> w'
                  | None -> w);
            }
          in
          checkb "corrupted map fails" true (Solvability.verify corrupt <> Ok ()));
    Alcotest.test_case "solvable tasks stay solvable at higher levels" `Quick (fun () ->
        (* subdivision composes: a level-1 map induces level-2 solvability *)
        let t = Instances.adaptive_renaming ~procs:2 ~names:3 in
        checkb "level 2 also solvable" true
          (match Solvability.solve_at t 2 with Solvability.Solvable _ -> true | _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Characterization: maps as protocols                                  *)
(* ------------------------------------------------------------------ *)

let characterization_unit_tests =
  [
    Alcotest.test_case "validated protocols for solvable tasks" `Slow (fun () ->
        List.iter
          (fun (name, task, max_level) ->
            match solvable_at task max_level with
            | Some m ->
              checkb (name ^ " validates") true (Characterization.validate m = Ok ())
            | None -> Alcotest.fail (name ^ " should be solvable"))
          [
            ("identity", Instances.id_task ~procs:3, 0);
            ("renaming(2,3)", Instances.adaptive_renaming ~procs:2 ~names:3, 1);
            ("approx(2,3)", Instances.approximate_agreement ~procs:2 ~grid:3, 1);
            ("set-consensus(3,3)", Instances.set_consensus ~procs:3 ~k:3, 0);
          ]);
    Alcotest.test_case "outputs decode correctly" `Quick (fun () ->
        let m = Option.get (solvable_at (Instances.id_task ~procs:2) 0) in
        let input_vertices =
          Array.init 2 (fun i ->
              Option.get (Task.input_vertex m.Solvability.task ~proc:i ~value:(string_of_int i)))
        in
        match
          Characterization.run_and_check m ~input_vertices ~participating:[ 0; 1 ]
            (Runtime.round_robin ())
        with
        | Ok outputs -> checki "both decided" 2 (List.length outputs)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "rejects wrong-color input vertices" `Quick (fun () ->
        let m = Option.get (solvable_at (Instances.id_task ~procs:2) 0) in
        let v1 =
          Option.get (Task.input_vertex m.Solvability.task ~proc:1 ~value:"1")
        in
        (try
           ignore (Characterization.protocol_of_map m ~input_vertices:[| v1; v1 |]);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
  ]

let characterization_prop_tests =
  [
    qtest ~count:60 "renaming map solves under random adversaries and participation"
      QCheck2.Gen.(pair (int_range 0 500) (int_range 1 3))
      (let m =
         lazy (Option.get (solvable_at (Instances.adaptive_renaming ~procs:2 ~names:3) 1))
       in
       fun (seed, subset_id) ->
         let m = Lazy.force m in
         let participating =
           match subset_id with 1 -> [ 0 ] | 2 -> [ 1 ] | _ -> [ 0; 1 ]
         in
         let input_vertices =
           Array.init 2 (fun i ->
               Option.get
                 (Task.input_vertex m.Solvability.task ~proc:i ~value:(string_of_int i)))
         in
         Result.is_ok
           (Characterization.run_and_check m ~input_vertices ~participating
              (Runtime.random ~seed ())));
  ]

(* ------------------------------------------------------------------ *)
(* Emulation (Figure 2)                                                 *)
(* ------------------------------------------------------------------ *)

let emulation_unit_tests =
  [
    Alcotest.test_case "round-robin runs are atomic" `Quick (fun () ->
        List.iter
          (fun (n, k) ->
            let r = Emulation.run (Emulation.full_information_spec ~procs:n ~k) (Runtime.round_robin ()) in
            checkb (Printf.sprintf "n=%d k=%d" n k) true (Emulation.check r = Ok ()))
          [ (2, 1); (2, 3); (3, 2); (4, 2) ]);
    Alcotest.test_case "sequential emulation uses ~2k memories for n=2" `Quick (fun () ->
        let r = Emulation.run (Emulation.full_information_spec ~procs:2 ~k:3) (Runtime.round_robin ()) in
        checkb "memories between 2k and 4k" true
          (r.Emulation.cost.Emulation.memories >= 6 && r.Emulation.cost.Emulation.memories <= 12));
    Alcotest.test_case "every process performs its k rounds" `Quick (fun () ->
        let r = Emulation.run (Emulation.full_information_spec ~procs:3 ~k:2) (Runtime.random ~seed:11 ()) in
        let writes =
          List.filter (fun o -> match o.Trace.kind with `Write _ -> true | _ -> false) r.Emulation.ops
        in
        let snaps =
          List.filter (fun o -> match o.Trace.kind with `Snapshot _ -> true | _ -> false) r.Emulation.ops
        in
        checki "3 procs x 2 writes" 6 (List.length writes);
        checki "3 procs x 2 snapshots" 6 (List.length snaps));
    Alcotest.test_case "final snapshots contain own last value" `Quick (fun () ->
        let r = Emulation.run (Emulation.full_information_spec ~procs:3 ~k:2) (Runtime.random ~seed:5 ()) in
        Array.iteri
          (fun i snap -> checkb "own cell non-empty" true (snap.(i) <> None))
          r.Emulation.final_snapshots);
    Alcotest.test_case "atomicity checker sees through a doctored history" `Quick (fun () ->
        let r = Emulation.run (Emulation.full_information_spec ~procs:2 ~k:2) (Runtime.round_robin ()) in
        (* corrupt one snapshot vector: erase another process's write that
           completed before the snapshot started *)
        let doctored =
          List.map
            (fun o ->
              match o.Trace.kind with
              | `Snapshot v when o.Trace.proc = 1 && Array.length v > 0 && v.(0) > 0 ->
                let v' = Array.copy v in
                v'.(0) <- 0;
                { o with Trace.kind = `Snapshot v' }
              | _ -> o)
            r.Emulation.ops
        in
        if doctored <> r.Emulation.ops then
          checkb "rejected" true (Trace.check_snapshot_atomicity doctored <> Ok ()));
  ]

let emulation_prop_tests =
  [
    qtest ~count:150 "random adversaries: emulated histories are atomic"
      QCheck2.Gen.(pair (int_range 0 5000) (pair (int_range 2 4) (int_range 1 3)))
      (fun (seed, (n, k)) ->
        let r = Emulation.run (Emulation.full_information_spec ~procs:n ~k) (Runtime.random ~seed ()) in
        Emulation.check r = Ok ());
    qtest ~count:60 "crash adversaries: surviving history is atomic"
      QCheck2.Gen.(pair (int_range 0 2000) (int_range 0 2))
      (fun (seed, victim) ->
        let r =
          Emulation.run
            (Emulation.full_information_spec ~procs:3 ~k:2)
            (Runtime.random_with_crashes ~seed ~crash:[ victim ] ())
        in
        Emulation.check r = Ok ());
    qtest ~count:50 "memory usage grows linearly in k (n=2, sequential)"
      QCheck2.Gen.(int_range 1 8)
      (fun k ->
        let r = Emulation.run (Emulation.full_information_spec ~procs:2 ~k) (Runtime.round_robin ()) in
        r.Emulation.cost.Emulation.memories = 4 * k);
    qtest ~count:30 "isolating adversary: histories stay atomic"
      QCheck2.Gen.(pair (int_range 2 4) (int_range 0 3))
      (fun (procs, victim) ->
        let victim = victim mod procs in
        let r =
          Emulation.run
            (Emulation.full_information_spec ~procs ~k:2)
            (Runtime.isolating ~victim ())
        in
        Emulation.check r = Ok ());
  ]

(* ------------------------------------------------------------------ *)
(* Approximation (Lemma 5.3) and convergence (Theorem 5.1)              *)
(* ------------------------------------------------------------------ *)

let approximation_unit_tests =
  [
    Alcotest.test_case "Bsd^k approximates SDS(s^2)" `Slow (fun () ->
        let target = Sds.subdiv (Sds.standard ~dim:2 ~levels:1) in
        match Approximation.min_level ~scheme:`Bsd ~target () with
        | Some (k, phi) ->
          checkb "k small" true (k <= 4);
          checkb "simplicial" true (Simplicial_map.is_simplicial phi)
        | None -> Alcotest.fail "approximation must exist");
    Alcotest.test_case "SDS refines SDS in one step" `Quick (fun () ->
        let target = Sds.subdiv (Sds.standard ~dim:2 ~levels:1) in
        match Approximation.min_level ~scheme:`Sds ~target () with
        | Some (k, _) -> checki "level 1 suffices" 1 k
        | None -> Alcotest.fail "must exist");
    Alcotest.test_case "approximation maps are carrier monotone" `Quick (fun () ->
        let base = Chromatic.standard_simplex 1 in
        let target = Subdivision.subdiv (Subdivision.iterate base 2) in
        match Approximation.min_level ~scheme:`Sds ~target () with
        | Some (k, phi) ->
          let source = Sds.subdiv (Sds.iterate base k) in
          checkb "carrier monotone" true (Subdiv.is_carrier_monotone source target phi)
        | None -> Alcotest.fail "must exist");
    Alcotest.test_case "coarse source fails gracefully" `Quick (fun () ->
        let base = Chromatic.standard_simplex 1 in
        let fine = Subdivision.subdiv (Subdivision.iterate base 3) in
        let coarse = Sds.subdiv (Sds.iterate base 1) in
        match Approximation.approximate ~source:coarse ~target:fine with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "a 3-cell source cannot map onto an 8-cell path");
    Alcotest.test_case "different bases rejected" `Quick (fun () ->
        let a = Sds.subdiv (Sds.standard ~dim:1 ~levels:1) in
        let b = Sds.subdiv (Sds.standard ~dim:2 ~levels:1) in
        match Approximation.approximate ~source:a ~target:b with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "geometric chromatic fast path SDS^2 -> SDS^1" `Quick (fun () ->
        let source = Sds.subdiv (Sds.standard ~dim:2 ~levels:2) in
        let target = Sds.subdiv (Sds.standard ~dim:2 ~levels:1) in
        match Approximation.chromatic_geometric ~source ~target with
        | Ok phi ->
          checkb "simplicial" true (Simplicial_map.is_simplicial phi);
          checkb "color preserving" true
            (Simplicial_map.is_color_preserving
               ~src_color:(Chromatic.color source.Subdiv.cx)
               ~dst_color:(Chromatic.color target.Subdiv.cx)
               phi);
          checkb "carrier monotone" true (Subdiv.is_carrier_monotone source target phi)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "chromatic map onto SDS^2(s^2) at k=2" `Slow (fun () ->
        match
          Approximation.chromatic ~max_k:2 ~target:(Sds.subdiv (Sds.standard ~dim:2 ~levels:2)) ()
        with
        | Some (k, m) ->
          checki "k = 2" 2 k;
          checkb "verifies" true (Solvability.verify m = Ok ())
        | None -> Alcotest.fail "must exist");
    Alcotest.test_case "Theorem 5.1: chromatic maps exist" `Slow (fun () ->
        List.iter
          (fun (name, target) ->
            match Approximation.chromatic ~target () with
            | Some (_, m) ->
              checkb (name ^ " verifies") true (Solvability.verify m = Ok ())
            | None -> Alcotest.fail (name ^ ": chromatic approximation must exist"))
          [
            ("SDS^2(s^1)", Sds.subdiv (Sds.standard ~dim:1 ~levels:2));
            ("SDS(s^2)", Sds.subdiv (Sds.standard ~dim:2 ~levels:1));
          ]);
  ]

let convergence_unit_tests =
  [
    Alcotest.test_case "CSASS over SDS^2(s^1) end to end" `Slow (fun () ->
        match Convergence.prepare (Sds.subdiv (Sds.standard ~dim:1 ~levels:2)) with
        | Some t -> checkb "validates" true (Convergence.validate t = Ok ())
        | None -> Alcotest.fail "prepare failed");
    Alcotest.test_case "CSASS over SDS(s^2) end to end" `Slow (fun () ->
        match Convergence.prepare (Sds.subdiv (Sds.standard ~dim:2 ~levels:1)) with
        | Some t -> checkb "validates" true (Convergence.validate t = Ok ())
        | None -> Alcotest.fail "prepare failed");
    Alcotest.test_case "solo convergence lands on the corner" `Quick (fun () ->
        match Convergence.prepare (Sds.subdiv (Sds.standard ~dim:1 ~levels:1)) with
        | None -> Alcotest.fail "prepare failed"
        | Some t -> (
          match Convergence.run t ~participating:[ 0 ] (Runtime.round_robin ()) with
          | Ok [ (0, w) ] ->
            checkb "corner carrier" true
              (Simplex.equal (t.Convergence.target.Subdiv.carrier w) (Simplex.of_list [ 0 ]))
          | Ok _ -> Alcotest.fail "expected exactly one output"
          | Error e -> Alcotest.fail e));
  ]

(* ------------------------------------------------------------------ *)
(* Bounded (Lemma 3.1)                                                  *)
(* ------------------------------------------------------------------ *)

let bounded_unit_tests =
  [
    Alcotest.test_case "renaming bound is one WriteRead" `Quick (fun () ->
        let r = Bounded.decision_bound (fun () -> Protocols.is_renaming ~procs:2) in
        checki "bound" 1 r.Bounded.bound;
        checkb "explored > 1 run" true (r.Bounded.runs > 1));
    Alcotest.test_case "k-round IIS full information has bound k" `Quick (fun () ->
        let inputs = Array.init 2 (fun i -> i) in
        let r =
          Bounded.decision_bound (fun () ->
              Full_information.iis_k_shot ~procs:2 ~k:3 ~inputs)
        in
        checki "bound" 3 r.Bounded.bound);
    Alcotest.test_case "BG immediate snapshot bound is <= 2m" `Quick (fun () ->
        let r = Bounded.decision_bound (fun () -> Bg_is.actions ~inputs:[| 0; 1 |]) in
        checkb "bound within 2m" true (r.Bounded.bound <= 4));
    Alcotest.test_case "crashes do not raise the bound" `Quick (fun () ->
        let plain = Bounded.decision_bound (fun () -> Protocols.is_renaming ~procs:2) in
        let crashy =
          Bounded.decision_bound ~crashes:1 (fun () -> Protocols.is_renaming ~procs:2)
        in
        checkb "no increase" true (crashy.Bounded.bound <= plain.Bounded.bound));
  ]

(* ------------------------------------------------------------------ *)
(* Sperner                                                              *)
(* ------------------------------------------------------------------ *)

let sperner_unit_tests =
  [
    Alcotest.test_case "set-consensus decision maps would contradict parity" `Quick (fun () ->
        (* the (2,2) map exists and is a Sperner labeling with panchromatic
           facets allowed; (3,2) would need zero panchromatic facets *)
        match Solvability.solve_at (Instances.set_consensus ~procs:2 ~k:2) 1 with
        | Solvability.Solvable { map = m; _ } -> (
          match Sperner.decision_map_labeling m with
          | Some label ->
            let sds = m.Solvability.sds in
            checkb "is sperner labeling" true (Sperner.is_sperner_labeling sds ~label);
            checki "odd panchromatic count" 1
              (List.length (Sperner.panchromatic_facets sds ~label) mod 2)
          | None -> Alcotest.fail "labeling should decode")
        | _ -> Alcotest.fail "(2,2) solvable");
  ]

let sperner_prop_tests =
  [
    qtest ~count:150 "Sperner parity on SDS^b(s^n)"
      QCheck2.Gen.(pair (int_range 0 10_000) (oneofl [ (1, 1); (1, 2); (1, 3); (2, 1); (2, 2); (3, 1) ]))
      (fun (seed, (n, b)) ->
        let sds = Sds.standard ~dim:n ~levels:b in
        let label = Sperner.random_sperner_labeling ~seed sds in
        Sperner.is_sperner_labeling sds ~label
        && List.length (Sperner.panchromatic_facets sds ~label) mod 2 = 1);
  ]

(* ------------------------------------------------------------------ *)
(* NCSAC: two-process simplex agreement over a no-hole complex          *)
(* ------------------------------------------------------------------ *)

let path_n n = Complex.of_facets (List.init n (fun i -> [ i; i + 1 ]))

let ncsac_unit_tests =
  [
    Alcotest.test_case "rounds follow the diameter" `Quick (fun () ->
        checki "path 8" 3 (Ncsac.rounds_needed (path_n 8));
        checki "path 1" 1 (Ncsac.rounds_needed (path_n 1));
        checki "path 2" 1 (Ncsac.rounds_needed (path_n 2)));
    Alcotest.test_case "validates on paths, skeleta, and cycles" `Quick (fun () ->
        let sds = Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:2)) in
        List.iter
          (fun (name, cx, a, b) ->
            Alcotest.(check string) name "ok"
              (match Ncsac.validate ~seeds:(List.init 10 (fun i -> i)) cx ~inputs:(a, b) with
              | Ok () -> "ok"
              | Error e -> e))
          [
            ("path-8", path_n 8, 0, 8);
            ("sds-skeleton", sds, List.hd (Complex.vertices sds), List.nth (Complex.vertices sds) 50);
            ("circle-6", Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 5 ]; [ 0; 5 ] ], 0, 3);
          ]);
    Alcotest.test_case "rejects bad inputs" `Quick (fun () ->
        let two = Complex.of_facets [ [ 0; 1 ]; [ 2; 3 ] ] in
        (try
           ignore (Ncsac.protocol two ~inputs:(0, 3));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "checker logic" `Quick (fun () ->
        let c = path_n 3 in
        checkb "solo off input" true
          (Ncsac.check_outputs c ~inputs:(0, 3) ~participation:(Ncsac.Solo 0) (Some 1, None)
          <> Ok ());
        checkb "non-simplex pair" true
          (Ncsac.check_outputs c ~inputs:(0, 3) ~participation:Ncsac.Both (Some 0, Some 3)
          <> Ok ());
        checkb "adjacent ok" true
          (Ncsac.check_outputs c ~inputs:(0, 3) ~participation:Ncsac.Both (Some 1, Some 2)
          = Ok ()));
  ]

let ncsac_prop_tests =
  [
    qtest ~count:80 "two-process convergence on random paths"
      QCheck2.Gen.(triple (int_range 0 500) (int_range 1 12) (int_range 0 12))
      (fun (seed, len, b0) ->
        let cx = path_n len in
        let a = 0 and b = min b0 len in
        let o = Runtime.run (Ncsac.protocol cx ~inputs:(a, b)) (Runtime.random ~seed ()) in
        Ncsac.check_outputs cx ~inputs:(a, b) ~participation:Ncsac.Both
          (o.Runtime.results.(0), o.Runtime.results.(1))
        = Ok ());
  ]

(* ------------------------------------------------------------------ *)
(* New task instances: test-and-set and fetch&increment order           *)
(* ------------------------------------------------------------------ *)

let tas_unit_tests =
  [
    Alcotest.test_case "test-and-set verdicts" `Quick (fun () ->
        (match Solvability.solve ~max_level:2 (Instances.k_test_and_set ~procs:2 ~k:1) with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "(2,1)-TAS must be unsolvable (consensus number 2)");
        checkb "(2,2)-TAS trivial" true
          (match Solvability.solve_at (Instances.k_test_and_set ~procs:2 ~k:2) 0 with
          | Solvability.Solvable _ -> true
          | _ -> false);
        match Solvability.solve ~max_level:1 (Instances.k_test_and_set ~procs:3 ~k:2) with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "(3,2)-TAS must be unsolvable at b<=1");
    Alcotest.test_case "fetch&increment order verdicts" `Quick (fun () ->
        (match Solvability.solve ~max_level:2 (Instances.fetch_and_increment_order ~procs:2) with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "FAI order (2 procs) must be unsolvable");
        checkb "solo trivially solvable" true
          (match Solvability.solve_at (Instances.fetch_and_increment_order ~procs:1) 0 with
          | Solvability.Solvable _ -> true
          | _ -> false));
    Alcotest.test_case "new instances are well-formed" `Quick (fun () ->
        checkb "TAS" true (Task.well_formed (Instances.k_test_and_set ~procs:3 ~k:2) = Ok ());
        checkb "FAI" true (Task.well_formed (Instances.fetch_and_increment_order ~procs:2) = Ok ()));
    Alcotest.test_case "loop agreement: disk solvable, circle not" `Quick (fun () ->
        (match Solvability.solve ~max_level:1 (Instances.loop_agreement_on_disk ()) with
        | Solvability.Solvable { map = m; _ } ->
          checki "one round" 1 m.Solvability.level;
          checkb "verifies" true (Solvability.verify m = Ok ())
        | _ -> Alcotest.fail "disk loop agreement must be solvable");
        match Solvability.solve ~max_level:2 (Instances.loop_agreement_on_circle ()) with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "circle loop agreement must be unsolvable");
    Alcotest.test_case "task products: closure properties" `Slow (fun () ->
        (* product of solvables solvable at max level *)
        (match
           Solvability.solve ~max_level:1
             (Task.product
                (Instances.adaptive_renaming ~procs:2 ~names:3)
                (Instances.approximate_agreement ~procs:2 ~grid:3))
         with
        | Solvability.Solvable { map = m; _ } ->
          checki "level 1" 1 m.Solvability.level;
          checkb "verifies" true (Solvability.verify m = Ok ())
        | _ -> Alcotest.fail "product of solvables must be solvable");
        (* a product with an unsolvable factor is unsolvable *)
        match
          Solvability.solve ~max_level:1
            (Task.product
               (Instances.adaptive_renaming ~procs:2 ~names:3)
               (Instances.binary_consensus ~procs:2))
        with
        | Solvability.Unsolvable_at _ -> ()
        | _ -> Alcotest.fail "product with consensus must be unsolvable");
    Alcotest.test_case "loop agreement rejects broken paths" `Quick (fun () ->
        let cx = Complex.of_facets [ [ 0; 1; 2 ] ] in
        (try
           ignore
             (Instances.loop_agreement cx ~corners:(0, 1, 2) ~paths:([ 0; 1 ], [ 1; 2 ], [ 0; 1 ]));
           Alcotest.fail "expected Invalid_argument (p02 wrong endpoints)"
         with Invalid_argument _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Exact two-process decidability                                       *)
(* ------------------------------------------------------------------ *)

let decidability_unit_tests =
  [
    Alcotest.test_case "all-level impossibilities" `Quick (fun () ->
        List.iter
          (fun (name, t) ->
            checkb name true (Decidability.two_process t = Decidability.Unsolvable))
          [
            ("consensus", Instances.binary_consensus ~procs:2);
            ("renaming 2 names", Instances.adaptive_renaming ~procs:2 ~names:2);
            ("test-and-set", Instances.k_test_and_set ~procs:2 ~k:1);
            ("fetch&inc order", Instances.fetch_and_increment_order ~procs:2);
          ]);
    Alcotest.test_case "exact minimal levels" `Quick (fun () ->
        List.iter
          (fun (name, t, expect) ->
            match Decidability.two_process t with
            | Decidability.Solvable_at b -> checki name expect b
            | Decidability.Unsolvable -> Alcotest.fail (name ^ " should be solvable"))
          [
            ("identity", Instances.id_task ~procs:2, 0);
            ("renaming 3 names", Instances.adaptive_renaming ~procs:2 ~names:3, 1);
            ("approx grid 9", Instances.approximate_agreement ~procs:2 ~grid:9, 2);
            ("approx grid 10", Instances.approximate_agreement ~procs:2 ~grid:10, 3);
          ]);
    Alcotest.test_case "agrees with the bounded search" `Slow (fun () ->
        List.iter
          (fun (name, t) -> checkb name true (Decidability.agrees_with_search t))
          [
            ("consensus", Instances.binary_consensus ~procs:2);
            ("renaming(2,3)", Instances.adaptive_renaming ~procs:2 ~names:3);
            ("TAS(2,1)", Instances.k_test_and_set ~procs:2 ~k:1);
            ("approx grid 3", Instances.approximate_agreement ~procs:2 ~grid:3);
            ("set-consensus(2,2)", Instances.set_consensus ~procs:2 ~k:2);
          ]);
    Alcotest.test_case "rejects non-two-process tasks" `Quick (fun () ->
        (try
           ignore (Decidability.two_process (Instances.id_task ~procs:3));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* BG simulation                                                        *)
(* ------------------------------------------------------------------ *)

let bg_sim_unit_tests =
  [
    Alcotest.test_case "2 simulators x 3 processes, sequential" `Quick (fun () ->
        let spec = Bg_simulation.full_information_spec ~procs:3 ~k:2 in
        let r = Bg_simulation.run ~simulators:2 spec (Runtime.round_robin ()) in
        checkb "all complete" true (Array.for_all (fun b -> b) r.Bg_simulation.completed);
        checkb "history legal" true (Bg_simulation.check spec r = Ok ()));
    Alcotest.test_case "3 simulators x 4 processes, random" `Quick (fun () ->
        let spec = Bg_simulation.full_information_spec ~procs:4 ~k:2 in
        List.iter
          (fun seed ->
            let r = Bg_simulation.run ~simulators:3 spec (Runtime.random ~seed ()) in
            checkb "all complete" true (Array.for_all (fun b -> b) r.Bg_simulation.completed);
            checkb "history legal" true (Bg_simulation.check spec r = Ok ()))
          [ 0; 3; 7; 11 ]);
    Alcotest.test_case "check rejects a forged history" `Quick (fun () ->
        let spec = Bg_simulation.full_information_spec ~procs:2 ~k:1 in
        let r = Bg_simulation.run ~simulators:2 spec (Runtime.round_robin ()) in
        let forged =
          {
            r with
            Bg_simulation.snapshots =
              (* add an incomparable sibling snapshot *)
              (0, 1, [| 1; 0 |]) :: (1, 1, [| 0; 1 |]) :: [];
          }
        in
        checkb "rejected" true (Bg_simulation.check spec forged <> Ok ()));
  ]

let bg_sim_prop_tests =
  [
    qtest ~count:50 "random adversaries: simulated histories legal, all complete"
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let spec = Bg_simulation.full_information_spec ~procs:3 ~k:2 in
        let r = Bg_simulation.run ~simulators:2 spec (Runtime.random ~seed ()) in
        Array.for_all (fun b -> b) r.Bg_simulation.completed
        && Bg_simulation.check spec r = Ok ());
    qtest ~count:40 "one simulator crash blocks at most one simulated process"
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let spec = Bg_simulation.full_information_spec ~procs:3 ~k:2 in
        let r =
          Bg_simulation.run ~simulators:2 spec
            (Runtime.random_with_crashes ~seed ~crash:[ seed mod 2 ] ())
        in
        let completed =
          Array.fold_left (fun a b -> if b then a + 1 else a) 0 r.Bg_simulation.completed
        in
        completed >= Bg_simulation.min_completed ~simulators:2 ~crashed:1 spec
        && Bg_simulation.check spec r = Ok ());
  ]

let () =
  Alcotest.run "wfc_core"
    [
      ("solvability", solvability_unit_tests @ tas_unit_tests);
      ("decidability", decidability_unit_tests);
      ("bg-simulation", bg_sim_unit_tests @ bg_sim_prop_tests);
      ("characterization", characterization_unit_tests @ characterization_prop_tests);
      ("emulation", emulation_unit_tests @ emulation_prop_tests);
      ("approximation", approximation_unit_tests);
      ("convergence", convergence_unit_tests);
      ("bounded", bounded_unit_tests);
      ("sperner", sperner_unit_tests @ sperner_prop_tests);
      ("ncsac", ncsac_unit_tests @ ncsac_prop_tests);
    ]
