(* Tests for the serving layer: wire codecs and framing, the persistent
   verdict store (durability, quarantine), cached solving, and the daemon
   end to end — including deterministic coalescing and backpressure. *)

open Wfc_tasks
open Wfc_core
open Wfc_serve

let checkb = Alcotest.check Alcotest.bool

let checki = Alcotest.check Alcotest.int

let checks = Alcotest.check Alcotest.string

let json_str j = Wfc_obs.Json.to_string j

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let counter_value name = Wfc_obs.Metrics.value (Wfc_obs.Metrics.counter name)

let default_spec =
  {
    Wire.task = "consensus";
    procs = 2;
    param = 2;
    max_level = 1;
    model = "wait-free";
    symmetry = true;
    collapse = true;
  }

(* The record an inline solve of [spec] would produce: the reference every
   daemon answer must match byte-for-byte (modulo timing fields, which
   verdict_json strips). *)
let inline_record (spec : Wire.spec) =
  let t = Instances.by_name ~name:spec.Wire.task ~procs:spec.Wire.procs ~param:spec.Wire.param in
  let outcome, _ = Solvability.solve_cached ~max_level:spec.Wire.max_level t in
  Store.record ~task:t ~spec:(Wire.spec_to_string spec) ~max_level:spec.Wire.max_level
    ~budget:Solvability.default_budget outcome

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                        *)
(* ------------------------------------------------------------------ *)

let roundtrip_request r =
  match Wire.request_of_json (Wire.request_to_json r) with
  | Ok r' -> checks "request" (json_str (Wire.request_to_json r)) (json_str (Wire.request_to_json r'))
  | Error e -> Alcotest.fail e

let roundtrip_response r =
  match Wire.response_of_json (Wire.response_to_json r) with
  | Ok r' ->
    checks "response" (json_str (Wire.response_to_json r)) (json_str (Wire.response_to_json r'))
  | Error e -> Alcotest.fail e

let wire_tests =
  [
    Alcotest.test_case "request codec round-trips" `Quick (fun () ->
        roundtrip_request (Wire.Query { spec = default_spec; req_id = None });
        roundtrip_request (Wire.Query { spec = default_spec; req_id = Some "cli-42-7" });
        roundtrip_request Wire.Ping;
        roundtrip_request Wire.Stats;
        roundtrip_request Wire.Shutdown);
    Alcotest.test_case "response codec round-trips" `Quick (fun () ->
        roundtrip_response Wire.Shed;
        roundtrip_response (Wire.Pong { version = None; uptime_s = None });
        roundtrip_response (Wire.Pong { version = Some "1.0.0"; uptime_s = Some 12.5 });
        roundtrip_response Wire.Bye;
        roundtrip_response (Wire.Failed "boom");
        roundtrip_response
          (Wire.Metrics
             { metrics = Wfc_obs.Json.Obj [ ("x", Wfc_obs.Json.Int 1) ]; server = None });
        roundtrip_response
          (Wire.Metrics
             {
               metrics = Wfc_obs.Json.Obj [ ("x", Wfc_obs.Json.Int 1) ];
               server = Some (Wfc_obs.Json.Obj [ ("uptime_s", Wfc_obs.Json.Float 3.5) ]);
             });
        roundtrip_response
          (Wire.Verdict
             {
               source = Wire.Coalesced;
               record = inline_record default_spec;
               req_id = None;
               timing = None;
             });
        roundtrip_response
          (Wire.Verdict
             {
               source = Wire.Computed;
               record = inline_record default_spec;
               req_id = Some "r1";
               timing =
                 Some
                   {
                     Wire.queue_wait_s = 0.001;
                     solve_s = 0.25;
                     store_s = 0.002;
                     total_s = 0.253;
                   };
             }));
    Alcotest.test_case "pre-telemetry frames still decode (absent fields are None)" `Quick
      (fun () ->
        (* a query as an old client sends it: no req_id *)
        (match
           Wire.request_of_json
             (Wfc_obs.Json.Obj
                [
                  ("op", Wfc_obs.Json.String "query");
                  ("task", Wfc_obs.Json.String "consensus");
                  ("procs", Wfc_obs.Json.Int 2);
                  ("param", Wfc_obs.Json.Int 2);
                  ("max_level", Wfc_obs.Json.Int 1);
                ])
         with
        | Ok (Wire.Query { spec; req_id = None }) ->
          checks "model defaults" "wait-free" spec.Wire.model
        | _ -> Alcotest.fail "old-style query should decode with req_id = None");
        (* a pong as an old daemon sends it: bare status *)
        (match
           Wire.response_of_json (Wfc_obs.Json.Obj [ ("status", Wfc_obs.Json.String "pong") ])
         with
        | Ok (Wire.Pong { version = None; uptime_s = None }) -> ()
        | _ -> Alcotest.fail "old-style pong should decode with no payload");
        (* an ok response as an old daemon sends it: no req_id, no timing *)
        match
          Wire.response_of_json
            (Wfc_obs.Json.Obj
               [
                 ("status", Wfc_obs.Json.String "ok");
                 ("source", Wfc_obs.Json.String "computed");
                 ("record", Store.record_to_json (inline_record default_spec));
               ])
        with
        | Ok (Wire.Verdict { req_id = None; timing = None; source = Wire.Computed; _ }) -> ()
        | _ -> Alcotest.fail "old-style verdict should decode with absent telemetry");
    Alcotest.test_case "malformed messages are rejected" `Quick (fun () ->
        checkb "bad op" true
          (Result.is_error (Wire.request_of_json (Wfc_obs.Json.Obj [ ("op", Wfc_obs.Json.String "no") ])));
        checkb "not an object" true (Result.is_error (Wire.request_of_json (Wfc_obs.Json.Int 3)));
        checkb "bad status" true
          (Result.is_error
             (Wire.response_of_json (Wfc_obs.Json.Obj [ ("status", Wfc_obs.Json.String "?") ]))));
    Alcotest.test_case "framing round-trips over a socketpair" `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let j = Wire.request_to_json (Wire.Query { spec = default_spec; req_id = None }) in
        Wire.write_frame a j;
        Wire.write_frame a (Wire.request_to_json Wire.Ping);
        (match Wire.read_frame b with
        | Ok j' -> checks "first frame" (json_str j) (json_str j')
        | Error e -> Alcotest.fail e);
        (match Wire.read_frame b with
        | Ok j' -> checks "second frame" (json_str (Wire.request_to_json Wire.Ping)) (json_str j')
        | Error e -> Alcotest.fail e);
        Unix.close a;
        (* EOF is a clean error, not an exception *)
        checkb "eof" true (Result.is_error (Wire.read_frame b));
        Unix.close b);
    Alcotest.test_case "oversized and truncated frames are rejected" `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let prefix = Bytes.create 4 in
        Bytes.set_int32_be prefix 0 (Int32.of_int (Wire.max_frame + 1));
        ignore (Unix.write a prefix 0 4);
        checkb "oversized" true (Result.is_error (Wire.read_frame b));
        Unix.close a;
        Unix.close b;
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Bytes.set_int32_be prefix 0 64l;
        ignore (Unix.write a prefix 0 4);
        ignore (Unix.write a (Bytes.of_string "{\"op\"") 0 5);
        Unix.close a;
        (* length said 64 bytes, the peer died after 5: a short read *)
        checkb "truncated" true (Result.is_error (Wire.read_frame b));
        Unix.close b);
  ]

(* ------------------------------------------------------------------ *)
(* Store                                                                *)
(* ------------------------------------------------------------------ *)

let store_tests =
  [
    Alcotest.test_case "put then find round-trips" `Quick (fun () ->
        let st = Store.open_store (temp_dir "wfc-store") in
        let r = inline_record default_spec in
        Store.put st r;
        (match Store.find st ~digest:r.Store.digest ~model:"wait-free" ~max_level:1 ~budget:r.Store.budget with
        | None -> Alcotest.fail "record not found after put"
        | Some r' ->
          checks "verdict bytes survive the disk" (json_str (Store.verdict_json r))
            (json_str (Store.verdict_json r')));
        checkb "record validates" true
          (Store.validate_json (Store.record_to_json r) = Ok ()));
    Alcotest.test_case "budget mismatch is a miss, not a wrong answer" `Quick (fun () ->
        let st = Store.open_store (temp_dir "wfc-store") in
        let r = inline_record default_spec in
        Store.put st r;
        checkb "other budget misses" true
          (Store.find st ~digest:r.Store.digest ~model:"wait-free" ~max_level:1 ~budget:(r.Store.budget + 1) = None);
        (* the record is kept: the original budget still hits *)
        checkb "original budget still hits" true
          (Store.find st ~digest:r.Store.digest ~model:"wait-free" ~max_level:1 ~budget:r.Store.budget <> None));
    Alcotest.test_case "levels are separate questions" `Quick (fun () ->
        let st = Store.open_store (temp_dir "wfc-store") in
        let r = inline_record default_spec in
        Store.put st r;
        checkb "level 2 misses" true
          (Store.find st ~digest:r.Store.digest ~model:"wait-free" ~max_level:2 ~budget:r.Store.budget = None));
    Alcotest.test_case "torn record is quarantined on read" `Quick (fun () ->
        let dir = temp_dir "wfc-store" in
        let st = Store.open_store dir in
        let r = inline_record default_spec in
        Store.put st r;
        let path = Store.path_of st ~digest:r.Store.digest ~model:"wait-free" ~max_level:1 in
        (* truncate mid-object, as a crash during a non-atomic write would *)
        let oc = open_out path in
        output_string oc "{\"schema\": \"wfc.store.v1\", \"dig";
        close_out oc;
        (* the handle that wrote it still answers from its cache tier —
           damage on disk cannot reach a warm answer *)
        checkb "warm cache still serves" true
          (Store.find st ~digest:r.Store.digest ~model:"wait-free" ~max_level:1 ~budget:r.Store.budget <> None);
        (* a cold process (fresh handle) must hit the disk: miss + quarantine *)
        let cold = Store.open_store dir in
        checkb "torn record misses" true
          (Store.find cold ~digest:r.Store.digest ~model:"wait-free" ~max_level:1 ~budget:r.Store.budget = None);
        checkb "file moved out of the way" false (Sys.file_exists path);
        let report = Store.verify cold in
        checki "quarantined" 1 report.Store.quarantined;
        checki "no in-place corruption left" 0 (List.length report.Store.corrupt);
        (* the manifest stayed consistent: the quarantined record was
           de-indexed, so nothing live is missing its file *)
        checki "no live manifest entry without a file" 0 report.Store.missing);
    Alcotest.test_case "verify reports in-place damage without mutating" `Quick (fun () ->
        let dir = temp_dir "wfc-store" in
        let st = Store.open_store dir in
        let r = inline_record default_spec in
        Store.put st r;
        let bad = Filename.concat dir "not-a-record.json" in
        let oc = open_out bad in
        output_string oc "][";
        close_out oc;
        let report = Store.verify st in
        checki "valid" 1 report.Store.valid;
        checki "corrupt" 1 (List.length report.Store.corrupt);
        checkb "verify left the file in place" true (Sys.file_exists bad));
    Alcotest.test_case "misfiled record is caught by verify" `Quick (fun () ->
        let dir = temp_dir "wfc-store" in
        let st = Store.open_store dir in
        let r = inline_record default_spec in
        let misfiled = Filename.concat dir (String.make 32 'f' ^ ".L1.json") in
        let oc = open_out misfiled in
        output_string oc (json_str (Store.record_to_json r));
        close_out oc;
        let report = Store.verify st in
        checki "mismatched" 1 (List.length report.Store.mismatched));
    Alcotest.test_case "gc removes quarantine and stray tmp files only" `Quick (fun () ->
        let dir = temp_dir "wfc-store" in
        let st = Store.open_store dir in
        let r = inline_record default_spec in
        Store.put st r;
        (* a crash between open and rename leaves a .wtmp — named so that no
           scan can mistake it for a record, even though it sits beside them *)
        let oc = open_out (Filename.concat dir "interrupted.json.12345.0.wtmp") in
        output_string oc "{";
        close_out oc;
        let oc = open_out (Filename.concat (Filename.concat dir "quarantine") "old.json") in
        output_string oc "][";
        close_out oc;
        let report = Store.verify st in
        checki "stray tmp seen" 1 report.Store.stray_tmp;
        checki "quarantine seen" 1 report.Store.quarantined;
        let removed = ref 0 in
        Store.gc st ~removed;
        checki "two files removed" 2 !removed;
        let report = Store.verify st in
        checki "clean" 0 (report.Store.stray_tmp + report.Store.quarantined);
        checkb "the valid record survived gc" true
          (Store.find st ~digest:r.Store.digest ~model:"wait-free" ~max_level:1 ~budget:r.Store.budget <> None));
  ]

(* ------------------------------------------------------------------ *)
(* Cached solving                                                       *)
(* ------------------------------------------------------------------ *)

let cached_tests =
  [
    Alcotest.test_case "solve_cached commits on miss and hits after" `Quick (fun () ->
        let st = Store.open_store (temp_dir "wfc-store") in
        let t = Instances.binary_consensus ~procs:2 in
        let digest = Task.digest t in
        let budget = Solvability.default_budget in
        let hook =
          {
            Solvability.lookup =
              (fun () ->
                Option.map (fun r -> r.Store.outcome) (Store.find st ~digest ~model:"wait-free" ~max_level:1 ~budget));
            commit =
              (fun o ->
                Store.put st
                  (Store.record ~task:t ~spec:"consensus(procs=2,param=2)" ~max_level:1 ~budget o));
          }
        in
        let o1, how1 = Solvability.solve_cached ~store:hook ~max_level:1 t in
        checkb "first call computes" true (how1 = `Computed);
        let o2, how2 = Solvability.solve_cached ~store:hook ~max_level:1 t in
        checkb "second call hits" true (how2 = `Hit);
        checks "same verdict" o1.Solvability.o_verdict o2.Solvability.o_verdict;
        checki "same nodes" o1.Solvability.o_nodes o2.Solvability.o_nodes);
    Alcotest.test_case "exhausted outcomes are never persisted" `Quick (fun () ->
        let st = Store.open_store (temp_dir "wfc-store") in
        let t = Instances.binary_consensus ~procs:2 in
        let digest = Task.digest t in
        let committed = ref 0 in
        let hook =
          {
            Solvability.lookup =
              (fun () ->
                Option.map (fun r -> r.Store.outcome)
                  (Store.find st ~digest ~model:"wait-free" ~max_level:1 ~budget:1));
            commit = (fun _ -> incr committed);
          }
        in
        let o, how = Solvability.solve_cached
            ~opts:(Solvability.options ~budget:1 ())
            ~store:hook ~max_level:1 t in
        checkb "computed" true (how = `Computed);
        checks "exhausted" "exhausted" o.Solvability.o_verdict;
        checki "nothing committed" 0 !committed);
  ]

(* ------------------------------------------------------------------ *)
(* Daemon end to end                                                    *)
(* ------------------------------------------------------------------ *)

let temp_socket () =
  let path = Filename.temp_file "wfc" ".sock" in
  Sys.remove path;
  path

(* Start a daemon on fresh paths, run [f] against it, then shut it down
   through the protocol and join the daemon thread. *)
let with_daemon ?queue_capacity ?solvers ?gate f =
  let socket = temp_socket () in
  let store_dir = temp_dir "wfc-daemon-store" in
  let ready = Atomic.make false in
  let cfg =
    {
      (Daemon.config ?queue_capacity ?solvers ~socket ~store_dir ()) with
      Daemon.on_ready = Some (fun () -> Atomic.set ready true);
      gate;
    }
  in
  let daemon = Thread.create Daemon.run cfg in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  let finally () =
    (match Client.connect ~socket with
    | Ok c ->
      ignore (Client.shutdown c);
      Client.close c
    | Error _ -> ());
    Thread.join daemon
  in
  Fun.protect ~finally (fun () -> f ~socket ~store_dir)

let connect_exn socket =
  match Client.connect ~socket with Ok c -> c | Error e -> Alcotest.fail e

let query_exn c spec =
  match Client.query c spec with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let daemon_tests =
  [
    Alcotest.test_case "cold query computes, warm query hits the store" `Quick (fun () ->
        with_daemon (fun ~socket ~store_dir:_ ->
            let c = connect_exn socket in
            checkb "ping" true (Client.ping c);
            let reference = json_str (Store.verdict_json (inline_record default_spec)) in
            (match query_exn c default_spec with
            | Wire.Verdict { source = Wire.Computed; record; req_id; timing } ->
              checks "cold equals inline solve" reference (json_str (Store.verdict_json record));
              checkb "daemon assigned a req_id" true (req_id <> None);
              (match timing with
              | None -> Alcotest.fail "expected a timing breakdown"
              | Some t ->
                checkb "total covers the stages" true
                  (t.Wire.total_s >= t.Wire.solve_s
                  && t.Wire.total_s >= 0.
                  && t.Wire.queue_wait_s >= 0.
                  && t.Wire.store_s >= 0.);
                checkb "a cold query actually solved" true (t.Wire.solve_s > 0.))
            | _ -> Alcotest.fail "expected a computed verdict");
            (match query_exn c default_spec with
            | Wire.Verdict { source = Wire.From_store; record; timing; _ } ->
              checks "warm equals inline solve" reference (json_str (Store.verdict_json record));
              (match timing with
              | None -> Alcotest.fail "expected a timing breakdown"
              | Some t ->
                (* a store hit never waits in the solve queue *)
                checkb "no queue wait on a hit" true (t.Wire.queue_wait_s = 0.);
                checkb "no solve on a hit" true (t.Wire.solve_s = 0.))
            | _ -> Alcotest.fail "expected a store hit");
            Client.close c));
    Alcotest.test_case "client req_id is echoed; ping and stats carry telemetry" `Quick
      (fun () ->
        with_daemon (fun ~socket ~store_dir:_ ->
            let c = connect_exn socket in
            (match Client.ping_info c with
            | Ok (Some v, Some u) ->
              checks "daemon version" Daemon.version v;
              checkb "uptime is sane" true (u >= 0.)
            | Ok _ -> Alcotest.fail "expected version and uptime in pong"
            | Error e -> Alcotest.fail e);
            (match Client.query ~req_id:"test-echo-1" c default_spec with
            | Ok (Wire.Verdict { req_id = Some id; _ }) -> checks "echoed" "test-echo-1" id
            | Ok _ -> Alcotest.fail "expected the verdict to echo the req_id"
            | Error e -> Alcotest.fail e);
            (match Client.stats c with
            | Error e -> Alcotest.fail e
            | Ok (metrics, server) -> (
              checkb "metrics has counters" true
                (Wfc_obs.Json.member "counters" metrics <> None);
              match server with
              | None -> Alcotest.fail "expected a server block"
              | Some s ->
                (match Wfc_obs.Json.member "version" s with
                | Some (Wfc_obs.Json.String v) -> checks "server version" Daemon.version v
                | _ -> Alcotest.fail "server block without version");
                (match Wfc_obs.Json.member "workers" s with
                | Some (Wfc_obs.Json.Arr ws) -> checki "one entry per worker" 2 (List.length ws)
                | _ -> Alcotest.fail "server block without workers");
                (match Wfc_obs.Json.member "queue_depth" s with
                | Some (Wfc_obs.Json.Int d) -> checkb "queue drained" true (d = 0)
                | _ -> Alcotest.fail "server block without queue_depth")));
            Client.close c));
    Alcotest.test_case "the event log records the request lifecycle" `Quick (fun () ->
        let log_file = Filename.temp_file "wfc-daemon" ".log" in
        let socket = temp_socket () in
        let store_dir = temp_dir "wfc-daemon-store" in
        let ready = Atomic.make false in
        let cfg =
          {
            (Daemon.config ~log:log_file ~log_level:Wfc_obs.Log.Debug ~slow_ms:0.
               ~socket ~store_dir ())
            with
            Daemon.on_ready = Some (fun () -> Atomic.set ready true);
          }
        in
        let daemon = Thread.create Daemon.run cfg in
        while not (Atomic.get ready) do
          Thread.yield ()
        done;
        let c = connect_exn socket in
        (match Client.query ~req_id:"log-test-1" c default_spec with
        | Ok (Wire.Verdict _) -> ()
        | _ -> Alcotest.fail "expected a verdict");
        Client.close c;
        (match Client.connect ~socket with
        | Ok c ->
          ignore (Client.shutdown c);
          Client.close c
        | Error e -> Alcotest.fail e);
        Thread.join daemon;
        let contents = In_channel.with_open_bin log_file In_channel.input_all in
        (match Wfc_obs.Log.validate contents with
        | Ok n -> checkb "several events" true (n >= 4)
        | Error e -> Alcotest.fail ("log does not validate: " ^ e));
        let has needle =
          let nl = String.length needle and cl = String.length contents in
          let rec at i = i + nl <= cl && (String.sub contents i nl = needle || at (i + 1)) in
          at 0
        in
        List.iter
          (fun event ->
            checkb (event ^ " logged") true (has (Printf.sprintf "\"event\":\"%s\"" event)))
          [ "serve.start"; "query"; "slow_query"; "serve.stop" ];
        checkb "req_id stamped" true (has "\"req_id\":\"log-test-1\"");
        Sys.remove log_file);
    Alcotest.test_case "unknown task names come back as errors" `Quick (fun () ->
        with_daemon (fun ~socket ~store_dir:_ ->
            let c = connect_exn socket in
            (match query_exn c { default_spec with Wire.task = "no-such-task" } with
            | Wire.Failed _ -> ()
            | _ -> Alcotest.fail "expected an error response");
            Client.close c));
    Alcotest.test_case "concurrent identical queries coalesce" `Quick (fun () ->
        (* The gate holds the solver inside the first job until we have seen
           the twin query coalesce, making the race deterministic. *)
        let gate_m = Mutex.create () in
        let gate_cv = Condition.create () in
        let gate_open = ref false in
        let gate _digest =
          Mutex.lock gate_m;
          while not !gate_open do
            Condition.wait gate_cv gate_m
          done;
          Mutex.unlock gate_m
        in
        let coalesced0 = counter_value "serve.coalesced" in
        let misses0 = counter_value "serve.misses" in
        with_daemon ~gate (fun ~socket ~store_dir:_ ->
            let reference = json_str (Store.verdict_json (inline_record default_spec)) in
            let ask () =
              let c = connect_exn socket in
              let r = query_exn c default_spec in
              Client.close c;
              r
            in
            let ra = ref None and rb = ref None in
            let a = Thread.create (fun () -> ra := Some (ask ())) () in
            let b = Thread.create (fun () -> rb := Some (ask ())) () in
            (* both questions are in: one admitted as the miss, one attached *)
            while counter_value "serve.coalesced" - coalesced0 < 1 do
              Thread.yield ()
            done;
            Mutex.lock gate_m;
            gate_open := true;
            Condition.broadcast gate_cv;
            Mutex.unlock gate_m;
            Thread.join a;
            Thread.join b;
            let results = [ Option.get !ra; Option.get !rb ] in
            let sources =
              List.map
                (function
                  | Wire.Verdict { source; record; _ } ->
                    checks "coalesced equals inline solve" reference
                      (json_str (Store.verdict_json record));
                    Wire.source_name source
                  | _ -> Alcotest.fail "expected verdicts")
                results
            in
            checkb "one computed, one coalesced" true
              (List.sort compare sources = [ "coalesced"; "computed" ]);
            checki "exactly one solve" 1 (counter_value "serve.misses" - misses0);
            checki "exactly one coalesce" 1 (counter_value "serve.coalesced" - coalesced0)));
    Alcotest.test_case "a full queue sheds instead of buffering" `Quick (fun () ->
        let shed0 = counter_value "serve.shed" in
        with_daemon ~queue_capacity:0 (fun ~socket ~store_dir ->
            let c = connect_exn socket in
            (match query_exn c default_spec with
            | Wire.Shed -> ()
            | _ -> Alcotest.fail "expected shed with a zero-capacity queue");
            checki "shed counted" 1 (counter_value "serve.shed" - shed0);
            (* shedding is about work, not answers: a store hit still serves *)
            let st = Store.open_store store_dir in
            Store.put st (inline_record default_spec);
            (match query_exn c default_spec with
            | Wire.Verdict { source = Wire.From_store; _ } -> ()
            | _ -> Alcotest.fail "expected a store hit despite the full queue");
            Client.close c));
    Alcotest.test_case "two distinct cold queries are solved concurrently" `Quick (fun () ->
        (* Both workers must sit inside their computations at the same
           instant: the gate admits nobody until it has seen two distinct
           digests enter, so if the scheduler serialized distinct questions
           behind one worker the test would time out here. *)
        let spec_b =
          {
            Wire.task = "set-consensus";
            procs = 3;
            param = 2;
            max_level = 1;
            model = "wait-free";
            symmetry = true;
            collapse = true;
          }
        in
        let seen = Hashtbl.create 4 in
        let seen_m = Mutex.create () in
        let both_in = Atomic.make false in
        let gate digest =
          Mutex.lock seen_m;
          Hashtbl.replace seen digest ();
          if Hashtbl.length seen >= 2 then Atomic.set both_in true;
          Mutex.unlock seen_m;
          let deadline = Unix.gettimeofday () +. 10.0 in
          while (not (Atomic.get both_in)) && Unix.gettimeofday () < deadline do
            Thread.yield ()
          done
        in
        with_daemon ~solvers:2 ~gate (fun ~socket ~store_dir:_ ->
            let ask spec out =
              let c = connect_exn socket in
              out := Some (query_exn c spec);
              Client.close c
            in
            let ra = ref None and rb = ref None in
            let a = Thread.create (fun () -> ask default_spec ra) () in
            let b = Thread.create (fun () -> ask spec_b rb) () in
            Thread.join a;
            Thread.join b;
            checkb "both questions were in compute simultaneously" true
              (Atomic.get both_in);
            let check_computed name spec r =
              match r with
              | Some (Wire.Verdict { source = Wire.Computed; record; _ }) ->
                checks (name ^ " equals inline solve")
                  (json_str (Store.verdict_json (inline_record spec)))
                  (json_str (Store.verdict_json record))
              | _ -> Alcotest.fail ("expected a computed verdict for " ^ name)
            in
            check_computed "consensus" default_spec !ra;
            check_computed "set-consensus" spec_b !rb));
    Alcotest.test_case "shutdown drains every in-flight solve job" `Quick (fun () ->
        (* Regression: the old daemon joined only one solver thread on
           shutdown, so a second in-flight job could be abandoned and its
           client hung. Hold BOTH workers mid-computation, request
           shutdown, then release: both clients must still get verdicts. *)
        let spec_b =
          {
            Wire.task = "set-consensus";
            procs = 3;
            param = 2;
            max_level = 1;
            model = "wait-free";
            symmetry = true;
            collapse = true;
          }
        in
        let seen = Hashtbl.create 4 in
        let seen_m = Mutex.create () in
        let both_in = Atomic.make false in
        let released = Atomic.make false in
        let gate digest =
          Mutex.lock seen_m;
          Hashtbl.replace seen digest ();
          if Hashtbl.length seen >= 2 then Atomic.set both_in true;
          Mutex.unlock seen_m;
          let deadline = Unix.gettimeofday () +. 10.0 in
          while (not (Atomic.get released)) && Unix.gettimeofday () < deadline do
            Thread.yield ()
          done
        in
        with_daemon ~solvers:2 ~gate (fun ~socket ~store_dir:_ ->
            let ask spec out =
              let c = connect_exn socket in
              out := Some (query_exn c spec);
              Client.close c
            in
            let ra = ref None and rb = ref None in
            let a = Thread.create (fun () -> ask default_spec ra) () in
            let b = Thread.create (fun () -> ask spec_b rb) () in
            (* wait until both workers hold a job, then stop the daemon *)
            let deadline = Unix.gettimeofday () +. 10.0 in
            while (not (Atomic.get both_in)) && Unix.gettimeofday () < deadline do
              Thread.yield ()
            done;
            checkb "both jobs in flight before shutdown" true (Atomic.get both_in);
            (match Client.connect ~socket with
            | Ok c ->
              ignore (Client.shutdown c);
              Client.close c
            | Error e -> Alcotest.fail e);
            Atomic.set released true;
            Thread.join a;
            Thread.join b;
            let got name spec r =
              match r with
              | Some (Wire.Verdict { record; _ }) ->
                checks (name ^ " verdict survives shutdown")
                  (json_str (Store.verdict_json (inline_record spec)))
                  (json_str (Store.verdict_json record))
              | _ -> Alcotest.fail ("client " ^ name ^ " was abandoned by shutdown")
            in
            got "consensus" default_spec !ra;
            got "set-consensus" spec_b !rb));
    Alcotest.test_case "daemon answers persist for later inline queries" `Quick (fun () ->
        let captured = ref None in
        let dir =
          with_daemon (fun ~socket ~store_dir ->
              let c = connect_exn socket in
              (match query_exn c default_spec with
              | Wire.Verdict { record; _ } -> captured := Some record
              | _ -> Alcotest.fail "expected a verdict");
              Client.close c;
              store_dir)
        in
        (* daemon is gone; the record it filed outlives it *)
        let st = Store.open_store dir in
        let r = Option.get !captured in
        match Store.find st ~digest:r.Store.digest ~model:"wait-free" ~max_level:1 ~budget:r.Store.budget with
        | Some r' ->
          checks "same bytes after daemon death" (json_str (Store.verdict_json r))
            (json_str (Store.verdict_json r'))
        | None -> Alcotest.fail "record did not survive the daemon");
  ]

let () =
  Alcotest.run "wfc_serve"
    [
      ("wire", wire_tests);
      ("store", store_tests);
      ("cached", cached_tests);
      ("daemon", daemon_tests);
    ]
