(* Tier-1 tests for the Wfc_obs observability layer: counter monotonicity,
   reset semantics, span-tree well-formedness, JSON round-tripping, the
   report schema validator, and the determinism guard tying identical
   seeded solver runs to identical counter deltas. *)

open Wfc_obs

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_basics () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter.basics" in
  checki "fresh counter" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 41;
  checki "incr + add" 42 (Metrics.value c);
  checks "name" "test.counter.basics" (Metrics.counter_name c);
  let c' = Metrics.counter "test.counter.basics" in
  Metrics.incr c';
  checki "same name, same cell" 43 (Metrics.value c)

let test_counter_monotone () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter.monotone" in
  Metrics.add c 0;
  checki "add 0 is allowed" 0 (Metrics.value c);
  Alcotest.check_raises "negative delta rejected"
    (Invalid_argument "Metrics.add test.counter.monotone: negative delta -3")
    (fun () -> Metrics.add c (-3))

let test_reset_keeps_handles () =
  Metrics.reset ();
  let c = Metrics.counter "test.reset.counter" in
  let h = Metrics.histogram "test.reset.histo" in
  Metrics.add c 7;
  Metrics.observe h 1.5;
  Metrics.with_span "test.reset.span" (fun () -> ());
  Metrics.reset ();
  checki "counter zeroed" 0 (Metrics.value c);
  checkb "histograms cleared" true (Metrics.histograms_now () = []);
  checkb "spans cleared" true (Metrics.spans_now () = []);
  (* the old handle still feeds the registry after reset *)
  Metrics.incr c;
  checkb "handle valid after reset" true
    (List.assoc "test.reset.counter" (Metrics.counters_now ()) = 1)

let test_histogram_stats () =
  Metrics.reset ();
  let h = Metrics.histogram "test.histo.stats" in
  List.iter (Metrics.observe h) [ 2.0; 8.0; 5.0 ];
  match List.assoc_opt "test.histo.stats" (Metrics.histograms_now ()) with
  | None -> Alcotest.fail "histogram missing from read-out"
  | Some (s : Metrics.histo_stats) ->
    checki "count" 3 s.count;
    checkb "sum" true (abs_float (s.sum -. 15.0) < 1e-9);
    checkb "min" true (s.min = 2.0);
    checkb "max" true (s.max = 8.0)

let test_span_nesting () =
  Metrics.reset ();
  checki "top level" 0 (Metrics.span_depth ());
  Metrics.with_span "outer" (fun () ->
      checki "inside outer" 1 (Metrics.span_depth ());
      Metrics.with_span "inner" (fun () ->
          checki "inside inner" 2 (Metrics.span_depth ()));
      Metrics.with_span "inner" (fun () -> ()));
  checki "back to top" 0 (Metrics.span_depth ());
  (match Metrics.spans_now () with
  | [ outer ] ->
    checks "outer name" "outer" outer.Metrics.span_name;
    checki "outer calls" 1 outer.Metrics.calls;
    (match outer.Metrics.children with
    | [ inner ] ->
      checks "inner name" "inner" inner.Metrics.span_name;
      checki "same-named siblings accumulate" 2 inner.Metrics.calls
    | l -> Alcotest.failf "expected one child span, got %d" (List.length l))
  | l -> Alcotest.failf "expected one root span, got %d" (List.length l));
  (* exception safety: the stack must unwind *)
  (try Metrics.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  checki "stack unwound after exception" 0 (Metrics.span_depth ())

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)

let test_snapshot_diff () =
  Metrics.reset ();
  let c = Metrics.counter "test.snap.diff" in
  Metrics.add c 10;
  let before = Snapshot.take () in
  Metrics.add c 32;
  let after = Snapshot.take () in
  let d = Snapshot.diff before after in
  checkb "delta isolates the region" true
    (Snapshot.counter_value d "test.snap.diff" = Some 32);
  checkb "take does not perturb" true
    (Snapshot.counter_value after "test.snap.diff" = Some 42)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_snapshot_text () =
  Metrics.reset ();
  checks "empty snapshot" "(no metrics recorded)\n" (Snapshot.to_text (Snapshot.take ()));
  let c = Metrics.counter "test.snap.text" in
  Metrics.incr c;
  let txt = Snapshot.to_text (Snapshot.take ()) in
  checkb "mentions the counter" true (contains ~needle:"test.snap.text" txt);
  checkb "has a counters section" true (contains ~needle:"counters" txt)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("zeta", Json.Arr [ Json.Int 1; Json.Float 0.5; Json.Null; Json.Bool true ]);
        ("alpha", Json.String "esc \"quotes\" and \\ back\nslash");
        ("nested", Json.Obj [ ("k", Json.Int (-7)) ]);
      ]
  in
  let s = Json.to_string j in
  (match Json.parse s with
  | Ok j' -> checkb "parse (to_string j) = j" true (Json.equal j j')
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e);
  (* canonical: emitting twice gives identical bytes, key order irrelevant *)
  let j_reordered =
    Json.Obj
      [
        ("nested", Json.Obj [ ("k", Json.Int (-7)) ]);
        ("alpha", Json.String "esc \"quotes\" and \\ back\nslash");
        ("zeta", Json.Arr [ Json.Int 1; Json.Float 0.5; Json.Null; Json.Bool true ]);
      ]
  in
  checks "canonical bytes, key-order independent" s (Json.to_string j_reordered);
  checkb "equal is key-order insensitive" true (Json.equal j j_reordered)

let test_json_parse_errors () =
  checkb "garbage rejected" true (Result.is_error (Json.parse "{nope}"));
  checkb "trailing junk rejected" true (Result.is_error (Json.parse "{} x"));
  checkb "unterminated string rejected" true (Result.is_error (Json.parse "\"abc"))

let test_json_to_line () =
  let j =
    Json.Obj
      [
        ("zeta", Json.Arr [ Json.Int 1; Json.Float 0.5 ]);
        ("alpha", Json.String "a\nb");
      ]
  in
  let line = Json.to_line j in
  checks "compact canonical form" "{\"alpha\":\"a\\nb\",\"zeta\":[1,0.500000]}" line;
  checkb "no raw newline in the line" true
    (not (String.exists (fun c -> c = '\n') line));
  (* to_line and to_string are the same canonical value, different layout *)
  match (Json.parse line, Json.parse (Json.to_string j)) with
  | Ok a, Ok b -> checkb "same tree as to_string" true (Json.equal a b)
  | _ -> Alcotest.fail "to_line output did not parse back"

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_log_lines_and_levels () =
  let path = Filename.temp_file "wfc-log" ".log" in
  Sys.remove path;
  let log = Log.open_log ~level:Log.Info path in
  checkb "debug gated off" false (Log.enabled log Log.Debug);
  checkb "warn enabled" true (Log.enabled log Log.Warn);
  Log.event log Log.Debug "invisible" [];
  Log.event log Log.Info "query" [ ("req_id", Json.String "r1"); ("nodes", Json.Int 42) ];
  (* envelope fields win over payload: a lying "level" must not survive *)
  Log.event log Log.Warn "shed" [ ("level", Json.String "debug") ];
  Log.close log;
  Log.event log Log.Error "after-close" [];
  let contents = read_file path in
  (match Log.validate contents with
  | Ok n -> checki "gated + closed events not written" 2 n
  | Error e -> Alcotest.failf "log does not validate: %s" e);
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
  in
  (match lines with
  | [ l1; l2 ] ->
    checkb "first line is the query" true (contains ~needle:"\"event\":\"query\"" l1);
    checkb "payload kept" true (contains ~needle:"\"req_id\":\"r1\"" l1);
    checkb "envelope level wins" true (contains ~needle:"\"level\":\"warn\"" l2);
    List.iter
      (fun l ->
        match Json.parse l with
        | Ok j -> checkb "line validates" true (Log.validate_line j = Ok ())
        | Error e -> Alcotest.failf "line is not JSON: %s" e)
      [ l1; l2 ]
  | l -> Alcotest.failf "expected 2 lines, got %d" (List.length l));
  Sys.remove path

let test_log_validate_rejects () =
  checkb "empty log rejected" true (Result.is_error (Log.validate ""));
  checkb "non-JSON line rejected" true (Result.is_error (Log.validate "not json\n"));
  checkb "missing envelope rejected" true (Result.is_error (Log.validate "{\"a\":1}\n"));
  checkb "unknown level rejected" true
    (Result.is_error
       (Log.validate
          "{\"schema\":\"wfc.log.v1\",\"ts\":1.0,\"level\":\"loud\",\"event\":\"x\"}\n"));
  (* the error names the offending line *)
  let good = "{\"event\":\"x\",\"level\":\"info\",\"schema\":\"wfc.log.v1\",\"ts\":1.000000}" in
  (match Log.validate (good ^ "\n[]\n") with
  | Error e -> checkb "line number reported" true (contains ~needle:"line 2" e)
  | Ok _ -> Alcotest.fail "bad second line accepted");
  match Log.validate (good ^ "\n\n" ^ good ^ "\n") with
  | Ok n -> checki "blank lines skipped" 2 n
  | Error e -> Alcotest.failf "blank-tolerant validation failed: %s" e

(* ------------------------------------------------------------------ *)
(* Flight recorder boundaries                                          *)

let test_flight_exact_capacity () =
  let cap = 8 in
  let r = Flight.create ~capacity:cap in
  (* fill to EXACTLY capacity: nothing may be dropped yet *)
  for i = 1 to cap do
    Flight.push r i
  done;
  checki "length = capacity" cap (Flight.length r);
  checki "nothing dropped at exact capacity" 0 (Flight.dropped r);
  checkb "contents oldest-first" true (Flight.contents r = [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  (* one past capacity: the oldest element goes, exactly one drop *)
  Flight.push r 9;
  checki "length pinned at capacity" cap (Flight.length r);
  checki "one drop" 1 (Flight.dropped r);
  checkb "oldest evicted first" true (Flight.contents r = [ 2; 3; 4; 5; 6; 7; 8; 9 ]);
  (* march through several internal-truncation boundaries (the list-backed
     ring compacts at 2*capacity): order and bounds must hold throughout *)
  for i = 10 to 5 * cap do
    Flight.push r i
  done;
  checki "length still capacity" cap (Flight.length r);
  checki "drops account for every eviction" (4 * cap) (Flight.dropped r);
  checkb "retained suffix is the last capacity pushes" true
    (Flight.contents r = List.init cap (fun i -> (4 * cap) + 1 + i));
  Flight.clear r;
  checki "clear empties" 0 (Flight.length r);
  checki "clear resets drops" 0 (Flight.dropped r)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let test_report_schema () =
  Metrics.reset ();
  let c = Metrics.counter "test.report.counter" in
  Metrics.add c 5;
  let scenarios =
    [
      Report.scenario ~nodes:12 ~verdict:"solvable" "alpha" 0.25;
      Report.scenario "beta" 0.5;
    ]
  in
  let j = Report.to_json ~snapshot:(Snapshot.take ()) scenarios in
  checkb "schema tag" true (Json.member "schema" j = Some (Json.String Report.schema_version));
  checkb "validates" true (Result.is_ok (Report.validate j));
  checkb "verdict constraint" true
    (Result.is_ok (Report.validate ~expect_verdict:"solvable" ~min_nodes:1 j));
  checkb "named scenario" true
    (Result.is_ok
       (Report.validate ~scenario_name:"alpha" ~expect_verdict:"solvable" ~min_nodes:12 j));
  checkb "wrong verdict fails" true
    (Result.is_error (Report.validate ~expect_verdict:"unsolvable" j));
  checkb "min_nodes too high fails" true
    (Result.is_error (Report.validate ~scenario_name:"alpha" ~min_nodes:13 j));
  checkb "missing scenario fails" true
    (Result.is_error (Report.validate ~scenario_name:"gamma" j));
  (* emitted bytes parse back to an equal tree *)
  match Json.parse (Json.to_string j) with
  | Ok j' -> checkb "report round-trips" true (Json.equal j j')
  | Error e -> Alcotest.failf "report did not parse back: %s" e

let test_report_rejects_bad () =
  checkb "wrong schema tag" true
    (Result.is_error
       (Report.validate (Json.Obj [ ("schema", Json.String "nope"); ("scenarios", Json.Arr []) ])));
  checkb "scenarios not an array" true
    (Result.is_error
       (Report.validate
          (Json.Obj
             [ ("schema", Json.String Report.schema_version); ("scenarios", Json.Int 3) ])))

(* ------------------------------------------------------------------ *)
(* Domain-safety: hammer the registry from two domains at once          *)

let test_two_domain_hammer () =
  Metrics.reset ();
  let iters = 5_000 in
  let work tag () =
    (* registration races on purpose: both domains get-or-create the
       shared instruments while incrementing them *)
    let shared = Metrics.counter "test.hammer.shared" in
    let mine = Metrics.counter ("test.hammer." ^ tag) in
    let h = Metrics.histogram "test.hammer.histo" in
    for i = 1 to iters do
      Metrics.incr shared;
      Metrics.incr mine;
      Metrics.observe h (float_of_int (i land 7));
      Metrics.with_span ("hammer." ^ tag) (fun () ->
          Metrics.with_span "inner" (fun () -> ()))
    done
  in
  let d = Domain.spawn (work "a") in
  work "b" ();
  Domain.join d;
  checki "no lost shared increments" (2 * iters)
    (match List.assoc_opt "test.hammer.shared" (Metrics.counters_now ()) with
    | Some v -> v
    | None -> -1);
  checki "domain a private counter" iters
    (match List.assoc_opt "test.hammer.a" (Metrics.counters_now ()) with
    | Some v -> v
    | None -> -1);
  checki "domain b private counter" iters
    (match List.assoc_opt "test.hammer.b" (Metrics.counters_now ()) with
    | Some v -> v
    | None -> -1);
  (match List.assoc_opt "test.hammer.histo" (Metrics.histograms_now ()) with
  | None -> Alcotest.fail "histogram missing after hammer"
  | Some (s : Metrics.histo_stats) ->
    checki "no lost observations" (2 * iters) s.count;
    checkb "min in range" true (s.min >= 0.);
    checkb "max in range" true (s.max <= 7.));
  checki "main stack unwound" 0 (Metrics.span_depth ());
  (* each domain's top-level span is a root of the shared forest, with its
     own well-formed subtree *)
  let roots = Metrics.spans_now () in
  List.iter
    (fun tag ->
      match List.find_opt (fun r -> r.Metrics.span_name = "hammer." ^ tag) roots with
      | None -> Alcotest.failf "missing root span hammer.%s" tag
      | Some r ->
        checki ("hammer." ^ tag ^ " calls") iters r.Metrics.calls;
        (match r.Metrics.children with
        | [ inner ] ->
          checks "child name" "inner" inner.Metrics.span_name;
          checki "child calls" iters inner.Metrics.calls
        | l -> Alcotest.failf "expected one child span, got %d" (List.length l)))
    [ "a"; "b" ]

(* Snapshots under concurrent writers: [Snapshot.take] must read a sane
   value at any instant (monotone along the observation order) and exactly
   the true total once the writers are done — no torn or lost reads. *)
let test_snapshot_under_domains () =
  Metrics.reset ();
  let iters = 20_000 in
  let c = Metrics.counter "test.snap.domains" in
  let work () =
    for _ = 1 to iters do
      Metrics.incr c
    done
  in
  let a = Domain.spawn work and b = Domain.spawn work in
  let observed = ref [] in
  (* sample while both domains hammer the shared counter *)
  while Metrics.value c < 2 * iters do
    (match Snapshot.counter_value (Snapshot.take ()) "test.snap.domains" with
    | Some v -> observed := v :: !observed
    | None -> ());
    Domain.cpu_relax ()
  done;
  Domain.join a;
  Domain.join b;
  let final = Snapshot.take () in
  checkb "final snapshot is exact" true
    (Snapshot.counter_value final "test.snap.domains" = Some (2 * iters));
  let rec monotone = function
    | newer :: older :: rest -> newer >= older && monotone (older :: rest)
    | _ -> true
  in
  checkb "mid-flight snapshots never go backwards" true (monotone !observed);
  checkb "mid-flight snapshots never overshoot" true
    (List.for_all (fun v -> v >= 0 && v <= 2 * iters) !observed);
  (* determinism: two identical hammer runs leave identical deltas *)
  let run () =
    let before = Snapshot.take () in
    let a = Domain.spawn work and b = Domain.spawn work in
    Domain.join a;
    Domain.join b;
    (Snapshot.diff before (Snapshot.take ())).Snapshot.counters
    |> List.filter (fun (n, _) -> n = "test.snap.domains")
  in
  checkb "identical runs, identical snapshot deltas" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Determinism guard: same seeded solve => same stats and counter deltas *)

let solve_renaming_and_deltas () =
  Metrics.reset ();
  let before = Snapshot.take () in
  let v =
    Wfc_core.Solvability.solve ~max_level:2
      (Wfc_tasks.Instances.adaptive_renaming ~procs:2 ~names:3)
  in
  let d = Snapshot.diff before (Snapshot.take ()) in
  let stats = Wfc_core.Solvability.stats_of_verdict v in
  (Wfc_core.Solvability.verdict_name v, stats, d.Snapshot.counters)

let test_determinism_guard () =
  let name1, s1, deltas1 = solve_renaming_and_deltas () in
  let name2, s2, deltas2 = solve_renaming_and_deltas () in
  checks "same verdict" name1 name2;
  checks "renaming (2,3) is solvable" "solvable" name1;
  checki "same nodes" s1.Wfc_core.Solvability.nodes s2.Wfc_core.Solvability.nodes;
  checki "same backtracks" s1.Wfc_core.Solvability.backtracks s2.Wfc_core.Solvability.backtracks;
  checki "same prunes" s1.Wfc_core.Solvability.prunes s2.Wfc_core.Solvability.prunes;
  checkb "searched at all" true (s1.Wfc_core.Solvability.nodes > 0);
  (* identical solver counter deltas, name for name. Cache counters
     (sds.memo, simplex.intern) are excluded: the second run hits memos the
     first one populated, which is exactly what those counters exist to
     show. *)
  let solver_only =
    List.filter (fun (name, v) ->
        v <> 0 && String.length name >= 12 && String.sub name 0 12 = "solvability.")
  in
  checkb "identical solver counter deltas" true (solver_only deltas1 = solver_only deltas2);
  checkb "solver counters flowed to the registry" true
    (List.assoc_opt "solvability.nodes" deltas1 = Some s1.Wfc_core.Solvability.nodes)

let () =
  Alcotest.run "wfc_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counters are monotone" `Quick test_counter_monotone;
          Alcotest.test_case "reset keeps handles valid" `Quick test_reset_keeps_handles;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "two-domain hammer" `Quick test_two_domain_hammer;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "diff isolates a region" `Quick test_snapshot_diff;
          Alcotest.test_case "text rendering" `Quick test_snapshot_text;
          Alcotest.test_case "snapshots under two domains" `Quick test_snapshot_under_domains;
        ] );
      ( "json",
        [
          Alcotest.test_case "canonical round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "single-line rendering" `Quick test_json_to_line;
        ] );
      ( "log",
        [
          Alcotest.test_case "lines, levels, close" `Quick test_log_lines_and_levels;
          Alcotest.test_case "validator rejects bad streams" `Quick test_log_validate_rejects;
        ] );
      ( "flight",
        [ Alcotest.test_case "wraparound at exact capacity" `Quick test_flight_exact_capacity ] );
      ( "report",
        [
          Alcotest.test_case "schema + validate" `Quick test_report_schema;
          Alcotest.test_case "validator rejects bad input" `Quick test_report_rejects_bad;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seeded solve counter deltas" `Quick test_determinism_guard ] );
    ]
