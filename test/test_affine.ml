(* Tier-1 tests for first-class computation models (affine tasks): the
   Model codec and built-ins, the model-restricted solvability search and
   its wait-free byte-identity guarantee, the (task, model)-keyed v2
   verdict store with v1 fallback and migration, the model field of the
   wire protocol, the explicit options record, and the daemon serving two
   models for one task end to end. *)

open Wfc_topology
open Wfc_tasks
open Wfc_core
open Wfc_serve

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* ------------------------------------------------------------------ *)
(* Model codec and built-ins                                            *)
(* ------------------------------------------------------------------ *)

let roundtrip m =
  match Model.of_string (Model.to_string m) with
  | Ok m' ->
    checks "canonical name survives parsing" (Model.to_string m) (Model.to_string m');
    checkb "round-trip is equal" true (Model.equal m m')
  | Error e -> Alcotest.fail e

let test_model_codec () =
  roundtrip Model.wait_free;
  roundtrip (Model.t_resilient ~t:0);
  roundtrip (Model.t_resilient ~t:3);
  roundtrip (Model.k_set_affine ~k:1);
  roundtrip (Model.k_set_affine ~k:2);
  checks "wait-free name" "wait-free" (Model.to_string Model.wait_free);
  checks "k-set name" "k-set:2" (Model.to_string (Model.k_set_affine ~k:2));
  checks "t-resilient name" "t-resilient:1" (Model.to_string (Model.t_resilient ~t:1));
  checks "slug is filename-safe" "k-set-2" (Model.slug (Model.k_set_affine ~k:2));
  checks "slug of wait-free" "wait-free" (Model.slug Model.wait_free);
  checks "slug_of_name" "t-resilient-1" (Model.slug_of_name "t-resilient:1");
  List.iter
    (fun bad ->
      checkb (Printf.sprintf "%S is rejected" bad) true
        (Result.is_error (Model.of_string bad)))
    [ ""; "nope"; "k-set:"; "k-set:0"; "k-set:x"; "t-resilient:-1"; "t-resilient:two"; "wait-free:1" ];
  checkb "builtins documented" true (List.length Model.builtins >= 3)

let test_model_guards () =
  Alcotest.check_raises "k < 1" (Invalid_argument "Model.k_set_affine: k must be >= 1")
    (fun () -> ignore (Model.k_set_affine ~k:0));
  Alcotest.check_raises "t < 0" (Invalid_argument "Model.t_resilient: t must be >= 0")
    (fun () -> ignore (Model.t_resilient ~t:(-1)))

(* ------------------------------------------------------------------ *)
(* Restricted solving                                                   *)
(* ------------------------------------------------------------------ *)

let solve_m ?(domains = 1) ?mode model task level =
  Solvability.solve_at ~opts:(Solvability.options ?mode ~model ()) ~domains task level

(* Full decision table over the whole subdivision — valid only for models
   that admit every facet (wait-free and its equivalents). *)
let decide_table verdict =
  match verdict with
  | Solvability.Solvable { map; _ } ->
    let scx = Chromatic.complex (Sds.complex map.Solvability.sds) in
    Some (List.map (fun v -> (v, map.Solvability.decide v)) (Complex.vertices scx))
  | _ -> None

let tasks_under_test =
  [
    ("consensus-2", fun () -> Instances.binary_consensus ~procs:2);
    ("consensus-3", fun () -> Instances.binary_consensus ~procs:3);
    ("set-consensus-3-2", fun () -> Instances.set_consensus ~procs:3 ~k:2);
    ("identity-3", fun () -> Instances.id_task ~procs:3);
    ("approx-2-3", fun () -> Instances.approximate_agreement ~procs:2 ~grid:3);
  ]

(* The acceptance pair: k-set:1 is wait-free, k-set:procs admits only the
   fully synchronous runs, under which consensus becomes solvable. *)
let test_kset_consensus () =
  List.iter
    (fun procs ->
      let t () = Instances.binary_consensus ~procs in
      (match solve_m (Model.k_set_affine ~k:1) (t ()) 1 with
      | Solvability.Unsolvable_at _ -> ()
      | v ->
        Alcotest.failf "consensus-%d under k-set:1 must stay unsolvable, got %s" procs
          (Solvability.verdict_name v));
      match solve_m (Model.k_set_affine ~k:procs) (t ()) 1 with
      | Solvability.Solvable { map; _ } ->
        (match Solvability.verify map with
        | Ok () -> ()
        | Error e -> Alcotest.failf "restricted map fails verify: %s" e);
        checkb "map remembers its model" true
          (Model.equal map.Solvability.model (Model.k_set_affine ~k:procs))
      | v ->
        Alcotest.failf "consensus-%d under k-set:%d must be solvable at level 1, got %s"
          procs procs (Solvability.verdict_name v))
    [ 2; 3 ]

let test_t_resilient_consensus () =
  (* t = 0: only lock-step runs remain, so consensus is solvable... *)
  (match solve_m (Model.t_resilient ~t:0) (Instances.binary_consensus ~procs:3) 1 with
  | Solvability.Solvable { map; _ } ->
    (match Solvability.verify map with
    | Ok () -> ()
    | Error e -> Alcotest.failf "t-resilient:0 map fails verify: %s" e)
  | v ->
    Alcotest.failf "consensus-3 under t-resilient:0 must be solvable, got %s"
      (Solvability.verdict_name v));
  (* ...while t >= procs - 1 admits every run and is wait-free again. *)
  let wf = Solvability.solve_at ~domains:1 (Instances.binary_consensus ~procs:2) 1 in
  let tr = solve_m (Model.t_resilient ~t:1) (Instances.binary_consensus ~procs:2) 1 in
  checks "t-resilient:(procs-1) = wait-free verdict" (Solvability.verdict_name wf)
    (Solvability.verdict_name tr);
  let s = Solvability.stats_of_verdict wf and s' = Solvability.stats_of_verdict tr in
  checki "identical refutation cost" s.Solvability.nodes s'.Solvability.nodes

(* k-set:1 goes through the Facet_pred path yet admits every facet: the
   filtered instance is the unrestricted one in the same order, so even the
   search-cost tallies must match the seed engine exactly. *)
let test_kset1_byte_identity () =
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun level ->
          let seed = Solvability.solve_at ~domains:1 (mk ()) level in
          let k1 = solve_m (Model.k_set_affine ~k:1) (mk ()) level in
          checks
            (Printf.sprintf "%s level %d: verdict" name level)
            (Solvability.verdict_name seed) (Solvability.verdict_name k1);
          checkb
            (Printf.sprintf "%s level %d: decide table" name level)
            true
            (decide_table seed = decide_table k1);
          let s = Solvability.stats_of_verdict seed in
          let s' = Solvability.stats_of_verdict k1 in
          checki (name ^ ": nodes") s.Solvability.nodes s'.Solvability.nodes;
          checki (name ^ ": backtracks") s.Solvability.backtracks s'.Solvability.backtracks;
          checki (name ^ ": prunes") s.Solvability.prunes s'.Solvability.prunes)
        [ 0; 1 ])
    tasks_under_test

(* The headline guarantee of the API redesign: passing the wait-free model
   explicitly — on any engine — answers exactly like the historical
   default-everything call. *)
let qcheck_wait_free_is_seed =
  QCheck.Test.make ~count:40 ~name:"solve_at ~model:wait_free = seed engine (all engines)"
    QCheck.(
      quad
        (int_bound (List.length tasks_under_test - 1))
        (int_bound 1) (int_range 1 4) bool)
    (fun (ti, level, domains, portfolio) ->
      let _, mk = List.nth tasks_under_test ti in
      let seed = Solvability.solve_at ~domains:1 (mk ()) level in
      let mode = if portfolio then `Portfolio else `Batch in
      let wf = solve_m ~domains ~mode Model.wait_free (mk ()) level in
      Solvability.verdict_name seed = Solvability.verdict_name wf
      && decide_table seed = decide_table wf)

let qcheck_wait_free_solve_sweep =
  QCheck.Test.make ~count:20 ~name:"solve ~model:wait_free = seed sweep (decide tables)"
    QCheck.(pair (int_bound (List.length tasks_under_test - 1)) (int_range 1 4))
    (fun (ti, domains) ->
      let _, mk = List.nth tasks_under_test ti in
      let seed = Solvability.solve ~domains:1 ~max_level:1 (mk ()) in
      let wf =
        Solvability.solve
          ~opts:(Solvability.options ~model:Model.wait_free ())
          ~domains ~max_level:1 (mk ())
      in
      Solvability.verdict_name seed = Solvability.verdict_name wf
      && decide_table seed = decide_table wf)

let test_per_model_counter () =
  let name = "solvability.model.k-set-3" in
  let before = Wfc_obs.Metrics.value (Wfc_obs.Metrics.counter name) in
  ignore (solve_m (Model.k_set_affine ~k:3) (Instances.binary_consensus ~procs:2) 0);
  let after = Wfc_obs.Metrics.value (Wfc_obs.Metrics.counter name) in
  checki "model counter bumped" (before + 1) after

(* ------------------------------------------------------------------ *)
(* Options record and deprecated shims                                  *)
(* ------------------------------------------------------------------ *)

let test_options () =
  let saved = Solvability.defaults () in
  Fun.protect ~finally:(fun () -> Solvability.set_defaults saved) @@ fun () ->
  let d = Solvability.defaults () in
  checkb "default model is wait-free" true (Model.equal d.Solvability.model Model.wait_free);
  checki "default budget" Solvability.default_budget d.Solvability.budget;
  checkb "default trace off" false d.Solvability.trace;
  (* the builder fills omitted fields from the defaults *)
  let o = Solvability.options ~budget:7 () in
  checki "builder overrides budget" 7 o.Solvability.budget;
  checkb "builder inherits model" true (Model.equal o.Solvability.model d.Solvability.model);
  checkb "builder inherits trace" true (o.Solvability.trace = d.Solvability.trace);
  (* the shims are views of the default record *)
  Solvability.set_search_trace true;
  checkb "set_search_trace reaches defaults" true (Solvability.defaults ()).Solvability.trace;
  Solvability.set_search_trace false;
  Solvability.set_portfolio true;
  checkb "set_portfolio reaches defaults" true (Solvability.portfolio ());
  checkb "portfolio mode set" true ((Solvability.defaults ()).Solvability.mode = `Portfolio);
  Solvability.set_portfolio false;
  checkb "portfolio off again" false (Solvability.portfolio ())

(* ------------------------------------------------------------------ *)
(* Store: (task, model) keyed records, v1 fallback, migration           *)
(* ------------------------------------------------------------------ *)

let outcome_for ?(model = Model.wait_free) task =
  Solvability.outcome_of_verdict
    (Solvability.solve ~opts:(Solvability.options ~model ()) ~domains:1 ~max_level:1 task)

let test_store_model_key () =
  let st = Store.open_store (temp_dir "wfc-affine-store") in
  let t = Instances.binary_consensus ~procs:2 in
  let digest = Task.digest t in
  let budget = Solvability.default_budget in
  let model = Model.k_set_affine ~k:2 in
  let r =
    Store.record ~task:t ~spec:"consensus(procs=2,param=2)"
      ~model:(Model.to_string model) ~max_level:1 ~budget (outcome_for ~model t)
  in
  Store.put st r;
  checks "v2 filename embeds the model slug"
    (digest ^ ".k-set-2.L1.json")
    (Filename.basename (Store.path_of st ~digest ~model:"k-set:2" ~max_level:1));
  (match Store.find st ~digest ~model:"k-set:2" ~max_level:1 ~budget with
  | Some r' ->
    checks "record carries its model" "k-set:2" r'.Store.model;
    checks "restricted verdict survives the disk" "solvable" r'.Store.outcome.Solvability.o_verdict
  | None -> Alcotest.fail "k-set:2 record not found after put");
  (* the same task under another model is a different question *)
  checkb "wait-free misses" true
    (Store.find st ~digest ~model:"wait-free" ~max_level:1 ~budget = None);
  let report = Store.verify st in
  checki "v2 record passes verify" 1 report.Store.valid;
  checki "nothing mismatched" 0 (List.length report.Store.mismatched)

let test_store_v1_fallback_and_migrate () =
  let dir = temp_dir "wfc-affine-store" in
  let st = Store.open_store dir in
  let t = Instances.binary_consensus ~procs:2 in
  let digest = Task.digest t in
  let budget = Solvability.default_budget in
  let r =
    Store.record ~task:t ~spec:"consensus(procs=2,param=2)" ~max_level:1 ~budget (outcome_for t)
  in
  Store.put st r;
  (* demote the record to its pre-model (v1) filename, as an old store has *)
  let v2_path = Store.path_of st ~digest ~model:"wait-free" ~max_level:1 in
  let v1_path = Filename.concat dir (digest ^ ".L1.json") in
  Sys.rename v2_path v1_path;
  (match Store.find st ~digest ~model:"wait-free" ~max_level:1 ~budget with
  | Some r' -> checks "v1 fallback serves wait-free" "wait-free" r'.Store.model
  | None -> Alcotest.fail "v1-named record must still satisfy wait-free finds");
  let report = Store.verify st in
  checki "v1 name is well-formed to verify" 1 report.Store.valid;
  checki "not mismatched" 0 (List.length report.Store.mismatched);
  (* migrate rewrites it under the v2 name... *)
  let m = Store.migrate st in
  checki "one record migrated" 1 m.Store.migrated;
  checki "no skips" 0 (List.length m.Store.skipped);
  checkb "v1 file removed" false (Sys.file_exists v1_path);
  checkb "v2 file written" true (Sys.file_exists v2_path);
  (match Store.find st ~digest ~model:"wait-free" ~max_level:1 ~budget with
  | Some _ -> ()
  | None -> Alcotest.fail "record lost by migration");
  (* ...and is idempotent *)
  let m2 = Store.migrate st in
  checki "second pass migrates nothing" 0 m2.Store.migrated;
  checki "second pass counts it untouched" 1 m2.Store.untouched

let test_store_model_mismatch_quarantined () =
  let dir = temp_dir "wfc-affine-store" in
  let st = Store.open_store dir in
  let t = Instances.binary_consensus ~procs:2 in
  let digest = Task.digest t in
  let budget = Solvability.default_budget in
  let model = Model.k_set_affine ~k:2 in
  let r =
    Store.record ~task:t ~spec:"consensus(procs=2,param=2)"
      ~model:(Model.to_string model) ~max_level:1 ~budget (outcome_for ~model t)
  in
  (* file a k-set:2 body under the flat wait-free name (as a bad actor or a
     botched copy into a pre-sharding store would): served to a wait-free
     question it would be a wrong answer, so find must quarantine it *)
  let path = Filename.concat dir (digest ^ ".wait-free.L1.json") in
  let oc = open_out path in
  output_string oc (Wfc_obs.Json.to_string (Store.record_to_json r));
  close_out oc;
  checkb "mismatched model is a miss" true
    (Store.find st ~digest ~model:"wait-free" ~max_level:1 ~budget = None);
  checkb "file moved out of the way" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Wire: the model field                                                *)
(* ------------------------------------------------------------------ *)

let test_wire_model () =
  let spec =
    {
      Wire.task = "consensus";
      procs = 2;
      param = 2;
      max_level = 1;
      model = "k-set:2";
      symmetry = true;
      collapse = true;
    }
  in
  (match Wire.request_of_json (Wire.request_to_json (Wire.Query { spec; req_id = None })) with
  | Ok (Wire.Query { spec = spec'; _ }) ->
    checks "model survives the wire" "k-set:2" spec'.Wire.model
  | Ok _ -> Alcotest.fail "expected a query"
  | Error e -> Alcotest.fail e);
  (* a pre-model client omits the field entirely: read as wait-free *)
  let legacy =
    Wfc_obs.Json.Obj
      [
        ("op", Wfc_obs.Json.String "query");
        ("task", Wfc_obs.Json.String "consensus");
        ("procs", Wfc_obs.Json.Int 2);
        ("param", Wfc_obs.Json.Int 2);
        ("max_level", Wfc_obs.Json.Int 1);
      ]
  in
  (match Wire.request_of_json legacy with
  | Ok (Wire.Query { spec = spec'; _ }) ->
    checks "missing model defaults" "wait-free" spec'.Wire.model
  | Ok _ -> Alcotest.fail "expected a query"
  | Error e -> Alcotest.fail e);
  let with_model m =
    Wfc_obs.Json.Obj
      [
        ("op", Wfc_obs.Json.String "query");
        ("task", Wfc_obs.Json.String "consensus");
        ("procs", Wfc_obs.Json.Int 2);
        ("param", Wfc_obs.Json.Int 2);
        ("max_level", Wfc_obs.Json.Int 1);
        ("model", m);
      ]
  in
  checkb "empty model is rejected" true
    (Result.is_error (Wire.request_of_json (with_model (Wfc_obs.Json.String ""))));
  checkb "non-string model is rejected" true
    (Result.is_error (Wire.request_of_json (with_model (Wfc_obs.Json.Int 3))))

(* ------------------------------------------------------------------ *)
(* Daemon: one task, two models, end to end                             *)
(* ------------------------------------------------------------------ *)

let temp_socket () =
  let path = Filename.temp_file "wfc-affine" ".sock" in
  Sys.remove path;
  path

let with_daemon f =
  let socket = temp_socket () in
  let store_dir = temp_dir "wfc-affine-daemon" in
  let ready = Atomic.make false in
  let cfg =
    {
      (Daemon.config ~socket ~store_dir ()) with
      Daemon.on_ready = Some (fun () -> Atomic.set ready true);
    }
  in
  let daemon = Thread.create Daemon.run cfg in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  let finally () =
    (match Client.connect ~socket with
    | Ok c ->
      ignore (Client.shutdown c);
      Client.close c
    | Error _ -> ());
    Thread.join daemon
  in
  Fun.protect ~finally (fun () -> f ~socket)

let query_exn c spec =
  match Client.query c spec with Ok r -> r | Error e -> Alcotest.fail e

let test_daemon_two_models () =
  (* consensus(2) at level 1 is the acceptance pair: unsolvable wait-free,
     solvable once k-set:2 restricts the adversary to lock-step runs. *)
  let spec model =
    {
      Wire.task = "consensus";
      procs = 2;
      param = 2;
      max_level = 1;
      model;
      symmetry = true;
      collapse = true;
    }
  in
  with_daemon (fun ~socket ->
      match Client.connect ~socket with
      | Error e -> Alcotest.fail e
      | Ok c ->
        (match query_exn c (spec "wait-free") with
        | Wire.Verdict { source = Wire.Computed; record; _ } ->
          checks "wait-free verdict" "unsolvable" record.Store.outcome.Solvability.o_verdict;
          checks "record model" "wait-free" record.Store.model
        | _ -> Alcotest.fail "expected a computed wait-free verdict");
        (match query_exn c (spec "k-set:2") with
        | Wire.Verdict { source = Wire.Computed; record; _ } ->
          checks "k-set:2 verdict" "solvable" record.Store.outcome.Solvability.o_verdict;
          checks "record model" "k-set:2" record.Store.model
        | _ -> Alcotest.fail "expected a computed k-set:2 verdict");
        (* both verdicts now coexist in one store, each keyed by its model *)
        (match query_exn c (spec "wait-free") with
        | Wire.Verdict { source = Wire.From_store; record; _ } ->
          checks "warm wait-free" "unsolvable" record.Store.outcome.Solvability.o_verdict
        | _ -> Alcotest.fail "expected a wait-free store hit");
        (match query_exn c (spec "k-set:2") with
        | Wire.Verdict { source = Wire.From_store; record; _ } ->
          checks "warm k-set:2" "solvable" record.Store.outcome.Solvability.o_verdict
        | _ -> Alcotest.fail "expected a k-set:2 store hit");
        (* an unparsable model is refused at admission, before any solving *)
        (match query_exn c (spec "no-such-model") with
        | Wire.Failed _ -> ()
        | _ -> Alcotest.fail "expected an error for an unknown model");
        Client.close c)

let () =
  Alcotest.run "wfc_affine"
    [
      ( "model",
        [
          Alcotest.test_case "codec round-trips and rejects" `Quick test_model_codec;
          Alcotest.test_case "constructor guards" `Quick test_model_guards;
        ] );
      ( "restriction",
        [
          Alcotest.test_case "k-set bounds consensus" `Quick test_kset_consensus;
          Alcotest.test_case "t-resilience bounds consensus" `Quick test_t_resilient_consensus;
          Alcotest.test_case "k-set:1 is byte-identical to seed" `Quick test_kset1_byte_identity;
          QCheck_alcotest.to_alcotest qcheck_wait_free_is_seed;
          QCheck_alcotest.to_alcotest qcheck_wait_free_solve_sweep;
          Alcotest.test_case "per-model counter" `Quick test_per_model_counter;
        ] );
      ("options", [ Alcotest.test_case "record, builder, shims" `Quick test_options ]);
      ( "store",
        [
          Alcotest.test_case "records are keyed by model" `Quick test_store_model_key;
          Alcotest.test_case "v1 fallback and migrate" `Quick test_store_v1_fallback_and_migrate;
          Alcotest.test_case "model mismatch is quarantined" `Quick
            test_store_model_mismatch_quarantined;
        ] );
      ("wire", [ Alcotest.test_case "model field codec" `Quick test_wire_model ]);
      ("daemon", [ Alcotest.test_case "two models end to end" `Quick test_daemon_two_models ]);
    ]
