(* Tier-1 tests for the Wfc_par domain-pool subsystem and the parallel
   engines built on it: channel/deque/pool semantics, the sharded simplex
   arena under concurrent interning, and the end-to-end guarantee that the
   parallel solvability search returns exactly the sequential verdict. *)

open Wfc_topology
open Wfc_core

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Chan                                                                 *)

let test_chan () =
  let c = Wfc_par.Chan.create () in
  Wfc_par.Chan.send c 1;
  Wfc_par.Chan.send c 2;
  checkb "fifo 1" true (Wfc_par.Chan.recv c = Some 1);
  checkb "fifo 2" true (Wfc_par.Chan.recv c = Some 2);
  Wfc_par.Chan.send c 3;
  Wfc_par.Chan.close c;
  checkb "drains after close" true (Wfc_par.Chan.recv c = Some 3);
  checkb "closed and drained" true (Wfc_par.Chan.recv c = None);
  checkb "is_closed" true (Wfc_par.Chan.is_closed c);
  Alcotest.check_raises "send after close" (Invalid_argument "Chan.send: closed channel")
    (fun () -> Wfc_par.Chan.send c 4);
  (* a receiver blocked before the value arrives gets it *)
  let c2 = Wfc_par.Chan.create () in
  let d = Domain.spawn (fun () -> Wfc_par.Chan.recv c2) in
  Wfc_par.Chan.send c2 42;
  checkb "blocked receiver woken" true (Domain.join d = Some 42)

let test_chan_send_shared () =
  (* one send_shared, n receivers: each recv claims the value once *)
  let c = Wfc_par.Chan.create () in
  Wfc_par.Chan.send_shared c 7 3;
  checkb "claim 1" true (Wfc_par.Chan.recv c = Some 7);
  checkb "claim 2" true (Wfc_par.Chan.recv c = Some 7);
  checkb "claim 3" true (Wfc_par.Chan.recv c = Some 7);
  (* the cell is consumed after its last claim: the next value is visible *)
  Wfc_par.Chan.send c 9;
  checkb "cell popped after last claim" true (Wfc_par.Chan.recv c = Some 9);
  (* shared and plain sends interleave in fifo order *)
  Wfc_par.Chan.send c 1;
  Wfc_par.Chan.send_shared c 2 2;
  Wfc_par.Chan.send c 3;
  checkb "fifo: plain before shared" true (Wfc_par.Chan.recv c = Some 1);
  checkb "fifo: shared claim 1" true (Wfc_par.Chan.recv c = Some 2);
  checkb "fifo: shared claim 2" true (Wfc_par.Chan.recv c = Some 2);
  checkb "fifo: plain after shared" true (Wfc_par.Chan.recv c = Some 3);
  Alcotest.check_raises "claims must be positive"
    (Invalid_argument "Chan.send_shared: n < 1") (fun () ->
      Wfc_par.Chan.send_shared c 0 0);
  Wfc_par.Chan.close c;
  Alcotest.check_raises "send_shared after close"
    (Invalid_argument "Chan.send_shared: closed channel") (fun () ->
      Wfc_par.Chan.send_shared c 5 2)

(* ------------------------------------------------------------------ *)
(* Deque                                                                *)

let test_deque () =
  let q = Wfc_par.Deque.create ~capacity:3 in
  checkb "push 1" true (Wfc_par.Deque.push_bottom q 1);
  checkb "push 2" true (Wfc_par.Deque.push_bottom q 2);
  checkb "push 3" true (Wfc_par.Deque.push_bottom q 3);
  checkb "full rejects" false (Wfc_par.Deque.push_bottom q 4);
  checki "length" 3 (Wfc_par.Deque.length q);
  checkb "steal is fifo" true (Wfc_par.Deque.steal q = Some 1);
  checkb "pop is lifo" true (Wfc_par.Deque.pop_bottom q = Some 3);
  checkb "pop last" true (Wfc_par.Deque.pop_bottom q = Some 2);
  checkb "empty pop" true (Wfc_par.Deque.pop_bottom q = None);
  checkb "empty steal" true (Wfc_par.Deque.steal q = None);
  (* freed capacity is reusable (ring wrap-around) *)
  checkb "reuse" true (Wfc_par.Deque.push_bottom q 5);
  checkb "reuse pop" true (Wfc_par.Deque.pop_bottom q = Some 5)

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)

let test_pool_run () =
  let p = Wfc_par.Pool.create ~size:4 in
  Fun.protect ~finally:(fun () -> Wfc_par.Pool.shutdown p) @@ fun () ->
  let n = 64 in
  let jobs = Array.init n (fun i () -> i * i) in
  let r = Wfc_par.Pool.run p jobs in
  checkb "results in input order" true (r = Array.init n (fun i -> i * i));
  (* every job runs exactly once even when jobs outnumber domains *)
  let hits = Array.make n 0 in
  let lock = Mutex.create () in
  let jobs2 =
    Array.init n (fun i () ->
        Mutex.lock lock;
        hits.(i) <- hits.(i) + 1;
        Mutex.unlock lock)
  in
  ignore (Wfc_par.Pool.run p jobs2);
  checkb "each job ran once" true (Array.for_all (fun h -> h = 1) hits);
  (* nested run degrades to sequential instead of deadlocking *)
  let nested =
    Wfc_par.Pool.run p
      (Array.init 4 (fun i () ->
           Array.fold_left ( + ) 0 (Wfc_par.Pool.run p (Array.init 8 (fun j () -> (10 * i) + j)))))
  in
  checkb "nested batches complete" true
    (nested = Array.init 4 (fun i -> Array.fold_left ( + ) 0 (Array.init 8 (fun j -> (10 * i) + j))))

let test_pool_exceptions () =
  let p = Wfc_par.Pool.create ~size:2 in
  Fun.protect ~finally:(fun () -> Wfc_par.Pool.shutdown p) @@ fun () ->
  let ran = Array.make 8 false in
  let jobs =
    Array.init 8 (fun i () ->
        ran.(i) <- true;
        if i = 3 || i = 5 then failwith (Printf.sprintf "job %d" i))
  in
  (match Wfc_par.Pool.run p jobs with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    Alcotest.(check string) "lowest-indexed failure wins" "job 3" msg);
  checkb "batch still drained fully" true (Array.for_all Fun.id ran)

let test_run_jobs_inline () =
  (* domains = 1 never touches the pool: thunks run on the caller *)
  let self = Domain.self () in
  let r =
    Wfc_par.run_jobs ~domains:1 (Array.init 4 (fun i () -> (i, Domain.self () = self)))
  in
  checkb "inline on caller" true (r = Array.init 4 (fun i -> (i, true)))

(* ------------------------------------------------------------------ *)
(* Token / race                                                         *)

let test_token () =
  let t = Wfc_par.Token.create () in
  checkb "fresh token not cancelled" false (Wfc_par.Token.cancelled t);
  Wfc_par.Token.cancel t;
  checkb "cancelled after cancel" true (Wfc_par.Token.cancelled t);
  Wfc_par.Token.cancel t;
  checkb "cancel is idempotent" true (Wfc_par.Token.cancelled t)

let test_race () =
  checkb "empty race" true (Wfc_par.race ~domains:2 [||] = None);
  (* domains = 1 runs thunks in order on the caller: thunk 0 wins and its
     cancellation makes every later thunk withdraw *)
  let later_saw_cancel = ref false in
  let r =
    Wfc_par.race ~domains:1
      [|
        (fun _ -> Some "first");
        (fun tok ->
          later_saw_cancel := Wfc_par.Token.cancelled tok;
          None);
      |]
  in
  checkb "first thunk wins inline" true (r = Some (0, "first"));
  checkb "loser observed the winner's cancel" true !later_saw_cancel;
  (* a thunk that withdraws (None) does not win; the survivor does *)
  let r2 = Wfc_par.race ~domains:1 [| (fun _ -> None); (fun _ -> Some 7) |] in
  checkb "withdrawal passes the win along" true (r2 = Some (1, 7));
  checkb "all withdraw" true (Wfc_par.race ~domains:1 [| (fun _ -> None); (fun _ -> None) |] = None);
  (* across domains: a spinner only exits when the winner cancels the
     shared token, so termination IS the cancellation test *)
  let r3 =
    Wfc_par.race ~domains:2
      [|
        (fun tok ->
          while not (Wfc_par.Token.cancelled tok) do
            Domain.cpu_relax ()
          done;
          None);
        (fun _ -> Some 42);
      |]
  in
  checkb "cross-domain cancel terminates the spinner" true (r3 = Some (1, 42))

(* ------------------------------------------------------------------ *)
(* Sharded arena under concurrent interning                             *)

let test_arena_stress () =
  (* four domains intern the same fresh simplices concurrently: every
     domain must see the same interned id per vertex set (hash-consing
     survives the race), and the arena must grow by exactly the number of
     distinct sets. Vertices start high so nothing is interned already. *)
  let base = 100_000 in
  let sets =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b -> [ [ base + a ]; [ base + a; base + 50 + b ]; [ base + a; base + 50 + b; base + 100 ] ])
          [ 0; 1; 2; 3; 4 ])
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  let distinct = List.sort_uniq compare sets in
  let before = Simplex.arena_size () in
  let work () = List.map (fun vs -> (vs, Simplex.id (Simplex.of_list vs))) sets in
  let spawned = Array.init 3 (fun _ -> Domain.spawn work) in
  let mine = work () in
  let others = Array.to_list (Array.map Domain.join spawned) in
  List.iter
    (fun theirs -> checkb "same id on every domain" true (theirs = mine))
    others;
  checki "arena grew by the distinct sets exactly"
    (List.length distinct)
    (Simplex.arena_size () - before);
  (* ids are stable: re-interning afterwards changes nothing *)
  checkb "re-intern is a lookup" true (work () = mine);
  checki "no further growth" (List.length distinct) (Simplex.arena_size () - before);
  (* id density: the publication arena allocates ids under one lock, so the
     fresh simplices occupy exactly the contiguous block the arena grew by —
     no id is ever skipped or minted twice, whatever the interleaving *)
  let fresh_ids =
    List.sort_uniq compare (List.map (fun vs -> Simplex.id (Simplex.of_list vs)) distinct)
  in
  checki "no duplicate ids across keys" (List.length distinct) (List.length fresh_ids);
  let lo = List.hd fresh_ids and hi = List.nth fresh_ids (List.length fresh_ids - 1) in
  checki "ids form a contiguous block" (hi - lo) (List.length fresh_ids - 1);
  checkb "ids stay below the arena size" true (hi < Simplex.arena_size ());
  (* every key maps to one id and every id to one key: interning the verts
     behind each fresh id returns that id *)
  checkb "key -> id -> key closes" true
    (List.for_all
       (fun vs ->
         let s = Simplex.of_list vs in
         Simplex.to_list s = List.sort_uniq compare vs
         && Simplex.id (Simplex.of_list (Simplex.to_list s)) = Simplex.id s)
       distinct)

(* ------------------------------------------------------------------ *)
(* Parallel solver == sequential solver                                 *)

let tasks_under_test =
  [
    ("consensus-2", fun () -> Wfc_tasks.Instances.binary_consensus ~procs:2);
    ("consensus-3", fun () -> Wfc_tasks.Instances.binary_consensus ~procs:3);
    ("set-consensus-3-2", fun () -> Wfc_tasks.Instances.set_consensus ~procs:3 ~k:2);
    ("renaming-2-3", fun () -> Wfc_tasks.Instances.adaptive_renaming ~procs:2 ~names:3);
    ("identity-3", fun () -> Wfc_tasks.Instances.id_task ~procs:3);
    ("approx-2-3", fun () -> Wfc_tasks.Instances.approximate_agreement ~procs:2 ~grid:3);
  ]

let decide_table verdict =
  match verdict with
  | Solvability.Solvable { map; _ } ->
    let scx = Chromatic.complex (Sds.complex map.Solvability.sds) in
    Some (List.map (fun v -> (v, map.Solvability.decide v)) (Complex.vertices scx))
  | _ -> None

let test_parallel_matches_sequential () =
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun level ->
          let seq = Solvability.solve_at ~domains:1 (mk ()) level in
          let par = Solvability.solve_at ~domains:4 (mk ()) level in
          Alcotest.(check string)
            (Printf.sprintf "%s level %d: same verdict" name level)
            (Solvability.verdict_name seq) (Solvability.verdict_name par);
          checkb
            (Printf.sprintf "%s level %d: same decision map" name level)
            true
            (decide_table seq = decide_table par);
          let s = Solvability.stats_of_verdict seq in
          let p = Solvability.stats_of_verdict par in
          (match seq with
          | Solvability.Unsolvable_at _ ->
            (* a refutation is exhaustive on both engines: cost merges exactly *)
            checki (name ^ ": nodes") s.Solvability.nodes p.Solvability.nodes;
            checki (name ^ ": backtracks") s.Solvability.backtracks p.Solvability.backtracks;
            checki (name ^ ": prunes") s.Solvability.prunes p.Solvability.prunes
          | _ -> ()))
        [ 0; 1 ])
    tasks_under_test

let qcheck_parallel_equiv =
  QCheck.Test.make ~count:30 ~name:"solve_at domains=1 = domains=4"
    QCheck.(pair (int_bound (List.length tasks_under_test - 1)) (int_bound 1))
    (fun (ti, level) ->
      let _, mk = List.nth tasks_under_test ti in
      let seq = Solvability.solve_at ~domains:1 (mk ()) level in
      let par = Solvability.solve_at ~domains:4 (mk ()) level in
      Solvability.verdict_name seq = Solvability.verdict_name par
      && decide_table seq = decide_table par)

(* Portfolio mode races whole searches under distinct variable orders, yet
   the published verdict and decision map must still be the sequential
   engine's: racer 0 is the canonical order, and diverse racers may only
   publish refutations, which are order-independent facts. Node tallies are
   deliberately NOT compared — they describe whichever racer won. *)
let qcheck_portfolio_equiv =
  QCheck.Test.make ~count:30 ~name:"portfolio = sequential (verdict + decide)"
    QCheck.(
      triple
        (int_bound (List.length tasks_under_test - 1))
        (int_bound 1) (int_range 1 4))
    (fun (ti, level, domains) ->
      let _, mk = List.nth tasks_under_test ti in
      let seq = Solvability.solve_at ~domains:1 (mk ()) level in
      let port = Solvability.solve_at ~opts:(Solvability.options ~mode:`Portfolio ()) ~domains (mk ()) level in
      Solvability.verdict_name seq = Solvability.verdict_name port
      && decide_table seq = decide_table port)

let test_portfolio_matches_sequential () =
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun level ->
          let seq = Solvability.solve_at ~domains:1 (mk ()) level in
          let port = Solvability.solve_at ~opts:(Solvability.options ~mode:`Portfolio ()) ~domains:4 (mk ()) level in
          Alcotest.(check string)
            (Printf.sprintf "%s level %d: same verdict" name level)
            (Solvability.verdict_name seq) (Solvability.verdict_name port);
          checkb
            (Printf.sprintf "%s level %d: same decision map" name level)
            true
            (decide_table seq = decide_table port))
        [ 0; 1 ])
    tasks_under_test

let test_portfolio_single_domain_is_sequential () =
  (* one racer = the canonical order alone: byte-for-byte the sequential
     engine, stats included — the single-core container guarantee *)
  let task = Wfc_tasks.Instances.binary_consensus ~procs:2 in
  let seq = Solvability.solve_at ~domains:1 task 1 in
  let port = Solvability.solve_at ~opts:(Solvability.options ~mode:`Portfolio ()) ~domains:1 task 1 in
  Alcotest.(check string) "same verdict" (Solvability.verdict_name seq)
    (Solvability.verdict_name port);
  let s = Solvability.stats_of_verdict seq and p = Solvability.stats_of_verdict port in
  checki "same nodes" s.Solvability.nodes p.Solvability.nodes;
  checki "same backtracks" s.Solvability.backtracks p.Solvability.backtracks;
  checki "same prunes" s.Solvability.prunes p.Solvability.prunes

(* ------------------------------------------------------------------ *)
(* Cumulative budget across levels                                      *)

let test_cumulative_budget () =
  let task = Wfc_tasks.Instances.set_consensus ~procs:3 ~k:2 in
  let budget = 40 in
  let max_level = 2 in
  match Solvability.solve ~opts:(Solvability.options ~budget ()) ~max_level task with
  | Solvability.Exhausted { level; stats } ->
    (* the sweep shares one node budget: each level is granted only the
       remainder, so total nodes stay within budget + one root pre-count
       per level tried. (Budget ticks also cover failed candidate tries,
       so nodes can legitimately land below the budget.) *)
    checkb "sweep stays within the cumulative budget" true
      (stats.Solvability.nodes <= budget + max_level + 1);
    checkb "level 0 completed inside the shared budget" true (level >= 1);
    checkb "searched at all" true (stats.Solvability.nodes > 0)
  | v -> Alcotest.failf "expected Exhausted, got %s" (Solvability.verdict_name v)

let test_budget_zero_exhausts () =
  match Solvability.solve ~opts:(Solvability.options ~budget:0 ()) ~max_level:3 (Wfc_tasks.Instances.id_task ~procs:2) with
  | Solvability.Exhausted { level; stats } ->
    checki "stopped before level 0" 0 level;
    checki "no nodes granted" 0 stats.Solvability.nodes
  | v -> Alcotest.failf "expected Exhausted, got %s" (Solvability.verdict_name v)

(* ------------------------------------------------------------------ *)
(* Parallel subdivision == sequential subdivision                       *)

let test_parallel_sds () =
  let facet_lists s =
    List.map Simplex.to_list (Complex.facets (Chromatic.complex (Sds.complex s)))
  in
  List.iter
    (fun (dim, levels) ->
      Sds.clear_cache ();
      Wfc_par.set_domains 1;
      let seq = facet_lists (Sds.standard ~dim ~levels) in
      Sds.clear_cache ();
      Wfc_par.set_domains 4;
      let par = facet_lists (Sds.standard ~dim ~levels) in
      Wfc_par.set_domains 1;
      Sds.clear_cache ();
      checkb
        (Printf.sprintf "SDS^%d(s^%d) facets identical" levels dim)
        true (seq = par))
    [ (1, 3); (2, 2) ]

let () =
  Wfc_par.set_domains 1;
  Alcotest.run "wfc_par"
    [
      ( "primitives",
        [
          Alcotest.test_case "chan" `Quick test_chan;
          Alcotest.test_case "chan send_shared" `Quick test_chan_send_shared;
          Alcotest.test_case "deque" `Quick test_deque;
          Alcotest.test_case "pool run" `Quick test_pool_run;
          Alcotest.test_case "pool exceptions" `Quick test_pool_exceptions;
          Alcotest.test_case "run_jobs inline" `Quick test_run_jobs_inline;
          Alcotest.test_case "token" `Quick test_token;
          Alcotest.test_case "race" `Quick test_race;
        ] );
      ("arena", [ Alcotest.test_case "4-domain intern stress" `Quick test_arena_stress ]);
      ( "solver",
        [
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
          QCheck_alcotest.to_alcotest qcheck_parallel_equiv;
          Alcotest.test_case "portfolio = sequential" `Quick test_portfolio_matches_sequential;
          QCheck_alcotest.to_alcotest qcheck_portfolio_equiv;
          Alcotest.test_case "portfolio, 1 domain = sequential engine" `Quick
            test_portfolio_single_domain_is_sequential;
          Alcotest.test_case "cumulative budget" `Quick test_cumulative_budget;
          Alcotest.test_case "budget 0 exhausts immediately" `Quick test_budget_zero_exhausts;
        ] );
      ("sds", [ Alcotest.test_case "parallel subdivision identical" `Quick test_parallel_sds ]);
    ]
