(* Randomized property tests for the interned simplex representation.

   Every operation is checked against a reference model that represents a
   vertex set as a sorted, deduplicated [int list] — the historical
   representation. A second group checks the interning invariants
   themselves: equality coincides with physical equality and with id
   equality, so the arena really does keep one live representative per
   vertex set. *)

open Wfc_topology

let qtest ?(count = 1000) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Reference model: sorted deduplicated int lists                      *)
(* ------------------------------------------------------------------ *)

module Model = struct
  let of_list l = List.sort_uniq Stdlib.compare l

  let union a b = of_list (a @ b)

  let inter a b = List.filter (fun x -> List.mem x b) a

  let diff a b = List.filter (fun x -> not (List.mem x b)) a

  let subset a b = List.for_all (fun x -> List.mem x b) a

  let add v l = of_list (v :: l)

  let remove v l = List.filter (fun x -> x <> v) l

  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun t -> x :: t) s

  let faces l = List.filter (fun t -> t <> []) (subsets l)

  let facets l = if l = [] then [] else List.map (fun v -> remove v l) l
end

(* Vertex lists kept small enough that face enumeration (2^card) stays
   cheap, with a range narrow enough to make collisions (shared vertices,
   equal sets from different inputs) common. *)
let gen_verts = QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 12))

let gen_pair = QCheck2.Gen.pair gen_verts gen_verts

let sorted_faces ls = List.sort Stdlib.compare ls

let model_tests =
  [
    qtest "of_list sorts and dedups" gen_verts (fun l ->
        Simplex.to_list (Simplex.of_list l) = Model.of_list l);
    qtest "card/dim/min/max match model" gen_verts (fun l ->
        let s = Simplex.of_list l and m = Model.of_list l in
        Simplex.card s = List.length m
        && Simplex.dim s = List.length m - 1
        && (m = [] || Simplex.min_vertex s = List.hd m)
        && (m = [] || Simplex.max_vertex s = List.nth m (List.length m - 1)));
    qtest "mem matches model" gen_verts (fun l ->
        let s = Simplex.of_list l and m = Model.of_list l in
        List.for_all (fun v -> Simplex.mem v s = List.mem v m) (List.init 14 Fun.id));
    qtest "union matches model" gen_pair (fun (a, b) ->
        Simplex.to_list (Simplex.union (Simplex.of_list a) (Simplex.of_list b))
        = Model.union a b);
    qtest "inter matches model" gen_pair (fun (a, b) ->
        Simplex.to_list (Simplex.inter (Simplex.of_list a) (Simplex.of_list b))
        = Model.inter (Model.of_list a) (Model.of_list b));
    qtest "diff matches model" gen_pair (fun (a, b) ->
        Simplex.to_list (Simplex.diff (Simplex.of_list a) (Simplex.of_list b))
        = Model.diff (Model.of_list a) (Model.of_list b));
    qtest "subset matches model" gen_pair (fun (a, b) ->
        Simplex.subset (Simplex.of_list a) (Simplex.of_list b)
        = Model.subset (Model.of_list a) (Model.of_list b));
    qtest "add/remove match model"
      QCheck2.Gen.(pair gen_verts (int_range 0 13))
      (fun (l, v) ->
        let s = Simplex.of_list l in
        Simplex.to_list (Simplex.add v s) = Model.add v (Model.of_list l)
        && Simplex.to_list (Simplex.remove v s) = Model.remove v (Model.of_list l));
    qtest "compare is the sorted-list order" gen_pair (fun (a, b) ->
        let c = Simplex.compare (Simplex.of_list a) (Simplex.of_list b) in
        let m = Stdlib.compare (Model.of_list a) (Model.of_list b) in
        (c < 0) = (m < 0) && (c > 0) = (m > 0));
    qtest "faces match model" gen_verts (fun l ->
        let s = Simplex.of_list l in
        sorted_faces (List.map Simplex.to_list (Simplex.faces s))
        = sorted_faces (Model.faces (Model.of_list l)));
    qtest "proper_faces = faces minus self" gen_verts (fun l ->
        let s = Simplex.of_list l in
        sorted_faces (List.map Simplex.to_list (Simplex.proper_faces s))
        = sorted_faces
            (List.filter (fun f -> f <> Model.of_list l) (Model.faces (Model.of_list l))));
    qtest "facets match model" gen_verts (fun l ->
        let s = Simplex.of_list l in
        sorted_faces (List.map Simplex.to_list (Simplex.facets s))
        = sorted_faces (Model.facets (Model.of_list l)));
    qtest "iter/fold visit vertices in order" gen_verts (fun l ->
        let s = Simplex.of_list l in
        let seen = ref [] in
        Simplex.iter (fun v -> seen := v :: !seen) s;
        List.rev !seen = Model.of_list l
        && Simplex.fold (fun acc v -> v :: acc) [] s = List.rev (Model.of_list l));
  ]

(* ------------------------------------------------------------------ *)
(* Interning invariants                                                *)
(* ------------------------------------------------------------------ *)

let interning_tests =
  [
    qtest "equal ⟺ physical equality" gen_pair (fun (a, b) ->
        let s = Simplex.of_list a and t = Simplex.of_list b in
        Simplex.equal s t = (s == t)
        && (Model.of_list a = Model.of_list b) = (s == t));
    qtest "equal ⟺ id equality" gen_pair (fun (a, b) ->
        let s = Simplex.of_list a and t = Simplex.of_list b in
        Simplex.equal s t = (Simplex.id s = Simplex.id t));
    qtest "set operations return interned representatives" gen_pair (fun (a, b) ->
        let s = Simplex.of_list a and t = Simplex.of_list b in
        let u = Simplex.union s t in
        u == Simplex.of_list (Model.union a b)
        && Simplex.inter s t == Simplex.of_list (Model.inter (Model.of_list a) (Model.of_list b))
        && Simplex.diff s t == Simplex.of_list (Model.diff (Model.of_list a) (Model.of_list b)));
    qtest "hash agrees with equality" gen_pair (fun (a, b) ->
        let s = Simplex.of_list a and t = Simplex.of_list b in
        (not (Simplex.equal s t)) || Simplex.hash s = Simplex.hash t);
    qtest "Tbl keys by identity" gen_pair (fun (a, b) ->
        let s = Simplex.of_list a and t = Simplex.of_list b in
        let tbl = Simplex.Tbl.create 4 in
        Simplex.Tbl.replace tbl s 1;
        Simplex.Tbl.replace tbl t 2;
        Simplex.Tbl.length tbl = (if Simplex.equal s t then 1 else 2)
        && Simplex.Tbl.find tbl t = 2);
  ]

let () =
  Alcotest.run "wfc_simplex_props"
    [ ("model agreement", model_tests); ("interning", interning_tests) ]
