(* Tests for the task library. *)

open Wfc_topology
open Wfc_model
open Wfc_tasks

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let well name task = checkb (name ^ " well-formed") true (Task.well_formed task = Ok ())

let task_unit_tests =
  [
    Alcotest.test_case "all instances are well-formed" `Quick (fun () ->
        well "consensus 2" (Instances.binary_consensus ~procs:2);
        well "consensus 3" (Instances.binary_consensus ~procs:3);
        well "set-consensus 3 2" (Instances.set_consensus ~procs:3 ~k:2);
        well "set-consensus 3 3" (Instances.set_consensus ~procs:3 ~k:3);
        well "renaming 2 3" (Instances.adaptive_renaming ~procs:2 ~names:3);
        well "approx 2 3" (Instances.approximate_agreement ~procs:2 ~grid:3);
        well "id 3" (Instances.id_task ~procs:3));
    Alcotest.test_case "rejects tasks with no legal output" `Quick (fun () ->
        (try
           ignore
             (Task.of_relation ~name:"impossible" ~procs:2
                ~inputs:(fun _ -> [ "x" ])
                ~outputs:(fun _ -> [ "y" ])
                ~legal:(fun ~participants:_ ~input:_ ~output:_ -> false));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "consensus complexes have the right shape" `Quick (fun () ->
        let t = Instances.binary_consensus ~procs:2 in
        let icx = Chromatic.complex t.Task.input in
        let ocx = Chromatic.complex t.Task.output in
        checki "4 input vertices" 4 (Complex.num_vertices icx);
        checki "4 input facets" 4 (Complex.num_facets icx);
        (* output: the two monochromatic edges *)
        checki "2 output facets" 2 (Complex.num_facets ocx);
        checkb "output disconnected" false (Complex.is_connected ocx));
    Alcotest.test_case "consensus delta enforces validity" `Quick (fun () ->
        let t = Instances.binary_consensus ~procs:2 in
        let v00 = Option.get (Task.input_vertex t ~proc:0 ~value:"0") in
        let v11 = Option.get (Task.input_vertex t ~proc:1 ~value:"1") in
        let mixed = Simplex.of_list [ v00; v11 ] in
        (* with inputs 0 and 1 both all-0 and all-1 outputs are allowed *)
        checki "two allowed tuples" 2 (List.length (t.Task.delta mixed));
        let v10 = Option.get (Task.input_vertex t ~proc:1 ~value:"0") in
        let same = Simplex.of_list [ v00; v10 ] in
        checki "only all-0 allowed" 1 (List.length (t.Task.delta same)));
    Alcotest.test_case "allows respects faces" `Quick (fun () ->
        let t = Instances.binary_consensus ~procs:2 in
        let v00 = Option.get (Task.input_vertex t ~proc:0 ~value:"0") in
        let v11 = Option.get (Task.input_vertex t ~proc:1 ~value:"1") in
        let si = Simplex.of_list [ v00; v11 ] in
        let w0 = Option.get (Task.output_vertex t ~proc:0 ~value:"1") in
        (* P0 deciding 1 alone is a face of the all-1 tuple *)
        checkb "partial output allowed" true (Task.allows t si (Simplex.of_list [ w0 ])));
    Alcotest.test_case "input/output vertex lookup" `Quick (fun () ->
        let t = Instances.set_consensus ~procs:3 ~k:2 in
        checkb "input exists" true (Task.input_vertex t ~proc:1 ~value:"1" <> None);
        checkb "no wrong input" true (Task.input_vertex t ~proc:1 ~value:"2" = None);
        checkb "output exists" true (Task.output_vertex t ~proc:1 ~value:"2" <> None);
        let w = Option.get (Task.output_vertex t ~proc:2 ~value:"0") in
        checki "color" 2 (Task.proc_of_output t w));
    Alcotest.test_case "approximate agreement output complex is a path of cliques" `Quick
      (fun () ->
        let t = Instances.approximate_agreement ~procs:2 ~grid:3 in
        let ocx = Chromatic.complex t.Task.output in
        checkb "connected" true (Complex.is_connected ocx);
        checki "8 vertices (2 procs x 4 grid points)" 8 (Complex.num_vertices ocx));
  ]

let product_unit_tests =
  [
    Alcotest.test_case "product is well-formed" `Quick (fun () ->
        let p =
          Task.product
            (Instances.adaptive_renaming ~procs:2 ~names:3)
            (Instances.approximate_agreement ~procs:2 ~grid:3)
        in
        checkb "well-formed" true (Task.well_formed p = Ok ()));
    Alcotest.test_case "product sizes multiply" `Quick (fun () ->
        let a = Instances.id_task ~procs:2 and b = Instances.binary_consensus ~procs:2 in
        let p = Task.product a b in
        (* id has 1 input per proc, consensus 2: product has 2 *)
        checki "input vertices" 4 (Complex.num_vertices (Chromatic.complex p.Task.input)));
    Alcotest.test_case "rejects mismatched process counts" `Quick (fun () ->
        (try
           ignore (Task.product (Instances.id_task ~procs:2) (Instances.id_task ~procs:3));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Content-addressed digests                                            *)
(* ------------------------------------------------------------------ *)

(* Binary consensus rebuilt from scratch with every enumeration order
   scrambled by [seed]: same combinatorial task, different construction
   order, different name. Its digest must not move. *)
let scrambled_consensus seed =
  let rng = Random.State.make [| seed |] in
  let shuffle l =
    let a = Array.of_list l in
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  Task.of_relation
    ~name:(Printf.sprintf "shuffled-consensus-%d" seed)
    ~procs:2
    ~inputs:(fun _ -> shuffle [ "0"; "1" ])
    ~outputs:(fun _ -> shuffle [ "0"; "1" ])
    ~legal:(fun ~participants ~input ~output ->
      match List.map output participants with
      | [] -> false
      | d :: rest ->
        List.for_all (( = ) d) rest
        && List.exists (fun p -> input p = d) participants)

let digest_unit_tests =
  [
    Alcotest.test_case "digest is stable across reconstruction" `Quick (fun () ->
        Alcotest.check Alcotest.string "same digest"
          (Task.digest (Instances.binary_consensus ~procs:2))
          (Task.digest (Instances.binary_consensus ~procs:2)));
    Alcotest.test_case "digest ignores the task name" `Quick (fun () ->
        Alcotest.check Alcotest.string "renamed"
          (Task.digest (scrambled_consensus 0))
          (Task.digest (scrambled_consensus 0)));
    Alcotest.test_case "different tasks get different digests" `Quick (fun () ->
        let digests =
          List.map Task.digest
            [
              Instances.binary_consensus ~procs:2;
              Instances.binary_consensus ~procs:3;
              Instances.set_consensus ~procs:3 ~k:2;
              Instances.set_consensus ~procs:3 ~k:3;
              Instances.adaptive_renaming ~procs:2 ~names:3;
              Instances.approximate_agreement ~procs:2 ~grid:3;
              Instances.id_task ~procs:3;
            ]
        in
        checki "all distinct" (List.length digests)
          (List.length (List.sort_uniq compare digests)));
    Alcotest.test_case "by_name round-trips to the constructors" `Quick (fun () ->
        Alcotest.check Alcotest.string "set-consensus"
          (Task.digest (Instances.set_consensus ~procs:3 ~k:2))
          (Task.digest (Instances.by_name ~name:"set-consensus" ~procs:3 ~param:2));
        (try
           ignore (Instances.by_name ~name:"no-such-task" ~procs:2 ~param:0);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
  ]

let digest_prop_tests =
  [
    qtest ~count:50
      "digest is invariant under enumeration order and naming"
      QCheck2.Gen.(int_range 1 10_000)
      (fun seed ->
        Task.digest (scrambled_consensus seed) = Task.digest (scrambled_consensus 0));
    qtest ~count:30 "canonical JSON bytes are order-insensitive too"
      QCheck2.Gen.(int_range 1 5_000)
      (fun seed ->
        Wfc_obs.Json.to_string (Task.canonical_json (scrambled_consensus seed))
        = Wfc_obs.Json.to_string (Task.canonical_json (scrambled_consensus 0)));
  ]

(* ------------------------------------------------------------------ *)
(* Simplex agreement tasks                                              *)
(* ------------------------------------------------------------------ *)

let sa_unit_tests =
  [
    Alcotest.test_case "CSASS over SDS(s^1) is well-formed" `Quick (fun () ->
        let target = Sds.subdiv (Sds.standard ~dim:1 ~levels:1) in
        well "csass" (Simplex_agreement.chromatic target);
        well "ncsass" (Simplex_agreement.non_chromatic target));
    Alcotest.test_case "CSASS output vertices carry target colors" `Quick (fun () ->
        let target = Sds.subdiv (Sds.standard ~dim:1 ~levels:1) in
        let t = Simplex_agreement.chromatic target in
        List.iter
          (fun w ->
            let tv = Simplex_agreement.output_vertex_in_target t w in
            checki "colors line up"
              (Chromatic.color target.Subdiv.cx tv)
              (Task.proc_of_output t w))
          (Complex.vertices (Chromatic.complex t.Task.output)));
    Alcotest.test_case "solo participants must stay on their corner" `Quick (fun () ->
        let target = Sds.subdiv (Sds.standard ~dim:1 ~levels:1) in
        let t = Simplex_agreement.chromatic target in
        let v0 = Option.get (Task.input_vertex t ~proc:0 ~value:"corner0") in
        let allowed = t.Task.delta (Simplex.of_list [ v0 ]) in
        (* carrier of the output must be inside {corner 0}: only the corner
           vertex itself qualifies *)
        checki "single choice" 1 (List.length allowed));
    Alcotest.test_case "rejects non-standard bases" `Quick (fun () ->
        let base =
          Chromatic.make (Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ] ]) ~color:(fun v -> v mod 2)
        in
        (try
           ignore (Simplex_agreement.chromatic (Subdiv.identity base));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Runnable protocols                                                   *)
(* ------------------------------------------------------------------ *)

let protocol_unit_tests =
  [
    Alcotest.test_case "own-id set consensus" `Quick (fun () ->
        let o = Runtime.run (Protocols.own_id_set_consensus ~procs:3) (Runtime.round_robin ()) in
        Alcotest.check
          (Alcotest.array (Alcotest.option Alcotest.int))
          "ids" [| Some 0; Some 1; Some 2 |] o.Runtime.results);
    Alcotest.test_case "IS renaming under sequential schedule" `Quick (fun () ->
        let o = Runtime.run (Protocols.is_renaming ~procs:3) (Runtime.round_robin ()) in
        let outputs =
          Array.to_list o.Runtime.results |> List.mapi (fun p r -> (p, Option.get r))
        in
        checkb "valid" true
          (Protocols.check_renaming ~participants:[ 0; 1; 2 ] outputs = Ok ()));
    Alcotest.test_case "renaming checker rejects" `Quick (fun () ->
        checkb "duplicate" true
          (Protocols.check_renaming ~participants:[ 0; 1 ] [ (0, 1); (1, 1) ] <> Ok ());
        checkb "range" true
          (Protocols.check_renaming ~participants:[ 0; 1 ] [ (0, 1); (1, 4) ] <> Ok ()));
    Alcotest.test_case "approximate agreement halves the diameter" `Quick (fun () ->
        let inputs = [| Rat.zero; Rat.one |] in
        let o =
          Runtime.run
            (Protocols.approximate_agreement ~procs:2 ~rounds:3 ~inputs)
            (Runtime.round_robin ())
        in
        let outs = Array.to_list o.Runtime.results |> List.filter_map (fun x -> x) in
        checkb "within 1/8" true
          (Protocols.check_approximate ~eps:(Rat.make 1 8) ~inputs:(Array.to_list inputs) outs
          = Ok ()));
    Alcotest.test_case "approximate checker rejects" `Quick (fun () ->
        checkb "diameter" true
          (Protocols.check_approximate ~eps:(Rat.make 1 4) ~inputs:[ Rat.zero; Rat.one ]
             [ Rat.zero; Rat.one ]
          <> Ok ());
        checkb "range" true
          (Protocols.check_approximate ~eps:Rat.one ~inputs:[ Rat.half ]
             [ Rat.of_int 2 ]
          <> Ok ()));
  ]

let protocol_prop_tests =
  [
    qtest "IS renaming is correct under every random adversary"
      QCheck2.Gen.(pair (int_range 0 2000) (int_range 2 6))
      (fun (seed, procs) ->
        let o = Runtime.run (Protocols.is_renaming ~procs) (Runtime.random ~seed ()) in
        let outputs =
          Array.to_list o.Runtime.results |> List.mapi (fun p r -> (p, Option.get r))
        in
        Protocols.check_renaming ~participants:(List.init procs (fun i -> i)) outputs = Ok ());
    qtest "IS renaming stays correct when a process crashes"
      QCheck2.Gen.(pair (int_range 0 500) (int_range 0 3))
      (fun (seed, victim) ->
        let procs = 4 in
        let o =
          Runtime.run (Protocols.is_renaming ~procs)
            (Runtime.random_with_crashes ~seed ~crash:[ victim ] ())
        in
        let outputs =
          Array.to_list o.Runtime.results
          |> List.mapi (fun p r -> (p, r))
          |> List.filter_map (fun (p, r) -> Option.map (fun v -> (p, v)) r)
        in
        Protocols.check_renaming ~participants:(List.init procs (fun i -> i)) outputs = Ok ());
    qtest "approximate agreement converges under every adversary"
      QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 5))
      (fun (seed, rounds) ->
        let inputs = [| Rat.zero; Rat.one; Rat.half |] in
        let o =
          Runtime.run
            (Protocols.approximate_agreement ~procs:3 ~rounds ~inputs)
            (Runtime.random ~seed ())
        in
        let outs = Array.to_list o.Runtime.results |> List.filter_map (fun x -> x) in
        let eps = Rat.make 1 (1 lsl rounds) in
        Protocols.check_approximate ~eps ~inputs:(Array.to_list inputs) outs = Ok ());
  ]

let () =
  Alcotest.run "wfc_tasks"
    [
      ("task", task_unit_tests @ product_unit_tests);
      ("digest", digest_unit_tests @ digest_prop_tests);
      ("simplex-agreement", sa_unit_tests);
      ("protocols", protocol_unit_tests @ protocol_prop_tests);
    ]
