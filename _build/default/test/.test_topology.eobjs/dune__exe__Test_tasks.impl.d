test/test_tasks.ml: Alcotest Array Chromatic Complex Instances List Option Protocols QCheck2 QCheck_alcotest Rat Runtime Sds Simplex Simplex_agreement Subdiv Task Wfc_model Wfc_tasks Wfc_topology
