(* Tests for the combinatorial/geometric topology substrate. *)

open Wfc_topology

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rat                                                                  *)
(* ------------------------------------------------------------------ *)

let rat_gen =
  QCheck2.Gen.(
    map2
      (fun n d -> Rat.make n d)
      (int_range (-10_000) 10_000)
      (map (fun d -> if d = 0 then 1 else d) (int_range (-500) 500)))

let rat_testable = Alcotest.testable Rat.pp Rat.equal

let rat_unit_tests =
  [
    Alcotest.test_case "normalization" `Quick (fun () ->
        check rat_testable "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
        check rat_testable "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
        check rat_testable "0/5 = 0" Rat.zero (Rat.make 0 5);
        checki "den of -1/-2" 2 (Rat.den (Rat.make 1 (-2)) * -1 |> abs);
        check rat_testable "1/-2 = -1/2" (Rat.make (-1) 2) (Rat.make 1 (-2)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        check rat_testable "1/2 + 1/3" (Rat.make 5 6) (Rat.add Rat.half (Rat.make 1 3));
        check rat_testable "1/2 * 2/3" (Rat.make 1 3) (Rat.mul Rat.half (Rat.make 2 3));
        check rat_testable "(1/2) / (3/4)" (Rat.make 2 3) (Rat.div Rat.half (Rat.make 3 4));
        check rat_testable "1 - 1/3" (Rat.make 2 3) (Rat.sub Rat.one (Rat.make 1 3)));
    Alcotest.test_case "division by zero" `Quick (fun () ->
        Alcotest.check_raises "make x 0" Rat.Division_by_zero (fun () ->
            ignore (Rat.make 1 0));
        Alcotest.check_raises "inv 0" Rat.Division_by_zero (fun () -> ignore (Rat.inv Rat.zero));
        Alcotest.check_raises "div by 0" Rat.Division_by_zero (fun () ->
            ignore (Rat.div Rat.one Rat.zero)));
    Alcotest.test_case "compare and ordering" `Quick (fun () ->
        checkb "1/3 < 1/2" true Rat.(make 1 3 < half);
        checkb "-1/2 < 1/3" true Rat.(make (-1) 2 < make 1 3);
        check rat_testable "min" (Rat.make 1 3) (Rat.min (Rat.make 1 3) Rat.half);
        check rat_testable "max" Rat.half (Rat.max (Rat.make 1 3) Rat.half));
    Alcotest.test_case "to_string / to_float" `Quick (fun () ->
        Alcotest.check Alcotest.string "3/2" "3/2" (Rat.to_string (Rat.make 3 2));
        Alcotest.check Alcotest.string "int prints bare" "7" (Rat.to_string (Rat.of_int 7));
        Alcotest.check (Alcotest.float 1e-12) "0.5" 0.5 (Rat.to_float Rat.half));
    Alcotest.test_case "sum and scale" `Quick (fun () ->
        check rat_testable "sum thirds" Rat.one
          (Rat.sum [ Rat.make 1 3; Rat.make 1 3; Rat.make 1 3 ]);
        check rat_testable "scale" (Rat.make 3 2) (Rat.scale 3 Rat.half));
    Alcotest.test_case "overflow detection" `Quick (fun () ->
        let big = Rat.make max_int 1 in
        Alcotest.check_raises "add overflow" Rat.Overflow (fun () -> ignore (Rat.add big big)));
  ]

let rat_prop_tests =
  [
    qtest "add commutative" QCheck2.Gen.(pair rat_gen rat_gen) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    qtest "mul commutative" QCheck2.Gen.(pair rat_gen rat_gen) (fun (a, b) ->
        Rat.equal (Rat.mul a b) (Rat.mul b a));
    qtest "add associative" QCheck2.Gen.(triple rat_gen rat_gen rat_gen) (fun (a, b, c) ->
        Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c));
    qtest "distributivity" QCheck2.Gen.(triple rat_gen rat_gen rat_gen) (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    qtest "sub then add round-trips" QCheck2.Gen.(pair rat_gen rat_gen) (fun (a, b) ->
        Rat.equal a (Rat.add (Rat.sub a b) b));
    qtest "normalized: gcd(num,den)=1, den>0" rat_gen (fun q ->
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        Rat.den q > 0 && (Rat.num q = 0 || gcd (abs (Rat.num q)) (Rat.den q) = 1));
    qtest "inv . inv = id (nonzero)" rat_gen (fun q ->
        Rat.is_zero q || Rat.equal q (Rat.inv (Rat.inv q)));
    qtest "compare consistent with sub sign" QCheck2.Gen.(pair rat_gen rat_gen) (fun (a, b) ->
        compare (Rat.compare a b) 0 = compare (Rat.sign (Rat.sub a b)) 0);
  ]

(* ------------------------------------------------------------------ *)
(* Point                                                                *)
(* ------------------------------------------------------------------ *)

let point_unit_tests =
  [
    Alcotest.test_case "unit points and barycenter" `Quick (fun () ->
        let p = Point.barycenter [ Point.unit 3 0; Point.unit 3 1; Point.unit 3 2 ] in
        checkb "barycenter is barycentric" true (Point.is_barycentric p);
        check rat_testable "coord" (Rat.make 1 3) (Point.coord p 0));
    Alcotest.test_case "midpoint" `Quick (fun () ->
        let m = Point.midpoint (Point.unit 2 0) (Point.unit 2 1) in
        check rat_testable "x" Rat.half (Point.coord m 0);
        check rat_testable "y" Rat.half (Point.coord m 1));
    Alcotest.test_case "determinant" `Quick (fun () ->
        let m = [| [| Rat.of_int 2; Rat.zero |]; [| Rat.zero; Rat.of_int 3 |] |] in
        check rat_testable "diag det" (Rat.of_int 6) (Point.det m);
        let singular = [| [| Rat.one; Rat.one |]; [| Rat.one; Rat.one |] |] in
        check rat_testable "singular" Rat.zero (Point.det singular));
    Alcotest.test_case "volume" `Quick (fun () ->
        (* unit right triangle in the plane: scaled volume 1 *)
        let p0 = Point.of_ints [ 0; 0 ]
        and p1 = Point.of_ints [ 1; 0 ]
        and p2 = Point.of_ints [ 0; 1 ] in
        check rat_testable "scaled area" Rat.one (Point.simplex_volume_scaled [ p0; p1; p2 ]);
        checkb "affinely independent" true (Point.affinely_independent [ p0; p1; p2 ]);
        checkb "dependent" false
          (Point.affinely_independent [ p0; p1; Point.of_ints [ 2; 0 ] ]));
    Alcotest.test_case "solve_barycentric" `Quick (fun () ->
        let corners = [ Point.unit 3 0; Point.unit 3 1; Point.unit 3 2 ] in
        let q =
          Point.combine
            [ (Rat.make 1 6, List.nth corners 0);
              (Rat.make 2 6, List.nth corners 1);
              (Rat.make 3 6, List.nth corners 2) ]
        in
        (match Point.solve_barycentric corners q with
        | Some [ a; b; c ] ->
          check rat_testable "l0" (Rat.make 1 6) a;
          check rat_testable "l1" (Rat.make 2 6) b;
          check rat_testable "l2" (Rat.make 3 6) c
        | _ -> Alcotest.fail "expected coefficients");
        checkb "interior in simplex" true (Point.in_simplex corners q);
        checkb "interior in open simplex" true (Point.in_open_simplex corners q);
        checkb "vertex not in open simplex" false
          (Point.in_open_simplex corners (List.hd corners));
        checkb "vertex in closed simplex" true (Point.in_simplex corners (List.hd corners)));
    Alcotest.test_case "outside affine hull" `Quick (fun () ->
        let seg = [ Point.unit 3 0; Point.unit 3 1 ] in
        checkb "third corner outside segment" false (Point.in_simplex seg (Point.unit 3 2)));
  ]

let weights_gen k =
  QCheck2.Gen.(list_size (return k) (int_range 1 100))

let point_prop_tests =
  [
    qtest "random convex combos are barycentric and located" (weights_gen 3) (fun ws ->
        let total = List.fold_left ( + ) 0 ws in
        let corners = [ Point.unit 3 0; Point.unit 3 1; Point.unit 3 2 ] in
        let q =
          Point.combine (List.map2 (fun w c -> (Rat.make w total, c)) ws corners)
        in
        Point.is_barycentric q && Point.in_open_simplex corners q);
    qtest "solve_barycentric reconstructs the point" (weights_gen 4) (fun ws ->
        let total = List.fold_left ( + ) 0 ws in
        let corners = List.init 4 (Point.unit 4) in
        let q = Point.combine (List.map2 (fun w c -> (Rat.make w total, c)) ws corners) in
        match Point.solve_barycentric corners q with
        | None -> false
        | Some ls -> Point.equal q (Point.combine (List.combine ls corners)));
  ]

(* ------------------------------------------------------------------ *)
(* Simplex                                                              *)
(* ------------------------------------------------------------------ *)

let simplex_gen = QCheck2.Gen.(map Simplex.of_list (list_size (int_range 0 8) (int_range 0 15)))

let simplex_unit_tests =
  [
    Alcotest.test_case "canonical form" `Quick (fun () ->
        checkb "dedup + sort" true
          (Simplex.equal (Simplex.of_list [ 3; 1; 3; 2 ]) (Simplex.of_list [ 1; 2; 3 ]));
        checki "dim" 2 (Simplex.dim (Simplex.of_list [ 5; 1; 9 ]));
        checki "empty dim" (-1) (Simplex.dim Simplex.empty));
    Alcotest.test_case "faces" `Quick (fun () ->
        let s = Simplex.of_list [ 0; 1; 2 ] in
        checki "7 nonempty faces" 7 (List.length (Simplex.faces s));
        checki "6 proper" 6 (List.length (Simplex.proper_faces s));
        checki "3 facets" 3 (List.length (Simplex.facets s));
        checki "choose 2 of 3" 3 (List.length (Simplex.subsets_of_card 2 s)));
    Alcotest.test_case "set operations" `Quick (fun () ->
        let a = Simplex.of_list [ 1; 2; 3 ] and b = Simplex.of_list [ 2; 3; 4 ] in
        checkb "union" true (Simplex.equal (Simplex.union a b) (Simplex.of_list [ 1; 2; 3; 4 ]));
        checkb "inter" true (Simplex.equal (Simplex.inter a b) (Simplex.of_list [ 2; 3 ]));
        checkb "diff" true (Simplex.equal (Simplex.diff a b) (Simplex.of_list [ 1 ]));
        checkb "subset" true (Simplex.subset (Simplex.of_list [ 2; 3 ]) a);
        checkb "not subset" false (Simplex.subset b a));
  ]

let simplex_prop_tests =
  [
    qtest "union is lub" QCheck2.Gen.(pair simplex_gen simplex_gen) (fun (a, b) ->
        let u = Simplex.union a b in
        Simplex.subset a u && Simplex.subset b u
        && Simplex.card u <= Simplex.card a + Simplex.card b);
    qtest "inter is glb" QCheck2.Gen.(pair simplex_gen simplex_gen) (fun (a, b) ->
        let i = Simplex.inter a b in
        Simplex.subset i a && Simplex.subset i b);
    qtest "diff disjoint from subtrahend" QCheck2.Gen.(pair simplex_gen simplex_gen)
      (fun (a, b) -> Simplex.is_empty (Simplex.inter (Simplex.diff a b) b));
    qtest "faces count = 2^card - 1" simplex_gen (fun s ->
        Simplex.card s > 12
        || List.length (Simplex.faces s) = (1 lsl Simplex.card s) - 1);
    qtest "every face is a subset" simplex_gen (fun s ->
        List.for_all (fun f -> Simplex.subset f s) (Simplex.faces s));
  ]

(* ------------------------------------------------------------------ *)
(* Complex                                                              *)
(* ------------------------------------------------------------------ *)

let triangle_plus_tail () = Complex.of_facets [ [ 0; 1; 2 ]; [ 2; 3 ] ]

let complex_unit_tests =
  [
    Alcotest.test_case "construction drops non-maximal" `Quick (fun () ->
        let c = Complex.of_facets [ [ 0; 1 ]; [ 0; 1; 2 ]; [ 1; 2 ] ] in
        checki "one facet" 1 (Complex.num_facets c);
        checki "dim" 2 (Complex.dim c));
    Alcotest.test_case "rejects bad input" `Quick (fun () ->
        Alcotest.check_raises "empty complex" (Invalid_argument "Complex.of_simplices: empty complex")
          (fun () -> ignore (Complex.of_facets []));
        Alcotest.check_raises "negative vertex"
          (Invalid_argument "Complex.of_simplices: negative vertex") (fun () ->
            ignore (Complex.of_facets [ [ -1; 2 ] ])));
    Alcotest.test_case "faces and f-vector" `Quick (fun () ->
        let c = triangle_plus_tail () in
        checki "vertices" 4 (Complex.num_vertices c);
        checki "edges" 4 (List.length (Complex.faces c ~dim:1));
        checki "triangles" 1 (List.length (Complex.faces c ~dim:2));
        check (Alcotest.array Alcotest.int) "f-vector" [| 4; 4; 1 |] (Complex.f_vector c);
        checki "euler = 4-4+1" 1 (Complex.euler_characteristic c);
        checki "num simplices" 9 (Complex.num_simplices c));
    Alcotest.test_case "membership" `Quick (fun () ->
        let c = triangle_plus_tail () in
        checkb "edge" true (Complex.mem (Simplex.of_list [ 0; 2 ]) c);
        checkb "non-edge" false (Complex.mem (Simplex.of_list [ 0; 3 ]) c);
        checkb "vertex" true (Complex.mem_vertex 3 c);
        checkb "is_facet" true (Complex.is_facet (Simplex.of_list [ 2; 3 ]) c);
        checkb "face not facet" false (Complex.is_facet (Simplex.of_list [ 0; 1 ]) c));
    Alcotest.test_case "purity" `Quick (fun () ->
        checkb "mixed dims not pure" false (Complex.is_pure (triangle_plus_tail ()));
        checkb "simplex pure" true (Complex.is_pure (Complex.full_simplex 3)));
    Alcotest.test_case "skeleton" `Quick (fun () ->
        let sk = Complex.skeleton 1 (Complex.full_simplex 3) in
        checki "dim" 1 (Complex.dim sk);
        checki "6 edges" 6 (Complex.num_facets sk));
    Alcotest.test_case "star and link" `Quick (fun () ->
        let c = triangle_plus_tail () in
        let star2 = Complex.star (Simplex.singleton 2) c in
        checki "star of 2 has both facets" 2 (Complex.num_facets star2);
        (match Complex.link (Simplex.singleton 2) c with
        | Some l ->
          checkb "0-1 edge in link" true (Complex.mem (Simplex.of_list [ 0; 1 ]) l);
          checkb "3 in link" true (Complex.mem_vertex 3 l)
        | None -> Alcotest.fail "link of 2 must exist");
        (match Complex.link (Simplex.of_list [ 2; 3 ]) c with
        | None -> ()
        | Some _ -> Alcotest.fail "link of a facet is empty"));
    Alcotest.test_case "boundary" `Quick (fun () ->
        (match Complex.boundary (Complex.full_simplex 2) with
        | Some b -> checki "triangle boundary = 3 edges" 3 (Complex.num_facets b)
        | None -> Alcotest.fail "expected boundary");
        (* boundary of the boundary sphere is empty *)
        match Complex.boundary (Option.get (Complex.boundary (Complex.full_simplex 3))) with
        | None -> ()
        | Some _ -> Alcotest.fail "sphere has no boundary");
    Alcotest.test_case "connectivity" `Quick (fun () ->
        checkb "connected" true (Complex.is_connected (triangle_plus_tail ()));
        let two = Complex.of_facets [ [ 0; 1 ]; [ 2; 3 ] ] in
        checkb "disconnected" false (Complex.is_connected two);
        checki "components" 2 (List.length (Complex.connected_components two)));
    Alcotest.test_case "pseudomanifold" `Quick (fun () ->
        checkb "sphere is pseudomanifold" true
          (Complex.is_pseudomanifold (Option.get (Complex.boundary (Complex.full_simplex 3))));
        let three_triangles_share_edge =
          Complex.of_facets [ [ 0; 1; 2 ]; [ 0; 1; 3 ]; [ 0; 1; 4 ] ]
        in
        checkb "book of 3 pages is not" false
          (Complex.is_pseudomanifold three_triangles_share_edge));
    Alcotest.test_case "relabel" `Quick (fun () ->
        let c = Complex.relabel (fun v -> v + 10) (triangle_plus_tail ()) in
        checkb "facet moved" true (Complex.mem (Simplex.of_list [ 10; 11; 12 ]) c);
        Alcotest.check_raises "non-injective"
          (Invalid_argument "Complex.relabel: renaming is not injective on a simplex") (fun () ->
            ignore (Complex.relabel (fun _ -> 0) (triangle_plus_tail ()))));
    Alcotest.test_case "induced" `Quick (fun () ->
        match Complex.induced (triangle_plus_tail ()) [ 0; 1; 3 ] with
        | Some c ->
          checkb "edge 0-1 kept" true (Complex.mem (Simplex.of_list [ 0; 1 ]) c);
          checkb "3 isolated" true (Complex.mem_vertex 3 c);
          checkb "no 0-3 edge" false (Complex.mem (Simplex.of_list [ 0; 3 ]) c)
        | None -> Alcotest.fail "induced should be non-empty");
    Alcotest.test_case "unions" `Quick (fun () ->
        let a = Complex.of_facets [ [ 0; 1 ] ] and b = Complex.of_facets [ [ 2; 3 ] ] in
        checki "disjoint union facets" 2 (Complex.num_facets (Complex.disjoint_union a b));
        Alcotest.check_raises "overlap rejected"
          (Invalid_argument "Complex.disjoint_union: vertex sets overlap") (fun () ->
            ignore (Complex.disjoint_union a a));
        checkb "subcomplex" true (Complex.subcomplex a (Complex.union a b)));
  ]

let small_complex_gen =
  (* random complexes over <= 7 vertices with <= 5 candidate facets *)
  QCheck2.Gen.(
    map
      (fun facets ->
        let facets = List.filter (fun f -> f <> []) facets in
        if facets = [] then Complex.full_simplex 0
        else Complex.of_facets facets)
      (list_size (int_range 1 5) (list_size (int_range 1 4) (int_range 0 6))))

let complex_prop_tests =
  [
    qtest "facets are maximal" small_complex_gen (fun c ->
        let fs = Complex.facets c in
        List.for_all
          (fun f ->
            not
              (List.exists
                 (fun g -> (not (Simplex.equal f g)) && Simplex.subset f g)
                 fs))
          fs);
    qtest "closure is face-closed" small_complex_gen (fun c ->
        List.for_all
          (fun s -> List.for_all (fun f -> Complex.mem f c) (Simplex.faces s))
          (Complex.simplices c));
    qtest "euler = alternating f-vector" small_complex_gen (fun c ->
        let f = Complex.f_vector c in
        let alt = ref 0 in
        Array.iteri (fun k x -> alt := !alt + if k mod 2 = 0 then x else -x) f;
        !alt = Complex.euler_characteristic c);
    qtest "star contains link join base" small_complex_gen (fun c ->
        List.for_all
          (fun v ->
            let s = Simplex.singleton v in
            let star = Complex.star s c in
            Complex.subcomplex star c
            &&
            match Complex.link s c with
            | None -> true
            | Some l ->
              List.for_all
                (fun f -> Complex.mem (Simplex.union f s) star)
                (Complex.facets l))
          (Complex.vertices c));
    qtest "components partition vertices" small_complex_gen (fun c ->
        let comps = Complex.connected_components c in
        List.sort compare (List.concat comps) = Complex.vertices c);
  ]

(* ------------------------------------------------------------------ *)
(* Chromatic                                                            *)
(* ------------------------------------------------------------------ *)

let chromatic_unit_tests =
  [
    Alcotest.test_case "standard simplex" `Quick (fun () ->
        let s = Chromatic.standard_simplex 2 in
        checki "colors" 3 (Chromatic.num_colors s);
        checki "color of 1" 1 (Chromatic.color s 1));
    Alcotest.test_case "rejects improper coloring" `Quick (fun () ->
        Alcotest.check_raises "repeated color"
          (Invalid_argument "Chromatic.make: coloring is not proper (simplex with repeated color)")
          (fun () -> ignore (Chromatic.make (Complex.full_simplex 1) ~color:(fun _ -> 0))));
    Alcotest.test_case "simplex colors and lookup" `Quick (fun () ->
        let s = Chromatic.standard_simplex 3 in
        let sx = Simplex.of_list [ 1; 3 ] in
        checkb "colors of simplex" true
          (Simplex.equal (Chromatic.simplex_colors s sx) (Simplex.of_list [ 1; 3 ]));
        Alcotest.check (Alcotest.option Alcotest.int) "vertex with color" (Some 3)
          (Chromatic.vertex_with_color s sx 3);
        Alcotest.check (Alcotest.option Alcotest.int) "absent color" None
          (Chromatic.vertex_with_color s sx 0));
    Alcotest.test_case "restrict_colors" `Quick (fun () ->
        let s = Chromatic.standard_simplex 2 in
        match Chromatic.restrict_colors s [ 0; 2 ] with
        | Some r ->
          checki "dim drops" 1 (Complex.dim (Chromatic.complex r));
          checkb "edge 0-2" true (Complex.mem (Simplex.of_list [ 0; 2 ]) (Chromatic.complex r))
        | None -> Alcotest.fail "restriction should be non-empty");
    Alcotest.test_case "rename_colors" `Quick (fun () ->
        let s = Chromatic.standard_simplex 1 in
        let r = Chromatic.rename_colors (fun c -> c + 5) s in
        checki "renamed" 5 (Chromatic.color r 0);
        Alcotest.check_raises "non-injective"
          (Invalid_argument "Chromatic.rename_colors: renaming not injective on used colors")
          (fun () -> ignore (Chromatic.rename_colors (fun _ -> 9) s)));
  ]

(* ------------------------------------------------------------------ *)
(* Ordered partitions                                                   *)
(* ------------------------------------------------------------------ *)

let op_unit_tests =
  [
    Alcotest.test_case "fubini numbers" `Quick (fun () ->
        List.iter2
          (fun n expect -> checki (Printf.sprintf "a(%d)" n) expect (Ordered_partition.count n))
          [ 0; 1; 2; 3; 4; 5 ] [ 1; 1; 3; 13; 75; 541 ]);
    Alcotest.test_case "enumerate matches count" `Quick (fun () ->
        List.iter
          (fun n ->
            let set = List.init n (fun i -> i) in
            checki
              (Printf.sprintf "enumerate %d" n)
              (Ordered_partition.count n)
              (List.length (Ordered_partition.enumerate set)))
          [ 0; 1; 2; 3; 4 ]);
    Alcotest.test_case "views are immediate-snapshot views" `Quick (fun () ->
        let p = [ [ 1 ]; [ 0; 2 ] ] in
        checkb "valid" true (Ordered_partition.check p);
        Alcotest.check
          (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.list Alcotest.int)))
          "views"
          [ (0, [ 0; 1; 2 ]); (1, [ 1 ]); (2, [ 0; 1; 2 ]) ]
          (Ordered_partition.views p));
    Alcotest.test_case "invalid partitions rejected" `Quick (fun () ->
        checkb "dup element" false (Ordered_partition.check [ [ 0 ]; [ 0 ] ]);
        checkb "empty block" false (Ordered_partition.check [ []; [ 1 ] ];);
        checkb "unsorted block" false (Ordered_partition.check [ [ 2; 1 ] ]));
    Alcotest.test_case "of_linear" `Quick (fun () ->
        checkb "singleton blocks" true
          (Ordered_partition.check (Ordered_partition.of_linear [ 2; 0; 1 ]));
        checki "blocks" 3 (Ordered_partition.num_blocks (Ordered_partition.of_linear [ 2; 0; 1 ])));
  ]

let op_prop_tests =
  [
    qtest ~count:100 "enumerate yields valid distinct partitions"
      QCheck2.Gen.(int_range 0 4)
      (fun n ->
        let set = List.init n (fun i -> i * 2) in
        let ps = Ordered_partition.enumerate set in
        List.for_all Ordered_partition.check ps
        && List.length (List.sort_uniq compare ps) = List.length ps
        && List.for_all (fun p -> Ordered_partition.elements p = set) ps);
    qtest ~count:100 "random partitions are valid"
      QCheck2.Gen.(pair int (int_range 0 8))
      (fun (seed, n) ->
        let st = Random.State.make [| seed |] in
        let set = List.init n (fun i -> i) in
        let p = Ordered_partition.random st set in
        Ordered_partition.check p && Ordered_partition.elements p = set);
    qtest ~count:100 "views satisfy containment in block order"
      QCheck2.Gen.(pair int (int_range 1 6))
      (fun (seed, n) ->
        let st = Random.State.make [| seed |] in
        let p = Ordered_partition.random st (List.init n (fun i -> i)) in
        let views = Ordered_partition.views p in
        List.for_all
          (fun (_, s1) ->
            List.for_all
              (fun (_, s2) ->
                let sub a b = List.for_all (fun x -> List.mem x b) a in
                sub s1 s2 || sub s2 s1)
              views)
          views);
  ]

(* ------------------------------------------------------------------ *)
(* Subdivisions: SDS and Bsd                                            *)
(* ------------------------------------------------------------------ *)

let sds_unit_tests =
  [
    Alcotest.test_case "facet counts are Fubini powers" `Quick (fun () ->
        List.iter
          (fun (n, b, expect) ->
            let s = Sds.standard ~dim:n ~levels:b in
            checki
              (Printf.sprintf "SDS^%d(s^%d)" b n)
              expect
              (Complex.num_facets (Chromatic.complex (Sds.complex s)));
            checki "count_facets agrees" expect (Sds.count_facets ~dim:n ~levels:b))
          [ (1, 1, 3); (1, 2, 9); (2, 1, 13); (2, 2, 169); (3, 1, 75) ]);
    Alcotest.test_case "chromatic and pure" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:1 in
        let cx = Chromatic.complex (Sds.complex s) in
        checkb "pure" true (Complex.is_pure cx);
        checkb "pseudomanifold" true (Complex.is_pseudomanifold cx);
        checki "twelve vertices" 12 (Complex.num_vertices cx));
    Alcotest.test_case "carrier of corner vs center" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:1 in
        let cx = Chromatic.complex (Sds.complex s) in
        let corners =
          List.filter (fun v -> Simplex.card (Sds.carrier s v) = 1) (Complex.vertices cx)
        in
        let centers =
          List.filter (fun v -> Simplex.card (Sds.carrier s v) = 3) (Complex.vertices cx)
        in
        checki "3 corners" 3 (List.length corners);
        (* central vertices are (i, {0,1,2}) for each color i *)
        checki "3 center vertices" 3 (List.length centers));
    Alcotest.test_case "geometric realization is exact" `Quick (fun () ->
        List.iter
          (fun (n, b) ->
            match Subdiv.check_geometric (Sds.subdiv (Sds.standard ~dim:n ~levels:b)) with
            | Ok () -> ()
            | Error e -> Alcotest.fail (Printf.sprintf "SDS^%d(s^%d): %s" b n e))
          [ (1, 1); (1, 3); (2, 1); (2, 2); (3, 1) ]);
    Alcotest.test_case "sample points covered exactly once" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:2 in
        let sd = Sds.subdiv s in
        let st = Random.State.make [| 42 |] in
        let sigma = Simplex.of_list [ 0; 1; 2 ] in
        for _ = 1 to 25 do
          checki "cover count" 1 (Subdiv.sample_cover_count sd st sigma)
        done);
    Alcotest.test_case "facet_partition round-trips" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:1 in
        let cx = Chromatic.complex (Sds.complex s) in
        List.iter
          (fun f ->
            let p = Sds.facet_partition s f in
            checkb "valid partition" true (Ordered_partition.check p);
            checki "elements = 3" 3 (List.length (Ordered_partition.elements p)))
          (Complex.facets cx));
    Alcotest.test_case "canonical views distinct" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:2 in
        let cx = Chromatic.complex (Sds.complex s) in
        let views = List.map (Sds.canonical_view s) (Complex.vertices cx) in
        checki "all distinct" (List.length views)
          (List.length (List.sort_uniq compare views)));
    Alcotest.test_case "faces restrict correctly" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:1 in
        match Subdiv.face (Sds.subdiv s) (Simplex.of_list [ 0; 1 ]) with
        | Some f ->
          checki "edge face has 3 edges" 3
            (List.length (List.filter (fun x -> Simplex.dim x = 1) (Complex.facets f)))
        | None -> Alcotest.fail "face must exist");
    Alcotest.test_case "boundary of SDS(s^2) is a 9-cycle" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:1 in
        match Complex.boundary (Chromatic.complex (Sds.complex s)) with
        | Some b ->
          checki "9 edges" 9 (Complex.num_facets b);
          checkb "connected" true (Complex.is_connected b)
        | None -> Alcotest.fail "expected boundary");
    Alcotest.test_case "mesh shrinks geometrically" `Quick (fun () ->
        let mesh b = Subdiv.mesh_sq (Sds.subdiv (Sds.standard ~dim:2 ~levels:b)) in
        check rat_testable "base mesh is sqrt(2)^2" (Rat.of_int 2) (mesh 0);
        checkb "level 1 smaller" true (Rat.compare (mesh 1) (mesh 0) < 0);
        checkb "level 2 smaller" true (Rat.compare (mesh 2) (mesh 1) < 0);
        (* squared mesh shrinks at least geometrically with ratio < 1/2 *)
        checkb "geometric" true
          (Rat.compare (mesh 2) (Rat.mul Rat.half (mesh 1)) < 0));
    Alcotest.test_case "vertex_of_view" `Quick (fun () ->
        let s = Sds.standard ~dim:1 ~levels:1 in
        let base_cx = Chromatic.complex (Sds.base s) in
        let full = Simplex.of_list (Complex.vertices base_cx) in
        match Sds.vertex_of_view s ~color:0 ~snap:full with
        | Some v ->
          checki "color" 0 (Sds.color s v);
          checkb "snap" true (Simplex.equal full (Sds.snap s v))
        | None -> Alcotest.fail "expected vertex");
  ]

(* Generic subdivision invariants, checked over a pool of subdivisions. *)
let subdiv_pool () =
  [
    ("SDS(s^1)", Sds.subdiv (Sds.standard ~dim:1 ~levels:1));
    ("SDS^2(s^1)", Sds.subdiv (Sds.standard ~dim:1 ~levels:2));
    ("SDS(s^2)", Sds.subdiv (Sds.standard ~dim:2 ~levels:1));
    ("SDS^2(s^2)", Sds.subdiv (Sds.standard ~dim:2 ~levels:2));
    ("Bsd(s^2)", Subdivision.subdiv (Subdivision.iterate (Chromatic.standard_simplex 2) 1));
    ("Bsd^2(s^1)", Subdivision.subdiv (Subdivision.iterate (Chromatic.standard_simplex 1) 2));
  ]

let subdiv_invariant_tests =
  [
    Alcotest.test_case "facet carriers are base facets" `Quick (fun () ->
        List.iter
          (fun (name, sd) ->
            let base_cx = Chromatic.complex sd.Subdiv.base in
            List.iter
              (fun f ->
                checkb name true
                  (Complex.is_facet (Subdiv.simplex_carrier sd f) base_cx))
              (Complex.facets (Chromatic.complex sd.Subdiv.cx)))
          (subdiv_pool ()));
    Alcotest.test_case "face subcomplexes close under the carrier order" `Quick (fun () ->
        List.iter
          (fun (name, sd) ->
            let base_cx = Chromatic.complex sd.Subdiv.base in
            List.iter
              (fun q ->
                match Subdiv.face sd q with
                | None -> Alcotest.fail (name ^ ": face must exist")
                | Some fc ->
                  List.iter
                    (fun s ->
                      checkb name true (Simplex.subset (Subdiv.simplex_carrier sd s) q))
                    (Complex.facets fc))
              (Complex.simplices base_cx))
          (subdiv_pool ()));
    Alcotest.test_case "boundary vertices carry proper faces" `Quick (fun () ->
        let sd = Sds.subdiv (Sds.standard ~dim:2 ~levels:1) in
        let bvs = Subdiv.boundary_vertices sd in
        checki "9 boundary vertices on SDS(s^2)" 9 (List.length bvs);
        List.iter
          (fun v -> checkb "carrier proper" true (Simplex.card (sd.Subdiv.carrier v) <= 2))
          bvs);
    Alcotest.test_case "carrier_of_point recovers supports" `Quick (fun () ->
        List.iter
          (fun (name, sd) ->
            List.iter
              (fun v ->
                match Subdiv.carrier_of_point sd (sd.Subdiv.point v) with
                | Some c -> checkb name true (Simplex.subset c (sd.Subdiv.carrier v))
                | None -> Alcotest.fail (name ^ ": vertex point must locate"))
              (Complex.vertices (Chromatic.complex sd.Subdiv.cx)))
          (subdiv_pool ()));
    Alcotest.test_case "locate_facet finds every vertex point" `Quick (fun () ->
        let sd = Sds.subdiv (Sds.standard ~dim:2 ~levels:1) in
        List.iter
          (fun v ->
            match Subdiv.locate_facet sd (sd.Subdiv.point v) with
            | Some f -> checkb "located facet contains vertex" true (Simplex.mem v f)
            | None -> Alcotest.fail "vertex must be located")
          (Complex.vertices (Chromatic.complex sd.Subdiv.cx)));
    Alcotest.test_case "levels compose facet counts multiplicatively" `Quick (fun () ->
        let one = Sds.standard ~dim:2 ~levels:1 in
        let two = Sds.subdivide one in
        checki "13 * 13" (13 * 13)
          (Complex.num_facets (Chromatic.complex (Sds.complex two))));
  ]

let bsd_unit_tests =
  [
    Alcotest.test_case "facet counts are factorial powers" `Quick (fun () ->
        List.iter
          (fun (n, k, expect) ->
            let b = Subdivision.iterate (Chromatic.standard_simplex n) k in
            checki
              (Printf.sprintf "Bsd^%d(s^%d)" k n)
              expect
              (Complex.num_facets (Chromatic.complex (Subdivision.complex b)));
            checki "count_facets agrees" expect (Subdivision.count_facets ~dim:n ~levels:k))
          [ (1, 1, 2); (1, 2, 4); (2, 1, 6); (2, 2, 36); (3, 1, 24) ]);
    Alcotest.test_case "geometric realization is exact" `Quick (fun () ->
        List.iter
          (fun (n, k) ->
            match
              Subdiv.check_geometric
                (Subdivision.subdiv (Subdivision.iterate (Chromatic.standard_simplex n) k))
            with
            | Ok () -> ()
            | Error e -> Alcotest.fail (Printf.sprintf "Bsd^%d(s^%d): %s" k n e))
          [ (1, 2); (2, 1); (2, 2); (3, 1) ]);
    Alcotest.test_case "dimension coloring" `Quick (fun () ->
        let b = Subdivision.iterate (Chromatic.standard_simplex 2) 1 in
        let cx = Subdivision.complex b in
        List.iter
          (fun v ->
            checki "color = dim of face"
              (Simplex.dim (Subdivision.face_of_vertex b v))
              (Chromatic.color cx v))
          (Complex.vertices (Chromatic.complex cx)));
    Alcotest.test_case "sds_to_bsd is simplicial and carrier preserving" `Quick (fun () ->
        List.iter
          (fun n ->
            let base = Chromatic.standard_simplex n in
            let s = Sds.iterate base 1 and b = Subdivision.iterate base 1 in
            let phi = Subdivision.sds_to_bsd s b in
            checkb "simplicial" true (Simplicial_map.is_simplicial phi);
            checkb "carrier preserving" true
              (Subdiv.is_carrier_preserving (Sds.subdiv s) (Subdivision.subdiv b) phi))
          [ 1; 2; 3 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Simplicial maps                                                      *)
(* ------------------------------------------------------------------ *)

let map_unit_tests =
  [
    Alcotest.test_case "identity" `Quick (fun () ->
        let c = Complex.full_simplex 2 in
        let id = Simplicial_map.identity c in
        checkb "simplicial" true (Simplicial_map.is_simplicial id);
        checkb "dimension preserving" true (Simplicial_map.is_dimension_preserving id);
        checkb "injective" true (Simplicial_map.is_injective id));
    Alcotest.test_case "collapse detection" `Quick (fun () ->
        let square = Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ] in
        let edge = Complex.of_facets [ [ 0; 1 ] ] in
        let fold = Simplicial_map.make ~src:square ~dst:edge (fun v -> v mod 2) in
        checkb "simplicial" true (Simplicial_map.is_simplicial fold);
        checkb "not dimension preserving is false here" true
          (Simplicial_map.is_dimension_preserving fold);
        checkb "not injective" false (Simplicial_map.is_injective fold));
    Alcotest.test_case "non-simplicial witness" `Quick (fun () ->
        let path = Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ] ] in
        let sparse = Complex.of_facets [ [ 0; 1 ]; [ 2 ] ] in
        let bad = Simplicial_map.make ~src:path ~dst:sparse (fun v -> v) in
        match Simplicial_map.check_simplicial bad with
        | Error f -> checkb "witness is 1-2" true (Simplex.equal f (Simplex.of_list [ 1; 2 ]))
        | Ok () -> Alcotest.fail "expected failure");
    Alcotest.test_case "compose and image" `Quick (fun () ->
        let c = Complex.full_simplex 2 in
        let rot = Simplicial_map.make ~src:c ~dst:c (fun v -> (v + 1) mod 3) in
        let twice = Simplicial_map.compose rot rot in
        checki "rot twice of 0" 2 (Simplicial_map.apply_vertex twice 0);
        checkb "image is whole simplex" true (Complex.equal (Simplicial_map.image rot) c));
    Alcotest.test_case "color preservation" `Quick (fun () ->
        let c = Complex.full_simplex 2 in
        let id = Simplicial_map.identity c in
        checkb "id preserves" true
          (Simplicial_map.is_color_preserving ~src_color:(fun v -> v) ~dst_color:(fun v -> v) id));
  ]

(* ------------------------------------------------------------------ *)
(* Homology                                                             *)
(* ------------------------------------------------------------------ *)

let betti = Alcotest.array Alcotest.int

let homology_unit_tests =
  [
    Alcotest.test_case "balls are acyclic" `Quick (fun () ->
        checkb "s^3" true (Homology.is_acyclic (Complex.full_simplex 3));
        checkb "SDS^2(s^2)" true
          (Homology.is_acyclic (Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:2))));
        checkb "Bsd^2(s^2)" true
          (Homology.is_acyclic
             (Chromatic.complex
                (Subdivision.complex (Subdivision.iterate (Chromatic.standard_simplex 2) 2)))));
    Alcotest.test_case "spheres" `Quick (fun () ->
        let s1 = Option.get (Complex.boundary (Complex.full_simplex 2)) in
        check betti "circle" [| 0; 1 |] (Homology.reduced_betti s1);
        let s2 = Option.get (Complex.boundary (Complex.full_simplex 3)) in
        check betti "2-sphere" [| 0; 0; 1 |] (Homology.reduced_betti s2);
        let s3 = Option.get (Complex.boundary (Complex.full_simplex 4)) in
        check betti "3-sphere" [| 0; 0; 0; 1 |] (Homology.reduced_betti s3));
    Alcotest.test_case "torus" `Quick (fun () ->
        (* 7-vertex (Császár-style) torus: faces {i, i+1, i+3} and
           {i, i+2, i+3} mod 7 — every edge of K7 in exactly two faces. *)
        let face a b c i = [ (i + a) mod 7; (i + b) mod 7; (i + c) mod 7 ] in
        let torus =
          Complex.of_facets
            (List.init 7 (face 0 1 3) @ List.init 7 (face 0 2 3))
        in
        checki "14 faces" 14 (Complex.num_facets torus);
        checki "21 edges (K7)" 21 (List.length (Complex.faces torus ~dim:1));
        checki "euler zero" 0 (Complex.euler_characteristic torus);
        checkb "pseudomanifold" true (Complex.is_pseudomanifold torus);
        check betti "torus betti" [| 0; 2; 1 |] (Homology.reduced_betti torus);
        checkb "has a 1-hole" false (Homology.no_holes_up_to torus 2));
    Alcotest.test_case "disjoint circles" `Quick (fun () ->
        let c1 = Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
        let c2 = Complex.of_facets [ [ 3; 4 ]; [ 4; 5 ]; [ 3; 5 ] ] in
        let two = Complex.disjoint_union c1 c2 in
        check betti "two circles" [| 1; 2 |] (Homology.reduced_betti two);
        checkb "no holes up to 0" false (Homology.no_holes_up_to two 1));
    Alcotest.test_case "euler consistency" `Quick (fun () ->
        List.iter
          (fun c -> checkb (Complex.name c) true (Homology.euler_consistent c))
          [ Complex.full_simplex 3;
            Option.get (Complex.boundary (Complex.full_simplex 3));
            Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:1)) ]);
    Alcotest.test_case "lemma 2.2: SDS links have no low holes" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:1 in
        let cx = Chromatic.complex (Sds.complex s) in
        List.iter
          (fun sq ->
            let q = Simplex.dim sq in
            match Complex.link sq cx with
            | None -> ()
            | Some l ->
              let max_hole = 2 - (q + 1) in
              if max_hole >= 1 then
                checkb
                  (Printf.sprintf "link of %s" (Simplex.to_string sq))
                  true
                  (Homology.no_holes_up_to l max_hole))
          (Complex.simplices cx));
  ]

(* ------------------------------------------------------------------ *)
(* Integer homology (Smith normal form)                                 *)
(* ------------------------------------------------------------------ *)

let rp2 () =
  Complex.of_facets
    [ [ 0; 1; 4 ]; [ 0; 1; 5 ]; [ 0; 2; 3 ]; [ 0; 2; 5 ]; [ 0; 3; 4 ];
      [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ 1; 3; 5 ]; [ 2; 4; 5 ]; [ 3; 4; 5 ] ]

let homology_z_unit_tests =
  [
    Alcotest.test_case "summaries of standard spaces" `Quick (fun () ->
        let check_summary name c expect =
          Alcotest.check Alcotest.string name expect (Homology_z.homology_summary c)
        in
        check_summary "ball" (Complex.full_simplex 3) "H0=Z  H1=0  H2=0  H3=0";
        check_summary "circle"
          (Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ])
          "H0=Z  H1=Z";
        check_summary "2-sphere"
          (Option.get (Complex.boundary (Complex.full_simplex 3)))
          "H0=Z  H1=0  H2=Z";
        let face a b c i = [ (i + a) mod 7; (i + b) mod 7; (i + c) mod 7 ] in
        check_summary "torus"
          (Complex.of_facets (List.init 7 (face 0 1 3) @ List.init 7 (face 0 2 3)))
          "H0=Z  H1=Z^2  H2=Z");
    Alcotest.test_case "projective plane has Z/2 torsion" `Quick (fun () ->
        let c = rp2 () in
        Alcotest.check Alcotest.string "summary" "H0=Z  H1=Z/2  H2=0"
          (Homology_z.homology_summary c);
        (* over Z/2 the torsion shows up as ranks instead *)
        check (Alcotest.array Alcotest.int) "Z/2 betti" [| 0; 1; 1 |] (Homology.reduced_betti c);
        checkb "not acyclic over Z" false (Homology_z.is_acyclic_z c);
        (* torsion invisible to free rank *)
        check (Alcotest.array Alcotest.int) "Z betti" [| 0; 0; 0 |]
          (Homology_z.reduced_betti_z c));
    Alcotest.test_case "SDS is acyclic over Z too" `Quick (fun () ->
        checkb "SDS^2(s^2)" true
          (Homology_z.is_acyclic_z (Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:2))));
        checkb "SDS(s^3)" true
          (Homology_z.is_acyclic_z (Chromatic.complex (Sds.complex (Sds.standard ~dim:3 ~levels:1)))));
    Alcotest.test_case "smith invariants of simple matrices" `Quick (fun () ->
        Alcotest.check (Alcotest.list Alcotest.int) "identity" [ 1; 1 ]
          (Homology_z.smith_invariants [| [| 1; 0 |]; [| 0; 1 |] |]);
        Alcotest.check (Alcotest.list Alcotest.int) "diag(2,6) normalized divisibility"
          [ 2; 6 ]
          (Homology_z.smith_invariants [| [| 2; 0 |]; [| 0; 6 |] |]);
        Alcotest.check (Alcotest.list Alcotest.int) "rank deficient" [ 1 ]
          (Homology_z.smith_invariants [| [| 1; 2 |]; [| 2; 4 |] |]);
        Alcotest.check (Alcotest.list Alcotest.int) "torsion 2" [ 1; 2 ]
          (Homology_z.smith_invariants [| [| 1; 1 |]; [| 1; -1 |] |]);
        Alcotest.check (Alcotest.list Alcotest.int) "zero matrix" []
          (Homology_z.smith_invariants [| [| 0; 0 |] |]));
    Alcotest.test_case "boundary of boundary is zero" `Quick (fun () ->
        let c = Complex.full_simplex 3 in
        let d2 = Homology_z.boundary_matrix c 2 in
        let d3 = Homology_z.boundary_matrix c 3 in
        (* d2 * d3 = 0 *)
        let rows = Array.length d2 and mid = Array.length d3 in
        if rows > 0 && mid > 0 then begin
          let cols = Array.length d3.(0) in
          for r = 0 to rows - 1 do
            for cc = 0 to cols - 1 do
              let s = ref 0 in
              for k = 0 to mid - 1 do
                s := !s + (d2.(r).(k) * d3.(k).(cc))
              done;
              checki "entry zero" 0 !s
            done
          done
        end);
  ]

let homology_z_prop_tests =
  [
    qtest ~count:60 "Z and Z/2 betti agree on random small complexes (no torsion there)"
      small_complex_gen
      (fun c ->
        (* random 2-ish dimensional complexes this small rarely have
           torsion; when ranks differ torsion must explain it *)
        let bz = Homology_z.betti_z c and b2 = Homology.betti c in
        let t = Homology_z.torsion c in
        Array.length bz = Array.length b2
        &&
        let even_part l = List.length (List.filter (fun d -> d mod 2 = 0) l) in
        let ok = ref true in
        Array.iteri
          (fun k bzk ->
            (* universal coefficients: dim H_k(Z/2) = b_k(Z) + 2-torsion of
               H_k + 2-torsion of H_{k-1} *)
            let torsion_here = even_part t.(k) in
            let torsion_below = if k > 0 then even_part t.(k - 1) else 0 in
            if b2.(k) <> bzk + torsion_here + torsion_below then ok := false)
          bz;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Iso                                                                  *)
(* ------------------------------------------------------------------ *)

let iso_unit_tests =
  [
    Alcotest.test_case "relabelled complexes are isomorphic" `Quick (fun () ->
        let c = triangle_plus_tail () in
        let r = Complex.relabel (fun v -> 7 - v) c in
        checkb "isomorphic" true (Iso.isomorphic c r));
    Alcotest.test_case "different shapes are not" `Quick (fun () ->
        let path = Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
        let star = Complex.of_facets [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ] in
        checkb "path vs star" false (Iso.isomorphic path star));
    Alcotest.test_case "color constraints matter" `Quick (fun () ->
        let e = Complex.of_facets [ [ 0; 1 ] ] in
        (* on a bare edge, swapping colors still has the flip isomorphism *)
        checkb "flip handles a color swap" true
          (Iso.isomorphic ~color_src:(fun v -> v) ~color_dst:(fun v -> 1 - v) e e);
        (* on an asymmetric complex, a color rotation kills all isomorphisms *)
        let c = triangle_plus_tail () in
        checkb "plain iso" true (Iso.isomorphic c c);
        checkb "rotated colors fail" false
          (Iso.isomorphic
             ~color_src:(fun v -> v)
             ~color_dst:(fun v -> (v + 1) mod 4)
             c c);
        checkb "consistent colors ok" true
          (Iso.isomorphic ~color_src:(fun v -> v) ~color_dst:(fun v -> v) c c));
    Alcotest.test_case "witness is a real isomorphism" `Quick (fun () ->
        let c = Chromatic.complex (Sds.complex (Sds.standard ~dim:1 ~levels:2)) in
        let r = Complex.relabel (fun v -> v + 100) c in
        match Iso.isomorphism c r with
        | Some phi ->
          checkb "simplicial" true (Simplicial_map.is_simplicial phi);
          checkb "injective" true (Simplicial_map.is_injective phi)
        | None -> Alcotest.fail "expected isomorphism");
    Alcotest.test_case "chromatic isomorphism of SDS relabellings" `Quick (fun () ->
        let a = Sds.complex (Sds.standard ~dim:1 ~levels:1) in
        let b =
          Chromatic.make
            (Complex.relabel (fun v -> v + 50) (Chromatic.complex a))
            ~color:(fun v -> Chromatic.color a (v - 50))
        in
        checkb "chromatic iso" true (Iso.chromatic_isomorphic a b));
  ]

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

let export_unit_tests =
  [
    Alcotest.test_case "dot output mentions every edge" `Quick (fun () ->
        let c = triangle_plus_tail () in
        let dot = Export.dot c in
        checkb "has edge 2-3" true
          (contains dot "v2 -- v3" || contains dot "v3 -- v2"));
    Alcotest.test_case "svg well-formed-ish" `Quick (fun () ->
        let svg = Export.svg (Sds.subdiv (Sds.standard ~dim:2 ~levels:1)) in
        checkb "open tag" true (String.length svg > 100 && String.sub svg 0 4 = "<svg");
        checkb "closes" true (contains svg "</svg>"));
    Alcotest.test_case "tikz rejects high dimension" `Quick (fun () ->
        Alcotest.check_raises "dim 3" (Invalid_argument "Export: base dimension must be <= 2")
          (fun () -> ignore (Export.tikz (Sds.subdiv (Sds.standard ~dim:3 ~levels:1)))));
  ]

(* ------------------------------------------------------------------ *)
(* Fillin                                                               *)
(* ------------------------------------------------------------------ *)

let path_n n = Complex.of_facets (List.init n (fun i -> [ i; i + 1 ]))

let fillin_unit_tests =
  [
    Alcotest.test_case "paths in a path graph" `Quick (fun () ->
        let c = path_n 5 in
        Alcotest.check (Alcotest.option (Alcotest.list Alcotest.int)) "0 to 5"
          (Some [ 0; 1; 2; 3; 4; 5 ])
          (Fillin.path c ~src:0 ~dst:5);
        Alcotest.check (Alcotest.option Alcotest.int) "distance" (Some 5)
          (Fillin.distance c 0 5);
        Alcotest.check (Alcotest.option Alcotest.int) "midpoint rounds down" (Some 2)
          (Fillin.path_midpoint c 0 5);
        checki "diameter" 5 (Fillin.diameter c));
    Alcotest.test_case "path to self and disconnection" `Quick (fun () ->
        let c = path_n 3 in
        Alcotest.check (Alcotest.option (Alcotest.list Alcotest.int)) "self"
          (Some [ 1 ]) (Fillin.path c ~src:1 ~dst:1);
        let two = Complex.of_facets [ [ 0; 1 ]; [ 2; 3 ] ] in
        Alcotest.check (Alcotest.option (Alcotest.list Alcotest.int)) "disconnected" None
          (Fillin.path two ~src:0 ~dst:3));
    Alcotest.test_case "fill_path is a fill-in of the 0-sphere" `Quick (fun () ->
        let c = Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:1)) in
        let vs = Complex.vertices c in
        let a = List.hd vs and b = List.nth vs (List.length vs - 1) in
        match Fillin.fill_path c a b with
        | Some p ->
          checkb "subcomplex" true (Complex.subcomplex p c);
          checkb "connected" true (Complex.is_connected p);
          checkb "contains endpoints" true (Complex.mem_vertex a p && Complex.mem_vertex b p)
        | None -> Alcotest.fail "path must exist");
    Alcotest.test_case "is_cycle" `Quick (fun () ->
        let tri = Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
        checkb "triangle cycle" true (Fillin.is_cycle tri [ 0; 1; 2 ]);
        checkb "too short" false (Fillin.is_cycle tri [ 0; 1 ]);
        checkb "repeats" false (Fillin.is_cycle tri [ 0; 1; 0 ]);
        checkb "missing edge" false (Fillin.is_cycle (path_n 3) [ 0; 1; 2 ]));
    Alcotest.test_case "fill_cycle: boundary of SDS(s^2) fills to all 13 triangles" `Quick
      (fun () ->
        let s = Sds.standard ~dim:2 ~levels:1 in
        let cx = Chromatic.complex (Sds.complex s) in
        let b = Option.get (Complex.boundary cx) in
        (* order the boundary cycle by walking it *)
        let next = Hashtbl.create 16 in
        List.iter
          (fun e ->
            match Simplex.to_list e with
            | [ a; b' ] ->
              let add x y =
                let l = try Hashtbl.find next x with Not_found -> [] in
                Hashtbl.replace next x (y :: l)
              in
              add a b';
              add b' a
            | _ -> ())
          (Complex.facets b);
        let start = List.hd (Complex.vertices b) in
        let rec walk prev v acc =
          let n = List.find (fun x -> x <> prev) (Hashtbl.find next v) in
          if n = start then List.rev acc else walk v n (n :: acc)
        in
        let cycle = walk (-1) start [ start ] in
        checkb "cycle" true (Fillin.is_cycle cx cycle);
        match Fillin.fill_cycle cx cycle with
        | Some d -> checki "all triangles" 13 (Complex.num_facets d)
        | None -> Alcotest.fail "boundary must bound");
    Alcotest.test_case "fill_cycle: interior cycle fills to the star" `Quick (fun () ->
        let s = Sds.standard ~dim:2 ~levels:1 in
        let cx = Chromatic.complex (Sds.complex s) in
        let center =
          List.find (fun v -> Simplex.card (Sds.carrier s v) = 3) (Complex.vertices cx)
        in
        let link = Option.get (Complex.link (Simplex.singleton center) cx) in
        let next = Hashtbl.create 16 in
        List.iter
          (fun e ->
            match Simplex.to_list e with
            | [ a; b' ] ->
              let add x y =
                let l = try Hashtbl.find next x with Not_found -> [] in
                Hashtbl.replace next x (y :: l)
              in
              add a b';
              add b' a
            | _ -> ())
          (Complex.faces link ~dim:1);
        let start = List.hd (Complex.vertices link) in
        let rec walk prev v acc =
          let n = List.find (fun x -> x <> prev) (Hashtbl.find next v) in
          if n = start then List.rev acc else walk v n (n :: acc)
        in
        let cycle = walk (-1) start [ start ] in
        match Fillin.fill_cycle cx cycle with
        | Some d ->
          checki "fills the closed star" (Complex.num_facets (Complex.star (Simplex.singleton center) cx))
            (Complex.num_facets d)
        | None -> Alcotest.fail "interior cycle must bound");
    Alcotest.test_case "fill_cycle rejects non-disks" `Quick (fun () ->
        let circle = Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
        checkb "1-complex has no 2-fill" true (Fillin.fill_cycle circle [ 0; 1; 2 ] = None));
  ]

let () =
  Alcotest.run "wfc_topology"
    [
      ("rat", rat_unit_tests @ rat_prop_tests);
      ("point", point_unit_tests @ point_prop_tests);
      ("simplex", simplex_unit_tests @ simplex_prop_tests);
      ("complex", complex_unit_tests @ complex_prop_tests);
      ("chromatic", chromatic_unit_tests);
      ("ordered-partition", op_unit_tests @ op_prop_tests);
      ("sds", sds_unit_tests);
      ("subdiv", subdiv_invariant_tests);
      ("bsd", bsd_unit_tests);
      ("simplicial-map", map_unit_tests);
      ("homology", homology_unit_tests);
      ("homology-z", homology_z_unit_tests @ homology_z_prop_tests);
      ("iso", iso_unit_tests);
      ("fillin", fillin_unit_tests);
      ("export", export_unit_tests);
    ]
