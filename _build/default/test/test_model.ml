(* Tests for the executable concurrency substrate. *)

open Wfc_topology
open Wfc_model

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Runtime semantics                                                    *)
(* ------------------------------------------------------------------ *)

let write_then_read_protocol i =
  (* write own id, read the other cell *)
  Action.Write (i, fun () -> Action.Read (1 - i, fun v -> Action.Decide (Option.value v ~default:(-1))))

let runtime_unit_tests =
  [
    Alcotest.test_case "round-robin interleaves writes before reads" `Quick (fun () ->
        let o = Runtime.run (Array.init 2 write_then_read_protocol) (Runtime.round_robin ()) in
        (* schedule: P0 write, P1 write, P0 read(sees 1), P1 read(sees 0) *)
        Alcotest.check (Alcotest.array (Alcotest.option Alcotest.int)) "results"
          [| Some 1; Some 0 |] o.Runtime.results);
    Alcotest.test_case "linear schedule controls visibility" `Quick (fun () ->
        (* P0 runs completely before P1 starts: P0 sees nothing *)
        let o =
          Runtime.run
            (Array.init 2 write_then_read_protocol)
            (Runtime.linear_schedule [ 0; 0; 1; 1 ])
        in
        Alcotest.check (Alcotest.array (Alcotest.option Alcotest.int)) "results"
          [| Some (-1); Some 0 |] o.Runtime.results);
    Alcotest.test_case "linear schedule rejects blocked process" `Quick (fun () ->
        let procs =
          [| Action.Write_read { level = 0; value = 0; k = (fun _ -> Action.Decide 0) } |]
        in
        (try
           ignore (Runtime.run procs (Runtime.linear_schedule [ 0 ]));
           Alcotest.fail "expected Invalid_decision"
         with Runtime.Invalid_decision _ -> ()));
    Alcotest.test_case "snapshot sees own write" `Quick (fun () ->
        let protocol i =
          Action.Write
            ( i,
              fun () ->
                Action.Snapshot
                  (fun view ->
                    Action.Decide (match view.(i) with Some x when x = i -> 1 | _ -> 0)) )
        in
        let o = Runtime.run (Array.init 3 protocol) (Runtime.random ~seed:3 ()) in
        Array.iter
          (fun r ->
            match r with
            | None -> Alcotest.fail "everyone decides"
            | Some bit -> checkb "self visible" true (bit = 1))
          o.Runtime.results);
    Alcotest.test_case "one-shot memory enforced" `Quick (fun () ->
        let procs =
          [|
            Action.Write_read
              {
                level = 0;
                value = 0;
                k =
                  (fun _ ->
                    Action.Write_read { level = 0; value = 1; k = (fun _ -> Action.Decide 0) });
              };
          |]
        in
        (try
           ignore (Runtime.run procs (Runtime.round_robin ()));
           Alcotest.fail "expected Invalid_decision"
         with Runtime.Invalid_decision _ -> ()));
    Alcotest.test_case "crash stops a process" `Quick (fun () ->
        let strategy =
          let step = ref 0 in
          fun (v : Runtime.view) ->
            incr step;
            if !step = 1 then Runtime.Crash 0
            else
              match v.Runtime.runnable with
              | p :: _ -> Runtime.Step p
              | [] -> Runtime.Halt
        in
        let o = Runtime.run (Array.init 2 write_then_read_protocol) strategy in
        checkb "P0 undecided" true (o.Runtime.results.(0) = None);
        checkb "P1 decided" true (o.Runtime.results.(1) <> None);
        (* P1 must not have seen P0's write *)
        Alcotest.check (Alcotest.option Alcotest.int) "P1 saw nothing" (Some (-1))
          o.Runtime.results.(1));
    Alcotest.test_case "fire requires arrival" `Quick (fun () ->
        let procs = [| Action.Decide 0 |] in
        ignore procs;
        let strategy _ = Runtime.Fire (0, [ 0 ]) in
        let waiting =
          [| Action.Write_read { level = 0; value = 7; k = (fun _ -> Action.Decide 1) }; Action.Decide 9 |]
        in
        (* firing process 1 (never arrived) must fail *)
        let bad _ = Runtime.Fire (0, [ 1 ]) in
        (try
           ignore (Runtime.run waiting bad);
           Alcotest.fail "expected Invalid_decision"
         with Runtime.Invalid_decision _ -> ());
        (* firing process 0 works *)
        let o = Runtime.run waiting strategy in
        Alcotest.check (Alcotest.option Alcotest.int) "decided" (Some 1) o.Runtime.results.(0));
    Alcotest.test_case "fire semantics: block sees all previous blocks" `Quick (fun () ->
        let protocol i =
          (* values are singleton lists so the decision can carry the whole
             view (the runtime's value type is shared between memory and
             decisions) *)
          Action.Write_read
            {
              level = 0;
              value = [ i * 10 ];
              k = (fun r -> Action.Decide (List.concat r.Action.seen));
            }
        in
        let fires = ref [ Runtime.Fire (0, [ 1 ]); Runtime.Fire (0, [ 0; 2 ]) ] in
        let strategy _ =
          match !fires with
          | d :: rest ->
            fires := rest;
            d
          | [] -> Runtime.Halt
        in
        let o = Runtime.run (Array.init 3 protocol) strategy in
        Alcotest.check (Alcotest.list Alcotest.int) "P1 sees own block only" [ 10 ]
          (Option.get o.Runtime.results.(1));
        Alcotest.check (Alcotest.list Alcotest.int) "P0 sees both blocks" [ 0; 10; 20 ]
          (Option.get o.Runtime.results.(0));
        Alcotest.check (Alcotest.list Alcotest.int) "P2 sees both blocks" [ 0; 10; 20 ]
          (Option.get o.Runtime.results.(2)));
    Alcotest.test_case "isolating adversary: victim never sees the others" `Quick (fun () ->
        let inputs = Array.init 3 (fun i -> i) in
        let o =
          Runtime.run
            (Full_information.iis_k_shot ~procs:3 ~k:2 ~inputs)
            (Runtime.isolating ~victim:1 ())
        in
        checkb "all decide" true (Array.for_all Option.is_some o.Runtime.results);
        (match o.Runtime.results.(1) with
        | Some v ->
          Alcotest.check (Alcotest.list Alcotest.int) "victim sees only itself" [ 1 ]
            (Full_information.iview_procs_seen v)
        | None -> Alcotest.fail "victim decides");
        match o.Runtime.results.(0) with
        | Some v ->
          Alcotest.check (Alcotest.list Alcotest.int) "others see everyone" [ 0; 1; 2 ]
            (Full_information.iview_procs_seen v)
        | None -> Alcotest.fail "others decide");
    Alcotest.test_case "memories_used counts fired memories" `Quick (fun () ->
        let inputs = Array.init 3 (fun i -> i) in
        let o =
          Runtime.run (Full_information.iis_k_shot ~procs:3 ~k:2 ~inputs) (Runtime.round_robin ())
        in
        checki "two memories" 2 o.Runtime.memories_used);
  ]

let runtime_prop_tests =
  [
    qtest "random adversary always finishes IIS full-information"
      QCheck2.Gen.(pair (int_range 0 1000) (pair (int_range 2 5) (int_range 1 4)))
      (fun (seed, (procs, k)) ->
        let inputs = Array.init procs (fun i -> i) in
        let o =
          Runtime.run (Full_information.iis_k_shot ~procs ~k ~inputs) (Runtime.random ~seed ())
        in
        Array.for_all Option.is_some o.Runtime.results
        && o.Runtime.memories_used = k);
    qtest "IS views from every random run satisfy the spec"
      QCheck2.Gen.(pair (int_range 0 2000) (int_range 2 6))
      (fun (seed, procs) ->
        let inputs = Array.init procs (fun i -> i) in
        let o =
          Runtime.run (Full_information.iis_k_shot ~procs ~k:1 ~inputs) (Runtime.random ~seed ())
        in
        let views =
          Array.to_list o.Runtime.results
          |> List.mapi (fun p r -> (p, r))
          |> List.filter_map (fun (p, r) ->
                 Option.map (fun v -> (p, Full_information.iview_procs_seen v)) r)
        in
        Trace.check_immediate_snapshot views = Ok ());
    qtest "crashing any one process never blocks the others (IIS)"
      QCheck2.Gen.(pair (int_range 0 500) (int_range 0 2))
      (fun (seed, victim) ->
        let inputs = Array.init 3 (fun i -> i) in
        let o =
          Runtime.run
            (Full_information.iis_k_shot ~procs:3 ~k:3 ~inputs)
            (Runtime.random_with_crashes ~seed ~crash:[ victim ] ())
        in
        Array.for_all Option.is_some
          (Array.of_list
             (List.filteri (fun i _ -> i <> victim) (Array.to_list o.Runtime.results))));
  ]

(* ------------------------------------------------------------------ *)
(* Trace checkers                                                       *)
(* ------------------------------------------------------------------ *)

let trace_unit_tests =
  [
    Alcotest.test_case "IS spec checker accepts partition views" `Quick (fun () ->
        List.iter
          (fun p ->
            let views = Ordered_partition.views p in
            checkb
              (Format.asprintf "%a" Ordered_partition.pp p)
              true
              (Trace.check_immediate_snapshot views = Ok ()))
          (Ordered_partition.enumerate [ 0; 1; 2 ]));
    Alcotest.test_case "IS spec checker rejects violations" `Quick (fun () ->
        checkb "no self" true
          (Trace.check_immediate_snapshot [ (0, [ 1 ]); (1, [ 1 ]) ] <> Ok ());
        checkb "incomparable" true
          (Trace.check_immediate_snapshot [ (0, [ 0; 1 ]); (1, [ 1; 2 ]); (2, [ 2 ]) ] <> Ok ());
        checkb "immediacy broken" true
          (Trace.check_immediate_snapshot [ (0, [ 0; 1; 2 ]); (1, [ 0; 1 ]); (2, [ 0; 1; 2 ]) ]
          <> Ok ()));
    Alcotest.test_case "partition reconstruction" `Quick (fun () ->
        List.iter
          (fun p ->
            match Trace.partition_of_views (Ordered_partition.views p) with
            | Some p' ->
              checkb "round trip" true (p = p')
            | None -> Alcotest.fail "expected reconstruction")
          (Ordered_partition.enumerate [ 0; 1; 2 ]));
    Alcotest.test_case "atomicity checker accepts a serial history" `Quick (fun () ->
        let ops =
          [
            { Trace.proc = 0; index = 0; kind = `Write 1; t_start = 0; t_end = 0 };
            { Trace.proc = 0; index = 1; kind = `Snapshot [| 1; 0 |]; t_start = 1; t_end = 1 };
            { Trace.proc = 1; index = 0; kind = `Write 1; t_start = 2; t_end = 2 };
            { Trace.proc = 1; index = 1; kind = `Snapshot [| 1; 1 |]; t_start = 3; t_end = 3 };
          ]
        in
        checkb "legal" true (Trace.check_snapshot_atomicity ops = Ok ()));
    Alcotest.test_case "atomicity checker rejects missed writes" `Quick (fun () ->
        let ops =
          [
            { Trace.proc = 0; index = 0; kind = `Write 1; t_start = 0; t_end = 0 };
            { Trace.proc = 1; index = 0; kind = `Snapshot [| 0; 0 |]; t_start = 5; t_end = 5 };
          ]
        in
        checkb "missed write" true (Trace.check_snapshot_atomicity ops <> Ok ()));
    Alcotest.test_case "atomicity checker rejects future reads" `Quick (fun () ->
        let ops =
          [
            { Trace.proc = 1; index = 0; kind = `Snapshot [| 1; 0 |]; t_start = 0; t_end = 0 };
            { Trace.proc = 0; index = 0; kind = `Write 1; t_start = 5; t_end = 5 };
          ]
        in
        checkb "future read" true (Trace.check_snapshot_atomicity ops <> Ok ()));
    Alcotest.test_case "atomicity checker rejects incomparable snapshots" `Quick (fun () ->
        let ops =
          [
            { Trace.proc = 0; index = 0; kind = `Snapshot [| 1; 0 |]; t_start = 0; t_end = 10 };
            { Trace.proc = 1; index = 0; kind = `Snapshot [| 0; 1 |]; t_start = 0; t_end = 10 };
            { Trace.proc = 0; index = 1; kind = `Write 1; t_start = 11; t_end = 11 };
            { Trace.proc = 1; index = 1; kind = `Write 1; t_start = 11; t_end = 11 };
          ]
        in
        checkb "incomparable" true (Trace.check_snapshot_atomicity ops <> Ok ()));
    Alcotest.test_case "steps_of counts shared ops" `Quick (fun () ->
        let o = Runtime.run (Array.init 2 write_then_read_protocol) (Runtime.round_robin ()) in
        checki "P0 two ops" 2 (Trace.steps_of o.Runtime.trace 0));
  ]

(* ------------------------------------------------------------------ *)
(* Schedules                                                            *)
(* ------------------------------------------------------------------ *)

let schedule_unit_tests =
  [
    Alcotest.test_case "interleaving counts" `Quick (fun () ->
        checki "2+2" 6 (Schedule.count_interleavings [| 2; 2 |]);
        checki "2,2,2" 90 (Schedule.count_interleavings [| 2; 2; 2 |]);
        checki "enumerated" 90 (List.length (Schedule.interleavings [| 2; 2; 2 |])));
    Alcotest.test_case "interleavings respect counts" `Quick (fun () ->
        List.iter
          (fun s ->
            checki "total" 4 (List.length s);
            checki "zeros" 2 (List.length (List.filter (( = ) 0) s)))
          (Schedule.interleavings [| 2; 2 |]));
    Alcotest.test_case "limit raises" `Quick (fun () ->
        (try
           ignore (Schedule.interleavings ~limit:10 [| 4; 4; 4 |]);
           Alcotest.fail "expected Too_many"
         with Schedule.Too_many _ -> ()));
    Alcotest.test_case "partition sequences" `Quick (fun () ->
        checki "3 procs 2 rounds" (13 * 13)
          (List.length (Schedule.partition_sequences [ 0; 1; 2 ] 2)));
    Alcotest.test_case "nonempty subsets" `Quick (fun () ->
        checki "2^3 - 1" 7 (List.length (Schedule.nonempty_subsets [ 0; 1; 2 ])));
  ]

let schedule_prop_tests =
  [
    qtest "random interleavings have the right counts"
      QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 4))
      (fun (seed, n) ->
        let st = Random.State.make [| seed |] in
        let counts = Array.init n (fun i -> i + 1) in
        let s = Schedule.random_interleaving st counts in
        Array.for_all (fun x -> x)
          (Array.mapi
             (fun p c -> List.length (List.filter (( = ) p) s) = c)
             counts));
  ]

(* ------------------------------------------------------------------ *)
(* Full information and protocol complexes                              *)
(* ------------------------------------------------------------------ *)

let pc_unit_tests =
  [
    Alcotest.test_case "Lemma 3.2: one-shot IS complex = SDS(s^n)" `Slow (fun () ->
        List.iter
          (fun n ->
            let pc = Protocol_complex.one_shot_is ~procs:(n + 1) in
            let sds = Sds.standard ~dim:n ~levels:1 in
            checkb (Printf.sprintf "n=%d" n) true (Protocol_complex.matches_sds pc sds))
          [ 0; 1; 2; 3 ]);
    Alcotest.test_case "Lemma 3.3: b-shot IIS complex = SDS^b(s^n)" `Slow (fun () ->
        List.iter
          (fun (n, b) ->
            let pc = Protocol_complex.iis ~procs:(n + 1) ~rounds:b in
            let sds = Sds.standard ~dim:n ~levels:b in
            checkb (Printf.sprintf "n=%d b=%d" n b) true (Protocol_complex.matches_sds pc sds))
          [ (1, 2); (1, 3); (2, 2) ]);
    Alcotest.test_case "atomic 1-round complex strictly contains IS complex" `Slow (fun () ->
        let pa = Protocol_complex.atomic ~procs:3 ~rounds:1 in
        let pis = Protocol_complex.one_shot_is ~procs:3 in
        checkb "IS inside atomic" true (Protocol_complex.is_subcomplex_of pis pa);
        checkb "atomic not inside IS" false (Protocol_complex.is_subcomplex_of pa pis);
        checki "19 facets for 3 procs" 19
          (Complex.num_facets (Chromatic.complex pa.Protocol_complex.chromatic)));
    Alcotest.test_case "2 procs: atomic 1-round = IS (models coincide)" `Quick (fun () ->
        let pa = Protocol_complex.atomic ~procs:2 ~rounds:1 in
        let pis = Protocol_complex.one_shot_is ~procs:2 in
        checkb "both directions" true
          (Protocol_complex.is_subcomplex_of pis pa && Protocol_complex.is_subcomplex_of pa pis));
    Alcotest.test_case "protocol complexes are chromatic and pure" `Quick (fun () ->
        let pc = Protocol_complex.iis ~procs:3 ~rounds:1 in
        let cx = Chromatic.complex pc.Protocol_complex.chromatic in
        checkb "pure" true (Complex.is_pure cx);
        checkb "acyclic (it is a subdivided simplex)" true (Homology.is_acyclic cx));
    Alcotest.test_case "canonical encodings agree between model and topology" `Quick (fun () ->
        let sds = Sds.standard ~dim:1 ~levels:1 in
        let pc = Protocol_complex.one_shot_is ~procs:2 in
        let sds_views =
          List.map (Sds.canonical_view sds)
            (Complex.vertices (Chromatic.complex (Sds.complex sds)))
          |> List.sort compare
        in
        let pc_views =
          List.map pc.Protocol_complex.view_of
            (Complex.vertices (Chromatic.complex pc.Protocol_complex.chromatic))
          |> List.sort compare
        in
        Alcotest.check (Alcotest.list Alcotest.string) "same view sets" sds_views pc_views);
  ]

(* ------------------------------------------------------------------ *)
(* Double collect                                                       *)
(* ------------------------------------------------------------------ *)

let collect_unit_tests =
  [
    Alcotest.test_case "collect reads all cells" `Quick (fun () ->
        let protocol i =
          Action.Write
            ( i,
              fun () ->
                Collect.collect ~procs:2 (fun view ->
                    Action.Decide (match view.(i) with Some x when x = i -> 1 | _ -> 0)) )
        in
        let o = Runtime.run (Array.init 2 protocol) (Runtime.round_robin ()) in
        Array.iter
          (fun r -> checkb "own value present" true (Option.get r = 1))
          o.Runtime.results);
    Alcotest.test_case "double collect terminates once writers stop" `Quick (fun () ->
        let inputs = Array.init 3 (fun i -> i) in
        List.iter
          (fun seed ->
            let o =
              Runtime.run
                (Collect.full_information ~procs:3 ~k:2 ~inputs)
                (Runtime.random ~seed ())
            in
            checkb "all decide" true (Array.for_all Option.is_some o.Runtime.results))
          [ 0; 1; 2; 3; 4 ]);
    Alcotest.test_case "double collect views match primitive snapshots in sequential runs"
      `Quick (fun () ->
        let inputs = Array.init 2 (fun i -> i) in
        let via_collect =
          Runtime.run (Collect.full_information ~procs:2 ~k:1 ~inputs) (Runtime.round_robin ())
        in
        checkb "decided" true (Array.for_all Option.is_some via_collect.Runtime.results));
  ]

(* ------------------------------------------------------------------ *)
(* Borowsky–Gafni immediate snapshot                                    *)
(* ------------------------------------------------------------------ *)

let bg_unit_tests =
  [
    Alcotest.test_case "exhaustive: all outputs legal (2 procs)" `Quick (fun () ->
        let current = ref [] in
        let make () =
          current := [];
          Bg_is.actions_recording ~inputs:[| "a"; "b" |]
            ~record:(fun i set _ -> current := (i, List.map fst set) :: !current)
        in
        let runs =
          Explore.explore make (fun _ ->
              checkb "legal" true (Trace.check_immediate_snapshot !current = Ok ()))
        in
        checkb "explored some runs" true (runs > 1));
    Alcotest.test_case "exhaustive: all outputs legal (3 procs)" `Slow (fun () ->
        let current = ref [] in
        let make () =
          current := [];
          Bg_is.actions_recording ~inputs:[| 0; 1; 2 |]
            ~record:(fun i set _ -> current := (i, List.map fst set) :: !current)
        in
        let runs =
          Explore.explore ~max_runs:100_000 make (fun _ ->
              checkb "legal" true (Trace.check_immediate_snapshot !current = Ok ()))
        in
        checki "16380 schedules" 16380 runs);
    Alcotest.test_case "exhaustive with a crash (2 procs)" `Quick (fun () ->
        let current = ref [] in
        let make () =
          current := [];
          Bg_is.actions_recording ~inputs:[| 0; 1 |]
            ~record:(fun i set _ -> current := (i, List.map fst set) :: !current)
        in
        ignore
          (Explore.explore ~crashes:1 make (fun _ ->
               checkb "legal" true (Trace.check_immediate_snapshot !current = Ok ()))));
    Alcotest.test_case "snapshot count bounded by m" `Quick (fun () ->
        List.iter
          (fun seed ->
            let r = Bg_is.run ~inputs:[| 0; 1; 2; 3 |] (Runtime.random ~seed ()) in
            Array.iter (fun c -> checkb "<= 4 snapshots" true (c <= 4)) r.Bg_is.snapshots_taken)
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
    Alcotest.test_case "sequential run gives singleton-ish blocks" `Quick (fun () ->
        let r = Bg_is.run ~inputs:[| "x"; "y" |] (Runtime.round_robin ()) in
        match Trace.partition_of_views (Bg_is.views r) with
        | Some p -> checkb "valid" true (Ordered_partition.check p)
        | None -> Alcotest.fail "views must be legal");
  ]

let bg_prop_tests =
  [
    qtest "random runs of BG are legal immediate snapshots"
      QCheck2.Gen.(pair (int_range 0 3000) (int_range 2 5))
      (fun (seed, m) ->
        let inputs = Array.init m (fun i -> i) in
        let r = Bg_is.run ~inputs (Runtime.random ~seed ()) in
        Trace.check_immediate_snapshot (Bg_is.views r) = Ok ());
    qtest "BG under crashes stays legal and others finish"
      QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 2))
      (fun (seed, victim) ->
        let inputs = Array.init 3 (fun i -> i) in
        let r = Bg_is.run ~inputs (Runtime.random_with_crashes ~seed ~crash:[ victim ] ()) in
        Trace.check_immediate_snapshot (Bg_is.views r) = Ok ());
  ]

(* ------------------------------------------------------------------ *)
(* Explore                                                              *)
(* ------------------------------------------------------------------ *)

let explore_unit_tests =
  [
    Alcotest.test_case "counts cell-only interleavings" `Quick (fun () ->
        (* two procs, one write each: 2 schedules *)
        let make () = Array.init 2 (fun i -> Action.Write (i, fun () -> Action.Decide i)) in
        checki "2 interleavings" 2 (Explore.explore make (fun _ -> ())));
    Alcotest.test_case "enumerates IS firings" `Quick (fun () ->
        (* two procs, one WriteRead each: ordered partitions of {0,1} = 3,
           but firing orders distinguish {0}{1} and {1}{0} and {0,1}: 3 runs *)
        let make () =
          Array.init 2 (fun i ->
              Action.Write_read { level = 0; value = i; k = (fun _ -> Action.Decide i) })
        in
        checki "3 runs" 3 (Explore.explore make (fun _ -> ())));
    Alcotest.test_case "decisions_at lists steps and fires" `Quick (fun () ->
        let v =
          {
            Runtime.time = 0;
            runnable = [ 0 ];
            arrived = [ (0, [ 1; 2 ]) ];
            decided = [];
            crashed = [];
          }
        in
        checki "1 step + 3 subsets" 4 (List.length (Explore.decisions_at v)));
    Alcotest.test_case "max_runs raises" `Quick (fun () ->
        let make () =
          Array.init 3 (fun i ->
              Action.Write (i, fun () -> Action.Write (i, fun () -> Action.Decide i)))
        in
        (try
           ignore (Explore.explore ~max_runs:5 make (fun _ -> ()));
           Alcotest.fail "expected Too_many"
         with Explore.Too_many _ -> ()));
  ]

let () =
  Alcotest.run "wfc_model"
    [
      ("runtime", runtime_unit_tests @ runtime_prop_tests);
      ("trace", trace_unit_tests);
      ("schedule", schedule_unit_tests @ schedule_prop_tests);
      ("protocol-complex", pc_unit_tests);
      ("collect", collect_unit_tests);
      ("bg-immediate-snapshot", bg_unit_tests @ bg_prop_tests);
      ("explore", explore_unit_tests);
    ]
