(** Runnable wait-free protocols for concrete tasks.

    Where the solvability checker certifies {e existence} of decision maps,
    these are hand-written protocols in the executable model — the kind of
    object the characterization reasons about. Each comes with an output
    checker used by tests and benchmarks over adversarial schedules. *)

open Wfc_model

val own_id_set_consensus : procs:int -> int Action.t array
(** The trivial [(procs, procs)]-set consensus: decide your own id. *)

val is_renaming : procs:int -> int Action.t array
(** Size-adaptive renaming from one one-shot immediate snapshot: with a view
    [S] containing [q] processes, a process of rank [r] in [S] (0-based)
    takes name [q(q-1)/2 + r + 1]. Comparability and immediacy of IS views
    make the names distinct, and a participation of size [q] uses names at
    most [q(q+1)/2] — the renaming flavor the paper attributes to immediate
    snapshots [8]. *)

val check_renaming : participants:int list -> (int * int) list -> (unit, string) result
(** [(process, name)] pairs: distinct, in range [1 .. q(q+1)/2]. *)

val approximate_agreement :
  procs:int -> rounds:int -> inputs:Wfc_topology.Rat.t array -> Wfc_topology.Rat.t Action.t array
(** Iterated-averaging ε-agreement in the IIS model: each round, WriteRead
    your estimate and move to the midpoint of the extremes you saw. Each
    round at least halves the diameter of the estimates (a process that sees
    only itself keeps its estimate but is then inside everyone else's
    view). After [rounds] rounds the diameter is at most
    [diam(inputs) / 2^rounds]. *)

val check_approximate :
  eps:Wfc_topology.Rat.t ->
  inputs:Wfc_topology.Rat.t list ->
  Wfc_topology.Rat.t list ->
  (unit, string) result
(** Outputs pairwise within [eps] and inside the input range. *)
