open Wfc_topology

let check_standard_base sd =
  let base = sd.Subdiv.base in
  let cx = Chromatic.complex base in
  let n = Complex.dim cx in
  let expected = Chromatic.standard_simplex n in
  if not (Complex.equal cx (Chromatic.complex expected))
     || not (List.for_all (fun v -> Chromatic.color base v = v) (Complex.vertices cx))
  then
    invalid_arg "Simplex_agreement: the subdivision base must be a standard chromatic simplex";
  n

let build ~chromatic_variant sd =
  let n = check_standard_base sd in
  let procs = n + 1 in
  let acx = Chromatic.complex sd.Subdiv.cx in
  let vertex_label v = string_of_int v in
  let outputs i =
    Complex.vertices acx
    |> List.filter (fun v -> (not chromatic_variant) || Chromatic.color sd.Subdiv.cx v = i)
    |> List.map vertex_label
  in
  let legal ~participants ~input:_ ~output =
    let ws =
      List.sort_uniq Stdlib.compare
        (List.map (fun p -> int_of_string (output p)) participants)
    in
    let w = Simplex.of_list ws in
    Complex.mem w acx
    && Simplex.subset (Subdiv.simplex_carrier sd w) (Simplex.of_list participants)
  in
  Task.of_relation
    ~name:
      (Printf.sprintf "%s-simplex-agreement(%s)"
         (if chromatic_variant then "chromatic" else "non-chromatic")
         (Complex.name acx))
    ~procs
    ~inputs:(fun i -> [ Printf.sprintf "corner%d" i ])
    ~outputs ~legal

let chromatic sd = build ~chromatic_variant:true sd

let non_chromatic sd = build ~chromatic_variant:false sd

let output_vertex_in_target task v = int_of_string (task.Task.output_label v)
