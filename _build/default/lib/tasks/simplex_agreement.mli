(** Simplex agreement tasks over a subdivided simplex (§5).

    Given a subdivision [A(sⁿ)], each process [i] starts at the corner [i]
    of [sⁿ] and must output a vertex of [A] such that the outputs form a
    simplex [W] of [A] with [carrier(W) ⊆] the face spanned by the
    participants. The {e chromatic} variant (CSASS) additionally requires
    process [i] to output a vertex of color [i].

    These tasks are the algorithmic content of Theorem 5.1: CSASS over
    [A(sⁿ)] is wait-free solvable iff a color-and-carrier-preserving
    simplicial map [SDS^k(sⁿ) → A] exists — so the solvability checker
    doubles as the theorem's computational witness, and the witness map
    doubles as a distributed protocol solving CSASS. *)

val chromatic : Wfc_topology.Subdiv.t -> Task.t
(** CSASS over the given subdivision. The subdivision's base must be a
    standard chromatic simplex (corner [i] colored [i]); its complex's
    vertices become output labels (stringified vertex ids).
    @raise Invalid_argument if the base is not a standard simplex. *)

val non_chromatic : Wfc_topology.Subdiv.t -> Task.t
(** NCSASS: same without the color restriction — any process may output any
    vertex of the subdivision (outputs need not be distinct; the distinct
    outputs must form a simplex). *)

val output_vertex_in_target : Task.t -> int -> int
(** Decodes an output vertex of a simplex-agreement task back to the vertex
    id in the target subdivision. *)
