lib/tasks/task.ml: Chromatic Complex Format Hashtbl List Option Printf Simplex String Wfc_model Wfc_topology
