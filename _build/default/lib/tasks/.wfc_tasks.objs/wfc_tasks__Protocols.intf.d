lib/tasks/protocols.mli: Action Wfc_model Wfc_topology
