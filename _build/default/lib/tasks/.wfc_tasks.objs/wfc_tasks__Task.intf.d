lib/tasks/task.mli: Format Wfc_topology
