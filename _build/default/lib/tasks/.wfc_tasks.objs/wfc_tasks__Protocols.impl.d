lib/tasks/protocols.ml: Action Array List Printf Rat Stdlib Wfc_model Wfc_topology
