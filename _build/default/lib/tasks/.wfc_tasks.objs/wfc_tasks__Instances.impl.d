lib/tasks/instances.ml: Array Chromatic Complex Fillin List Option Printf Sds Simplex Stdlib Subdiv Task Wfc_topology
