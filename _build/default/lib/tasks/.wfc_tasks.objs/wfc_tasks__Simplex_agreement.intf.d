lib/tasks/simplex_agreement.mli: Task Wfc_topology
