lib/tasks/instances.mli: Task Wfc_topology
