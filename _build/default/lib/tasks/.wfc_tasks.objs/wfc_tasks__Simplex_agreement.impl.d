lib/tasks/simplex_agreement.ml: Chromatic Complex List Printf Simplex Stdlib Subdiv Task Wfc_topology
