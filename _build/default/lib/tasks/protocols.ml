open Wfc_model
open Wfc_topology

let own_id_set_consensus ~procs = Array.init procs (fun i -> Action.Decide i)

let is_renaming ~procs =
  Array.init procs (fun i ->
      Action.Write_read
        {
          level = 0;
          value = i;
          k =
            (fun { Action.seen; _ } ->
              let q = List.length seen in
              let rank =
                List.length (List.filter (fun j -> j < i) seen)
              in
              Action.Decide ((q * (q - 1) / 2) + rank + 1));
        })

let check_renaming ~participants outputs =
  let q = List.length participants in
  let bound = q * (q + 1) / 2 in
  let names = List.map snd outputs in
  if List.length (List.sort_uniq Stdlib.compare names) <> List.length names then
    Error "renaming: duplicate names"
  else if List.exists (fun nm -> nm < 1 || nm > bound) names then
    Error (Printf.sprintf "renaming: name out of range 1..%d" bound)
  else Ok ()

let approximate_agreement ~procs ~rounds ~inputs =
  if Array.length inputs <> procs then invalid_arg "approximate_agreement: inputs size";
  Array.init procs (fun i ->
      Action.rounds rounds ~init:inputs.(i)
        (fun v level continue ->
          Action.Write_read
            {
              level;
              value = v;
              k =
                (fun { Action.seen; _ } ->
                  match seen with
                  | [] -> assert false
                  | first :: rest ->
                    let lo = List.fold_left Rat.min first rest in
                    let hi = List.fold_left Rat.max first rest in
                    continue (Rat.mul Rat.half (Rat.add lo hi)));
            })
        Action.decide)

let check_approximate ~eps ~inputs outputs =
  match (inputs, outputs) with
  | [], _ | _, [] -> Error "approximate agreement: empty run"
  | i0 :: irest, o0 :: orest ->
    let imin = List.fold_left Rat.min i0 irest and imax = List.fold_left Rat.max i0 irest in
    let omin = List.fold_left Rat.min o0 orest and omax = List.fold_left Rat.max o0 orest in
    if Rat.compare (Rat.sub omax omin) eps > 0 then
      Error
        (Printf.sprintf "approximate agreement: diameter %s exceeds eps %s"
           (Rat.to_string (Rat.sub omax omin))
           (Rat.to_string eps))
    else if Rat.compare omin imin < 0 || Rat.compare omax imax > 0 then
      Error "approximate agreement: output outside input range"
    else Ok ()
