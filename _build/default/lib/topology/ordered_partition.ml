type t = int list list

let rec sorted_distinct = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a < b && sorted_distinct rest

let check p =
  List.for_all (fun b -> b <> [] && sorted_distinct b) p
  &&
  let all = List.concat p in
  List.length (List.sort_uniq Stdlib.compare all) = List.length all

let elements p = List.sort Stdlib.compare (List.concat p)

let num_blocks = List.length

(* All non-empty subsets of a sorted list, paired with their complement. *)
let nonempty_subsets_with_complement xs =
  let rec go = function
    | [] -> [ ([], []) ]
    | x :: rest ->
      let subs = go rest in
      List.concat_map (fun (inc, out) -> [ (x :: inc, out); (inc, x :: out) ]) subs
  in
  List.filter (fun (inc, _) -> inc <> []) (go xs)

let rec enumerate xs =
  match List.sort_uniq Stdlib.compare xs with
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun (first_block, rest) ->
        List.map (fun tail -> first_block :: tail) (enumerate rest))
      (nonempty_subsets_with_complement xs)

let count n =
  if n < 0 then invalid_arg "Ordered_partition.count";
  (* a(n) = sum_{k=1..n} C(n,k) a(n-k), a(0) = 1. *)
  let a = Array.make (n + 1) 0 in
  a.(0) <- 1;
  let binom = Array.make_matrix (n + 1) (n + 1) 0 in
  for i = 0 to n do
    binom.(i).(0) <- 1;
    for j = 1 to i do
      binom.(i).(j) <- binom.(i - 1).(j - 1) + (if j <= i - 1 then binom.(i - 1).(j) else 0)
    done
  done;
  for m = 1 to n do
    let s = ref 0 in
    for k = 1 to m do
      s := !s + (binom.(m).(k) * a.(m - k))
    done;
    a.(m) <- !s
  done;
  a.(n)

let prefix_upto p x =
  let rec go acc = function
    | [] -> raise Not_found
    | block :: rest ->
      let acc = List.rev_append block acc in
      if List.mem x block then List.sort Stdlib.compare acc else go acc rest
  in
  go [] p

let views p = List.map (fun x -> (x, prefix_upto p x)) (elements p)

let of_linear xs = List.map (fun x -> [ x ]) xs

let random st xs =
  let xs = List.sort_uniq Stdlib.compare xs in
  (* Shuffle, then cut into blocks at random positions. *)
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  let blocks = ref [] and current = ref [] in
  Array.iter
    (fun x ->
      current := x :: !current;
      if Random.State.bool st then begin
        blocks := List.sort Stdlib.compare !current :: !blocks;
        current := []
      end)
    arr;
  if !current <> [] then blocks := List.sort Stdlib.compare !current :: !blocks;
  List.rev !blocks

let pp ppf p =
  let pp_block ppf b =
    Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int b))
  in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_block)
    p
