type t = Rat.t array

let of_list l = Array.of_list l

let of_ints l = Array.of_list (List.map Rat.of_int l)

let to_list p = Array.to_list p

let dim p = Array.length p

let coord p i = p.(i)

let equal p q = dim p = dim q && Array.for_all2 Rat.equal p q

let compare p q =
  let c = Stdlib.compare (dim p) (dim q) in
  if c <> 0 then c
  else
    let rec go i =
      if i = dim p then 0
      else
        let c = Rat.compare p.(i) q.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let zero d = Array.make d Rat.zero

let unit d i =
  if i < 0 || i >= d then invalid_arg "Point.unit";
  Array.init d (fun j -> if j = i then Rat.one else Rat.zero)

let check_same_dim p q = if dim p <> dim q then invalid_arg "Point: dimension mismatch"

let add p q =
  check_same_dim p q;
  Array.mapi (fun i x -> Rat.add x q.(i)) p

let sub p q =
  check_same_dim p q;
  Array.mapi (fun i x -> Rat.sub x q.(i)) p

let smul c p = Array.map (Rat.mul c) p

let midpoint p q = smul Rat.half (add p q)

let barycenter = function
  | [] -> invalid_arg "Point.barycenter: empty list"
  | p :: ps ->
    let s = List.fold_left add p ps in
    smul (Rat.inv (Rat.of_int (1 + List.length ps))) s

let combine = function
  | [] -> invalid_arg "Point.combine: empty list"
  | (c, p) :: rest -> List.fold_left (fun acc (c, p) -> add acc (smul c p)) (smul c p) rest

let coord_sum p = Array.fold_left Rat.add Rat.zero p

let is_barycentric p =
  Array.for_all (fun x -> Rat.sign x >= 0) p && Rat.equal (coord_sum p) Rat.one

(* Fraction-free Bareiss elimination keeps intermediate entries integral in
   spirit; with rationals plain Gaussian elimination is exact anyway, so we
   use the straightforward version. *)
let det m =
  let n = Array.length m in
  if n = 0 then Rat.one
  else begin
    Array.iter (fun row -> if Array.length row <> n then invalid_arg "Point.det: not square") m;
    let m = Array.map Array.copy m in
    let sign = ref 1 in
    let result = ref Rat.one in
    (try
       for col = 0 to n - 1 do
         (* Find a pivot. *)
         let pivot = ref (-1) in
         for row = col to n - 1 do
           if !pivot < 0 && not (Rat.is_zero m.(row).(col)) then pivot := row
         done;
         if !pivot < 0 then begin
           result := Rat.zero;
           raise Exit
         end;
         if !pivot <> col then begin
           let tmp = m.(col) in
           m.(col) <- m.(!pivot);
           m.(!pivot) <- tmp;
           sign := - !sign
         end;
         let p = m.(col).(col) in
         result := Rat.mul !result p;
         for row = col + 1 to n - 1 do
           let f = Rat.div m.(row).(col) p in
           if not (Rat.is_zero f) then
             for j = col to n - 1 do
               m.(row).(j) <- Rat.sub m.(row).(j) (Rat.mul f m.(col).(j))
             done
         done
       done
     with Exit -> ());
    if !sign < 0 then Rat.neg !result else !result
  end

let simplex_volume_scaled = function
  | [] -> invalid_arg "Point.simplex_volume_scaled: empty"
  | [ _ ] -> Rat.one
  | p0 :: rest ->
    let k = List.length rest in
    if dim p0 <> k then invalid_arg "Point.simplex_volume_scaled: need k coordinates for a k-simplex";
    let rows = List.map (fun p -> sub p p0) rest in
    Rat.abs (det (Array.of_list (rows :> Rat.t array list)))

(* Rank of a rational matrix by Gaussian elimination. *)
let rank rows =
  match rows with
  | [] -> 0
  | first :: _ ->
    let ncols = Array.length first in
    let rows = Array.of_list (List.map Array.copy rows) in
    let nrows = Array.length rows in
    let r = ref 0 in
    let col = ref 0 in
    while !r < nrows && !col < ncols do
      let pivot = ref (-1) in
      for i = !r to nrows - 1 do
        if !pivot < 0 && not (Rat.is_zero rows.(i).(!col)) then pivot := i
      done;
      (if !pivot >= 0 then begin
         let tmp = rows.(!r) in
         rows.(!r) <- rows.(!pivot);
         rows.(!pivot) <- tmp;
         let p = rows.(!r).(!col) in
         for i = !r + 1 to nrows - 1 do
           let f = Rat.div rows.(i).(!col) p in
           if not (Rat.is_zero f) then
             for j = !col to ncols - 1 do
               rows.(i).(j) <- Rat.sub rows.(i).(j) (Rat.mul f rows.(!r).(j))
             done
         done;
         incr r
       end);
      incr col
    done;
    !r

let affinely_independent = function
  | [] -> true
  | [ _ ] -> true
  | p0 :: rest ->
    let vectors = List.map (fun p -> (sub p p0 :> Rat.t array)) rest in
    rank vectors = List.length rest

(* Solve the linear system [sum l_i p_i = q, sum l_i = 1] by Gaussian
   elimination with exact rationals. The augmented system has one row per
   coordinate plus the normalization row. *)
let solve_barycentric ps q =
  match ps with
  | [] -> None
  | p0 :: _ ->
    let k = List.length ps in
    let d = dim p0 in
    if List.exists (fun p -> dim p <> d) ps || dim q <> d then None
    else begin
      (* rows: d coordinate equations + 1 normalization; columns: k unknowns
         + rhs. *)
      let parr = Array.of_list ps in
      let rows = Array.init (d + 1) (fun r ->
          Array.init (k + 1) (fun c ->
              if r < d then if c < k then parr.(c).(r) else q.(r)
              else if c < k then Rat.one
              else Rat.one))
      in
      let nrows = d + 1 in
      let pivot_cols = Array.make k (-1) in
      let r = ref 0 in
      (* Forward elimination with partial (first non-zero) pivoting. *)
      for col = 0 to k - 1 do
        let piv = ref (-1) in
        for i = !r to nrows - 1 do
          if !piv < 0 && not (Rat.is_zero rows.(i).(col)) then piv := i
        done;
        if !piv >= 0 then begin
          let tmp = rows.(!r) in
          rows.(!r) <- rows.(!piv);
          rows.(!piv) <- tmp;
          let p = rows.(!r).(col) in
          for i = 0 to nrows - 1 do
            if i <> !r && not (Rat.is_zero rows.(i).(col)) then begin
              let f = Rat.div rows.(i).(col) p in
              for j = col to k do
                rows.(i).(j) <- Rat.sub rows.(i).(j) (Rat.mul f rows.(!r).(j))
              done
            end
          done;
          pivot_cols.(col) <- !r;
          incr r
        end
      done;
      (* Under-determined column ⇒ points affinely dependent; reject. *)
      if Array.exists (fun c -> c < 0) pivot_cols then None
      else begin
        (* Inconsistent row ⇒ q outside affine hull. *)
        let inconsistent = ref false in
        for i = !r to nrows - 1 do
          if not (Rat.is_zero rows.(i).(k)) then inconsistent := true
        done;
        if !inconsistent then None
        else
          Some
            (List.init k (fun col ->
                 let row = pivot_cols.(col) in
                 Rat.div rows.(row).(k) rows.(row).(col)))
      end
    end

let in_simplex ps q =
  match solve_barycentric ps q with
  | None -> false
  | Some ls -> List.for_all (fun l -> Rat.sign l >= 0) ls

let in_open_simplex ps q =
  match solve_barycentric ps q with
  | None -> false
  | Some ls -> List.for_all (fun l -> Rat.sign l > 0) ls

let pp ppf p =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Rat.pp)
    (to_list p)
