(** Ordered set partitions.

    An ordered partition of a finite set splits it into a sequence of
    disjoint non-empty blocks. They are the combinatorial skeleton of the
    one-shot immediate snapshot model (§3.4–3.6): an execution is an ordered
    partition of the participating set — the processes in block [j] all
    WriteRead concurrently, after the blocks before them — and the facets of
    the standard chromatic subdivision are in bijection with them
    (Lemma 3.2). Counting them gives the Fubini (ordered Bell) numbers:
    1, 1, 3, 13, 75, 541, ... *)

type t = int list list
(** Blocks in temporal order; each block sorted; blocks disjoint and
    non-empty. *)

val check : t -> bool
(** Structural validity (sorted non-empty disjoint blocks). *)

val enumerate : int list -> t list
(** All ordered partitions of the given set (must have distinct elements).
    The empty set has exactly one (empty) partition. *)

val count : int -> int
(** Fubini number [a(n)]: the number of ordered partitions of an [n]-set. *)

val elements : t -> int list
(** Sorted union of the blocks. *)

val num_blocks : t -> int

val prefix_upto : t -> int -> int list
(** [prefix_upto p x]: the sorted union of all blocks up to and including
    the block containing [x] — exactly the immediate-snapshot view [S_x]
    of process [x] in the execution [p]. @raise Not_found if [x] absent. *)

val views : t -> (int * int list) list
(** [(x, prefix_upto p x)] for every element [x], sorted by element. *)

val of_linear : int list -> t
(** The ordered partition with singleton blocks, i.e. a sequential
    execution. *)

val random : Random.State.t -> int list -> t
(** Uniformly shaped random ordered partition (each refinement choice made
    uniformly; not the uniform distribution over all ordered partitions, but
    spanning all of them with positive probability). *)

val pp : Format.formatter -> t -> unit
