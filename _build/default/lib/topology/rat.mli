(** Exact rational arithmetic over native integers.

    Geometric realizations of subdivided simplices (standard chromatic and
    barycentric) need exact barycentric coordinates: floating point would make
    point-location predicates unreliable after a few subdivision levels. The
    denominators that arise here stay tiny (products of [2q - 1] and [q + 1]
    factors across subdivision levels), so machine integers with explicit
    overflow checking are sufficient and keep the library dependency-free.

    Values are kept normalized: [den > 0] and [gcd (abs num) den = 1]. All
    operations raise {!Overflow} instead of silently wrapping. *)

type t = private { num : int; den : int }

exception Overflow

exception Division_by_zero

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t

val one : t

val half : t

val num : t -> int

val den : t -> int

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is {!zero}. *)

val neg : t -> t

val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val abs : t -> t

val min : t -> t -> t

val max : t -> t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool

val ( + ) : t -> t -> t

val ( - ) : t -> t -> t

val ( * ) : t -> t -> t

val ( / ) : t -> t -> t

val ( = ) : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val to_float : t -> float

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val sum : t list -> t

val scale : int -> t -> t
(** [scale k q] is [k * q]. *)
