(** Barycentric subdivision [Bsd], plain and iterated.

    [Bsd(C)] has one vertex per non-empty simplex of [C] (placed at its
    barycenter) and one facet per maximal flag [σ1 ⊂ σ2 ⊂ ... ⊂ σk] inside
    each facet of [C] (§2). The paper uses [Bsd^k] through the simplicial
    approximation theorem (Lemma 2.1): for [k] large enough there is a
    carrier-preserving simplicial map [Bsd^k(sⁿ) → A(sⁿ)] for any
    subdivision [A].

    [Bsd] is canonically chromatic by {e dimension}: coloring a flag vertex
    by the dimension of the face it subdivides is proper, because a flag has
    strictly increasing dimensions. This coloring also makes the "obvious"
    carrier-preserving simplicial map [SDS(C) → Bsd(C)] of Lemma 5.3 well
    defined: [(v, S) ↦ S]. *)

type t

val of_chromatic : Chromatic.t -> t
(** Level-0 wrapper. *)

val subdivide : t -> t
(** One more level of barycentric subdivision, composing carriers and
    realizations down to the base. *)

val iterate : Chromatic.t -> int -> t
(** [iterate c k] is [Bsd^k(c)]. *)

val subdiv : t -> Subdiv.t

val complex : t -> Chromatic.t

val levels : t -> int

val prev : t -> t option

val face_of_vertex : t -> int -> Simplex.t
(** The previous-level simplex this vertex is the barycenter of.
    @raise Invalid_argument at level 0. *)

val sds_to_bsd : Sds.t -> t -> Simplicial_map.t
(** The canonical carrier-preserving simplicial map [SDS(C) → Bsd(C)]
    sending [(v, S)] to the barycenter vertex of [S]. Both arguments must be
    one-level subdivisions of the same complex (checked). *)

val count_facets : dim:int -> levels:int -> int
(** Facet count of [Bsd^k(sⁿ)]: [((n+1)!)^k]. *)
