(** Points with exact rational coordinates.

    Points serve two purposes in this library:

    - {b barycentric coordinates} of subdivision vertices relative to a base
      simplex (the realization used by the simplicial-approximation algorithm
      of Lemma 5.3), and
    - generic affine geometry (convex combinations, barycenters,
      determinant-based orientation/volume tests) used to validate that a
      claimed subdivision really is one.

    A point is an immutable array of {!Rat.t}. All binary operations require
    equal dimensions and raise [Invalid_argument] otherwise. *)

type t

val of_list : Rat.t list -> t

val of_ints : int list -> t

val to_list : t -> Rat.t list

val dim : t -> int
(** Number of coordinates (not geometric dimension). *)

val coord : t -> int -> Rat.t

val equal : t -> t -> bool

val compare : t -> t -> int

val zero : int -> t
(** [zero d] is the origin with [d] coordinates. *)

val unit : int -> int -> t
(** [unit d i] is the [i]-th standard basis point in [d] coordinates. *)

val add : t -> t -> t

val sub : t -> t -> t

val smul : Rat.t -> t -> t

val midpoint : t -> t -> t

val barycenter : t list -> t
(** Arithmetic mean of a non-empty list of points. *)

val combine : (Rat.t * t) list -> t
(** Affine/linear combination [sum_i (c_i * p_i)] of a non-empty list. *)

val coord_sum : t -> Rat.t

val is_barycentric : t -> bool
(** All coordinates non-negative and summing to one. *)

val det : Rat.t array array -> Rat.t
(** Determinant of a square matrix by fraction-free Gaussian elimination. *)

val simplex_volume_scaled : t list -> Rat.t
(** [simplex_volume_scaled [p0; ...; pk]] is the absolute value of
    [det (p1 - p0, ..., pk - p0)] — i.e. [k!] times the Euclidean volume of
    the simplex spanned by the points, which must live in a space of exactly
    [k] coordinates. Zero iff the points are affinely dependent. *)

val affinely_independent : t list -> bool
(** Whether the points span a simplex of full dimension ([length - 1]). Works
    in any ambient dimension via Gram-style rank computation. *)

val solve_barycentric : t list -> t -> Rat.t list option
(** [solve_barycentric [p0; ...; pk] q] finds coefficients [l0..lk] with
    [sum l_i = 1] and [sum (l_i * p_i) = q], if the [p_i] are affinely
    independent and [q] lies in their affine hull; [None] otherwise.
    Coefficients may be negative — combine with a sign check to test
    membership in the closed simplex. *)

val in_simplex : t list -> t -> bool
(** Whether the point lies in the {e closed} convex hull of the (affinely
    independent) vertices. *)

val in_open_simplex : t list -> t -> bool
(** Strict version: all barycentric coordinates positive. *)

val pp : Format.formatter -> t -> unit
