lib/topology/point.mli: Format Rat
