lib/topology/homology.ml: Array Complex List Simplex
