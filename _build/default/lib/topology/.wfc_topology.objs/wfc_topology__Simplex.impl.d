lib/topology/simplex.ml: Format Hashtbl List Map Set Stdlib String
