lib/topology/subdivision.mli: Chromatic Sds Simplex Simplicial_map Subdiv
