lib/topology/chromatic.mli: Complex Format Simplex
