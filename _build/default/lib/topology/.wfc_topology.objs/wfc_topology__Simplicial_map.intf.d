lib/topology/simplicial_map.mli: Complex Format Simplex
