lib/topology/fillin.mli: Complex
