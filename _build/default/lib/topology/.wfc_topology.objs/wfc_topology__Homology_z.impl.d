lib/topology/homology_z.ml: Array Complex List Printf Rat Simplex String
