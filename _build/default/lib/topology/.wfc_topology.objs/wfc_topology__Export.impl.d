lib/topology/export.ml: Array Buffer Chromatic Complex List Point Printf Rat Simplex Subdiv
