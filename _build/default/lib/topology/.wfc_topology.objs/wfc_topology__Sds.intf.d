lib/topology/sds.mli: Chromatic Ordered_partition Simplex Subdiv
