lib/topology/fillin.ml: Array Complex Hashtbl List Option Queue Simplex Stdlib
