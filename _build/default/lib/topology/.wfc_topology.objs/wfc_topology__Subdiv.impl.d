lib/topology/subdiv.ml: Array Chromatic Complex Hashtbl List Point Printf Random Rat Simplex Simplicial_map String
