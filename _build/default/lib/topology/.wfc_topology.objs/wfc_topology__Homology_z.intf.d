lib/topology/homology_z.mli: Complex
