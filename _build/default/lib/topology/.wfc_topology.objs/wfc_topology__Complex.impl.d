lib/topology/complex.ml: Array Format Hashtbl List Printf Simplex Stdlib String
