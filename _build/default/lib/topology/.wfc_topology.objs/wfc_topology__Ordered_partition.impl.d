lib/topology/ordered_partition.ml: Array Format List Random Stdlib String
