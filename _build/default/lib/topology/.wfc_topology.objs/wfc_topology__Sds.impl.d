lib/topology/sds.ml: Chromatic Complex Hashtbl List Map Ordered_partition Point Printf Rat Simplex Stdlib String Subdiv
