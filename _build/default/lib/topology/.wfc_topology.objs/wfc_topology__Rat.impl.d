lib/topology/rat.ml: Format List Printf Stdlib
