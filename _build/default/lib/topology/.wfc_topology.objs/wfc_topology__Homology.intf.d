lib/topology/homology.mli: Complex
