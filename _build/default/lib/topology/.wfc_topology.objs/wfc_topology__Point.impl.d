lib/topology/point.ml: Array Format List Rat Stdlib
