lib/topology/export.mli: Complex Subdiv
