lib/topology/simplex.mli: Format Hashtbl Map Set
