lib/topology/subdivision.ml: Chromatic Complex Hashtbl List Point Sds Simplex Simplicial_map Subdiv
