lib/topology/subdiv.mli: Chromatic Complex Point Random Rat Simplex Simplicial_map
