lib/topology/chromatic.ml: Complex Format Hashtbl List Simplex Stdlib
