lib/topology/simplicial_map.ml: Complex Format Hashtbl List Printf Result Simplex Stdlib String
