lib/topology/iso.mli: Chromatic Complex Simplicial_map
