lib/topology/iso.ml: Chromatic Complex Hashtbl List Option Simplex Simplicial_map Stdlib
