lib/topology/rat.mli: Format
