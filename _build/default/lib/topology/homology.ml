(* Rows are bitsets packed into int arrays: 62 usable bits per word keeps the
   arithmetic simple and safe on 63-bit native ints. *)

let bits_per_word = 62

let make_row ncols = Array.make ((ncols + bits_per_word - 1) / bits_per_word) 0

let set_bit row j = row.(j / bits_per_word) <- row.(j / bits_per_word) lor (1 lsl (j mod bits_per_word))

let get_bit row j = row.(j / bits_per_word) land (1 lsl (j mod bits_per_word)) <> 0

let xor_into ~target ~src = Array.iteri (fun i w -> target.(i) <- target.(i) lxor w) src

(* Rank of a GF(2) matrix given as a list of rows. *)
let rank_gf2 rows ncols =
  let rows = Array.of_list rows in
  let nrows = Array.length rows in
  let rank = ref 0 in
  let col = ref 0 in
  while !rank < nrows && !col < ncols do
    (* find a pivot row with a 1 in this column *)
    let piv = ref (-1) in
    for i = !rank to nrows - 1 do
      if !piv < 0 && get_bit rows.(i) !col then piv := i
    done;
    (if !piv >= 0 then begin
       let tmp = rows.(!rank) in
       rows.(!rank) <- rows.(!piv);
       rows.(!piv) <- tmp;
       for i = 0 to nrows - 1 do
         if i <> !rank && get_bit rows.(i) !col then xor_into ~target:rows.(i) ~src:rows.(!rank)
       done;
       incr rank
     end);
    incr col
  done;
  !rank

let boundary_rank c k =
  if k <= 0 then 0
  else begin
    let k_faces = Complex.faces c ~dim:k in
    let km1_faces = Complex.faces c ~dim:(k - 1) in
    if k_faces = [] || km1_faces = [] then 0
    else begin
      let col_index = Simplex.Tbl.create (List.length km1_faces) in
      List.iteri (fun i s -> Simplex.Tbl.replace col_index s i) km1_faces;
      let ncols = List.length km1_faces in
      (* one row per k-simplex: its boundary chain *)
      let rows =
        List.map
          (fun s ->
            let row = make_row ncols in
            List.iter
              (fun face -> set_bit row (Simplex.Tbl.find col_index face))
              (Simplex.facets s);
            row)
          k_faces
      in
      rank_gf2 rows ncols
    end
  end

let betti c =
  let n = Complex.dim c in
  let f = Complex.f_vector c in
  Array.init (n + 1) (fun k ->
      let rank_k = boundary_rank c k in
      let rank_k1 = if k < n then boundary_rank c (k + 1) else 0 in
      f.(k) - rank_k - rank_k1)

let reduced_betti c =
  let b = betti c in
  if Array.length b > 0 then b.(0) <- b.(0) - 1;
  b

let is_acyclic c = Array.for_all (fun b -> b = 0) (reduced_betti c)

let no_holes_up_to c m =
  let b = reduced_betti c in
  let ok = ref true in
  for k = 1 to m do
    if k - 1 <= Complex.dim c && k - 1 < Array.length b && b.(k - 1) <> 0 then ok := false
  done;
  !ok

let euler_consistent c =
  let b = betti c in
  let alt = ref 0 in
  Array.iteri (fun k bk -> alt := !alt + (if k mod 2 = 0 then bk else -bk)) b;
  !alt = Complex.euler_characteristic c
