(** Integer simplicial homology via Smith normal form.

    {!Homology} works over ℤ/2, which suffices to verify the paper's
    "no holes" claims but cannot distinguish torsion from free cycles (the
    projective plane has [H_1 = ℤ/2]: invisible as a free rank, visible as
    a ℤ/2 class). This module computes homology over ℤ: oriented boundary
    matrices (faces signed [(-1)^i] on sorted simplices) reduced to Smith
    normal form with exact integer arithmetic, giving both the free Betti
    numbers and the torsion coefficients

      [H_k ≅ ℤ^{b_k} ⊕ ℤ/d_1 ⊕ ... ⊕ ℤ/d_t],  [d_1 | d_2 | ... | d_t].

    For the complexes in this library the matrices are small incidence
    matrices; entries are overflow-checked and raise {!Rat.Overflow} in the
    (unreached) pathological case. *)

val boundary_matrix : Complex.t -> int -> int array array
(** Oriented boundary operator [∂_k] as a dense matrix: rows indexed by
    [(k-1)]-simplices, columns by [k]-simplices, both in
    {!Complex.faces} order. Empty (0×0) when either dimension is empty. *)

val smith_invariants : int array array -> int list
(** Non-zero invariant factors (positive, each dividing the next) of an
    integer matrix. The length is the rank. *)

val betti_z : Complex.t -> int array
(** Free Betti numbers over ℤ, [b_0 .. b_dim]. *)

val reduced_betti_z : Complex.t -> int array

val torsion : Complex.t -> int list array
(** [torsion c].(k) lists the torsion coefficients of [H_k] (invariant
    factors [> 1] of [∂_{k+1}]). *)

val is_acyclic_z : Complex.t -> bool
(** Reduced ℤ-homology trivial: all reduced Betti numbers zero and no
    torsion anywhere. Strictly stronger than {!Homology.is_acyclic}'s ℤ/2
    statement on torsion-bearing complexes. *)

val homology_summary : Complex.t -> string
(** Human-readable [H_k] groups, e.g. ["H0=Z  H1=Z/2  H2=0"]. *)
