(** Simplices as canonical sorted vertex lists.

    Following the paper (§2), an [n]-dimensional simplex is a set of [n + 1]
    vertices. Vertices are dense integer identifiers managed by the enclosing
    {!Complex}. The canonical representation is a strictly increasing list,
    enforced by {!of_list}; functions below assume (and preserve)
    canonicity. *)

type t = private int list

val of_list : int list -> t
(** Sorts and de-duplicates. [of_list [] ] is the empty simplex, which only
    appears transiently (complexes store non-empty simplices). *)

val of_sorted : int list -> t
(** Trusts the input to be strictly increasing (checked with [assert]). *)

val to_list : t -> int list

val vertices : t -> int list
(** Alias of {!to_list}. *)

val singleton : int -> t

val empty : t

val is_empty : t -> bool

val dim : t -> int
(** [card - 1]; the empty simplex has dimension [-1]. *)

val card : t -> int

val mem : int -> t -> bool

val subset : t -> t -> bool
(** [subset s t] iff [s] is a face of [t] (improper faces included). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val remove : int -> t -> t

val add : int -> t -> t

val faces : t -> t list
(** All non-empty faces, including [t] itself. [2^card - 1] of them. *)

val proper_faces : t -> t list
(** All non-empty faces excluding [t] itself. *)

val facets : t -> t list
(** Codimension-1 faces: [t] minus each single vertex. *)

val subsets_of_card : int -> t -> t list

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

module Tbl : Hashtbl.S with type key = t
