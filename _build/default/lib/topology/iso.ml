(* Vertex signature: everything a bijection must preserve that we can compute
   cheaply per vertex. *)
type signature = {
  color : int option;
  facet_dims : int list; (* sorted dims of facets containing the vertex *)
  membership : int; (* number of closure simplices containing the vertex *)
}

let signature c color v =
  let facet_dims =
    List.filter_map
      (fun f -> if Simplex.mem v f then Some (Simplex.dim f) else None)
      (Complex.facets c)
    |> List.sort Stdlib.compare
  in
  let membership =
    List.length (List.filter (fun s -> Simplex.mem v s) (Complex.simplices c))
  in
  { color = Option.map (fun f -> f v) color; facet_dims; membership }

let isomorphism ?color_src ?color_dst a b =
  if
    Complex.dim a <> Complex.dim b
    || Complex.num_vertices a <> Complex.num_vertices b
    || Complex.num_facets a <> Complex.num_facets b
    || Complex.f_vector a <> Complex.f_vector b
  then None
  else begin
    let va = Complex.vertices a and vb = Complex.vertices b in
    let sig_a = List.map (fun v -> (v, signature a color_src v)) va in
    let sig_b = List.map (fun w -> (w, signature b color_dst w)) vb in
    (* Candidate targets per source vertex. *)
    let candidates v =
      let s = List.assoc v sig_a in
      List.filter_map (fun (w, s') -> if s = s' then Some w else None) sig_b
    in
    let cand = List.map (fun v -> (v, candidates v)) va in
    if List.exists (fun (_, cs) -> cs = []) cand then None
    else begin
      (* Most-constrained-first ordering. *)
      let order =
        List.sort (fun (_, c1) (_, c2) -> compare (List.length c1) (List.length c2)) cand
      in
      let mapping = Hashtbl.create (List.length va) in
      let used = Hashtbl.create (List.length vb) in
      let facets_a = Complex.facets a in
      (* A partial map is consistent if, for every facet of [a], the image of
         its already-mapped vertices is a simplex of [b]. *)
      let consistent () =
        List.for_all
          (fun f ->
            let img =
              List.filter_map (fun v -> Hashtbl.find_opt mapping v) (Simplex.to_list f)
            in
            match img with
            | [] -> true
            | img ->
              let s = Simplex.of_list img in
              Simplex.card s = List.length img && Complex.mem s b)
          facets_a
      in
      let full_check () =
        (* The image of the facet set must be exactly the facet set of b. *)
        let images =
          List.map
            (fun f ->
              Simplex.of_list
                (List.map (fun v -> Hashtbl.find mapping v) (Simplex.to_list f)))
            facets_a
        in
        let images = List.sort_uniq Simplex.compare images in
        List.equal Simplex.equal images (Complex.facets b)
      in
      let rec search = function
        | [] -> full_check ()
        | (v, cs) :: rest ->
          List.exists
            (fun w ->
              if Hashtbl.mem used w then false
              else begin
                Hashtbl.replace mapping v w;
                Hashtbl.replace used w ();
                let ok = consistent () && search rest in
                if not ok then begin
                  Hashtbl.remove mapping v;
                  Hashtbl.remove used w
                end;
                ok
              end)
            cs
      in
      if search order then
        Some (Simplicial_map.make ~src:a ~dst:b (fun v -> Hashtbl.find mapping v))
      else None
    end
  end

let isomorphic ?color_src ?color_dst a b =
  Option.is_some (isomorphism ?color_src ?color_dst a b)

let chromatic_isomorphic a b =
  isomorphic
    ~color_src:(Chromatic.color a)
    ~color_dst:(Chromatic.color b)
    (Chromatic.complex a) (Chromatic.complex b)
