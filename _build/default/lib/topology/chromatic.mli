(** Chromatic complexes: complexes with a proper vertex coloring.

    A coloring (§2) is a dimension-preserving simplicial map onto a color
    simplex: equivalently, the vertices of every simplex carry pairwise
    distinct colors ("rainbow" simplices). In the distributed reading, the
    color of a vertex is the identifier of the process whose local state the
    vertex encodes.

    Colors are non-negative integers. The coloring is stored per-vertex and
    is validated at construction time. *)

type t

val make : ?check:bool -> Complex.t -> color:(int -> int) -> t
(** Attaches a coloring to a complex.
    @raise Invalid_argument if some simplex has two vertices of equal color
    (skipped when [check:false] is passed by a caller that constructed the
    coloring itself). *)

val of_assoc : Complex.t -> (int * int) list -> t
(** Coloring given as a [vertex, color] association list covering all
    vertices. *)

val complex : t -> Complex.t

val color : t -> int -> int
(** Color of a vertex. @raise Not_found for vertices outside the complex. *)

val colors : t -> int list
(** Sorted distinct colors in use. *)

val num_colors : t -> int

val simplex_colors : t -> Simplex.t -> Simplex.t
(** The set of colors of a simplex, as a simplex of the color space
    ([X(C)] in the paper). *)

val vertices_of_color : t -> int -> int list

val vertex_with_color : t -> Simplex.t -> int -> int option
(** The unique vertex of the given color inside a simplex, if any. *)

val restrict_colors : t -> int list -> t option
(** Subcomplex of simplices whose colors all lie in the given set; [None]
    if no simplex survives. *)

val sub : t -> Complex.t -> t
(** Inherits the coloring on a subcomplex (vertex ids must be shared).
    @raise Not_found if the subcomplex has a vertex the parent lacks. *)

val rename_colors : (int -> int) -> t -> t
(** Injective color renaming (checked on the colors in use). *)

val is_properly_colored : Complex.t -> color:(int -> int) -> bool

val standard_simplex : int -> t
(** [standard_simplex n]: the full [n]-simplex with [color v = v] — the
    canonical input complex where process [i] inputs its own identifier. *)

val equal : t -> t -> bool

val pp_stats : Format.formatter -> t -> unit
