type t = { num : int; den : int }

exception Overflow

exception Division_by_zero

(* Overflow-checked machine arithmetic. The checks are branchy but cheap
   compared to the combinatorial work around them. *)

let checked_add a b =
  let r = a + b in
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow else r

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a || (a = min_int && b = -1) then raise Overflow else r

let checked_neg a = if a = min_int then raise Overflow else -a

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let normalize num den =
  if den = 0 then raise Division_by_zero
  else
    let num, den = if den < 0 then (checked_neg num, checked_neg den) else (num, den) in
    if num = 0 then { num = 0; den = 1 }
    else
      let g = gcd (Stdlib.abs num) den in
      { num = num / g; den = den / g }

let make num den = normalize num den

let of_int n = { num = n; den = 1 }

let zero = { num = 0; den = 1 }

let one = { num = 1; den = 1 }

let half = { num = 1; den = 2 }

let num q = q.num

let den q = q.den

let add a b =
  (* Knuth's trick: reduce by gcd of denominators first to delay overflow. *)
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  let num = checked_add (checked_mul a.num db) (checked_mul b.num da) in
  let den = checked_mul a.den db in
  normalize num den

let neg a = { a with num = checked_neg a.num }

let sub a b = add a (neg b)

let mul a b =
  let g1 = gcd (Stdlib.abs a.num) b.den and g2 = gcd (Stdlib.abs b.num) a.den in
  let num = checked_mul (a.num / g1) (b.num / g2) in
  let den = checked_mul (a.den / g2) (b.den / g1) in
  normalize num den

let inv a = if a.num = 0 then raise Division_by_zero else normalize a.den a.num

let div a b = mul a (inv b)

let abs a = { a with num = Stdlib.abs a.num }

let sign a = compare a.num 0

let is_zero a = a.num = 0

let compare a b =
  (* Compare via subtraction on widened products; denominators are positive. *)
  let l = checked_mul a.num b.den and r = checked_mul b.num a.den in
  Stdlib.compare l r

let equal a b = a.num = b.num && a.den = b.den

let min a b = if compare a b <= 0 then a else b

let max a b = if compare a b >= 0 then a else b

let ( + ) = add

let ( - ) = sub

let ( * ) = mul

let ( / ) = div

let ( = ) = equal

let ( < ) a b = Stdlib.( < ) (compare a b) 0

let ( <= ) a b = Stdlib.( <= ) (compare a b) 0

let ( > ) a b = Stdlib.( > ) (compare a b) 0

let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let to_float q = float_of_int q.num /. float_of_int q.den

let to_string q = if Stdlib.( = ) q.den 1 then string_of_int q.num else Printf.sprintf "%d/%d" q.num q.den

let pp ppf q = Format.pp_print_string ppf (to_string q)

let sum qs = List.fold_left add zero qs

let scale k q = mul (of_int k) q
