type t = {
  sd : Subdiv.t;
  prev : t option;
  own_tbl : (int, int) Hashtbl.t; (* top vertex -> prev vertex *)
  snap_tbl : (int, Simplex.t) Hashtbl.t; (* top vertex -> prev simplex *)
}

let of_chromatic a =
  { sd = Subdiv.identity a; prev = None; own_tbl = Hashtbl.create 0; snap_tbl = Hashtbl.create 0 }

let subdiv t = t.sd

let complex t = t.sd.Subdiv.cx

let base t = t.sd.Subdiv.base

let levels t = t.sd.Subdiv.levels

let prev t = t.prev

let own t v =
  match Hashtbl.find_opt t.own_tbl v with
  | Some u -> u
  | None -> invalid_arg "Sds.own: not available (level 0 or unknown vertex)"

let snap t v =
  match Hashtbl.find_opt t.snap_tbl v with
  | Some s -> s
  | None -> invalid_arg "Sds.snap: not available (level 0 or unknown vertex)"

let carrier t v = t.sd.Subdiv.carrier v

let color t v = Chromatic.color (complex t) v

module Key = struct
  type t = int * int list (* own prev vertex, snap as sorted list *)

  let compare = Stdlib.compare
end

module Key_map = Map.Make (Key)

let subdivide t =
  let prev_cx = complex t in
  let prev_complex = Chromatic.complex prev_cx in
  (* Collect the vertex universe: all (v, S) with v ∈ S a simplex. The
     simplices of the closure are exactly the possible snapshots. *)
  let keys = ref Key_map.empty in
  List.iter
    (fun s ->
      List.iter
        (fun v -> keys := Key_map.add (v, Simplex.to_list s) () !keys)
        (Simplex.to_list s))
    (Complex.simplices prev_complex);
  let next_id = ref 0 in
  let ids = ref Key_map.empty in
  Key_map.iter
    (fun key () ->
      ids := Key_map.add key !next_id !ids;
      incr next_id)
    !keys;
  let id_of key = Key_map.find key !ids in
  (* Facets: ordered partitions of each facet of the previous complex. *)
  let facets =
    List.concat_map
      (fun facet ->
        let vs = Simplex.to_list facet in
        List.map
          (fun partition ->
            List.map
              (fun (v, prefix) -> id_of (v, prefix))
              (Ordered_partition.views partition))
          (Ordered_partition.enumerate vs))
      (Complex.facets prev_complex)
  in
  let new_complex =
    Complex.of_facets ~name:(Complex.name prev_complex ^ "'") facets
  in
  let own_tbl = Hashtbl.create (Key_map.cardinal !ids) in
  let snap_tbl = Hashtbl.create (Key_map.cardinal !ids) in
  Key_map.iter
    (fun (v, s) id ->
      Hashtbl.replace own_tbl id v;
      Hashtbl.replace snap_tbl id (Simplex.of_sorted s))
    !ids;
  let color_of id = Chromatic.color prev_cx (Hashtbl.find own_tbl id) in
  let chroma = Chromatic.make ~check:false new_complex ~color:color_of in
  (* Carrier in the base: union of previous carriers over the snapshot. *)
  let carrier_tbl = Hashtbl.create (Hashtbl.length own_tbl) in
  Hashtbl.iter
    (fun id s ->
      let c =
        List.fold_left
          (fun acc u -> Simplex.union acc (t.sd.Subdiv.carrier u))
          Simplex.empty (Simplex.to_list s)
      in
      Hashtbl.replace carrier_tbl id c)
    snap_tbl;
  (* Kozlov realization relative to the previous level's points. *)
  let point_tbl = Hashtbl.create (Hashtbl.length own_tbl) in
  Hashtbl.iter
    (fun id s ->
      let v = Hashtbl.find own_tbl id in
      let q = Simplex.card s in
      let denom = (2 * q) - 1 in
      let terms =
        List.map
          (fun u ->
            let w = if u = v then 1 else 2 in
            (Rat.make w denom, t.sd.Subdiv.point u))
          (Simplex.to_list s)
      in
      Hashtbl.replace point_tbl id (Point.combine terms))
    snap_tbl;
  let sd =
    {
      Subdiv.kind = "sds";
      levels = t.sd.Subdiv.levels + 1;
      base = t.sd.Subdiv.base;
      cx = chroma;
      carrier = (fun v -> Hashtbl.find carrier_tbl v);
      point = (fun v -> Hashtbl.find point_tbl v);
    }
  in
  { sd; prev = Some t; own_tbl; snap_tbl }

let iterate a b =
  if b < 0 then invalid_arg "Sds.iterate: negative level";
  let rec go acc k = if k = 0 then acc else go (subdivide acc) (k - 1) in
  go (of_chromatic a) b

let standard ~dim ~levels = iterate (Chromatic.standard_simplex dim) levels

let facet_partition t facet =
  if t.prev = None then invalid_arg "Sds.facet_partition: level 0";
  if not (Complex.is_facet facet (Chromatic.complex (complex t))) then
    invalid_arg "Sds.facet_partition: not a facet";
  let vs = Simplex.to_list facet in
  (* Vertices of a facet sorted by snapshot size recover the blocks: block j
     holds the processes whose snapshot is the union of blocks 1..j. *)
  let by_size =
    List.sort
      (fun a b -> compare (Simplex.card (snap t a)) (Simplex.card (snap t b)))
      vs
  in
  let rec blocks = function
    | [] -> []
    | v :: _ as group ->
      let size = Simplex.card (snap t v) in
      let same, rest = List.partition (fun u -> Simplex.card (snap t u) = size) group in
      List.sort Stdlib.compare (List.map (own t) same) :: blocks rest
  in
  blocks by_size

let rec canonical_view t v =
  match t.prev with
  | None -> Printf.sprintf "#%d" v
  | Some p ->
    let members = List.map (canonical_view p) (Simplex.to_list (snap t v)) in
    Printf.sprintf "P%d{%s}" (color t v) (String.concat "," (List.sort Stdlib.compare members))

let count_facets ~dim ~levels =
  let a = Ordered_partition.count (dim + 1) in
  let rec pow acc k = if k = 0 then acc else pow (acc * a) (k - 1) in
  pow 1 levels

let vertex_of_view t ~color:c ~snap:s =
  let found = ref None in
  Hashtbl.iter
    (fun id s' ->
      if !found = None && Simplex.equal s s' && color t id = c then found := Some id)
    t.snap_tbl;
  !found
