let neighbors cx =
  let tbl = Hashtbl.create 64 in
  let add a b =
    let l = try Hashtbl.find tbl a with Not_found -> [] in
    if not (List.mem b l) then Hashtbl.replace tbl a (b :: l)
  in
  List.iter
    (fun e ->
      match Simplex.to_list e with
      | [ a; b ] ->
        add a b;
        add b a
      | _ -> ())
    (Complex.faces cx ~dim:1);
  fun v -> List.sort Stdlib.compare (try Hashtbl.find tbl v with Not_found -> [])

let path cx ~src ~dst =
  if not (Complex.mem_vertex src cx && Complex.mem_vertex dst cx) then raise Not_found;
  if src = dst then Some [ src ]
  else begin
    let next = neighbors cx in
    let parent = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.replace parent src src;
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.take queue in
      List.iter
        (fun u ->
          if not (Hashtbl.mem parent u) then begin
            Hashtbl.replace parent u v;
            if u = dst then found := true;
            Queue.add u queue
          end)
        (next v)
    done;
    if not !found then None
    else begin
      let rec build v acc = if v = src then v :: acc else build (Hashtbl.find parent v) (v :: acc) in
      Some (build dst [])
    end
  end

let distance cx a b = Option.map (fun p -> List.length p - 1) (path cx ~src:a ~dst:b)

let path_midpoint cx a b =
  match path cx ~src:a ~dst:b with
  | None -> None
  | Some p -> List.nth_opt p ((List.length p - 1) / 2)

let diameter cx =
  if not (Complex.is_connected cx) then invalid_arg "Fillin.diameter: disconnected complex";
  let vs = Complex.vertices cx in
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc b ->
          match distance cx a b with Some d -> max acc d | None -> acc)
        acc vs)
    0 vs

let fill_path cx a b =
  match path cx ~src:a ~dst:b with
  | None -> None
  | Some [ v ] -> Some (Complex.of_facets [ [ v ] ])
  | Some p ->
    let rec edges = function
      | x :: (y :: _ as rest) -> [ x; y ] :: edges rest
      | [ _ ] | [] -> []
    in
    Some (Complex.of_facets (edges p))

let is_cycle cx vs =
  List.length vs >= 3
  && List.length (List.sort_uniq Stdlib.compare vs) = List.length vs
  &&
  let rec edges = function
    | x :: (y :: _ as rest) -> (x, y) :: edges rest
    | [ last ] -> [ (last, List.hd vs) ]
    | [] -> []
  in
  List.for_all (fun (a, b) -> Complex.mem (Simplex.of_list [ a; b ]) cx) (edges vs)

let cycle_edges vs =
  let rec go = function
    | x :: (y :: _ as rest) -> Simplex.of_list [ x; y ] :: go rest
    | [ last ] -> [ Simplex.of_list [ last; List.hd vs ] ]
    | [] -> []
  in
  go vs

let fill_cycle cx vs =
  if not (is_cycle cx vs) then None
  else if Complex.dim cx <> 2 || not (Complex.is_pure cx) then None
  else begin
    let wall = Simplex.Set.of_list (cycle_edges vs) in
    let facets = Array.of_list (Complex.facets cx) in
    (* union-find over triangles, merging across non-wall shared edges *)
    let uf = Array.init (Array.length facets) (fun i -> i) in
    let rec find i = if uf.(i) = i then i else (uf.(i) <- find uf.(i); uf.(i)) in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then uf.(ra) <- rb
    in
    let owners = Simplex.Tbl.create 128 in
    Array.iteri
      (fun i f ->
        List.iter
          (fun e ->
            if not (Simplex.Set.mem e wall) then begin
              (match Simplex.Tbl.find_opt owners e with
              | Some j -> union i j
              | None -> ());
              Simplex.Tbl.replace owners e i
            end)
          (Simplex.facets f))
      facets;
    (* group triangles per region *)
    let regions = Hashtbl.create 8 in
    Array.iteri
      (fun i f ->
        let r = find i in
        let l = try Hashtbl.find regions r with Not_found -> [] in
        Hashtbl.replace regions r (f :: l))
      facets;
    (* a region is a fill-in iff its rim (edges in exactly one of its
       triangles) is exactly the cycle *)
    let rim triangles =
      let count = Simplex.Tbl.create 64 in
      List.iter
        (fun f ->
          List.iter
            (fun e ->
              let c = try Simplex.Tbl.find count e with Not_found -> 0 in
              Simplex.Tbl.replace count e (c + 1))
            (Simplex.facets f))
        triangles;
      Simplex.Tbl.fold (fun e c acc -> if c = 1 then Simplex.Set.add e acc else acc) count
        Simplex.Set.empty
    in
    let candidates =
      Hashtbl.fold
        (fun _ triangles acc ->
          if Simplex.Set.equal (rim triangles) wall then triangles :: acc else acc)
        regions []
    in
    match List.sort (fun a b -> compare (List.length a) (List.length b)) candidates with
    | [] -> None
    | smallest :: _ -> Some (Complex.of_simplices smallest)
  end
