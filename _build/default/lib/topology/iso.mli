(** Isomorphism of simplicial complexes.

    Two complexes are isomorphic when a vertex bijection carries the facets
    of one exactly onto the facets of the other. The experiments use this to
    match protocol complexes built by {e executing} the immediate snapshot
    model against the combinatorial standard chromatic subdivision
    (Lemmas 3.2 and 3.3) without relying on a shared vertex numbering.

    The search is plain backtracking pruned by vertex signatures (facet
    dimension profiles, simplex membership counts, and colors when given) —
    more than fast enough for the complexes of this library. *)

val isomorphism :
  ?color_src:(int -> int) ->
  ?color_dst:(int -> int) ->
  Complex.t ->
  Complex.t ->
  Simplicial_map.t option
(** A witness isomorphism, color-preserving when colorings are supplied for
    both sides. [None] when the complexes are not isomorphic. *)

val isomorphic :
  ?color_src:(int -> int) -> ?color_dst:(int -> int) -> Complex.t -> Complex.t -> bool

val chromatic_isomorphic : Chromatic.t -> Chromatic.t -> bool
(** Color-preserving isomorphism of chromatic complexes. *)
