type t = int list

let rec strictly_increasing = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a < b && strictly_increasing rest

let of_list vs = List.sort_uniq Stdlib.compare vs

let of_sorted vs =
  assert (strictly_increasing vs);
  vs

let to_list s = s

let vertices = to_list

let singleton v = [ v ]

let empty = []

let is_empty s = s = []

let card = List.length

let dim s = card s - 1

let mem v s = List.mem v s

let rec subset s t =
  match (s, t) with
  | [], _ -> true
  | _, [] -> false
  | a :: s', b :: t' -> if a = b then subset s' t' else if a > b then subset s t' else false

let equal (a : t) b = a = b

let compare (a : t) b = Stdlib.compare a b

let rec union a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: a', y :: b' ->
    if x = y then x :: union a' b' else if x < y then x :: union a' b else y :: union a b'

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: a', y :: b' ->
    if x = y then x :: inter a' b' else if x < y then inter a' b else inter a b'

let rec diff a b =
  match (a, b) with
  | [], _ -> []
  | l, [] -> l
  | x :: a', y :: b' -> if x = y then diff a' b' else if x < y then x :: diff a' b else diff a b'

let remove v s = List.filter (fun x -> x <> v) s

let add v s = union [ v ] s

(* Non-empty subsets, preserving sortedness. *)
let faces s =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
      let subs = go rest in
      List.rev_append (List.rev_map (fun sub -> v :: sub) subs) subs
  in
  List.filter (fun f -> f <> []) (go s)

let proper_faces s = List.filter (fun f -> f <> s) (faces s)

let facets s = List.map (fun v -> remove v s) s

let subsets_of_card k s =
  let rec choose k = function
    | _ when k = 0 -> [ [] ]
    | [] -> []
    | v :: rest ->
      let with_v = List.map (fun sub -> v :: sub) (choose (k - 1) rest) in
      with_v @ choose k rest
  in
  if k < 0 then [] else choose k s

let to_string s = "{" ^ String.concat "," (List.map string_of_int s) ^ "}"

let pp ppf s = Format.pp_print_string ppf (to_string s)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = Hashtbl.hash
end)
