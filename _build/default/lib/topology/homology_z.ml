(* Overflow-checked integer helpers (entries can grow during elimination). *)
let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a then raise Rat.Overflow else r

let checked_sub a b =
  let r = a - b in
  if (a >= 0) <> (b >= 0) && (r >= 0) <> (a >= 0) then raise Rat.Overflow else r

let boundary_matrix c k =
  if k <= 0 then [||]
  else begin
    let rows = Complex.faces c ~dim:(k - 1) in
    let cols = Complex.faces c ~dim:k in
    if rows = [] || cols = [] then [||]
    else begin
      let row_index = Simplex.Tbl.create (List.length rows) in
      List.iteri (fun i s -> Simplex.Tbl.replace row_index s i) rows;
      let m = Array.make_matrix (List.length rows) (List.length cols) 0 in
      List.iteri
        (fun col s ->
          (* the i-th facet of a sorted simplex (dropping vertex i) carries
             sign (-1)^i *)
          List.iteri
            (fun i v ->
              let face = Simplex.remove v s in
              let row = Simplex.Tbl.find row_index face in
              m.(row).(col) <- (if i mod 2 = 0 then 1 else -1))
            (Simplex.to_list s))
        cols;
      m
    end
  end

let smith_invariants m =
  let rows = Array.length m in
  if rows = 0 then []
  else begin
    let cols = Array.length m.(0) in
    let m = Array.map Array.copy m in
    let swap_rows i j =
      let t = m.(i) in
      m.(i) <- m.(j);
      m.(j) <- t
    in
    let swap_cols i j =
      Array.iter
        (fun row ->
          let t = row.(i) in
          row.(i) <- row.(j);
          row.(j) <- t)
        m
    in
    let add_row_multiple ~target ~src q =
      (* row target -= q * row src *)
      for c = 0 to cols - 1 do
        m.(target).(c) <- checked_sub m.(target).(c) (checked_mul q m.(src).(c))
      done
    in
    let add_col_multiple ~target ~src q =
      for r = 0 to rows - 1 do
        m.(r).(target) <- checked_sub m.(r).(target) (checked_mul q m.(r).(src))
      done
    in
    let invariants = ref [] in
    let t = ref 0 in
    let continue = ref true in
    while !continue && !t < rows && !t < cols do
      (* find entry of smallest absolute value in the remaining block *)
      let best = ref None in
      for r = !t to rows - 1 do
        for c = !t to cols - 1 do
          let v = abs m.(r).(c) in
          if v <> 0 then
            match !best with
            | Some (_, _, bv) when bv <= v -> ()
            | _ -> best := Some (r, c, v)
        done
      done;
      match !best with
      | None -> continue := false
      | Some (r, c, _) ->
        swap_rows !t r;
        swap_cols !t c;
        (* eliminate the pivot row and column; restart if a remainder
           appears (standard SNF loop, terminates since |pivot| shrinks) *)
        let clean = ref false in
        while not !clean do
          clean := true;
          let pivot = m.(!t).(!t) in
          for r = !t + 1 to rows - 1 do
            if m.(r).(!t) <> 0 then begin
              let q = m.(r).(!t) / pivot in
              add_row_multiple ~target:r ~src:!t q;
              if m.(r).(!t) <> 0 then begin
                (* remainder smaller than pivot: make it the new pivot *)
                swap_rows !t r;
                clean := false
              end
            end
          done;
          if !clean then begin
            let pivot = m.(!t).(!t) in
            for c = !t + 1 to cols - 1 do
              if m.(!t).(c) <> 0 then begin
                let q = m.(!t).(c) / pivot in
                add_col_multiple ~target:c ~src:!t q;
                if m.(!t).(c) <> 0 then begin
                  swap_cols !t c;
                  clean := false
                end
              end
            done
          end
        done;
        (* divisibility fix-up: pivot must divide every remaining entry *)
        let pivot = abs m.(!t).(!t) in
        let offender = ref None in
        (try
           for r = !t + 1 to rows - 1 do
             for c = !t + 1 to cols - 1 do
               if m.(r).(c) mod pivot <> 0 then begin
                 offender := Some r;
                 raise Exit
               end
             done
           done
         with Exit -> ());
        (match !offender with
        | Some r ->
          (* fold the offending row into the pivot row and redo this step *)
          add_row_multiple ~target:!t ~src:r (-1)
        | None -> begin
          invariants := pivot :: !invariants;
          incr t
        end)
    done;
    List.rev !invariants
  end

let rank_z c k = List.length (smith_invariants (boundary_matrix c k))

let betti_z c =
  let n = Complex.dim c in
  let f = Complex.f_vector c in
  Array.init (n + 1) (fun k ->
      let rk = rank_z c k in
      let rk1 = if k < n then rank_z c (k + 1) else 0 in
      f.(k) - rk - rk1)

let reduced_betti_z c =
  let b = betti_z c in
  if Array.length b > 0 then b.(0) <- b.(0) - 1;
  b

let torsion c =
  let n = Complex.dim c in
  Array.init (n + 1) (fun k ->
      if k >= n then []
      else
        List.filter (fun d -> d > 1) (smith_invariants (boundary_matrix c (k + 1))))

let is_acyclic_z c =
  Array.for_all (fun b -> b = 0) (reduced_betti_z c)
  && Array.for_all (fun t -> t = []) (torsion c)

let homology_summary c =
  let b = betti_z c and t = torsion c in
  let group k =
    let free = if k = 0 then b.(0) else b.(k) in
    let parts =
      (if free > 0 then [ (if free = 1 then "Z" else Printf.sprintf "Z^%d" free) ] else [])
      @ List.map (Printf.sprintf "Z/%d") t.(k)
    in
    Printf.sprintf "H%d=%s" k (if parts = [] then "0" else String.concat "+" parts)
  in
  String.concat "  " (List.init (Array.length b) group)
