(** Export of low-dimensional complexes for inspection.

    Subdivided simplices of dimension ≤ 2 have a canonical planar drawing
    (the base triangle drawn equilateral, subdivision vertices at their
    exact rational barycentric positions). These exporters are meant for
    documentation and debugging, not for the algorithms. *)

val dot : Complex.t -> string
(** GraphViz rendering of the 1-skeleton. *)

val svg : ?size:int -> Subdiv.t -> string
(** SVG drawing of a subdivision whose base has dimension ≤ 2; triangles are
    filled, vertices are colored by their chromatic color.
    @raise Invalid_argument for higher-dimensional bases. *)

val tikz : Subdiv.t -> string
(** TikZ picture (same restrictions as {!svg}). *)
