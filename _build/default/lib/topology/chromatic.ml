type t = { complex : Complex.t; table : (int, int) Hashtbl.t }

let is_properly_colored complex ~color =
  List.for_all
    (fun facet ->
      let cs = List.map color (Simplex.to_list facet) in
      List.length (List.sort_uniq Stdlib.compare cs) = List.length cs)
    (Complex.facets complex)

let make ?(check = true) complex ~color =
  let table = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace table v (color v)) (Complex.vertices complex);
  if check && not (is_properly_colored complex ~color) then
    invalid_arg "Chromatic.make: coloring is not proper (simplex with repeated color)";
  { complex; table }

let of_assoc complex assoc =
  let lookup v =
    match List.assoc_opt v assoc with
    | Some c -> c
    | None -> invalid_arg "Chromatic.of_assoc: vertex without a color"
  in
  make complex ~color:lookup

let complex t = t.complex

let color t v =
  match Hashtbl.find_opt t.table v with
  | Some c -> c
  | None -> raise Not_found

let colors t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.table [] |> List.sort_uniq Stdlib.compare

let num_colors t = List.length (colors t)

let simplex_colors t s = Simplex.of_list (List.map (color t) (Simplex.to_list s))

let vertices_of_color t c =
  Hashtbl.fold (fun v c' acc -> if c' = c then v :: acc else acc) t.table []
  |> List.sort Stdlib.compare

let vertex_with_color t s c = List.find_opt (fun v -> color t v = c) (Simplex.to_list s)

let restrict_colors t cs =
  let allowed = List.sort_uniq Stdlib.compare cs in
  let ok v = List.mem (color t v) allowed in
  let survivors =
    List.filter_map
      (fun facet ->
        let kept = List.filter ok (Simplex.to_list facet) in
        if kept = [] then None else Some (Simplex.of_list kept))
      (Complex.facets t.complex)
  in
  if survivors = [] then None
  else
    let c = Complex.of_simplices ~name:(Complex.name t.complex ^ "-colors") survivors in
    Some (make ~check:false c ~color:(color t))

let sub t subcx = make ~check:false subcx ~color:(color t)

let rename_colors f t =
  let used = colors t in
  let images = List.map f used in
  if List.length (List.sort_uniq Stdlib.compare images) <> List.length used then
    invalid_arg "Chromatic.rename_colors: renaming not injective on used colors";
  make ~check:false t.complex ~color:(fun v -> f (color t v))

let standard_simplex n = make ~check:false (Complex.full_simplex n) ~color:(fun v -> v)

let equal a b =
  Complex.equal a.complex b.complex
  && List.for_all (fun v -> color a v = color b v) (Complex.vertices a.complex)

let pp_stats ppf t =
  Format.fprintf ppf "%a colors=%d" Complex.pp_stats t.complex (num_colors t)
