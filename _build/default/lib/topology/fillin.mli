(** Fill-ins (spans) of low-dimensional spheres — §2 and §5 machinery.

    The paper's "no holes" condition says every simplicial image of a
    [(k-1)]-sphere has a fill-in. In dimensions the algorithms of §5
    actually manipulate, fill-ins are concrete objects:

    - a {e 0-sphere} is a pair of vertices; its fill-in is a path in the
      1-skeleton ({!path});
    - a {e 1-sphere} is a cycle; in a pure 2-complex that is a planar disk
      (e.g. any subdivided triangle) its fill-in is the sub-disk the cycle
      bounds ({!fill_cycle}).

    Paths are computed by breadth-first search with deterministic tie
    breaking, so every process of a distributed algorithm recomputes the
    same path from the same pair — the property the convergence protocol of
    {!Wfc_core.Ncsac} relies on. *)

val path : Complex.t -> src:int -> dst:int -> int list option
(** Shortest path in the 1-skeleton, inclusive of both endpoints; ties are
    broken toward smaller vertex ids. [None] if disconnected.
    @raise Not_found if either endpoint is not a vertex. *)

val path_midpoint : Complex.t -> int -> int -> int option
(** The middle vertex (rounding toward [src]) of the shortest path — the
    convergence step of two-process simplex agreement. *)

val distance : Complex.t -> int -> int -> int option
(** Length (edge count) of the shortest path. *)

val diameter : Complex.t -> int
(** Max finite pairwise distance (0 for a single vertex).
    @raise Invalid_argument if the complex is disconnected. *)

val fill_path : Complex.t -> int -> int -> Complex.t option
(** The subcomplex spanned by the shortest path: a fill-in of the 0-sphere
    [{a, b}]. *)

val is_cycle : Complex.t -> int list -> bool
(** The vertex list is a simple cycle of length ≥ 3 in the 1-skeleton. *)

val fill_cycle : Complex.t -> int list -> Complex.t option
(** For a pure 2-complex [D]: the sub-disk bounded by a simple cycle,
    i.e. a set of triangles whose rim (edges in exactly one chosen
    triangle) is exactly the cycle. Works whenever the cycle separates [D]
    (always the case when [D] is a subdivided triangle). Returns the
    smaller side; [None] when the cycle is not simple, not in the
    1-skeleton, or bounds no region. *)
