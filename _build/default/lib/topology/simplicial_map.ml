type t = { src : Complex.t; dst : Complex.t; table : (int, int) Hashtbl.t }

let make ~src ~dst f =
  let table = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let w = f v in
      if not (Complex.mem_vertex w dst) then
        invalid_arg
          (Printf.sprintf "Simplicial_map.make: image vertex %d not in target" w);
      Hashtbl.replace table v w)
    (Complex.vertices src);
  { src; dst; table }

let of_assoc ~src ~dst assoc =
  let lookup v =
    match List.assoc_opt v assoc with
    | Some w -> w
    | None -> invalid_arg "Simplicial_map.of_assoc: vertex without an image"
  in
  make ~src ~dst lookup

let src t = t.src

let dst t = t.dst

let apply_vertex t v =
  match Hashtbl.find_opt t.table v with
  | Some w -> w
  | None -> raise Not_found

let apply t s = Simplex.of_list (List.map (apply_vertex t) (Simplex.to_list s))

let check_simplicial t =
  let rec go = function
    | [] -> Ok ()
    | f :: rest -> if Complex.mem (apply t f) t.dst then go rest else Error f
  in
  go (Complex.facets t.src)

let is_simplicial t = Result.is_ok (check_simplicial t)

let is_dimension_preserving t =
  List.for_all
    (fun s -> Simplex.dim (apply t s) = Simplex.dim s)
    (Complex.simplices t.src)

let is_color_preserving ~src_color ~dst_color t =
  List.for_all (fun v -> src_color v = dst_color (apply_vertex t v)) (Complex.vertices t.src)

let is_injective t =
  let images = List.map (apply_vertex t) (Complex.vertices t.src) in
  List.length (List.sort_uniq Stdlib.compare images) = List.length images

let compose g f =
  if not (Complex.equal (dst f) (src g)) then
    invalid_arg "Simplicial_map.compose: middle complexes differ";
  make ~src:f.src ~dst:g.dst (fun v -> apply_vertex g (apply_vertex f v))

let image t =
  if not (is_simplicial t) then invalid_arg "Simplicial_map.image: map is not simplicial";
  Complex.of_simplices
    ~name:(Complex.name t.src ^ "-img")
    (List.map (apply t) (Complex.facets t.src))

let identity c = make ~src:c ~dst:c (fun v -> v)

let equal a b =
  Complex.equal a.src b.src && Complex.equal a.dst b.dst
  && List.for_all (fun v -> apply_vertex a v = apply_vertex b v) (Complex.vertices a.src)

let pp ppf t =
  let bindings =
    List.map (fun v -> Printf.sprintf "%d->%d" v (apply_vertex t v)) (Complex.vertices t.src)
  in
  Format.fprintf ppf "{%s}" (String.concat ", " bindings)
