let dot c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph complex {\n";
  List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "  v%d;\n" v)) (Complex.vertices c);
  List.iter
    (fun e ->
      match Simplex.to_list e with
      | [ a; b ] -> Buffer.add_string buf (Printf.sprintf "  v%d -- v%d;\n" a b)
      | _ -> ())
    (Complex.faces c ~dim:1);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Planar position of a subdivision vertex: barycentric coordinates over at
   most three base vertices, placed at the corners of an equilateral
   triangle. *)
let planar_positions sd =
  let base_cx = Chromatic.complex sd.Subdiv.base in
  let nbase = Complex.num_vertices base_cx in
  if nbase > 3 then invalid_arg "Export: base dimension must be <= 2";
  let corners =
    [| (0.0, 0.866); (1.0, 0.866); (0.5, 0.0) |]
  in
  fun v ->
    let p = sd.Subdiv.point v in
    let x = ref 0.0 and y = ref 0.0 in
    for i = 0 to nbase - 1 do
      let c = Rat.to_float (Point.coord p i) in
      let cx, cy = corners.(i) in
      x := !x +. (c *. cx);
      y := !y +. (c *. cy)
    done;
    (!x, !y)

let palette = [| "#e41a1c"; "#377eb8"; "#4daf4a"; "#984ea3"; "#ff7f00"; "#a65628" |]

let svg ?(size = 480) sd =
  let pos = planar_positions sd in
  let cx = Chromatic.complex sd.Subdiv.cx in
  let scale (x, y) =
    let m = float_of_int size in
    (20.0 +. (x *. (m -. 40.0)), 20.0 +. ((0.866 -. y) *. (m -. 40.0)))
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\">\n" size size);
  List.iter
    (fun tri ->
      match Simplex.to_list tri with
      | [ a; b; c ] ->
        let xa, ya = scale (pos a) and xb, yb = scale (pos b) and xc, yc = scale (pos c) in
        Buffer.add_string buf
          (Printf.sprintf
             "  <polygon points=\"%.2f,%.2f %.2f,%.2f %.2f,%.2f\" fill=\"#f3f3f3\" \
              stroke=\"none\"/>\n"
             xa ya xb yb xc yc)
      | _ -> ())
    (Complex.faces cx ~dim:2);
  List.iter
    (fun e ->
      match Simplex.to_list e with
      | [ a; b ] ->
        let xa, ya = scale (pos a) and xb, yb = scale (pos b) in
        Buffer.add_string buf
          (Printf.sprintf
             "  <line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"#666\" \
              stroke-width=\"1\"/>\n"
             xa ya xb yb)
      | _ -> ())
    (Complex.faces cx ~dim:1);
  List.iter
    (fun v ->
      let x, y = scale (pos v) in
      let color = palette.(Chromatic.color sd.Subdiv.cx v mod Array.length palette) in
      Buffer.add_string buf
        (Printf.sprintf "  <circle cx=\"%.2f\" cy=\"%.2f\" r=\"4\" fill=\"%s\"/>\n" x y color))
    (Complex.vertices cx);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let tikz sd =
  let pos = planar_positions sd in
  let cx = Chromatic.complex sd.Subdiv.cx in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "\\begin{tikzpicture}[scale=5]\n";
  List.iter
    (fun e ->
      match Simplex.to_list e with
      | [ a; b ] ->
        let xa, ya = pos a and xb, yb = pos b in
        Buffer.add_string buf
          (Printf.sprintf "  \\draw[gray] (%.3f,%.3f) -- (%.3f,%.3f);\n" xa ya xb yb)
      | _ -> ())
    (Complex.faces cx ~dim:1);
  List.iter
    (fun v ->
      let x, y = pos v in
      Buffer.add_string buf
        (Printf.sprintf "  \\fill (%.3f,%.3f) circle (0.015) node[above right] {\\tiny %d};\n" x
           y (Chromatic.color sd.Subdiv.cx v)))
    (Complex.vertices cx);
  Buffer.add_string buf "\\end{tikzpicture}\n";
  Buffer.contents buf
