(** Vertex maps between complexes and their simplicial properties.

    A map of vertices is {e simplicial} when the image of every simplex is a
    simplex of the target (§2). Decision functions of protocols, the
    characterization maps of Proposition 3.1, and the approximation maps of
    Lemma 5.3 / Theorem 5.1 are all values of this type. *)

type t

val make : src:Complex.t -> dst:Complex.t -> (int -> int) -> t
(** Records the image of every vertex of [src]. Does not require
    simpliciality — use {!is_simplicial} / {!check_simplicial}.
    @raise Invalid_argument if some image vertex is not in [dst]. *)

val of_assoc : src:Complex.t -> dst:Complex.t -> (int * int) list -> t

val src : t -> Complex.t

val dst : t -> Complex.t

val apply_vertex : t -> int -> int
(** @raise Not_found outside [src]. *)

val apply : t -> Simplex.t -> Simplex.t
(** Image of a simplex (duplicate images collapse, so the image can have
    lower dimension when the map is not injective on the simplex). *)

val is_simplicial : t -> bool
(** Image of every facet of [src] is a simplex of [dst]. (Faces follow.) *)

val check_simplicial : t -> (unit, Simplex.t) result
(** [Error f] returns a witness facet whose image is not a simplex. *)

val is_dimension_preserving : t -> bool

val is_color_preserving : src_color:(int -> int) -> dst_color:(int -> int) -> t -> bool
(** [X(v) = X(phi v)] for every vertex of [src]. *)

val is_injective : t -> bool

val compose : t -> t -> t
(** [compose g f] is [g ∘ f]; requires [dst f = src g] (checked). *)

val image : t -> Complex.t
(** The image subcomplex in [dst] (requires the map to be simplicial).
    @raise Invalid_argument otherwise. *)

val identity : Complex.t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
