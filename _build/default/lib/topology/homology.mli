(** Simplicial homology over ℤ/2 and "no holes" checks.

    The paper's geometric facts (Lemma 2.2) are stated in terms of {e holes}:
    a complex [C] has no hole of dimension [k] if every simplicial image of a
    [(k-1)]-sphere in [C] has a fill-in (span). We verify such statements
    through ℤ/2 homology: "no hole of dimension [k]" corresponds to the
    vanishing of the reduced homology group [H̃_{k-1}(C)].

    ℤ/2 coefficients make the computation pure linear algebra over GF(2)
    (bitset Gaussian elimination, no orientations), which is exactly enough
    to {e falsify} hole-freeness and to confirm it for the subdivided
    simplices and links the paper cares about. *)

val boundary_rank : Complex.t -> int -> int
(** Rank over GF(2) of the boundary operator [∂_k] from [k]-chains to
    [(k-1)]-chains. [∂_0] has rank 0 by convention. *)

val betti : Complex.t -> int array
(** Unreduced ℤ/2 Betti numbers [b_0 .. b_dim]. *)

val reduced_betti : Complex.t -> int array
(** Reduced Betti numbers: same as {!betti} with [b_0] decremented (a
    non-empty complex). *)

val is_acyclic : Complex.t -> bool
(** All reduced Betti numbers vanish — "no hole of any dimension"
    (first half of Lemma 2.2 for subdivided simplices). *)

val no_holes_up_to : Complex.t -> int -> bool
(** [no_holes_up_to c m]: no hole of dimension [<= m], i.e.
    [H̃_{k-1}(c) = 0] for [1 <= k <= m] and [c] connected (a hole of
    dimension 1 would be a disconnection: a 0-sphere that cannot be filled
    by a path). *)

val euler_consistent : Complex.t -> bool
(** Sanity invariant: the Euler characteristic equals the alternating sum of
    the ℤ/2 Betti numbers. (True over any field.) *)
