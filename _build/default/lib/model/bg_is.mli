(** One-shot immediate snapshot from atomic snapshots — Borowsky–Gafni [8].

    The classic level-descent algorithm: every process starts at level
    [n + 1] (for [n + 1] processes) and repeatedly descends one level,
    writes its level, takes an atomic snapshot, and returns the set of
    processes at or below its level as soon as that set has at least
    [level] members. The returned sets satisfy the three immediate-snapshot
    properties of §3.5 under {e every} interleaving — this is the paper's
    citation for the fact that the (iterated) immediate snapshot model can
    be simulated by the atomic snapshot model, i.e. the easy direction of
    the equivalence whose converse is the paper's main result.

    Termination is wait-free: the level of a process only decreases, and a
    process at level [l] with fewer than [l] processes at or below it must
    have at least [n + 1 - l] processes above it, so some level satisfies
    its exit condition after at most [n + 1] descents. *)

type 'v cell = { level : int; value : 'v }

val actions : inputs:'v array -> 'v cell Action.t array
(** One process per input; each decides on the cell containing its own
    value with [level] = the size of its output set, after privately
    recording the output set (retrieve it with {!outputs}). *)

val actions_recording :
  inputs:'v array ->
  record:(int -> (int * 'v) list -> int -> unit) ->
  'v cell Action.t array
(** Like {!actions} but calls [record proc output_set snapshots_used] when a
    process obtains its set — for exhaustive-exploration harnesses that
    drive {!Runtime.run} themselves. *)

type 'v run = {
  outcome : 'v cell Runtime.outcome;
  outputs : (int * 'v) list option array;
      (** per process: the immediate-snapshot output set [S_i] as
          [(process, value)] pairs, [None] if the process did not finish *)
  snapshots_taken : int array;  (** per-process snapshot count (≤ n+1) *)
}

val run : ?max_steps:int -> inputs:'v array -> Runtime.strategy -> 'v run

val views : 'v run -> Trace.is_views
(** Output sets projected to process ids, for {!Trace.check_immediate_snapshot}. *)
