type 'v cell = { level : int; value : 'v }

let actions_with ~inputs record =
  let m = Array.length inputs in
  Array.init m (fun i ->
      let rec descend level =
        Action.Write
          ( { level; value = inputs.(i) },
            fun () ->
              Action.Snapshot
                (fun cells ->
                  let below =
                    Array.to_list cells
                    |> List.mapi (fun j c -> (j, c))
                    |> List.filter_map (fun (j, c) ->
                           match c with
                           | Some { level = lj; value } when lj <= level -> Some (j, value)
                           | _ -> None)
                  in
                  if List.length below >= level then begin
                    record i below (m + 1 - level);
                    Action.Decide { level = List.length below; value = inputs.(i) }
                  end
                  else descend (level - 1)) )
      in
      descend m)

type 'v run = {
  outcome : 'v cell Runtime.outcome;
  outputs : (int * 'v) list option array;
  snapshots_taken : int array;
}

let actions ~inputs = actions_with ~inputs (fun _ _ _ -> ())

let actions_recording ~inputs ~record = actions_with ~inputs record

let run ?max_steps ~inputs strategy =
  let m = Array.length inputs in
  let outputs = Array.make m None in
  let snapshots_taken = Array.make m 0 in
  let record i set snaps =
    outputs.(i) <- Some set;
    snapshots_taken.(i) <- snaps
  in
  let outcome = Runtime.run ?max_steps (actions_with ~inputs record) strategy in
  (* A process that crashed after recording but before deciding still has a
     recorded output; hide it to keep the interface faithful. *)
  Array.iteri
    (fun i r -> if r = None then outputs.(i) <- None)
    outcome.Runtime.results;
  { outcome; outputs; snapshots_taken }

let views r =
  Array.to_list r.outputs
  |> List.mapi (fun i o -> (i, o))
  |> List.filter_map (fun (i, o) ->
         match o with Some set -> Some (i, List.map fst set) | None -> None)
