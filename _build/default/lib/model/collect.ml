let collect ~procs k =
  let acc = Array.make procs None in
  let rec read_from cell =
    if cell = procs then k (Array.copy acc)
    else
      Action.Read
        ( cell,
          fun v ->
            acc.(cell) <- v;
            read_from (cell + 1) )
  in
  read_from 0

let double_collect ~procs k =
  let rec retry previous =
    collect ~procs (fun current ->
        match previous with
        | Some prev when prev = current -> k current
        | _ -> retry (Some current))
  in
  retry None

let full_information ~procs ~k ~inputs =
  if Array.length inputs <> procs then invalid_arg "Collect.full_information: inputs size";
  Array.init procs (fun i ->
      Action.rounds k
        ~init:(Full_information.Vinit { proc = i; input = inputs.(i) })
        (fun v round continue ->
          Action.Write
            ( v,
              fun () ->
                double_collect ~procs (fun cells ->
                    continue (Full_information.Vsnap { proc = i; round = round + 1; cells })) ))
        Action.decide)
