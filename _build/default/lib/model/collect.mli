(** Snapshots from single-cell reads by repeated collects.

    The atomic [Snapshot] operation of the runtime is a model primitive. This
    module rebuilds it from elementary SWMR reads in the style the paper
    attributes to the snapshot construction of Afek et al. [1] {e without}
    embedded scans: collect all cells, collect again, and retry until two
    consecutive collects are equal ("double collect"). A successful double
    collect is a legal snapshot; the construction is non-blocking rather than
    wait-free, mirroring the paper's remark in §4 that its own emulation has
    the same flavor.

    Correctness requires written values to never repeat (ABA); protocols
    whose values strictly grow — e.g. full-information views — satisfy
    this. *)

val collect : procs:int -> ('v option array -> 'v Action.t) -> 'v Action.t
(** Read cells [0 .. procs-1] one at a time and pass the collected array to
    the continuation. *)

val double_collect : procs:int -> ('v option array -> 'v Action.t) -> 'v Action.t
(** Repeat {!collect} until two consecutive collects agree (structural
    equality); the agreed collect is a legal snapshot. *)

val full_information : procs:int -> k:int -> inputs:'v array ->
  'v Full_information.view Action.t array
(** Figure 1 rebuilt on double collects instead of the [Snapshot]
    primitive — same protocol, one model level lower. *)
