(** Protocol complexes built by exhaustively executing the models.

    Vertices are pairs (process, local view) reachable in some execution;
    a set of vertices is a simplex when the views arise in one execution
    (§3.1, §3.6). The complexes here are produced by actually {e running}
    the full-information protocols under every schedule of the bounded
    schedule space — so matching them against the combinatorial
    constructions of {!Wfc_topology.Sds} is a genuine reproduction of
    Lemmas 3.2 and 3.3 rather than a definition chase. *)

type t = {
  chromatic : Wfc_topology.Chromatic.t;  (** colored by process id *)
  view_of : int -> string;  (** canonical view encoding per vertex *)
  proc_of : int -> int;
  seen_of : int -> int list;  (** processes visible in the final view *)
}

val one_shot_is : procs:int -> t
(** Protocol complex of the one-shot immediate snapshot over all
    participating sets and all ordered partitions (Lemma 3.2: isomorphic to
    [SDS(sⁿ)]). *)

val iis : procs:int -> rounds:int -> t
(** Protocol complex of the [rounds]-shot IIS full-information protocol
    (Lemma 3.3: isomorphic to [SDS^rounds(sⁿ)]). *)

val atomic : procs:int -> rounds:int -> t
(** Protocol complex of the [rounds]-round atomic-snapshot full-information
    protocol (Figure 1) over all interleavings. Grows very fast; intended
    for [procs <= 3], [rounds <= 2]. *)

val matches_sds : t -> Wfc_topology.Sds.t -> bool
(** Whether the protocol complex coincides with the given iterated standard
    chromatic subdivision, matching vertices by canonical view encoding
    (stronger than isomorphism: it checks that the views themselves
    agree). *)

val is_subcomplex_of : t -> t -> bool
(** Whether every simplex of the first appears in the second, matching
    vertices by process id and immediate-snapshot view content. Used for
    E11 (the IS complex sits inside the one-round atomic complex). *)
