(** Exhaustive exploration of the scheduling tree.

    Replays a protocol under {e every} adversary decision sequence (steps,
    and optionally every way of firing immediate-snapshot blocks), calling a
    callback per complete run. This is the brute-force companion to
    {!Protocol_complex}: where that module enumerates the well-understood
    schedule spaces of the full-information protocols, this one explores the
    decision tree of {e arbitrary} protocols — used to certify, e.g., that
    the Borowsky–Gafni algorithm returns legal immediate snapshots under
    every interleaving, and to compute the decision bound of Lemma 3.1.

    Because runtime state is not copyable, each leaf replays the decision
    prefix from scratch; cost is O(runs × depth²), fine for the protocol
    sizes this is meant for. *)

exception Too_many of int

val explore :
  ?max_runs:int ->
  ?crashes:int ->
  (unit -> 'v Action.t array) ->
  ('v Runtime.outcome -> unit) ->
  int
(** [explore make_actions f] runs [f] on the outcome of every complete
    schedule and returns the number of runs. [make_actions] must build fresh
    actions on every call (closures may hold per-run state). [crashes] > 0
    additionally explores crashing up to that many processes at every
    point. @raise Too_many when more than [max_runs] (default 200_000) runs
    would be explored. *)

val decisions_at : Runtime.view -> Runtime.decision list
(** All decisions available in a view: one [Step] per runnable process and
    one [Fire] per (level, non-empty subset of arrived processes). Exposed
    for custom searches. *)
