open Wfc_topology

type t = {
  chromatic : Chromatic.t;
  view_of : int -> string;
  proc_of : int -> int;
  seen_of : int -> int list;
}

(* Accumulates runs into a complex: vertices keyed by canonical view. *)
type builder = {
  mutable next : int;
  ids : (string, int) Hashtbl.t;
  views : (int, string) Hashtbl.t;
  procs_tbl : (int, int) Hashtbl.t;
  mutable seen_tbl : (int, int list) Hashtbl.t;
  mutable facets : int list list;
}

let new_builder () =
  {
    next = 0;
    ids = Hashtbl.create 256;
    views = Hashtbl.create 256;
    procs_tbl = Hashtbl.create 256;
    seen_tbl = Hashtbl.create 256;
    facets = [];
  }

let add_run b vertices =
  let simplex =
    List.map
      (fun (proc, canonical, seen) ->
        match Hashtbl.find_opt b.ids canonical with
        | Some id -> id
        | None ->
          let id = b.next in
          b.next <- id + 1;
          Hashtbl.replace b.ids canonical id;
          Hashtbl.replace b.views id canonical;
          Hashtbl.replace b.procs_tbl id proc;
          Hashtbl.replace b.seen_tbl id seen;
          id)
      vertices
  in
  b.facets <- simplex :: b.facets

let finish b name =
  let complex = Complex.of_facets ~name b.facets in
  let chromatic = Chromatic.make ~check:false complex ~color:(fun v -> Hashtbl.find b.procs_tbl v) in
  {
    chromatic;
    view_of = (fun v -> Hashtbl.find b.views v);
    proc_of = (fun v -> Hashtbl.find b.procs_tbl v);
    seen_of = (fun v -> Hashtbl.find b.seen_tbl v);
  }

let enc_input i = Printf.sprintf "#%d" i

let iis_general ~procs ~rounds =
  let b = new_builder () in
  let inputs = Array.init procs (fun i -> i) in
  let all = List.init procs (fun i -> i) in
  List.iter
    (fun participating ->
      let sequences = Schedule.partition_sequences participating rounds in
      List.iter
        (fun seq ->
          let actions =
            Full_information.iis_participants ~procs ~k:rounds ~inputs ~participating
          in
          let outcome = Runtime.run actions (Runtime.iis_schedule (Array.of_list seq)) in
          let vertices =
            List.filter_map
              (fun p ->
                match outcome.Runtime.results.(p) with
                | Some view ->
                  Some
                    ( p,
                      Full_information.canonical_iview enc_input view,
                      Full_information.iview_procs_seen view )
                | None -> None)
              participating
          in
          add_run b vertices)
        sequences)
    (Schedule.nonempty_subsets all);
  finish b (Printf.sprintf "iis-%d-shot" rounds)

let one_shot_is ~procs = iis_general ~procs ~rounds:1

let iis ~procs ~rounds = iis_general ~procs ~rounds

let atomic ~procs ~rounds =
  let b = new_builder () in
  let inputs = Array.init procs (fun i -> i) in
  let all = List.init procs (fun i -> i) in
  let seen_of_view = function
    | Full_information.Vinit { proc; _ } -> [ proc ]
    | Full_information.Vsnap { cells; _ } ->
      let seen = ref [] in
      Array.iteri (fun j c -> if c <> None then seen := j :: !seen) cells;
      List.sort Stdlib.compare !seen
  in
  List.iter
    (fun participating ->
      let counts =
        Array.init procs (fun i -> if List.mem i participating then 2 * rounds else 0)
      in
      let schedules = Schedule.interleavings counts in
      List.iter
        (fun order ->
          let actions =
            Array.mapi
              (fun i a ->
                if List.mem i participating then a
                else Action.Decide (Full_information.Vinit { proc = i; input = inputs.(i) }))
              (Full_information.atomic_k_shot ~procs ~k:rounds ~inputs)
          in
          let outcome = Runtime.run actions (Runtime.linear_schedule order) in
          let vertices =
            List.filter_map
              (fun p ->
                match outcome.Runtime.results.(p) with
                | Some view ->
                  Some
                    (p, Full_information.canonical_view enc_input view, seen_of_view view)
                | None -> None)
              participating
          in
          add_run b vertices)
        schedules)
    (Schedule.nonempty_subsets all);
  finish b (Printf.sprintf "atomic-%d-round" rounds)

let matches_sds t sds =
  let scx = Chromatic.complex (Sds.complex sds) in
  let tcx = Chromatic.complex t.chromatic in
  Complex.num_vertices scx = Complex.num_vertices tcx
  && Complex.num_facets scx = Complex.num_facets tcx
  &&
  let table = Hashtbl.create 256 in
  List.iter
    (fun v -> Hashtbl.replace table (t.view_of v) v)
    (Complex.vertices tcx);
  let ok = ref true in
  let mapped = Hashtbl.create 256 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt table (Sds.canonical_view sds v) with
      | Some w -> Hashtbl.replace mapped v w
      | None -> ok := false)
    (Complex.vertices scx);
  !ok
  &&
  let image_facets =
    List.map
      (fun f -> Simplex.of_list (List.map (Hashtbl.find mapped) (Simplex.to_list f)))
      (Complex.facets scx)
  in
  List.equal Simplex.equal
    (List.sort_uniq Simplex.compare image_facets)
    (Complex.facets tcx)

let is_subcomplex_of a b =
  (* Match vertices by (process, set of processes seen); only meaningful for
     one-round complexes, where that pair determines the view. *)
  let b_table = Hashtbl.create 256 in
  List.iter
    (fun v -> Hashtbl.replace b_table (b.proc_of v, b.seen_of v) v)
    (Complex.vertices (Chromatic.complex b.chromatic));
  let translate v = Hashtbl.find_opt b_table (a.proc_of v, a.seen_of v) in
  List.for_all
    (fun f ->
      let imgs = List.map translate (Simplex.to_list f) in
      List.for_all Option.is_some imgs
      &&
      let s = Simplex.of_list (List.map Option.get imgs) in
      Complex.mem s (Chromatic.complex b.chromatic))
    (Complex.facets (Chromatic.complex a.chromatic))
