exception Too_many of int

let count_interleavings counts =
  let total = Array.fold_left ( + ) 0 counts in
  (* multinomial(total; counts) computed without overflow drama by
     incremental binomials *)
  let binom n k =
    let k = min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    if k < 0 then 0 else go 1 1
  in
  let _, product =
    Array.fold_left
      (fun (remaining, acc) c -> (remaining - c, acc * binom remaining c))
      (total, 1) counts
  in
  product

let interleavings ?(limit = 2_000_000) counts =
  let total_count = count_interleavings counts in
  if total_count > limit then raise (Too_many total_count);
  let n = Array.length counts in
  let remaining = Array.copy counts in
  let rec go length =
    if length = 0 then [ [] ]
    else begin
      let out = ref [] in
      for p = n - 1 downto 0 do
        if remaining.(p) > 0 then begin
          remaining.(p) <- remaining.(p) - 1;
          List.iter (fun tail -> out := (p :: tail) :: !out) (go (length - 1));
          remaining.(p) <- remaining.(p) + 1
        end
      done;
      !out
    end
  in
  go (Array.fold_left ( + ) 0 counts)

let partition_sequences ?(limit = 2_000_000) procs rounds =
  let per_round = Wfc_topology.Ordered_partition.enumerate procs in
  let k = List.length per_round in
  let total = int_of_float (float_of_int k ** float_of_int rounds) in
  if total > limit then raise (Too_many total);
  let rec go r = if r = 0 then [ [] ] else
      let tails = go (r - 1) in
      List.concat_map (fun p -> List.map (fun tail -> p :: tail) tails) per_round
  in
  go rounds

let random_interleaving st counts =
  let remaining = Array.copy counts in
  let total = Array.fold_left ( + ) 0 counts in
  let rec pick k i = if k < remaining.(i) then i else pick (k - remaining.(i)) (i + 1) in
  let rec go left acc =
    if left = 0 then List.rev acc
    else begin
      let p = pick (Random.State.int st left) 0 in
      remaining.(p) <- remaining.(p) - 1;
      go (left - 1) (p :: acc)
    end
  in
  go total []

let nonempty_subsets xs =
  let xs = List.sort_uniq Stdlib.compare xs in
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
      let subs = go rest in
      List.map (fun s -> x :: s) subs @ subs
  in
  List.filter (( <> ) []) (go xs)
