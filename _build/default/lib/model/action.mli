(** Protocol steps for the simulated shared-memory machine.

    A process is a state machine written in continuation-passing style: each
    constructor is one {e operation} on shared memory together with the rest
    of the process as a closure. The runtime owns the shared state — a SWMR
    cell per process ({!Write}/{!Read}/{!Snapshot}, the atomic-snapshot model
    of §3.1) and a sequence of one-shot immediate snapshot memories
    ({!Write_read}, the IIS model of §3.5) — and decides when each operation
    executes, so a strategy (adversary) controls the interleaving completely
    and runs are replayable.

    ['v] is the type of values a protocol stores in shared memory. *)

type 'v wr_result = {
  time : int;
      (** sequence number of the firing that released this operation; firings
          are totally ordered across all memories, so [time] is a global
          logical clock usable for linearizability checks *)
  seen : 'v list;
      (** the immediate-snapshot output [S_i]: inputs of all processes in
          blocks up to and including the caller's, sorted by process id *)
}

type 'v t =
  | Write of 'v * (unit -> 'v t)  (** write own SWMR cell *)
  | Read of int * ('v option -> 'v t)  (** read one cell *)
  | Snapshot of ('v option array -> 'v t)  (** atomic snapshot of all cells *)
  | Write_read of { level : int; value : 'v; k : 'v wr_result -> 'v t }
      (** WriteRead on the one-shot immediate snapshot memory [M_level];
          each process may use each level at most once (checked) *)
  | Note of string * (unit -> 'v t)  (** trace annotation, no shared effect *)
  | Decide of 'v  (** terminate with an output *)

val decide : 'v -> 'v t

val rounds : int -> init:'a -> ('a -> int -> ('a -> 'v t) -> 'v t) -> ('a -> 'v t) -> 'v t
(** [rounds k ~init body finish] runs [body acc round continue] for
    [round = 0 .. k-1], threading an accumulator, then [finish acc] —
    a convenience for round-structured protocols. *)
