lib/model/explore.mli: Action Runtime
