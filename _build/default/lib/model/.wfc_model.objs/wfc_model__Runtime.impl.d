lib/model/runtime.ml: Action Array Hashtbl List Printf Random Stdlib Trace
