lib/model/schedule.ml: Array List Random Stdlib Wfc_topology
