lib/model/full_information.ml: Action Array List Printf Stdlib String
