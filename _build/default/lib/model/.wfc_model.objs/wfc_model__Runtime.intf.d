lib/model/runtime.mli: Action Trace Wfc_topology
