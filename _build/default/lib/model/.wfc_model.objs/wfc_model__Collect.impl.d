lib/model/collect.ml: Action Array Full_information
