lib/model/protocol_complex.mli: Wfc_topology
