lib/model/trace.mli: Format Wfc_topology
