lib/model/protocol_complex.ml: Action Array Chromatic Complex Full_information Hashtbl List Option Printf Runtime Schedule Sds Simplex Stdlib Wfc_topology
