lib/model/action.mli:
