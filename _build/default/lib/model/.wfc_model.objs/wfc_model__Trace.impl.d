lib/model/trace.ml: Array Format Hashtbl List Printf Stdlib String Wfc_topology
