lib/model/full_information.mli: Action
