lib/model/schedule.mli: Random Wfc_topology
