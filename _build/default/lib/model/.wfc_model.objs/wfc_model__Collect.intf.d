lib/model/collect.mli: Action Full_information
