lib/model/action.ml:
