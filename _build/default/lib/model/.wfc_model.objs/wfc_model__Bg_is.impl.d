lib/model/bg_is.ml: Action Array List Runtime
