lib/model/explore.ml: List Runtime Schedule
