lib/model/bg_is.mli: Action Runtime Trace
