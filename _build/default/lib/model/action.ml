type 'v wr_result = { time : int; seen : 'v list }

type 'v t =
  | Write of 'v * (unit -> 'v t)
  | Read of int * ('v option -> 'v t)
  | Snapshot of ('v option array -> 'v t)
  | Write_read of { level : int; value : 'v; k : 'v wr_result -> 'v t }
  | Note of string * (unit -> 'v t)
  | Decide of 'v

let decide v = Decide v

let rounds k ~init body finish =
  let rec go acc r = if r = k then finish acc else body acc r (fun acc' -> go acc' (r + 1)) in
  go init 0
