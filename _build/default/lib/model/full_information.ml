type 'v view =
  | Vinit of { proc : int; input : 'v }
  | Vsnap of { proc : int; round : int; cells : 'v view option array }

type 'v iview =
  | Iinit of { proc : int; input : 'v }
  | Inode of { proc : int; seen : 'v iview list }

let atomic_k_shot ~procs ~k ~inputs =
  if Array.length inputs <> procs then invalid_arg "Full_information.atomic_k_shot: inputs size";
  Array.init procs (fun i ->
      Action.rounds k
        ~init:(Vinit { proc = i; input = inputs.(i) })
        (fun v round continue ->
          Action.Write
            ( v,
              fun () ->
                Action.Snapshot
                  (fun cells -> continue (Vsnap { proc = i; round = round + 1; cells })) ))
        Action.decide)

let iis_k_shot ~procs ~k ~inputs =
  if Array.length inputs <> procs then invalid_arg "Full_information.iis_k_shot: inputs size";
  Array.init procs (fun i ->
      Action.rounds k
        ~init:(Iinit { proc = i; input = inputs.(i) })
        (fun v level continue ->
          Action.Write_read
            {
              level;
              value = v;
              k = (fun { Action.seen; _ } -> continue (Inode { proc = i; seen }));
            })
        Action.decide)

let iis_participants ~procs ~k ~inputs ~participating =
  let all = iis_k_shot ~procs ~k ~inputs in
  Array.mapi
    (fun i a ->
      if List.mem i participating then a
      else Action.Decide (Iinit { proc = i; input = inputs.(i) }))
    all

let proc_of_iview = function
  | Iinit { proc; _ } -> proc
  | Inode { proc; _ } -> proc

let proc_of_view = function
  | Vinit { proc; _ } -> proc
  | Vsnap { proc; _ } -> proc

let rec canonical_iview enc = function
  | Iinit { proc; input } ->
    ignore proc;
    enc input
  | Inode { proc; seen } ->
    let members = List.sort Stdlib.compare (List.map (canonical_iview enc) seen) in
    Printf.sprintf "P%d{%s}" proc (String.concat "," members)

let rec canonical_view enc = function
  | Vinit { proc; input } ->
    ignore proc;
    enc input
  | Vsnap { proc; round; cells } ->
    let parts =
      Array.to_list
        (Array.map (function None -> "_" | Some v -> canonical_view enc v) cells)
    in
    Printf.sprintf "P%d.%d[%s]" proc round (String.concat ";" parts)

let iview_procs_seen = function
  | Iinit { proc; _ } -> [ proc ]
  | Inode { seen; _ } -> List.sort Stdlib.compare (List.map proc_of_iview seen)
