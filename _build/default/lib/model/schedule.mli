(** Schedule enumeration and generation.

    Exhaustive schedule spaces are what turn the simulated machine into a
    proof device: protocol complexes are built by running a protocol under
    {e every} schedule of a bounded space (§3.1, §3.6). *)

exception Too_many of int
(** Raised when an enumeration would exceed the given bound. *)

val interleavings : ?limit:int -> int array -> int list list
(** [interleavings counts]: all sequences over process ids [0..n-1] in which
    process [i] appears exactly [counts.(i)] times — the schedule space of a
    cell-stepping protocol with a fixed per-process operation count.
    @raise Too_many if the multinomial count exceeds [limit]
    (default [2_000_000]). *)

val count_interleavings : int array -> int

val partition_sequences :
  ?limit:int -> int list -> int -> Wfc_topology.Ordered_partition.t list list
(** [partition_sequences procs rounds]: every sequence of [rounds] ordered
    partitions of [procs] — the schedule space of the [rounds]-shot IIS
    model with full participation. @raise Too_many as above. *)

val random_interleaving : Random.State.t -> int array -> int list
(** Uniform random interleaving with the given per-process counts. *)

val nonempty_subsets : int list -> int list list
(** All non-empty subsets, each sorted. *)
