(** Full-information protocols in both models.

    In the full-information protocol a process repeatedly publishes
    {e everything it knows} and reads everything published (§3.1). Its local
    state after [k] rounds is a nested view — the finest information any
    protocol can gather, which is why protocol complexes are built from
    these views.

    Two variants:
    - {!atomic_k_shot} — Figure 1: alternate [Write own cell] /
      [atomic Snapshot] for [k] rounds on SWMR snapshot memory;
    - {!iis_k_shot} — the IIS full-information protocol of §3.5: WriteRead
      on [M_0, ..., M_{k-1}]. *)

(** Views of the atomic snapshot model: the initial input, or the last
    snapshot taken (an array over all cells, [None] = cell unwritten). *)
type 'v view =
  | Vinit of { proc : int; input : 'v }
  | Vsnap of { proc : int; round : int; cells : 'v view option array }

(** Views of the IIS model: the initial input, or the output of the last
    one-shot memory (the views of all processes seen there). *)
type 'v iview =
  | Iinit of { proc : int; input : 'v }
  | Inode of { proc : int; seen : 'v iview list }

val atomic_k_shot : procs:int -> k:int -> inputs:'v array -> 'v view Action.t array
(** Figure 1 for each of [procs] processes. After [k]
    write/snapshot rounds each process decides on its final view. *)

val iis_k_shot : procs:int -> k:int -> inputs:'v array -> 'v iview Action.t array
(** IIS full-information protocol: [k] one-shot memories. *)

val iis_participants :
  procs:int -> k:int -> inputs:'v array -> participating:int list -> 'v iview Action.t array
(** Same, but processes outside [participating] decide immediately on their
    initial view — used to enumerate protocol complexes over all
    participating sets. *)

val canonical_iview : ('v -> string) -> 'v iview -> string
(** Canonical encoding of an IIS view. Matches
    {!Wfc_topology.Sds.canonical_view} when inputs are encoded as ["#i"] for
    process [i] — the bridge used to check Lemmas 3.2/3.3. *)

val canonical_view : ('v -> string) -> 'v view -> string
(** Canonical encoding of an atomic-snapshot view. *)

val iview_procs_seen : 'v iview -> int list
(** Processes whose views appear in the last round seen (the immediate
    snapshot output set, as process ids); the initial view sees only its
    own process. *)

val proc_of_iview : 'v iview -> int

val proc_of_view : 'v view -> int
