open Wfc_topology
open Wfc_model

let rounds_needed cx =
  let d = Fillin.diameter cx in
  let rec bits acc d = if d <= 1 then acc else bits (acc + 1) ((d + 1) / 2) in
  max 1 (bits 0 d)

(* Deterministic midpoint of the canonical (sorted-endpoint) shortest path:
   both processes, given the same pair, compute the same vertex. *)
let midpoint cx a b =
  let lo = min a b and hi = max a b in
  match Fillin.path_midpoint cx lo hi with
  | Some m -> m
  | None -> invalid_arg "Ncsac: complex became disconnected?"

let protocol cx ~inputs:(v0, v1) =
  if not (Complex.is_connected cx) then invalid_arg "Ncsac.protocol: disconnected complex";
  if not (Complex.mem_vertex v0 cx && Complex.mem_vertex v1 cx) then
    invalid_arg "Ncsac.protocol: input is not a vertex";
  let rounds = rounds_needed cx in
  let make input =
    Action.rounds rounds ~init:input
      (fun estimate level continue ->
        Action.Write_read
          {
            level;
            value = estimate;
            k =
              (fun { Action.seen; _ } ->
                match seen with
                | [ _ ] -> continue estimate (* saw only self: stay *)
                | [ a; b ] -> continue (midpoint cx a b)
                | _ -> invalid_arg "Ncsac: more than two processes in the memory");
          })
      Action.decide
  in
  [| make v0; make v1 |]

type participation = Both | Solo of int

let check_outputs cx ~inputs:(v0, v1) ~participation (o0, o1) =
  match (participation, o0, o1) with
  | Solo 0, Some w, _ -> if w = v0 then Ok () else Error "solo P0 moved off its input"
  | Solo 1, _, Some w -> if w = v1 then Ok () else Error "solo P1 moved off its input"
  | Solo _, _, _ -> Ok ()
  | Both, Some w0, Some w1 ->
    let s = Simplex.of_list [ w0; w1 ] in
    if Complex.mem s cx then Ok ()
    else Error (Printf.sprintf "outputs %d,%d do not span a simplex" w0 w1)
  | Both, _, _ -> Ok () (* a crashed participant leaves no joint constraint *)

let validate ?(seeds = List.init 30 (fun i -> i)) cx ~inputs:(v0, v1) =
  let results o = (o.Runtime.results.(0), o.Runtime.results.(1)) in
  let rec go = function
    | [] -> Ok ()
    | seed :: rest -> (
      (* both participate *)
      let o = Runtime.run (protocol cx ~inputs:(v0, v1)) (Runtime.random ~seed ()) in
      match check_outputs cx ~inputs:(v0, v1) ~participation:Both (results o) with
      | Error e -> Error (Printf.sprintf "seed %d: %s" seed e)
      | Ok () -> (
        (* one participant crashes mid-run: the survivor's output is
           unconstrained beyond being a vertex, but the run must finish *)
        let victim = seed mod 2 in
        let o =
          Runtime.run (protocol cx ~inputs:(v0, v1))
            (Runtime.random_with_crashes ~seed ~crash:[ victim ] ())
        in
        match check_outputs cx ~inputs:(v0, v1) ~participation:Both (results o) with
        | Error e -> Error (Printf.sprintf "seed %d (crash %d): %s" seed victim e)
        | Ok () -> (
          (* true solo runs: the other process never takes a step *)
          let solo who =
            let actions = protocol cx ~inputs:(v0, v1) in
            let actions =
              Array.mapi (fun i a -> if i = who then a else Action.Decide (-1)) actions
            in
            let o = Runtime.run actions (Runtime.random ~seed ()) in
            let out = (o.Runtime.results.(0), o.Runtime.results.(1)) in
            check_outputs cx ~inputs:(v0, v1) ~participation:(Solo who) out
          in
          match (solo 0, solo 1) with
          | Ok (), Ok () -> go rest
          | Error e, _ | _, Error e -> Error (Printf.sprintf "seed %d (solo): %s" seed e))))
  in
  go seeds
