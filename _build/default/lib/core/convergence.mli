(** Chromatic simplex agreement, end to end — the CSASS task of §5.

    Theorem 5.1 is proved in the paper by exhibiting a wait-free algorithm
    for chromatic simplex agreement over a subdivided simplex. Here the
    algorithm is assembled from the library's own pieces, the way
    Proposition 3.1 says every IIS protocol decomposes: find the decision
    map [SDS^k(sⁿ) → A] ({!Approximation.chromatic}), then run it as [k]
    rounds of IIS full information followed by a local decision
    ({!Characterization.protocol_of_map}). The result is a runnable
    distributed protocol in which processes wait-free converge onto a single
    simplex of [A] respecting colors and carriers. *)

open Wfc_topology
open Wfc_model

type t = {
  target : Subdiv.t;
  level : int;  (** IIS rounds used *)
  map : Solvability.map;
}

val prepare : ?budget:int -> ?max_k:int -> Subdiv.t -> t option
(** Finds the decision map for CSASS over the target (Theorem 5.1 witness).
    [None] if no map is found up to [max_k] (default 4). *)

val run :
  t -> participating:int list -> Runtime.strategy -> ((int * int) list, string) Stdlib.result
(** One distributed run under the adversary; returns [(process, vertex of
    the target)] convergence outputs after validating: outputs form a
    simplex [W] of [A], [X(w_i) = i], and [carrier(W) ⊆] the participants'
    face. *)

val validate : ?seeds:int list -> t -> (unit, string) Stdlib.result
(** {!run} over every participating set and seed. *)
