(** Sperner's lemma on chromatic subdivisions — the elementary obstruction
    behind set-consensus impossibility.

    The paper recalls (§1) that the impossibility of [(n+1, n)]-set
    consensus was proved by elementary arguments in [7]. The combinatorial
    heart is Sperner's lemma: in any subdivision of [sⁿ] whose vertices are
    labeled by base vertices of their own carrier (a {e Sperner labeling}),
    the number of panchromatic facets — facets carrying all [n + 1] labels
    — is odd, hence non-zero.

    A decision map for [(n+1, n)]-set consensus over [SDS^b(sⁿ)] would be
    exactly a Sperner labeling with {e no} panchromatic facet (at most [n]
    distinct ids may be decided), so the lemma rules it out at {e every}
    level [b] — complementing the exhaustive-search proofs of
    {!Solvability}, which are bounded-level by nature. This module counts
    panchromatic facets so tests can confirm the parity on every
    machine-generated labeling. *)

open Wfc_topology

val is_sperner_labeling : Sds.t -> label:(int -> int) -> bool
(** Every subdivision vertex is labeled by a vertex of its own carrier
    (the base must be a standard simplex). *)

val panchromatic_facets : Sds.t -> label:(int -> int) -> Simplex.t list
(** Facets whose vertices carry all [n + 1] distinct labels. *)

val random_sperner_labeling : seed:int -> Sds.t -> int -> int
(** A labeling choosing uniformly among each vertex's carrier vertices. *)

val decision_map_labeling : Solvability.map -> (int -> int) option
(** For a set-consensus decision map: the labeling sending each [SDS^b]
    vertex to the id it decides. [None] if some decided label falls outside
    the vertex's carrier (cannot happen for a valid map). *)
