(** Simplicial approximation — the geometric engine of §5.

    Lemma 5.3 (via the simplicial approximation theorem, Lemma 2.1): for any
    subdivision [A(sⁿ)] and all large enough [k], there is a
    carrier-preserving simplicial map from [Bsd^k(sⁿ)] (hence from
    [SDS^k(sⁿ)], which refines through [Bsd]) to [A].

    {!approximate} implements the constructive content with exact rational
    arithmetic: each source vertex [v] is sent to a target vertex [w] whose
    open star contains the point of [v] — concretely, [w] maximizes the
    barycentric coordinate of [point v] inside a target facet containing it,
    among vertices whose carrier is a face of [carrier v]. When the source
    mesh is fine enough the resulting vertex map is automatically simplicial
    and carrier-monotone; the function {e verifies} both and reports failure
    otherwise, so callers can retry at a finer level ({!min_level}).

    Theorem 5.1 (the {e chromatic} version) is obtained through the
    equivalence the paper itself uses: a color-and-carrier-preserving map
    [SDS^k(sⁿ) → A] is exactly a decision map for the chromatic simplex
    agreement task over [A], so {!chromatic} delegates to the
    {!Solvability} engine and returns an independently verifiable map. *)

open Wfc_topology

val approximate : source:Subdiv.t -> target:Subdiv.t -> (Simplicial_map.t, string) result
(** Build and verify the star-based approximation map between two
    subdivisions of the same base. [Error] explains the first violation
    (mesh too coarse). *)

val chromatic_geometric :
  source:Subdiv.t -> target:Subdiv.t -> (Simplicial_map.t, string) result
(** The star-based approximation restricted to same-color candidates. The
    chromatic version of the approximation theorem does {e not} hold
    pointwise in general (that is the whole point of §5's convergence
    algorithm), but on many concrete targets the color-filtered choice
    already succeeds — e.g. [SDS²(s²) → SDS(s²)] — giving a cheap witness
    without the complete search of {!chromatic}. *)

type scheme = [ `Bsd | `Sds ]

val min_level :
  ?max_k:int -> scheme:scheme -> target:Subdiv.t -> unit -> (int * Simplicial_map.t) option
(** Smallest [k <= max_k] (default 6) such that {!approximate} succeeds from
    [Bsd^k] (resp. [SDS^k]) of the target's base; with the witness map. *)

val chromatic :
  ?budget:int -> ?max_k:int -> target:Subdiv.t -> unit -> (int * Solvability.map) option
(** Theorem 5.1: smallest [k <= max_k] (default 4) with a
    color-and-carrier-preserving simplicial map [SDS^k(sⁿ) → A], as the
    decision map of the CSASS task over [A]. *)
