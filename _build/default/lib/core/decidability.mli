(** Exact wait-free solvability for two-process tasks — every level at once.

    For three or more processes, solvability is undecidable (the paper
    cites Gafni–Koutsoupias [9]); {!Solvability} therefore searches level
    by level. For {e two} processes the structure collapses to graph
    connectivity, in the spirit of the single-failure characterization of
    Biran–Moran–Zaks [3] that the paper recalls in its introduction:

    [SDS^b] of an input edge is a path of [3^b] edges whose vertices
    alternate colors, so a decision map restricted to that edge is exactly
    a {e walk} in the bipartite "allowed-pairs" graph [H(si)] (nodes:
    output vertices, edges: members of [Δ(si)]) from the image of [P0]'s
    corner to the image of [P1]'s corner. Walks can always be lengthened by
    two (bounce on an edge) and the graph is bipartite, so a walk of length
    exactly [3^b] exists for some [b] iff the chosen corner images are
    connected in [H(si)] at all. Corner images are shared between input
    edges, so the task is solvable — at {e some} level — iff there is a
    choice of solo-allowed output per input vertex connecting every input
    edge's endpoints in its own allowed-pairs graph; and the minimal level
    is [max over edges of ceil(log3 (shortest walk))] for the best choice.

    The verdicts here are exact for {e all} levels, which is how the test
    suite certifies that the bounded-level "unsolvable up to b" answers of
    {!Solvability} for consensus, 2-name adaptive renaming, test-and-set
    and fetch&increment are genuine impossibilities rather than small-[b]
    artifacts. *)

type verdict =
  | Solvable_at of int  (** minimal IIS round count *)
  | Unsolvable  (** at every level *)

val two_process : Wfc_tasks.Task.t -> verdict
(** Decides a two-process task exactly.
    @raise Invalid_argument if the task does not have exactly two
    processes, or if the corner-choice space exceeds an internal safety cap
    (1_000_000 combinations — unreachable for the instances in this
    library). *)

val agrees_with_search : ?max_level:int -> Wfc_tasks.Task.t -> bool
(** Cross-validation harness: the exact verdict is consistent with the
    bounded-level search ({!Solvability.solve}) up to [max_level]
    (default 2): same solvable level when solvable at [<= max_level], and
    search exhaustion whenever this module says [Unsolvable]. *)
