open Wfc_topology

let vertices_of sds = Complex.vertices (Chromatic.complex (Sds.complex sds))

let is_sperner_labeling sds ~label =
  List.for_all
    (fun v -> Simplex.mem (label v) (Sds.carrier sds v))
    (vertices_of sds)

let panchromatic_facets sds ~label =
  let cx = Chromatic.complex (Sds.complex sds) in
  let n = Complex.dim cx in
  List.filter
    (fun f ->
      let labels = List.sort_uniq Stdlib.compare (List.map label (Simplex.to_list f)) in
      List.length labels = n + 1)
    (Complex.facets cx)

let random_sperner_labeling ~seed sds =
  let st = Random.State.make [| seed; 0x5be4 |] in
  let table = Hashtbl.create 128 in
  List.iter
    (fun v ->
      let carrier = Simplex.to_list (Sds.carrier sds v) in
      let pick = List.nth carrier (Random.State.int st (List.length carrier)) in
      Hashtbl.replace table v pick)
    (vertices_of sds);
  fun v -> Hashtbl.find table v

let decision_map_labeling (m : Solvability.map) =
  let task = m.Solvability.task in
  let sds = m.Solvability.sds in
  let ok = ref true in
  let table = Hashtbl.create 128 in
  (* The decided value is a process id; the labeling lives on input-complex
     vertices, so translate through the (proc, own-id) input vertex. *)
  let base_vertex_of_id id =
    match int_of_string_opt id with
    | None -> None
    | Some p -> Wfc_tasks.Task.input_vertex task ~proc:p ~value:id
  in
  List.iter
    (fun v ->
      let w = m.Solvability.decide v in
      match base_vertex_of_id (task.Wfc_tasks.Task.output_label w) with
      | Some bv when Simplex.mem bv (Sds.carrier sds v) -> Hashtbl.replace table v bv
      | Some _ | None -> ok := false)
    (vertices_of sds);
  if !ok then Some (fun v -> Hashtbl.find table v) else None
