lib/core/solvability.ml: Array Chromatic Complex Hashtbl List Printf Queue Sds Simplex String Subdiv Task Wfc_tasks Wfc_topology
