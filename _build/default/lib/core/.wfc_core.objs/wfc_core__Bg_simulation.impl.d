lib/core/bg_simulation.ml: Action Array Hashtbl List Option Printf Runtime Stdlib String Wfc_model
