lib/core/convergence.mli: Runtime Solvability Stdlib Subdiv Wfc_model Wfc_topology
