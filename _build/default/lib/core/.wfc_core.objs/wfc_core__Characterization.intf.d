lib/core/characterization.mli: Action Full_information Runtime Solvability Stdlib Wfc_model
