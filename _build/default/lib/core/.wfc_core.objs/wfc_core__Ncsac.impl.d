lib/core/ncsac.ml: Action Array Complex Fillin List Printf Runtime Simplex Wfc_model Wfc_topology
