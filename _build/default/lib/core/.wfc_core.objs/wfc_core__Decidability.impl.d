lib/core/decidability.ml: Chromatic Complex Hashtbl List Queue Simplex Solvability Stdlib Task Wfc_tasks Wfc_topology
