lib/core/bounded.ml: Explore Hashtbl List Runtime Trace Wfc_model
