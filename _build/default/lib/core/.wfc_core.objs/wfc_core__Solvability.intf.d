lib/core/solvability.mli: Wfc_tasks Wfc_topology
