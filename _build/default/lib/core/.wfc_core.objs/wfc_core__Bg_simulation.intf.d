lib/core/bg_simulation.mli: Runtime Stdlib Wfc_model
