lib/core/approximation.mli: Simplicial_map Solvability Subdiv Wfc_topology
