lib/core/emulation.ml: Action Array List Option Printf Runtime Stdlib String Trace Wfc_model
