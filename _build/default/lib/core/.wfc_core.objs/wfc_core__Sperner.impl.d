lib/core/sperner.ml: Chromatic Complex Hashtbl List Random Sds Simplex Solvability Stdlib Wfc_tasks Wfc_topology
