lib/core/characterization.ml: Action Array Chromatic Complex Full_information Hashtbl List Printf Runtime Schedule Sds Simplex Solvability String Task Wfc_model Wfc_tasks Wfc_topology
