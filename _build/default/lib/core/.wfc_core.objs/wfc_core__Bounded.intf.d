lib/core/bounded.mli: Action Trace Wfc_model
