lib/core/decidability.mli: Wfc_tasks
