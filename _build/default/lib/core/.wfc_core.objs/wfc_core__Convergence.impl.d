lib/core/convergence.ml: Approximation Array Characterization Chromatic Complex List Option Printf Simplex Simplex_agreement Solvability String Subdiv Task Wfc_model Wfc_tasks Wfc_topology
