lib/core/ncsac.mli: Action Wfc_model Wfc_topology
