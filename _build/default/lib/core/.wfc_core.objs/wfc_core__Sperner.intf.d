lib/core/sperner.mli: Sds Simplex Solvability Wfc_topology
