lib/core/emulation.mli: Runtime Stdlib Trace Wfc_model
