lib/core/approximation.ml: Chromatic Complex Hashtbl List Option Point Printf Rat Sds Simplex Simplicial_map Solvability Subdiv Subdivision Wfc_tasks Wfc_topology
