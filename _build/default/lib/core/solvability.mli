(** The decision procedure of Proposition 3.1 for bounded round counts.

    A bounded-input task [T = (I, O, Δ)] is wait-free solvable in the IIS
    model iff for some [b] there is a color-preserving simplicial map
    [φ : SDS^b(I) → O] with [φ(s) ∈ Δ(carrier(s, I))] for every simplex [s]
    — and by the paper's main theorem (§4) the same characterizes the
    atomic-snapshot model. For a fixed [b] the condition is a finite
    constraint-satisfaction problem; this module decides it by backtracking
    with forward checking:

    - one variable per vertex of [SDS^b(I)], domain = output vertices of the
      same color whose singleton is allowed for the vertex's carrier;
    - one constraint per simplex [s] of the closure: the image of [s] must
      be a face of some simplex in [Δ(carrier s)].

    Exhausting the search space is a {e proof} that no decision map exists
    at level [b]; it is not a proof for larger [b] (by [9], no algorithm can
    decide all levels at once for three or more processes). *)

type map = {
  task : Wfc_tasks.Task.t;
  level : int;
  sds : Wfc_topology.Sds.t;  (** [SDS^level] of the task's input complex *)
  decide : int -> int;  (** SDS vertex -> output vertex *)
}

type verdict =
  | Solvable of map
  | Unsolvable_at of int  (** search space of this level exhausted *)
  | Exhausted of { level : int; nodes : int }  (** budget ran out *)

val solve_at : ?budget:int -> Wfc_tasks.Task.t -> int -> verdict
(** Decide level [b] exactly (up to [budget] search nodes,
    default 5_000_000). *)

val solve : ?budget:int -> max_level:int -> Wfc_tasks.Task.t -> verdict
(** Try levels [0 .. max_level] in order; returns the first [Solvable], the
    last [Unsolvable_at] if all levels exhaust their search spaces, or
    [Exhausted] as soon as a level overruns the budget. *)

val verify : map -> (unit, string) result
(** Independent re-check of a claimed decision map: color preservation,
    simpliciality, and the [Δ]-condition on every closure simplex. The
    search already guarantees this; tests use it as an oracle. *)

val search_nodes_of_last_call : unit -> int
(** Instrumentation: nodes expanded by the most recent [solve_at]. *)
