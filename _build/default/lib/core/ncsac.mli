(** Two-process non-chromatic simplex agreement over a complex with no
    holes — the NCSAC building block of §5.

    Two processes hold vertices of a connected finite complex [C] and must
    output vertices spanning a simplex of [C], a solo participant staying
    on its input (the NCSAC specification restricted to two processes,
    where "no holes of dimension < 2" is just connectivity).

    The protocol is the distributed content of the paper's recursion base:
    each round a process WriteReads its current estimate; a process that
    sees both estimates moves to the {e midpoint of the deterministic
    shortest path} between them ({!Wfc_topology.Fillin.path_midpoint} —
    both processes recompute the same path from the same pair, which is
    what the paper's "predefined path that lives in the face" provides).
    One immediate-snapshot round then either makes the estimates equal
    (both saw both) or at least halves their distance (one-sided view), so
    [ceil (log2 (diameter C))] rounds end with the estimates on a common
    edge or vertex. *)

open Wfc_model

val rounds_needed : Wfc_topology.Complex.t -> int
(** [max 1 (ceil (log2 (diameter C)))]. *)

val protocol :
  Wfc_topology.Complex.t -> inputs:int * int -> int Action.t array
(** The two-process protocol; decides the final estimate vertex.
    @raise Invalid_argument if the complex is disconnected or an input is
    not a vertex. *)

type participation = Both | Solo of int

val check_outputs :
  Wfc_topology.Complex.t ->
  inputs:int * int ->
  participation:participation ->
  int option * int option ->
  (unit, string) result
(** With [Both], present outputs must span a simplex of [C]; with
    [Solo i], process [i]'s output must equal its input. Carrier
    conditions beyond connectivity are the caller's affair. *)

val validate : ?seeds:int list -> Wfc_topology.Complex.t -> inputs:int * int -> (unit, string) result
(** Runs the protocol under random adversaries, solo and together, checking
    outputs each time. *)
