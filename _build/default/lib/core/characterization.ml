open Wfc_topology
open Wfc_model
open Wfc_tasks

let enc_vertex v = Printf.sprintf "#%d" v

(* Lookup from canonical full-information views to decided output vertices. *)
let decision_table (m : Solvability.map) =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun v -> Hashtbl.replace tbl (Sds.canonical_view m.Solvability.sds v) (m.Solvability.decide v))
    (Complex.vertices (Chromatic.complex (Sds.complex m.Solvability.sds)));
  tbl

let protocol_of_map (m : Solvability.map) ~input_vertices =
  let task = m.Solvability.task in
  let procs = task.Task.procs in
  if Array.length input_vertices <> procs then
    invalid_arg "protocol_of_map: one input vertex per process required";
  Array.iteri
    (fun i v ->
      if Task.proc_of_input task v <> i then
        invalid_arg (Printf.sprintf "protocol_of_map: vertex %d is not colored %d" v i))
    input_vertices;
  let table = decision_table m in
  let lookup view =
    let key = Full_information.canonical_iview enc_vertex view in
    match Hashtbl.find_opt table key with
    | Some w -> w
    | None -> invalid_arg (Printf.sprintf "protocol_of_map: view %s not in SDS^b" key)
  in
  Array.init procs (fun i ->
      Action.rounds m.Solvability.level
        ~init:(Full_information.Iinit { proc = i; input = input_vertices.(i) })
        (fun view level continue ->
          Action.Write_read
            {
              level;
              value = view;
              k = (fun { Action.seen; _ } -> continue (Full_information.Inode { proc = i; seen }));
            })
        (fun view ->
          Action.Decide (Full_information.Iinit { proc = i; input = lookup view })))

let decided_output = function
  | Some (Full_information.Iinit { input; _ }) -> Some input
  | Some (Full_information.Inode _) | None -> None

let run_and_check (m : Solvability.map) ~input_vertices ~participating strategy =
  let task = m.Solvability.task in
  let si = Simplex.of_list (List.map (fun p -> input_vertices.(p)) participating) in
  if not (Complex.mem si (Chromatic.complex task.Task.input)) then
    Error "participants' inputs do not form an input simplex"
  else begin
    let actions = protocol_of_map m ~input_vertices in
    let actions =
      Array.mapi
        (fun i a ->
          if List.mem i participating then a
          else Action.Decide (Full_information.Inode { proc = i; seen = [] }))
        actions
    in
    let outcome = Runtime.run actions strategy in
    let outputs =
      List.filter_map
        (fun p ->
          match decided_output outcome.Runtime.results.(p) with
          | Some w -> Some (p, w)
          | None -> None)
        participating
    in
    let so = Simplex.of_list (List.map snd outputs) in
    if not (Complex.mem so (Chromatic.complex task.Task.output)) && Simplex.card so > 0 then
      Error
        (Printf.sprintf "decided outputs %s are not an output simplex" (Simplex.to_string so))
    else if Simplex.card so > 0 && not (Task.allows task si so) then
      Error
        (Printf.sprintf "decided simplex %s not allowed by delta(%s)" (Simplex.to_string so)
           (Simplex.to_string si))
    else if
      List.exists
        (fun (p, w) -> Task.proc_of_output task w <> p)
        outputs
    then Error "an output vertex has the wrong color"
    else Ok outputs
  end

let validate ?(seeds = List.init 20 (fun i -> i)) (m : Solvability.map) =
  let task = m.Solvability.task in
  let procs = task.Task.procs in
  let facets = Complex.facets (Chromatic.complex task.Task.input) in
  let all = List.init procs (fun i -> i) in
  let subsets = Schedule.nonempty_subsets all in
  let rec check_facets = function
    | [] -> Ok ()
    | facet :: rest ->
      let input_vertices =
        Array.init procs (fun i ->
            match Chromatic.vertex_with_color task.Task.input facet i with
            | Some v -> v
            | None -> invalid_arg "validate: input facet does not cover all processes")
      in
      let rec check_subsets = function
        | [] -> check_facets rest
        | participating :: more ->
          let rec check_seeds = function
            | [] -> check_subsets more
            | seed :: srest -> (
              match
                run_and_check m ~input_vertices ~participating (Runtime.random ~seed ())
              with
              | Ok _ -> check_seeds srest
              | Error e ->
                Error
                  (Printf.sprintf "facet %s, participants {%s}, seed %d: %s"
                     (Simplex.to_string facet)
                     (String.concat "," (List.map string_of_int participating))
                     seed e))
          in
          check_seeds seeds
      in
      check_subsets subsets
  in
  check_facets facets
