open Wfc_topology
open Wfc_tasks

type t = {
  target : Subdiv.t;
  level : int;
  map : Solvability.map;
}

let prepare ?budget ?max_k target =
  Option.map
    (fun (level, map) -> { target; level; map })
    (Approximation.chromatic ?budget ?max_k ~target ())

let run t ~participating strategy =
  let task = t.map.Solvability.task in
  let input_vertices =
    Array.init task.Wfc_tasks.Task.procs (fun i ->
        match Task.input_vertex task ~proc:i ~value:(Printf.sprintf "corner%d" i) with
        | Some v -> v
        | None -> invalid_arg "Convergence.run: malformed CSASS input complex")
  in
  match Characterization.run_and_check t.map ~input_vertices ~participating strategy with
  | Error _ as e -> e
  | Ok outputs ->
    (* decode to target vertices and re-verify against the subdivision
       directly (independently of the task encoding) *)
    let decoded =
      List.map (fun (p, w) -> (p, Simplex_agreement.output_vertex_in_target task w)) outputs
    in
    let ws = Simplex.of_list (List.map snd decoded) in
    let acx = Chromatic.complex t.target.Subdiv.cx in
    if Simplex.card ws > 0 && not (Complex.mem ws acx) then
      Error "convergence outputs are not a simplex of the target"
    else if
      List.exists (fun (p, w) -> Chromatic.color t.target.Subdiv.cx w <> p) decoded
    then Error "convergence output has the wrong color"
    else if
      Simplex.card ws > 0
      && not
           (Simplex.subset
              (Subdiv.simplex_carrier t.target ws)
              (Simplex.of_list participating))
    then Error "convergence outputs leave the participants' face"
    else Ok decoded

let validate ?(seeds = List.init 20 (fun i -> i)) t =
  let procs = t.map.Solvability.task.Wfc_tasks.Task.procs in
  let all = List.init procs (fun i -> i) in
  let rec check_subsets = function
    | [] -> Ok ()
    | participating :: rest ->
      let rec check_seeds = function
        | [] -> check_subsets rest
        | seed :: more -> (
          match run t ~participating (Wfc_model.Runtime.random ~seed ()) with
          | Ok _ -> check_seeds more
          | Error e ->
            Error
              (Printf.sprintf "participants {%s}, seed %d: %s"
                 (String.concat "," (List.map string_of_int participating))
                 seed e))
      in
      check_seeds seeds
  in
  check_subsets (Wfc_model.Schedule.nonempty_subsets all)
