(** From decision maps back to distributed protocols.

    Proposition 3.1 is two-directional: a wait-free IIS protocol {e is} a
    simplicial map from [SDS^b(I)], and conversely any such map is a
    protocol — run [b] rounds of IIS full information, look your local view
    up as a vertex of [SDS^b(I)], and decide its image. This module makes
    the converse direction executable, closing the loop: a map found by
    {!Solvability} becomes a protocol of the simulated machine, which is
    then validated against the task under adversarial schedules. *)

open Wfc_model

val protocol_of_map :
  Solvability.map -> input_vertices:int array -> int Full_information.iview Action.t array
(** [protocol_of_map m ~input_vertices]: one process per entry;
    process [i] starts from input-complex vertex [input_vertices.(i)] (which
    must be colored [i]), runs [m.level] IIS rounds, and decides the output
    vertex assigned by the map — encoded as [Iinit] carrying the output
    vertex id (level-0 maps decide immediately).
    @raise Invalid_argument if a vertex's color does not match its process,
    or if the input vertices do not form a simplex of the input complex. *)

val decided_output : int Full_information.iview option -> int option
(** Output-complex vertex decided by a finished process, if any. *)

val run_and_check :
  Solvability.map ->
  input_vertices:int array ->
  participating:int list ->
  Runtime.strategy ->
  ((int * int) list, string) Stdlib.result
(** Runs the protocol with the given participation under the adversary and
    checks the outputs: every participant that the adversary let finish must
    decide, and the decided simplex must be allowed by [Δ] of the
    participants' input simplex. Returns [(process, output vertex)] pairs on
    success. *)

val validate :
  ?seeds:int list ->
  Solvability.map ->
  (unit, string) Stdlib.result
(** End-to-end validation: for every input facet of the task, every
    participating subset, and every seed (default [0..19]), {!run_and_check}
    under a random adversary. *)
