(** Bounded wait-freedom — Lemma 3.1.

    If a task with finitely many inputs is wait-free solvable, the tree of
    executions in which processes stop once decided has finite branching and
    no infinite path, so by König's lemma it is finite: some bound [b]
    caps the number of operations any process needs before deciding. This
    module computes that bound by materializing the execution tree with
    {!Wfc_model.Explore} and measuring the deepest per-process operation
    count. *)

open Wfc_model

type report = {
  runs : int;  (** complete executions explored *)
  bound : int;  (** max shared-memory operations by any process before deciding *)
  depth : int;  (** longest run (total scheduler decisions) *)
}

val decision_bound :
  ?max_runs:int -> ?crashes:int -> (unit -> 'v Action.t array) -> report
(** Explores every schedule of the protocol (fresh actions per run) and
    returns the observed bound. Termination of the exploration is itself the
    finiteness claim of Lemma 3.1 for this protocol; a non-terminating
    protocol makes the exploration raise {!Wfc_model.Explore.Too_many}. *)

val ops_before_decision : 'v Trace.t -> int
(** Max per-process count of shared-memory operations preceding that
    process's decision in a trace. *)
