examples/approximate_agreement_demo.ml: Array Characterization Format Instances List Option Protocols Rat Runtime Solvability Task Wfc_core Wfc_model Wfc_tasks Wfc_topology
