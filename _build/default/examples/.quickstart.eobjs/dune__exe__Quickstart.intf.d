examples/quickstart.mli:
