examples/emulation_demo.mli:
