examples/convergence_demo.mli:
