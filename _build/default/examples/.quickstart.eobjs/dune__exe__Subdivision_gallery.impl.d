examples/subdivision_gallery.ml: Array Chromatic Complex Format Homology Homology_z List Option Protocol_complex Sds String Subdiv Subdivision Wfc_model Wfc_topology
