examples/quickstart.ml: Array Chromatic Complex Format Full_information Printf Protocol_complex Runtime Sds Subdiv Trace Wfc_model Wfc_topology
