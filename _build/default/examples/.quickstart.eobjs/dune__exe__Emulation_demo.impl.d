examples/emulation_demo.ml: Array Emulation Format List Printf Runtime String Wfc_core Wfc_model
