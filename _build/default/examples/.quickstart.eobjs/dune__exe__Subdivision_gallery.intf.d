examples/subdivision_gallery.mli:
