examples/set_consensus_demo.ml: Characterization Format Instances List Solvability Sperner Wfc_core Wfc_tasks Wfc_topology
