examples/convergence_demo.ml: Approximation Chromatic Convergence Export Filename Format List Printf Runtime Sds Simplex String Subdiv Subdivision Wfc_core Wfc_model Wfc_topology
