examples/bg_simulation_demo.ml: Array Bg_simulation Format List Printf Runtime Solvability String Wfc_core Wfc_model Wfc_tasks
