examples/set_consensus_demo.mli:
