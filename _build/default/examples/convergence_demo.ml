(* Theorem 5.1 and section 5 in action: simplicial approximation with exact
   arithmetic, chromatic simplex agreement, and distributed convergence onto
   a subdivided simplex.

     dune exec examples/convergence_demo.exe *)

open Wfc_topology
open Wfc_model
open Wfc_core

let () =
  print_endline "=== section 5: approximation and convergence ===\n";
  (* 1. Lemma 5.3 / Lemma 2.1: carrier-preserving maps Bsd^k -> A found by
     the geometric algorithm. *)
  print_endline "Lemma 5.3 (simplicial approximation, exact rational arithmetic):";
  List.iter
    (fun (name, target) ->
      (match Approximation.min_level ~scheme:`Bsd ~target () with
      | Some (k, _) -> Format.printf "  Bsd^%d(s^n) -> %-12s  (minimal k by search)@." k name
      | None -> Format.printf "  Bsd^k -> %-12s  not found up to k=6@." name);
      match Approximation.min_level ~scheme:`Sds ~target () with
      | Some (k, _) -> Format.printf "  SDS^%d(s^n) -> %-12s@." k name
      | None -> Format.printf "  SDS^k -> %-12s  not found up to k=6@." name)
    [
      ("SDS(s^2)", Sds.subdiv (Sds.standard ~dim:2 ~levels:1));
      ("Bsd^2(s^1)", Subdivision.subdiv (Subdivision.iterate (Chromatic.standard_simplex 1) 2));
      ("SDS^2(s^1)", Sds.subdiv (Sds.standard ~dim:1 ~levels:2));
    ];
  print_endline "";
  (* 2. Theorem 5.1: chromatic convergence, run distributed. *)
  print_endline "Theorem 5.1 (chromatic simplex agreement over SDS(s^2)):";
  (match Convergence.prepare (Sds.subdiv (Sds.standard ~dim:2 ~levels:1)) with
  | None -> print_endline "  no chromatic map found (unexpected)"
  | Some t ->
    Format.printf "  decision map found at k=%d IIS round(s)@." t.Convergence.level;
    List.iter
      (fun (participating, seed) ->
        match Convergence.run t ~participating (Runtime.random ~seed ()) with
        | Ok outputs ->
          Format.printf "  participants {%s}: converged to {%s}@."
            (String.concat "," (List.map string_of_int participating))
            (String.concat "; "
               (List.map
                  (fun (p, w) ->
                    Printf.sprintf "P%d->v%d (carrier %s)" p w
                      (Simplex.to_string (t.Convergence.target.Subdiv.carrier w)))
                  outputs))
        | Error e -> Format.printf "  FAILED: %s@." e)
      [ ([ 0; 1; 2 ], 1); ([ 0; 1; 2 ], 2); ([ 0; 1 ], 3); ([ 2 ], 4) ];
    match Convergence.validate t with
    | Ok () -> print_endline "  validated over all participation patterns and 20 adversaries"
    | Error e -> Format.printf "  validation failed: %s@." e);
  print_endline "";
  (* 3. The planar picture: write the target as SVG next to this demo. *)
  let svg = Export.svg (Sds.subdiv (Sds.standard ~dim:2 ~levels:2)) in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "sds2.svg" in
  let oc = open_out path in
  output_string oc svg;
  close_out oc;
  Format.printf "Wrote SDS^2(s^2) (169 triangles) as %s@." path
