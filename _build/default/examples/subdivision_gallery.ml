(* A tour of the library's topology substrate: subdivision growth, exact
   geometry, homology, and the protocol-complex equalities of §3.6.

     dune exec examples/subdivision_gallery.exe *)

open Wfc_topology
open Wfc_model

let pp_ints l = String.concat "," (List.map string_of_int (Array.to_list l))

let () =
  print_endline "=== subdivision gallery ===\n";
  print_endline "Iterated standard chromatic subdivision SDS^b(s^n):";
  Format.printf "  %4s %4s %10s %10s %8s %10s@." "n" "b" "facets" "vertices" "chi" "geometry";
  List.iter
    (fun (n, b) ->
      let s = Sds.standard ~dim:n ~levels:b in
      let cx = Chromatic.complex (Sds.complex s) in
      let geom = match Subdiv.check_geometric (Sds.subdiv s) with Ok () -> "exact" | Error _ -> "FAIL" in
      Format.printf "  %4d %4d %10d %10d %8d %10s@." n b (Complex.num_facets cx)
        (Complex.num_vertices cx)
        (Complex.euler_characteristic cx)
        geom)
    [ (1, 1); (1, 2); (1, 3); (1, 4); (2, 1); (2, 2); (3, 1) ];
  print_endline "";
  print_endline "Barycentric subdivision Bsd^k(s^n):";
  Format.printf "  %4s %4s %10s %10s@." "n" "k" "facets" "vertices";
  List.iter
    (fun (n, k) ->
      let b = Subdivision.iterate (Chromatic.standard_simplex n) k in
      let cx = Chromatic.complex (Subdivision.complex b) in
      Format.printf "  %4d %4d %10d %10d@." n k (Complex.num_facets cx) (Complex.num_vertices cx))
    [ (1, 1); (1, 3); (2, 1); (2, 2); (3, 1) ];
  print_endline "";
  print_endline "Homology (Lemma 2.2: subdivided simplices have no holes):";
  List.iter
    (fun (name, cx) ->
      Format.printf "  %-16s reduced betti = (%s)  acyclic = %b@." name
        (pp_ints (Homology.reduced_betti cx))
        (Homology.is_acyclic cx))
    [
      ("SDS^2(s^2)", Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:2)));
      ("boundary(s^3)", Option.get (Complex.boundary (Complex.full_simplex 3)));
      ("circle", Complex.of_facets [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]);
    ];
  print_endline "";
  print_endline "Integer homology (Smith normal form) distinguishes torsion:";
  List.iter
    (fun (name, cx) -> Format.printf "  %-12s %s@." name (Homology_z.homology_summary cx))
    [
      ("SDS(s^2)", Chromatic.complex (Sds.complex (Sds.standard ~dim:2 ~levels:1)));
      ( "RP^2",
        Complex.of_facets
          [ [ 0; 1; 4 ]; [ 0; 1; 5 ]; [ 0; 2; 3 ]; [ 0; 2; 5 ]; [ 0; 3; 4 ];
            [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ 1; 3; 5 ]; [ 2; 4; 5 ]; [ 3; 4; 5 ] ] );
    ];
  print_endline "";
  print_endline "Protocol complexes vs combinatorics (Lemmas 3.2/3.3, by execution):";
  List.iter
    (fun (n, b) ->
      let pc = Protocol_complex.iis ~procs:(n + 1) ~rounds:b in
      let sds = Sds.standard ~dim:n ~levels:b in
      Format.printf "  %d processes, %d round(s): equal = %b@." (n + 1) b
        (Protocol_complex.matches_sds pc sds))
    [ (1, 1); (1, 2); (2, 1); (2, 2); (3, 1) ];
  print_endline "";
  print_endline "One-round atomic snapshot complex vs immediate snapshot complex:";
  let pa = Protocol_complex.atomic ~procs:3 ~rounds:1 in
  let pis = Protocol_complex.one_shot_is ~procs:3 in
  Format.printf "  atomic: %d facets; IS: %d facets; IS is a strict subcomplex: %b@."
    (Complex.num_facets (Chromatic.complex pa.Protocol_complex.chromatic))
    (Complex.num_facets (Chromatic.complex pis.Protocol_complex.chromatic))
    (Protocol_complex.is_subcomplex_of pis pa
    && not (Protocol_complex.is_subcomplex_of pa pis))
