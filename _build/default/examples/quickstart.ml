(* Quickstart: three asynchronous processes, the iterated immediate snapshot
   model, and the protocol complex that describes everything they can learn.

     dune exec examples/quickstart.exe *)

open Wfc_topology
open Wfc_model

let () =
  print_endline "=== wfc quickstart ===";
  print_endline "";
  (* 1. Run the full-information protocol for 3 processes and 2 IIS rounds
     under a random adversary, and inspect the trace. *)
  let procs = 3 and rounds = 2 in
  let inputs = Array.init procs (fun i -> i) in
  let actions = Full_information.iis_k_shot ~procs ~k:rounds ~inputs in
  let outcome = Runtime.run actions (Runtime.random ~seed:2026 ()) in
  Format.printf "One execution of the %d-round full-information protocol:@." rounds;
  Format.printf "@[<v 2>  %a@]@." (Trace.pp (fun ppf _ -> Format.pp_print_string ppf "<view>"))
    outcome.Runtime.trace;
  Format.printf "@.Final views (what each process knows):@.";
  Array.iteri
    (fun i r ->
      match r with
      | Some view ->
        Format.printf "  P%d: %s@." i
          (Full_information.canonical_iview (Printf.sprintf "#%d") view)
      | None -> Format.printf "  P%d: undecided@." i)
    outcome.Runtime.results;
  (* 2. The space of all such executions is a chromatic subdivided simplex:
     the iterated standard chromatic subdivision (Lemma 3.3). *)
  print_endline "";
  let pc = Protocol_complex.iis ~procs ~rounds in
  let sds = Sds.standard ~dim:(procs - 1) ~levels:rounds in
  Format.printf "Protocol complex from running ALL schedules: %a@." Complex.pp_stats
    (Chromatic.complex pc.Protocol_complex.chromatic);
  Format.printf "Combinatorial SDS^%d(s^%d):                  %a@." rounds (procs - 1)
    Complex.pp_stats
    (Chromatic.complex (Sds.complex sds));
  Format.printf "They coincide (Lemma 3.3): %b@." (Protocol_complex.matches_sds pc sds);
  (* 3. The subdivision has an exact geometric realization. *)
  (match Subdiv.check_geometric (Sds.subdiv sds) with
  | Ok () -> Format.printf "Geometric realization checks out exactly (rational arithmetic).@."
  | Error e -> Format.printf "Geometry error: %s@." e);
  Format.printf "Facets grow as fubini(%d)^b: %d at b=%d.@." procs
    (Sds.count_facets ~dim:(procs - 1) ~levels:rounds)
    rounds
