#!/bin/sh
# Tier-1 gate: build, full test suite, quick benchmark with machine-readable
# timings (written to BENCH_ci.json, which is gitignored), and a smoke test
# of the observability pipeline: `wfc solve --json` must produce a
# wfc.obs.v1 report that the repo's own validator accepts, with the known
# verdict for 2-process consensus and a nonzero node count. The bench
# report goes through the same validator, so the two JSON producers cannot
# drift apart. Finally the trace pipeline: record a seeded emulation as a
# wfc.trace.v1 trace, replay it, validate both through check-json, and
# require the replayed canonical trace to be byte-identical to the
# recording. The whole suite runs twice — sequential and on 4 domains —
# and a parallel solve is diffed against the sequential run: the domain
# pool must never change a result, only the wall-clock; portfolio mode
# (whole-search racing) must agree on every verdict line. Last, the
# serving smoke: a daemon's cold and warm answers must be byte-identical
# to an inline solve's canonical verdict, a SIGKILLed daemon must leave a
# store that verifies clean and a stale socket the next daemon replaces,
# and two distinct concurrent cold queries must both be computed by the
# worker scheduler. The models leg closes the loop on computation models:
# one task solved under two models (wait-free / k-set:2) must yield two
# distinct verdicts, each cacheable and re-served warm by the daemon
# byte-identically to its inline baseline. The storage leg exercises the
# sharded store at scale: manifest-backed ls/verify over thousands of
# seeded records, idempotent v2->v3 migration, crash recovery after a
# SIGKILL mid-put, LRU cache-hit counters, and verdict byte-identity
# across every layout and codec the engine can read.
set -eux

dune build
WFC_DOMAINS=1 dune runtest
WFC_DOMAINS=4 dune runtest --force
dune exec bench/main.exe -- --quick --json BENCH_ci.json
dune exec bin/wfc_cli.exe -- check-json BENCH_ci.json

dune exec bin/wfc_cli.exe -- solve --task consensus --procs 2 --max-level 2 \
  --json SOLVE_ci.json
dune exec bin/wfc_cli.exe -- check-json SOLVE_ci.json \
  --expect-verdict unsolvable --min-nodes 1
rm -f SOLVE_ci.json

# determinism smoke: parallel and sequential engines must print the same
# verdict, stats line and counters (timings and the pool's own par.*
# book-keeping counters are stripped)
dune exec bin/wfc_cli.exe -- solve --task set-consensus --procs 3 --param 2 \
  --max-level 1 --domains 1 --stats | grep -v 'elapsed\|seconds\|call\|par\.' > SOLVE_seq.txt
dune exec bin/wfc_cli.exe -- solve --task set-consensus --procs 3 --param 2 \
  --max-level 1 --domains 4 --stats | grep -v 'elapsed\|seconds\|call\|par\.' > SOLVE_par.txt
diff SOLVE_seq.txt SOLVE_par.txt
rm -f SOLVE_seq.txt SOLVE_par.txt

# portfolio smoke: racing whole searches under distinct variable orders
# must not change any verdict. Only the verdict lines are compared — node
# tallies describe whichever racer won, so unlike the batch engine they
# are not deterministic.
for TASK_ARGS in "--task set-consensus --procs 3 --param 2 --max-level 1" \
                 "--task renaming --procs 2 --param 3 --max-level 1" \
                 "--task consensus --procs 2 --max-level 2"; do
  # shellcheck disable=SC2086
  dune exec bin/wfc_cli.exe -- solve $TASK_ARGS --domains 1 \
    | grep -E 'SOLVABLE|UNSOLVABLE|UNDECIDED' > VERDICT_seq.txt
  # shellcheck disable=SC2086
  dune exec bin/wfc_cli.exe -- solve $TASK_ARGS --domains 4 --portfolio \
    | grep -E 'SOLVABLE|UNSOLVABLE|UNDECIDED' > VERDICT_port.txt
  diff VERDICT_seq.txt VERDICT_port.txt
done
rm -f VERDICT_seq.txt VERDICT_port.txt

# search-reducer smoke (DESIGN §14): the pruned engine must answer the
# exact same canonical bytes as the seed engine. Solve one refutation-heavy
# task four ways — both reducers (the default), each alone, neither (the
# seed engine) — and cmp every verdict file; then require the reducers to
# have actually run: the pruned refutation must cost at most half the seed
# engine's nodes, and the three wfc.obs.v1 reducer counters must be present
# in the --stats --json report.
PRUNE_ARGS="--task set-consensus --procs 3 --param 2 --max-level 1"
# shellcheck disable=SC2086
dune exec bin/wfc_cli.exe -- solve $PRUNE_ARGS \
  --verdict-out VERDICT_pr_on.json --stats --json PRUNE_on.json > /dev/null
# shellcheck disable=SC2086
dune exec bin/wfc_cli.exe -- solve $PRUNE_ARGS --no-symmetry \
  --verdict-out VERDICT_pr_nosym.json > /dev/null
# shellcheck disable=SC2086
dune exec bin/wfc_cli.exe -- solve $PRUNE_ARGS --no-collapse \
  --verdict-out VERDICT_pr_nocol.json > /dev/null
# shellcheck disable=SC2086
dune exec bin/wfc_cli.exe -- solve $PRUNE_ARGS --no-symmetry --no-collapse \
  --verdict-out VERDICT_pr_off.json --stats --json PRUNE_off.json > /dev/null
cmp VERDICT_pr_on.json VERDICT_pr_off.json
cmp VERDICT_pr_on.json VERDICT_pr_nosym.json
cmp VERDICT_pr_on.json VERDICT_pr_nocol.json
dune exec bin/wfc_cli.exe -- check-json PRUNE_on.json
grep '"solvability.symmetry.orbits"' PRUNE_on.json
grep '"solvability.symmetry.pruned"' PRUNE_on.json
grep '"solvability.collapse.schedule_len"' PRUNE_on.json
NODES_ON=$(grep -o '"solvability.nodes": [0-9]*' PRUNE_on.json | grep -o '[0-9]*$')
NODES_OFF=$(grep -o '"solvability.nodes": [0-9]*' PRUNE_off.json | grep -o '[0-9]*$')
test "$((NODES_ON * 2))" -le "$NODES_OFF"
rm -f VERDICT_pr_on.json VERDICT_pr_nosym.json VERDICT_pr_nocol.json \
  VERDICT_pr_off.json PRUNE_on.json PRUNE_off.json

dune exec bin/wfc_cli.exe -- trace --seed 3 -p 3 -b 2 --crash 1 -o TRACE_ci.json
dune exec bin/wfc_cli.exe -- replay TRACE_ci.json -o REPLAY_ci.json
dune exec bin/wfc_cli.exe -- check-json TRACE_ci.json
dune exec bin/wfc_cli.exe -- check-json REPLAY_ci.json
cmp TRACE_ci.json REPLAY_ci.json
rm -f TRACE_ci.json REPLAY_ci.json

# serving smoke: the daemon's answers must be byte-identical to an inline
# solve. Baseline the canonical verdict with `solve --verdict-out`, start a
# daemon on a private socket/store, ask the same question cold (computed)
# and warm (store hit), diff all three, validate the store record through
# check-json, and shut down cleanly. Then the crash-safety leg: SIGKILL the
# daemon, check the store still loads and verifies, and confirm a new
# daemon replaces the stale socket.
WFC=./_build/default/bin/wfc_cli.exe
SERVE_SOCK=ci_serve.sock
SERVE_STORE=ci_serve_store
rm -rf "$SERVE_SOCK" "$SERVE_STORE"
"$WFC" solve --task set-consensus --procs 3 --param 2 \
  --max-level 1 --verdict-out VERDICT_solve.json > /dev/null
"$WFC" serve --socket "$SERVE_SOCK" --store "$SERVE_STORE" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if "$WFC" query --ping --socket "$SERVE_SOCK" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$WFC" query --task set-consensus --procs 3 --param 2 \
  --max-level 1 --socket "$SERVE_SOCK" --verdict-out VERDICT_cold.json | grep 'source=computed'
"$WFC" query --task set-consensus --procs 3 --param 2 \
  --max-level 1 --socket "$SERVE_SOCK" --verdict-out VERDICT_warm.json | grep 'source=store'
cmp VERDICT_solve.json VERDICT_cold.json
cmp VERDICT_solve.json VERDICT_warm.json
# the record now lives under a two-level shard; resolve its path from the
# manifest (store ls), never a directory glob
STORE_REC="$SERVE_STORE/$("$WFC" store ls --store "$SERVE_STORE" --json \
  | grep -o '"rel": "[^"]*"' | head -1 | sed 's/"rel": "//;s/"$//')"
"$WFC" check-json "$STORE_REC" \
  --expect-verdict unsolvable --min-nodes 1
"$WFC" store verify --store "$SERVE_STORE"
"$WFC" serve --stop --socket "$SERVE_SOCK"
wait $SERVE_PID

# crash safety: a SIGKILLed daemon must leave a loadable store and a stale
# socket that the next daemon replaces
"$WFC" serve --socket "$SERVE_SOCK" --store "$SERVE_STORE" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if "$WFC" query --ping --socket "$SERVE_SOCK" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
kill -9 $SERVE_PID
wait $SERVE_PID || true
test -S "$SERVE_SOCK"
"$WFC" store verify --store "$SERVE_STORE"
"$WFC" serve --socket "$SERVE_SOCK" --store "$SERVE_STORE" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if "$WFC" query --ping --socket "$SERVE_SOCK" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$WFC" query --task set-consensus --procs 3 --param 2 \
  --max-level 1 --socket "$SERVE_SOCK" --verdict-out VERDICT_after.json | grep 'source=store'
cmp VERDICT_solve.json VERDICT_after.json
"$WFC" serve --stop --socket "$SERVE_SOCK"
wait $SERVE_PID
rm -rf "$SERVE_SOCK" "$SERVE_STORE" VERDICT_solve.json VERDICT_cold.json \
  VERDICT_warm.json VERDICT_after.json

# scheduler smoke: two DISTINCT cold questions issued concurrently against
# a fresh store must both come back as computed verdicts — the daemon's
# worker scheduler, not one serializing solver thread, is on the path (the
# gated unit test asserts the two computations actually overlap; this leg
# asserts the end-to-end behaviour over the real socket)
SERVE_STORE2=ci_serve_store2
rm -rf "$SERVE_SOCK" "$SERVE_STORE2"
"$WFC" serve --socket "$SERVE_SOCK" --store "$SERVE_STORE2" --solvers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if "$WFC" query --ping --socket "$SERVE_SOCK" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$WFC" query --task consensus --procs 2 --max-level 1 \
  --socket "$SERVE_SOCK" > QUERY_a.txt &
QA_PID=$!
"$WFC" query --task renaming --procs 2 --param 3 --max-level 1 \
  --socket "$SERVE_SOCK" > QUERY_b.txt &
QB_PID=$!
wait $QA_PID
wait $QB_PID
grep 'source=computed' QUERY_a.txt
grep 'source=computed' QUERY_b.txt
"$WFC" store ls --store "$SERVE_STORE2" --json | grep -o '"count": 2'
"$WFC" serve --stop --socket "$SERVE_SOCK"
wait $SERVE_PID
rm -rf "$SERVE_SOCK" "$SERVE_STORE2" QUERY_a.txt QUERY_b.txt

# models smoke: one task under two models must be two independent questions
# all the way down. consensus(2) at level 1 is the acceptance pair — UNSOLVABLE
# wait-free, SOLVABLE under k-set:2 (only lock-step runs survive the
# restriction). Baseline both verdicts inline, then have one daemon compute
# both cold, re-serve both warm from its (task, model)-keyed store, and
# require every daemon answer byte-identical to the inline verdict for the
# same model. The store ends up holding both records side by side; `store
# migrate` on an all-v2 store is a no-op and `store verify` stays clean.
SERVE_STORE3=ci_serve_store3
rm -rf "$SERVE_SOCK" "$SERVE_STORE3"
"$WFC" models
"$WFC" solve --task consensus --procs 2 --max-level 1 \
  --verdict-out VERDICT_wf.json | grep '^UNSOLVABLE'
"$WFC" solve --task consensus --procs 2 --max-level 1 --model k-set:2 \
  --verdict-out VERDICT_kset.json | grep '^SOLVABLE'
"$WFC" serve --socket "$SERVE_SOCK" --store "$SERVE_STORE3" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if "$WFC" query --ping --socket "$SERVE_SOCK" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$WFC" query --task consensus --procs 2 --max-level 1 \
  --socket "$SERVE_SOCK" --verdict-out VERDICT_wf_cold.json | grep 'source=computed'
"$WFC" query --task consensus --procs 2 --max-level 1 --model k-set:2 \
  --socket "$SERVE_SOCK" --verdict-out VERDICT_kset_cold.json | grep 'source=computed'
"$WFC" query --task consensus --procs 2 --max-level 1 \
  --socket "$SERVE_SOCK" --verdict-out VERDICT_wf_warm.json | grep 'source=store'
"$WFC" query --task consensus --procs 2 --max-level 1 --model k-set:2 \
  --socket "$SERVE_SOCK" --verdict-out VERDICT_kset_warm.json | grep 'source=store'
cmp VERDICT_wf.json VERDICT_wf_cold.json
cmp VERDICT_wf.json VERDICT_wf_warm.json
cmp VERDICT_kset.json VERDICT_kset_cold.json
cmp VERDICT_kset.json VERDICT_kset_warm.json
"$WFC" store ls --store "$SERVE_STORE3" --json | grep -o '"count": 2'
"$WFC" store ls --store "$SERVE_STORE3" | grep 'k-set:2'
"$WFC" store migrate --store "$SERVE_STORE3"
"$WFC" store verify --store "$SERVE_STORE3"
"$WFC" serve --stop --socket "$SERVE_SOCK"
wait $SERVE_PID
rm -rf "$SERVE_SOCK" "$SERVE_STORE3" VERDICT_wf.json VERDICT_kset.json \
  VERDICT_wf_cold.json VERDICT_kset_cold.json VERDICT_wf_warm.json \
  VERDICT_kset_warm.json

# telemetry smoke: run a daemon with the full event log at debug level and
# a zero slow-query threshold (every query logs a slow_query line), push
# cold/warm/coalesced traffic through it, and require (a) the verdict bytes
# stay identical to an inline solve — telemetry rides the envelope, never
# the record — (b) the JSONL event log and `wfc stats --json` both validate
# through check-json, (c) the Prometheus exposition renders.
SERVE_STORE4=ci_serve_store4
SERVE_LOG=ci_serve_log.jsonl
rm -rf "$SERVE_SOCK" "$SERVE_STORE4" "$SERVE_LOG"
"$WFC" solve --task set-consensus --procs 3 --param 2 --max-level 1 \
  --verdict-out VERDICT_tel_inline.json > /dev/null
"$WFC" serve --socket "$SERVE_SOCK" --store "$SERVE_STORE4" \
  --log "$SERVE_LOG" --log-level debug --slow-ms 0 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if "$WFC" query --ping --socket "$SERVE_SOCK" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
# pong now carries daemon version + uptime
"$WFC" query --ping --socket "$SERVE_SOCK" | grep 'pong version='
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --socket "$SERVE_SOCK" --verdict-out VERDICT_tel_cold.json > QUERY_tel_cold.txt
grep 'source=computed' QUERY_tel_cold.txt
grep 'timing:' QUERY_tel_cold.txt
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --socket "$SERVE_SOCK" --verdict-out VERDICT_tel_warm.json | grep 'source=store'
cmp VERDICT_tel_inline.json VERDICT_tel_cold.json
cmp VERDICT_tel_inline.json VERDICT_tel_warm.json
# coalesced burst on a fresh question: both answers still byte-identical
"$WFC" query --task renaming --procs 2 --param 3 --max-level 1 \
  --socket "$SERVE_SOCK" --verdict-out VERDICT_tel_a.json > QUERY_tel_a.txt &
QA_PID=$!
"$WFC" query --task renaming --procs 2 --param 3 --max-level 1 \
  --socket "$SERVE_SOCK" --verdict-out VERDICT_tel_b.json > QUERY_tel_b.txt &
QB_PID=$!
wait $QA_PID
wait $QB_PID
grep -E 'source=(computed|coalesced|store)' QUERY_tel_a.txt
grep -E 'source=(computed|coalesced|store)' QUERY_tel_b.txt
cmp VERDICT_tel_a.json VERDICT_tel_b.json
# live introspection: human table, validated JSON report, Prometheus text
"$WFC" stats --socket "$SERVE_SOCK" | grep 'daemon: version='
"$WFC" stats --socket "$SERVE_SOCK" --json STATS_ci.json > /dev/null
"$WFC" check-json STATS_ci.json
"$WFC" stats --socket "$SERVE_SOCK" --prometheus | grep '^wfc_serve_requests '
"$WFC" serve --stop --socket "$SERVE_SOCK"
wait $SERVE_PID
# the event log is a valid wfc.log.v1 stream with the lifecycle on record
"$WFC" check-json "$SERVE_LOG"
grep '"event":"serve.start"' "$SERVE_LOG" > /dev/null
grep '"event":"query"' "$SERVE_LOG" > /dev/null
grep '"event":"slow_query"' "$SERVE_LOG" > /dev/null
grep '"event":"serve.stop"' "$SERVE_LOG" > /dev/null
rm -rf "$SERVE_SOCK" "$SERVE_STORE4" "$SERVE_LOG" STATS_ci.json \
  VERDICT_tel_inline.json VERDICT_tel_cold.json VERDICT_tel_warm.json \
  VERDICT_tel_a.json VERDICT_tel_b.json QUERY_tel_cold.txt QUERY_tel_a.txt \
  QUERY_tel_b.txt

# storage engine leg: the sharded, manifest-indexed, cache-tiered store at
# scale. Seed thousands of records, answer ls/verify from the manifest
# alone, de-shard records back to the flat v2 layout and migrate them home
# (idempotently), SIGKILL a bulk seeding mid-put and require the store to
# still verify clean (atomic temps: crash debris is never a torn record),
# then the byte-identity matrix — one question answered through a cold
# solve, a warm sharded-json store, a compact-codec store and a flat
# pre-sharding store must render cmp-identical verdict bytes — and the
# daemon's decoded-record LRU showing real cache hits in its stats.
ST=ci_storage_store
rm -rf "$ST"
"$WFC" store seed --store "$ST" --count 2000
"$WFC" store ls --store "$ST" --json | grep -o '"count": 2000'
"$WFC" store verify --store "$ST" --json | grep -o '"valid": 2000'
"$WFC" store ls --store "$ST" > LS_a.txt
"$WFC" store ls --store "$ST" > LS_b.txt
cmp LS_a.txt LS_b.txt
rm -f LS_a.txt LS_b.txt
# records live under two-level shards, never the store root
test "$(find "$ST" -maxdepth 1 -name '*.json' | wc -l)" -eq 0
# de-shard two records to their flat v2 names: migrate re-shards exactly
# those two, and a second migrate has nothing left to do
for f in $(find "$ST" -path '*/??/??/*' -name '*.json' -not -path '*/skeletons/*' | sort | head -2); do
  mv "$f" "$ST/$(basename "$f")"
done
"$WFC" store migrate --store "$ST" | grep '^migrated: 2$'
"$WFC" store migrate --store "$ST" | grep '^migrated: 0$'
"$WFC" store verify --store "$ST" --json | grep -o '"missing": 0'
# simulated crash: kill a bulk seeding mid-put. Atomicity means no record
# can exist torn under its final name, so verify must pass immediately; gc
# reaps whatever temp the kill orphaned and rebuild restores the index
# from nothing but the tree
"$WFC" store seed --store "$ST" --count 100000 &
SEED_PID=$!
sleep 1
kill -9 $SEED_PID
wait $SEED_PID || true
"$WFC" store verify --store "$ST"
"$WFC" store gc --store "$ST"
"$WFC" store rebuild --store "$ST"
"$WFC" store verify --store "$ST" --json | grep -o '"missing": 0'
"$WFC" store verify --store "$ST" --json | grep -o '"unindexed": 0'
rm -rf "$ST"

# byte-identity across layouts and codecs
SB=ci_codec_json
SC=ci_codec_compact
SF=ci_flat_v2
rm -rf "$SB" "$SC" "$SF"
"$WFC" solve --task set-consensus --procs 3 --param 2 --max-level 1 \
  --store "$SB" --verdict-out VERDICT_st_base.json > /dev/null
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --no-daemon --store "$SB" --verdict-out VERDICT_st_warm.json 2>/dev/null \
  | grep 'source=store'
cmp VERDICT_st_base.json VERDICT_st_warm.json
"$WFC" solve --task set-consensus --procs 3 --param 2 --max-level 1 \
  --store "$SC" --codec compact --verdict-out VERDICT_st_compact.json > /dev/null
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --no-daemon --store "$SC" --verdict-out VERDICT_st_compact_warm.json 2>/dev/null \
  | grep 'source=store'
cmp VERDICT_st_base.json VERDICT_st_compact.json
cmp VERDICT_st_base.json VERDICT_st_compact_warm.json
find "$SC" -name '*.wfcb' | grep -q .
# flat v2: exactly what a pre-sharding store looked like — one record at
# the root, no manifest — served warm and byte-identical without migration,
# then migrated to v3 and served warm again, still identical
mkdir "$SF"
REC=$(find "$SB" -path '*/??/??/*' -name '*.json' -not -path '*/skeletons/*')
cp "$REC" "$SF/$(basename "$REC")"
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --no-daemon --store "$SF" --verdict-out VERDICT_st_flat.json 2>/dev/null \
  | grep 'source=store'
cmp VERDICT_st_base.json VERDICT_st_flat.json
"$WFC" store migrate --store "$SF" | grep '^migrated: 1$'
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --no-daemon --store "$SF" --verdict-out VERDICT_st_v3.json 2>/dev/null \
  | grep 'source=store'
cmp VERDICT_st_base.json VERDICT_st_v3.json
rm -rf "$SB" "$SC" "$SF" VERDICT_st_base.json VERDICT_st_warm.json \
  VERDICT_st_compact.json VERDICT_st_compact_warm.json VERDICT_st_flat.json \
  VERDICT_st_v3.json

# the daemon's decoded-record LRU: repeated warm queries answer from
# memory — the storage.cache.hit counter must be live in the stats report
SERVE_STORE5=ci_serve_store5
rm -rf "$SERVE_SOCK" "$SERVE_STORE5"
"$WFC" serve --socket "$SERVE_SOCK" --store "$SERVE_STORE5" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  if "$WFC" query --ping --socket "$SERVE_SOCK" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --socket "$SERVE_SOCK" | grep 'source=computed'
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --socket "$SERVE_SOCK" | grep 'source=store'
"$WFC" query --task set-consensus --procs 3 --param 2 --max-level 1 \
  --socket "$SERVE_SOCK" | grep 'source=store'
"$WFC" stats --socket "$SERVE_SOCK" --json STATS_storage.json > /dev/null
CACHE_HITS=$(grep -o '"storage.cache.hit": [0-9]*' STATS_storage.json | grep -o '[0-9]*$')
test "$CACHE_HITS" -ge 1
"$WFC" serve --stop --socket "$SERVE_SOCK"
wait $SERVE_PID
rm -rf "$SERVE_SOCK" "$SERVE_STORE5" STATS_storage.json

# mini serve-ladder: the load harness end to end at toy scale — per-rung
# medians land in a validated wfc.obs.v1 report with machine metadata
./_build/default/bench/ladder.exe --rungs 1,4 --repeats 1 --requests 8 \
  --warmup 2 --out LADDER_ci.json
"$WFC" check-json LADDER_ci.json
grep '"qps_median"' LADDER_ci.json > /dev/null
grep '"git_sha"' LADDER_ci.json > /dev/null
rm -f LADDER_ci.json
