#!/bin/sh
# Tier-1 gate: build, full test suite, quick benchmark with machine-readable
# timings (written to BENCH_ci.json, which is gitignored).
set -eux

dune build
dune runtest
dune exec bench/main.exe -- --quick --json BENCH_ci.json
