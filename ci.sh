#!/bin/sh
# Tier-1 gate: build, full test suite, quick benchmark with machine-readable
# timings (written to BENCH_ci.json, which is gitignored), and a smoke test
# of the observability pipeline: `wfc solve --json` must produce a
# wfc.obs.v1 report that the repo's own validator accepts, with the known
# verdict for 2-process consensus and a nonzero node count. The bench
# report goes through the same validator, so the two JSON producers cannot
# drift apart. Finally the trace pipeline: record a seeded emulation as a
# wfc.trace.v1 trace, replay it, validate both through check-json, and
# require the replayed canonical trace to be byte-identical to the
# recording.
set -eux

dune build
dune runtest
dune exec bench/main.exe -- --quick --json BENCH_ci.json
dune exec bin/wfc_cli.exe -- check-json BENCH_ci.json

dune exec bin/wfc_cli.exe -- solve --task consensus --procs 2 --max-level 2 \
  --json SOLVE_ci.json
dune exec bin/wfc_cli.exe -- check-json SOLVE_ci.json \
  --expect-verdict unsolvable --min-nodes 1
rm -f SOLVE_ci.json

dune exec bin/wfc_cli.exe -- trace --seed 3 -p 3 -b 2 --crash 1 -o TRACE_ci.json
dune exec bin/wfc_cli.exe -- replay TRACE_ci.json -o REPLAY_ci.json
dune exec bin/wfc_cli.exe -- check-json TRACE_ci.json
dune exec bin/wfc_cli.exe -- check-json REPLAY_ci.json
cmp TRACE_ci.json REPLAY_ci.json
rm -f TRACE_ci.json REPLAY_ci.json
