(* The Borowsky–Gafni simulation: two simulators, any of whom may crash,
   cooperatively execute a three-process snapshot protocol — the technology
   behind transferring impossibility results between models.

     dune exec examples/bg_simulation_demo.exe *)

open Wfc_model
open Wfc_core

let show name spec r =
  let completed =
    Array.to_list r.Bg_simulation.completed
    |> List.mapi (fun j b -> if b then Some j else None)
    |> List.filter_map (fun x -> x)
  in
  Format.printf "--- %s ---@." name;
  Format.printf "  simulated processes completed: {%s}@."
    (String.concat "," (List.map string_of_int completed));
  Format.printf "  snapshot agreements reached: %d@." (List.length r.Bg_simulation.snapshots);
  Format.printf "  shared ops per simulator: %s@."
    (String.concat ", "
       (Array.to_list
          (Array.mapi (Printf.sprintf "S%d:%d") r.Bg_simulation.cost.Bg_simulation.simulator_ops)));
  (match Bg_simulation.check spec r with
  | Ok () -> Format.printf "  simulated history: legal snapshot execution@."
  | Error e -> Format.printf "  HISTORY BROKEN: %s@." e);
  Format.printf "@."

let () =
  print_endline "=== BG simulation: 2 simulators run a 3-process protocol ===\n";
  let spec = Bg_simulation.full_information_spec ~procs:3 ~k:2 in
  show "sequential simulators" spec (Bg_simulation.run ~simulators:2 spec (Runtime.round_robin ()));
  show "random adversary" spec (Bg_simulation.run ~simulators:2 spec (Runtime.random ~seed:12 ()));
  show "simulator S1 crashes mid-run" spec
    (Bg_simulation.run ~simulators:2 spec
       (Runtime.random_with_crashes ~seed:3 ~crash:[ 1 ] ()));
  print_endline "Why this matters (the reduction the paper's school built on [7]):";
  print_endline "  If (3,1)-set consensus had a wait-free 3-process protocol, two";
  print_endline "  simulators could run it: every completed simulated process decides";
  print_endline "  one of the participants' inputs with at most 1 distinct value, and";
  print_endline "  at least 3 - 1 = 2 simulated processes complete even if a simulator";
  print_endline "  crashes — handing the two simulators a wait-free consensus protocol,";
  print_endline "  which Proposition 3.1 refutes:";
  (match
     Solvability.solve ~max_level:2 (Wfc_tasks.Instances.binary_consensus ~procs:2)
   with
  | Solvability.Unsolvable_at { level = b; _ } ->
    Format.printf "    consensus (2 procs): unsolvable for every b <= %d (exhaustive)@." b
  | _ -> print_endline "    (unexpected verdict)");
  print_endline "";
  print_endline "Scaling (random adversary, all simulated processes complete):";
  Format.printf "  %6s %6s %6s %14s@." "sims" "m" "k" "ops/simulator";
  List.iter
    (fun (s, m, k) ->
      let spec = Bg_simulation.full_information_spec ~procs:m ~k in
      let r = Bg_simulation.run ~simulators:s spec (Runtime.random ~seed:5 ()) in
      Format.printf "  %6d %6d %6d %14.1f@." s m k
        (float_of_int (Array.fold_left ( + ) 0 r.Bg_simulation.cost.Bg_simulation.simulator_ops)
        /. float_of_int s))
    [ (2, 3, 2); (2, 4, 2); (3, 4, 2); (3, 5, 3); (4, 6, 2) ]
