(* ε-agreement two ways: as a hand-written wait-free protocol in the IIS
   model, and as a task decided by the characterization — including the
   round-complexity crossover (minimal b grows like log 1/ε).

     dune exec examples/approximate_agreement_demo.exe *)

open Wfc_topology
open Wfc_model
open Wfc_tasks
open Wfc_core

let () =
  print_endline "=== approximate agreement ===\n";
  (* 1. The averaging protocol, run against adversaries. *)
  print_endline "Iterated-averaging protocol (3 processes, inputs 0, 1, 1/2):";
  let inputs = [| Rat.zero; Rat.one; Rat.half |] in
  List.iter
    (fun rounds ->
      let worst = ref Rat.zero in
      for seed = 0 to 99 do
        let o =
          Runtime.run
            (Protocols.approximate_agreement ~procs:3 ~rounds ~inputs)
            (Runtime.random ~seed ())
        in
        let outs = Array.to_list o.Runtime.results |> List.filter_map (fun x -> x) in
        match outs with
        | [] -> ()
        | o0 :: rest ->
          let lo = List.fold_left Rat.min o0 rest and hi = List.fold_left Rat.max o0 rest in
          let d = Rat.sub hi lo in
          if Rat.compare d !worst > 0 then worst := d
      done;
      Format.printf "  %d round(s): worst output diameter over 100 adversaries = %s (<= 1/2^%d)@."
        rounds (Rat.to_string !worst) rounds)
    [ 1; 2; 3; 4; 5 ];
  print_endline "";
  (* 2. The task-level view: minimal IIS rounds for eps = 1/grid. *)
  print_endline "Characterization: minimal rounds b for eps = 1/grid (2 processes):";
  Format.printf "  %6s %12s %14s@." "grid" "min b" "search nodes";
  List.iter
    (fun grid ->
      let task = Instances.approximate_agreement ~procs:2 ~grid in
      match Solvability.solve ~max_level:4 task with
      | Solvability.Solvable { map = m; stats } ->
        Format.printf "  %6d %12d %14d@." grid m.Solvability.level
          stats.Solvability.nodes
      | _ -> Format.printf "  %6d %12s@." grid "????")
    [ 1; 2; 3; 4; 9; 10; 27 ];
  print_endline "\n  (b = ceil(log3 grid): SDS(s^1) cuts an edge into 3 pieces per round.)";
  print_endline "";
  (* 3. Run one of the machine-found maps as a protocol. *)
  print_endline "Executing the machine-found map for grid=9:";
  match Solvability.solve ~max_level:3 (Instances.approximate_agreement ~procs:2 ~grid:9) with
  | Solvability.Solvable { map = m; _ } -> (
    let task = m.Solvability.task in
    let input_vertices =
      [|
        Option.get (Task.input_vertex task ~proc:0 ~value:"0");
        Option.get (Task.input_vertex task ~proc:1 ~value:"9");
      |]
    in
    match
      Characterization.run_and_check m ~input_vertices ~participating:[ 0; 1 ]
        (Runtime.random ~seed:4 ())
    with
    | Ok outputs ->
      List.iter
        (fun (p, w) -> Format.printf "  P%d decides grid point %s/9@." p (task.Task.output_label w))
        outputs
    | Error e -> Format.printf "  run failed: %s@." e)
  | _ -> print_endline "  (unexpectedly unsolvable)"
