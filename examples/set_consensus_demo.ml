(* Task solvability, decided by the machine: consensus and set consensus
   through the characterization of Proposition 3.1, plus the Sperner
   obstruction behind the impossibilities.

     dune exec examples/set_consensus_demo.exe *)

open Wfc_tasks
open Wfc_core

let report name verdict =
  (match verdict with
  | Solvability.Solvable { map = m; _ } ->
    Format.printf "  %-28s SOLVABLE with %d IIS round(s)" name m.Solvability.level;
    (match Solvability.verify m with
    | Ok () -> Format.printf "  [map verified]@."
    | Error e -> Format.printf "  [BROKEN MAP: %s]@." e)
  | Solvability.Unsolvable_at { level = b; _ } ->
    Format.printf "  %-28s UNSOLVABLE for every b <= %d (exhaustive)@." name b
  | Solvability.Exhausted { level; stats } ->
    Format.printf "  %-28s undecided at b=%d (search budget: %d nodes)@." name level
      stats.Solvability.nodes);
  verdict

let () =
  print_endline "=== wait-free solvability verdicts (Proposition 3.1) ===\n";
  ignore (report "identity (3 procs)" (Solvability.solve ~max_level:1 (Instances.id_task ~procs:3)));
  ignore (report "binary consensus (2 procs)"
       (Solvability.solve ~max_level:3 (Instances.binary_consensus ~procs:2)));
  ignore (report "binary consensus (3 procs)"
       (Solvability.solve ~max_level:1 (Instances.binary_consensus ~procs:3)));
  ignore (report "(3,3)-set consensus"
       (Solvability.solve ~max_level:1 (Instances.set_consensus ~procs:3 ~k:3)));
  ignore (report "(3,2)-set consensus"
       (Solvability.solve ~max_level:1 (Instances.set_consensus ~procs:3 ~k:2)));
  ignore (report "(2,1)-set consensus"
       (Solvability.solve ~max_level:2 (Instances.set_consensus ~procs:2 ~k:1)));
  ignore (report "renaming: 2 procs, 3 names"
       (Solvability.solve ~max_level:2 (Instances.adaptive_renaming ~procs:2 ~names:3)));
  ignore (report "renaming: 2 procs, 2 names"
       (Solvability.solve ~max_level:3 (Instances.adaptive_renaming ~procs:2 ~names:2)));
  print_endline "";
  (* The solvable ones are not just certificates: run them. *)
  print_endline "Running the renaming decision map as a distributed protocol:";
  (match Solvability.solve ~max_level:1 (Instances.adaptive_renaming ~procs:2 ~names:3) with
  | Solvability.Solvable { map = m; _ } -> (
    match Characterization.validate m with
    | Ok () ->
      print_endline
        "  validated over every input, participation pattern, and 20 adversaries";
    | Error e -> Format.printf "  validation failed: %s@." e)
  | _ -> print_endline "  (unexpectedly unsolvable)");
  print_endline "";
  (* Why (n+1, n)-set consensus fails at EVERY level: Sperner parity. *)
  print_endline "Sperner's lemma on SDS^b(s^2) (obstruction at any level b):";
  List.iter
    (fun b ->
      let sds = Wfc_topology.Sds.standard ~dim:2 ~levels:b in
      let counts =
        List.init 50 (fun seed ->
            List.length
              (Sperner.panchromatic_facets sds
                 ~label:(Sperner.random_sperner_labeling ~seed sds)))
      in
      let all_odd = List.for_all (fun c -> c mod 2 = 1) counts in
      Format.printf
        "  b=%d: 50 random Sperner labelings, panchromatic-facet count always odd: %b@." b
        all_odd)
    [ 1; 2 ];
  print_endline
    "  -> a (3,2)-set-consensus decision map would be a Sperner labeling with\n\
    \     zero panchromatic facets; the parity says no such labeling exists."
