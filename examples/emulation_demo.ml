(* The paper's main result, live: a k-shot atomic-snapshot protocol
   (Figure 1) emulated on iterated immediate snapshots (Figure 2), with the
   emulated history certified atomic.

     dune exec examples/emulation_demo.exe *)

open Wfc_model
open Wfc_core

let show_run ~name spec strategy =
  let r = Emulation.run spec strategy in
  Format.printf "--- %s ---@." name;
  Format.printf "  IIS memories consumed: %d@." r.Emulation.cost.Emulation.memories;
  Format.printf "  WriteReads per emulator: %s@."
    (String.concat ", "
       (Array.to_list
          (Array.mapi (Printf.sprintf "P%d:%d") r.Emulation.cost.Emulation.write_reads)));
  Format.printf "  emulated operations: %d@." (List.length r.Emulation.ops);
  (match Emulation.check r with
  | Ok () -> Format.printf "  atomicity certificate: OK@."
  | Error e -> Format.printf "  ATOMICITY VIOLATION: %s@." e);
  Format.printf "  final emulated snapshots:@.";
  Array.iteri
    (fun i snap ->
      Format.printf "    P%d: [%s]@." i
        (String.concat "; "
           (Array.to_list (Array.map (function None -> "_" | Some s -> s) snap))))
    r.Emulation.final_snapshots;
  Format.printf "@."

let () =
  print_endline "=== Figure 2: emulating atomic snapshots over IIS ===\n";
  let spec = Emulation.full_information_spec ~procs:3 ~k:2 in
  show_run ~name:"sequential adversary (round robin)" spec (Runtime.round_robin ());
  show_run ~name:"random adversary, seed 1" spec (Runtime.random ~seed:1 ());
  show_run ~name:"random adversary, seed 99" spec (Runtime.random ~seed:99 ());
  show_run ~name:"random adversary + crash of P1" spec
    (Runtime.random_with_crashes ~seed:7 ~crash:[ 1 ] ());
  (* Emulation cost table: the experiment of EXPERIMENTS.md E2. *)
  print_endline "Emulation cost (avg IIS memories over 30 random adversaries):";
  Format.printf "  %6s %6s %10s@." "n+1" "k" "memories";
  List.iter
    (fun (procs, k) ->
      let total = ref 0 in
      let trials = 30 in
      for seed = 0 to trials - 1 do
        let r =
          Emulation.run (Emulation.full_information_spec ~procs ~k) (Runtime.random ~seed ())
        in
        total := !total + r.Emulation.cost.Emulation.memories
      done;
      Format.printf "  %6d %6d %10.1f@." procs k
        (float_of_int !total /. float_of_int trials))
    [ (2, 1); (2, 2); (2, 4); (3, 1); (3, 2); (3, 4); (4, 2); (5, 2) ]
