open Wfc_topology
open Wfc_tasks

type map = {
  task : Task.t;
  level : int;
  sds : Sds.t;
  model : Model.t;
  decide : int -> int;
}

type stats = { nodes : int; backtracks : int; prunes : int; elapsed : float }

type search_event =
  | S_node of { vertex : int; domain : int }
  | S_prune of { vertex : int; removed : int }
  | S_backtrack of { vertex : int; tried : int }
  | S_root_unsat of string

type verdict =
  | Solvable of { map : map; stats : stats }
  | Unsolvable_at of { level : int; stats : stats; trail : search_event list }
  | Exhausted of { level : int; stats : stats }

let search_trace_capacity = 10_000

let search_event_to_json e =
  let open Wfc_obs.Json in
  match e with
  | S_node { vertex; domain } ->
    Obj [ ("ev", String "node"); ("vertex", Int vertex); ("domain", Int domain) ]
  | S_prune { vertex; removed } ->
    Obj [ ("ev", String "prune"); ("vertex", Int vertex); ("removed", Int removed) ]
  | S_backtrack { vertex; tried } ->
    Obj [ ("ev", String "backtrack"); ("vertex", Int vertex); ("tried", Int tried) ]
  | S_root_unsat reason -> Obj [ ("ev", String "root-unsat"); ("reason", String reason) ]

let default_budget = 5_000_000

(* ------------------------------------------------------------------ *)
(* options: the explicit knob record                                    *)
(* ------------------------------------------------------------------ *)

(* Everything that shapes an answer travels in one explicit record instead
   of the old global-mutable trace flag and env-read portfolio default.
   The process default is still mutable (the CLI shims and WFC_PORTFOLIO
   feed it), but every solve reads its options from its own record. *)
type options = {
  trace : bool;
  mode : [ `Batch | `Portfolio ];
  budget : int;
  model : Model.t;
  symmetry : bool;
  collapse : bool;
}

let env_truthy name =
  match Sys.getenv_opt name with
  | None -> false
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "1" | "true" | "yes" | "on" -> true
    | _ -> false)

let process_defaults =
  ref
    {
      trace = false;
      mode = (if env_truthy "WFC_PORTFOLIO" then `Portfolio else `Batch);
      budget = default_budget;
      model = Model.wait_free;
      symmetry = true;
      collapse = true;
    }

let defaults () = !process_defaults

let set_defaults o = process_defaults := o

let options ?trace ?mode ?budget ?model ?symmetry ?collapse () =
  let d = !process_defaults in
  {
    trace = Option.value trace ~default:d.trace;
    mode = Option.value mode ~default:d.mode;
    budget = Option.value budget ~default:d.budget;
    model = Option.value model ~default:d.model;
    symmetry = Option.value symmetry ~default:d.symmetry;
    collapse = Option.value collapse ~default:d.collapse;
  }

(* deprecated shims over the default record — kept so the old entry points
   still steer behaviour, but every in-repo caller now passes options *)
let set_search_trace b = process_defaults := { !process_defaults with trace = b }

let portfolio () = (!process_defaults).mode = `Portfolio

let set_portfolio b =
  process_defaults := { !process_defaults with mode = (if b then `Portfolio else `Batch) }

let zero_stats = { nodes = 0; backtracks = 0; prunes = 0; elapsed = 0. }

let add_stats a b =
  {
    nodes = a.nodes + b.nodes;
    backtracks = a.backtracks + b.backtracks;
    prunes = a.prunes + b.prunes;
    elapsed = a.elapsed +. b.elapsed;
  }

let stats_of_verdict = function
  | Solvable { stats; _ } | Unsolvable_at { stats; _ } | Exhausted { stats; _ } -> stats

let verdict_name = function
  | Solvable _ -> "solvable"
  | Unsolvable_at _ -> "unsolvable"
  | Exhausted _ -> "exhausted"

let pp_stats ppf s =
  Format.fprintf ppf "nodes=%d backtracks=%d prunes=%d elapsed=%.6fs" s.nodes s.backtracks
    s.prunes s.elapsed

(* Search-local tallies: plain mutable ints on the hot path, folded into the
   global Wfc_obs counters once per [solve_at]. [n_sym] counts the subset of
   [n_prunes] owed to the lex-leader symmetry check. *)
type counts = {
  mutable n_nodes : int;
  mutable n_backtracks : int;
  mutable n_prunes : int;
  mutable n_sym : int;
}

let fresh_counts () = { n_nodes = 0; n_backtracks = 0; n_prunes = 0; n_sym = 0 }

let c_nodes = Wfc_obs.Metrics.counter "solvability.nodes"

let c_backtracks = Wfc_obs.Metrics.counter "solvability.backtracks"

let c_prunes = Wfc_obs.Metrics.counter "solvability.prunes"

let c_calls = Wfc_obs.Metrics.counter "solvability.calls"

let c_sym_orbits = Wfc_obs.Metrics.counter "solvability.symmetry.orbits"

let c_sym_pruned = Wfc_obs.Metrics.counter "solvability.symmetry.pruned"

let c_collapse_len = Wfc_obs.Metrics.counter "solvability.collapse.schedule_len"

let h_solve_at = Wfc_obs.Metrics.histogram "solvability.solve_at.seconds"

(* The CSP instance, with dense variable indices. *)
type instance = {
  nvars : int;
  domains : int array array; (* var -> candidate output vertices *)
  simplices : int array array; (* constraint -> member vars *)
  allowed : Simplex.t list array; (* constraint -> maximal allowed output simplices *)
  containing : int list array; (* var -> constraints containing it *)
}

(* The model's affine task: the sub-complex of SDS^level generated by the
   admitted facets. [None] means unrestricted — the caller must then take
   the exact unrestricted enumeration path, so wait_free stays
   byte-identical to the seed engine (same vertex order, same node
   counts). A Facet_pred that admits everything also filters to the full
   complex in the original enumeration order, so it too matches. *)
let admitted_facets model sds scx =
  match model.Model.restriction with
  | Model.All -> None
  | Model.Facet_pred _ -> Some (List.filter (Model.admits model sds) (Complex.facets scx))

let restricted_vertices ~admitted scx =
  match admitted with
  | None -> Complex.vertices scx
  | Some facets ->
    List.filter
      (fun v -> List.exists (fun f -> Simplex.mem v f) facets)
      (Complex.vertices scx)

let restricted_simplices ~admitted scx =
  match admitted with
  | None -> Complex.simplices scx
  | Some facets ->
    List.filter
      (fun s -> List.exists (fun f -> Simplex.subset s f) facets)
      (Complex.simplices scx)

let build_instance ?(model = Model.wait_free) task level =
  let sds = Sds.iterate task.Task.input level in
  let scx = Chromatic.complex (Sds.complex sds) in
  let admitted = admitted_facets model sds scx in
  let verts = Array.of_list (restricted_vertices ~admitted scx) in
  let nvars = Array.length verts in
  let var_of = Hashtbl.create nvars in
  Array.iteri (fun i v -> Hashtbl.replace var_of v i) verts;
  let out_cx = Chromatic.complex task.Task.output in
  let out_vertices = Complex.vertices out_cx in
  let sd = Sds.subdiv sds in
  (* Per-carrier allowed list, cached. *)
  let delta_cache = Simplex.Tbl.create 64 in
  let delta_of carrier =
    match Simplex.Tbl.find_opt delta_cache carrier with
    | Some l -> l
    | None ->
      let l = task.Task.delta carrier in
      Simplex.Tbl.replace delta_cache carrier l;
      l
  in
  let domains =
    Array.map
      (fun v ->
        let color = Sds.color sds v in
        let carrier = sd.Subdiv.carrier v in
        let allowed = delta_of carrier in
        out_vertices
        |> List.filter (fun w ->
               Chromatic.color task.Task.output w = color
               && List.exists (fun m -> Simplex.mem w m) allowed)
        |> Array.of_list)
      verts
  in
  let simplex_list =
    (* Singletons are handled by the domains; keep simplices of size >= 2. *)
    List.filter (fun s -> Simplex.card s >= 2) (restricted_simplices ~admitted scx)
  in
  let simplices =
    Array.of_list
      (List.map
         (fun s -> Array.of_list (List.map (Hashtbl.find var_of) (Simplex.to_list s)))
         simplex_list)
  in
  let allowed =
    Array.of_list
      (List.map (fun s -> delta_of (Subdiv.simplex_carrier sd s)) simplex_list)
  in
  let containing = Array.make nvars [] in
  Array.iteri
    (fun ci members -> Array.iter (fun v -> containing.(v) <- ci :: containing.(v)) members)
    simplices;
  (sds, verts, { nvars; domains; simplices; allowed; containing })

exception Found of int array

(* AC-3 over the binary (edge) constraints: delete domain values with no
   support in some neighbor's domain. Cheap, and often decisive for
   impossibility proofs before search even starts. *)
let arc_consistency inst live =
  let edges =
    Array.to_list inst.simplices
    |> List.mapi (fun ci m -> (ci, m))
    |> List.filter (fun (_, m) -> Array.length m = 2)
  in
  (* {a, wb} ⊆ m ⟺ both vertices are members: no pair simplex is ever
     interned in the propagation loop. *)
  let supported ci a b_dom =
    List.exists
      (fun wb ->
        List.exists
          (fun m -> Simplex.mem a m && Simplex.mem wb m)
          inst.allowed.(ci))
      b_dom
  in
  let changed = ref true in
  let alive = ref true in
  while !changed && !alive do
    changed := false;
    List.iter
      (fun (ci, m) ->
        let u = m.(0) and v = m.(1) in
        let revise x y =
          let dom = live.(x) in
          let dom' = List.filter (fun wx -> supported ci wx live.(y)) dom in
          if List.compare_lengths dom' dom < 0 then begin
            live.(x) <- dom';
            changed := true;
            if dom' = [] then alive := false
          end
        in
        revise u v;
        revise v u)
      edges
  done;
  !alive

(* Static BFS order over the vertex adjacency graph, used to tie-break the
   dynamic most-constrained-first selection so the search stays local. *)
let bfs_positions inst =
  let adj = Array.make inst.nvars [] in
  Array.iter
    (fun m ->
      if Array.length m = 2 then begin
        adj.(m.(0)) <- m.(1) :: adj.(m.(0));
        adj.(m.(1)) <- m.(0) :: adj.(m.(1))
      end)
    inst.simplices;
  let pos = Array.make inst.nvars max_int in
  let counter = ref 0 in
  let queue = Queue.create () in
  for start = 0 to inst.nvars - 1 do
    if pos.(start) = max_int then begin
      pos.(start) <- !counter;
      incr counter;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        List.iter
          (fun u ->
            if pos.(u) = max_int then begin
              pos.(u) <- !counter;
              incr counter;
              Queue.add u queue
            end)
          adj.(v)
      done
    end
  done;
  pos

(* ------------------------------------------------------------------ *)
(* search reducers: symmetry (lex-leader) and collapse-guided order     *)
(* ------------------------------------------------------------------ *)

(* One instance-level symmetry of the CSP: a pair of a variable permutation
   (stored inverted — the lex walk needs σ⁻¹) and an output-vertex
   permutation, together mapping solutions to solutions. Built from a task
   automorphism (σ_I, σ_O) by lifting σ_I through the subdivision and
   restricting to the admitted variable set. *)
type auto = {
  inv_var : int array; (* var index -> σ⁻¹(var index) *)
  out_map : int array; (* output vertex id -> σ_O(output vertex id), -1 off-domain *)
}

(* Everything that reshapes one search tree, bundled so the sequential
   engine, the batch probe/jobs and every portfolio racer can carry their
   own configuration. [order_pos.(v)] is the static position of variable
   [v]; [sched] is its inverse (position -> variable). With [static_order]
   set, selection takes forced (singleton-domain) variables first and
   otherwise the {e first} unassigned variable in schedule order — the
   collapse-guided elimination order — instead of most-constrained-first.
   [autos] drives the lex-leader pruning: a partial assignment A is cut
   when some g proves A >lex g·A on the comparable prefix w.r.t. [sched].
   Any {e subset} of the symmetry group is sound (the lex-least solution of
   an orbit satisfies every constraint), so enumeration limits only cost
   pruning power, never correctness. *)
type reducers = {
  static_order : bool;
  autos : auto array;
  order_pos : int array;
  sched : int array;
}

let make_reducers ~static_order ~autos ~order_pos nvars =
  let sched = Array.init nvars (fun i -> i) in
  Array.sort (fun a b -> compare order_pos.(a) order_pos.(b)) sched;
  { static_order; autos; order_pos; sched }

(* The reducer caches below key on [Task.digest], which canonicalizes the
   whole task per call — noticeable when the same task value is solved in
   a tight loop (bench reps, warm serving). A small physical-identity
   memo makes the digest free on that path while staying correct for
   structurally equal but distinct task values (they just re-digest). *)
let task_digest_memo : (Task.t * string) list ref = ref []

let task_digest task =
  match List.find_opt (fun (t, _) -> t == task) !task_digest_memo with
  | Some (_, d) -> d
  | None ->
    let d = Task.digest task in
    task_digest_memo := (task, d) :: List.filteri (fun i _ -> i < 15) !task_digest_memo;
    d

(* Task automorphisms are level-independent but [build_autos] runs per
   level; enumerating them (a backtracking search over the output complex)
   is the expensive half of the symmetry setup, so it is cached by task
   digest. The maps inside are only ever read. *)
let task_autos_cache : (string, Task.automorphism list) Hashtbl.t = Hashtbl.create 16

let task_automorphisms task =
  let d = task_digest task in
  match Hashtbl.find_opt task_autos_cache d with
  | Some autos -> autos
  | None ->
    let autos = Task.automorphisms task in
    Hashtbl.add task_autos_cache d autos;
    autos

(* Instance-level symmetries from task automorphisms. Each (σ_I, σ_O) with
   Δ(σ_I s) = σ_O(Δ s) lifts level-by-level through SDS^b; the lift is then
   restricted to the instance variables and accepted only if it (a) permutes
   the admitted variable set, (b) maps the admitted facet set onto itself
   (so model-restricted constraint sets are preserved — PR 7 models), and
   (c) maps every variable's candidate domain onto its image variable's
   domain. (a)-(c) are re-verified numerically here, so a bug upstream
   degrades to fewer symmetries, never to wrong pruning. *)
let build_autos ~model task sds verts inst =
  let scx = Chromatic.complex (Sds.complex sds) in
  let n = Array.length verts in
  let var_of = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace var_of v i) verts;
  let out_vertices = Complex.vertices (Chromatic.complex task.Task.output) in
  let max_out = List.fold_left max 0 out_vertices in
  let admitted_set =
    match admitted_facets model sds scx with
    | None -> None
    | Some facets -> Some (List.sort_uniq Simplex.compare facets)
  in
  let instance_auto (a : Task.automorphism) =
    match Automorphism.lift sds a.Task.a_input with
    | None -> None
    | Some top_map ->
      let ok = ref true in
      let var_perm = Array.make n (-1) in
      Array.iteri
        (fun i v ->
          match Hashtbl.find_opt top_map v with
          | Some v' -> (
            match Hashtbl.find_opt var_of v' with
            | Some j -> var_perm.(i) <- j
            | None -> ok := false)
          | None -> ok := false)
        verts;
      if !ok then begin
        (* bijectivity over the admitted variable set *)
        let seen = Array.make n false in
        Array.iter
          (fun j -> if j >= 0 && not seen.(j) then seen.(j) <- true else ok := false)
          var_perm
      end;
      (* admitted facet set preserved (trivial when the model is All: the
         lift is an automorphism of the whole complex) *)
      (match (admitted_set, !ok) with
      | Some facets, true ->
        let image =
          List.map
            (fun f ->
              Simplex.of_list
                (List.map (fun v -> Hashtbl.find top_map v) (Simplex.to_list f)))
            facets
          |> List.sort_uniq Simplex.compare
        in
        if not (List.equal Simplex.equal image facets) then ok := false
      | _ -> ());
      if not !ok then None
      else begin
        let out_map = Array.make (max_out + 1) (-1) in
        List.iter
          (fun w ->
            match Hashtbl.find_opt a.Task.a_output w with
            | Some w' -> out_map.(w) <- w'
            | None -> ok := false)
          out_vertices;
        (* every domain maps onto its image variable's domain *)
        if !ok then
          Array.iteri
            (fun i dom ->
              if !ok then begin
                let img =
                  Array.to_list dom |> List.map (fun w -> out_map.(w)) |> List.sort compare
                in
                let tgt = Array.to_list inst.domains.(var_perm.(i)) |> List.sort compare in
                if img <> tgt then ok := false
              end)
            inst.domains;
        if not !ok then None
        else begin
          (* drop symmetries that act as the identity on the instance *)
          let identity = ref true in
          Array.iteri (fun i j -> if i <> j then identity := false) var_perm;
          if !identity then
            Array.iter
              (fun dom -> Array.iter (fun w -> if out_map.(w) <> w then identity := false) dom)
            inst.domains;
          if !identity then None
          else begin
            let inv_var = Array.make n (-1) in
            Array.iteri (fun i j -> inv_var.(j) <- i) var_perm;
            Some { inv_var; out_map }
          end
        end
      end
  in
  let autos = ref [] in
  List.iter
    (fun a ->
      match instance_auto a with
      | Some g when not (List.exists (fun g' -> g' = g) !autos) -> autos := g :: !autos
      | _ -> ())
    (task_automorphisms task);
  Array.of_list (List.rev !autos)

(* [build_autos] is a pure function of (task, model, level): the verts
   array, instance domains and admitted facet set are all rebuilt
   deterministically from those three. The enumeration behind it
   (Task.automorphisms + per-level lifts) costs milliseconds, which the
   serve and bench hot paths would otherwise pay on every request for the
   same key — memoised like the subdivision cache. Cached arrays are only
   ever read by [sym_ok]. *)
let autos_cache : (string * string * int, auto array) Hashtbl.t = Hashtbl.create 16

let build_autos_memo ~model ~level task sds verts inst =
  let key = (task_digest task, model.Model.name, level) in
  match Hashtbl.find_opt autos_cache key with
  | Some autos -> autos
  | None ->
    let autos = build_autos ~model task sds verts inst in
    Hashtbl.add autos_cache key autos;
    autos

(* Static variable order from a free-face collapsing sequence of the
   admitted subcomplex: core vertices first, then collapsed vertices in
   reverse elimination order, so the search grows the assignment outward
   from the collapse core ("expansion from the cone point"). Falls back to
   BFS positions when there is nothing to collapse. Returns the positions
   and the eliminated-vertex count (the reported schedule length). *)
let collapse_positions ~model sds verts inst =
  let scx = Chromatic.complex (Sds.complex sds) in
  let admitted = admitted_facets model sds scx in
  let facets = match admitted with None -> Complex.facets scx | Some facets -> facets in
  if facets = [] || inst.nvars = 0 then (bfs_positions inst, 0)
  else begin
    let var_of = Hashtbl.create inst.nvars in
    Array.iteri (fun i v -> Hashtbl.replace var_of v i) verts;
    (* Under [All] the admitted subcomplex IS the subdivision, so collapse
       it directly and translate vertex ids afterwards — rebuilding a
       renamed complex re-interns every facet, which costs more than the
       collapse itself on deep subdivisions. A real restriction still
       rebuilds: its subcomplex is not materialized anywhere. *)
    let r =
      match admitted with
      | None -> Collapse.run scx
      | Some facets ->
        let facet_vars =
          List.map (fun f -> List.map (Hashtbl.find var_of) (Simplex.to_list f)) facets
        in
        Collapse.run (Complex.of_facets ~name:"collapse-order" facet_vars)
    in
    let order =
      match admitted with
      | None -> List.filter_map (fun v -> Hashtbl.find_opt var_of v) r.Collapse.order
      | Some _ -> r.Collapse.order
    in
    let pos = Array.make inst.nvars max_int in
    let counter = ref 0 in
    List.iter
      (fun v ->
        if v >= 0 && v < inst.nvars && pos.(v) = max_int then begin
          pos.(v) <- !counter;
          incr counter
        end)
      order;
    (* isolated variables outside every admitted facet cannot occur (the
       variable set is generated by the facets), but stay total anyway *)
    Array.iteri
      (fun v p ->
        if p = max_int then begin
          pos.(v) <- !counter;
          incr counter
        end)
      pos;
    (pos, r.Collapse.eliminated)
  end

(* Same purity argument as [autos_cache]: the admitted facet set, the
   variable indexing and hence the whole schedule are rebuilt
   deterministically from (task, model, level). *)
let collapse_cache : (string * string * int, int array * int) Hashtbl.t = Hashtbl.create 16

let collapse_positions_memo ~model ~level task sds verts inst =
  let key = (task_digest task, model.Model.name, level) in
  match Hashtbl.find_opt collapse_cache key with
  | Some r -> r
  | None ->
    let r = collapse_positions ~model sds verts inst in
    Hashtbl.add collapse_cache key r;
    r

(* ------------------------------------------------------------------ *)
(* search state and the spine snapshot                                  *)
(* ------------------------------------------------------------------ *)

(* The mutable search state, split out of the engine so the parallel driver
   can freeze it: [assignment]/[live]/[domlen] describe the partial map,
   [unassigned_count] the per-constraint countdown driving forward
   checking, and [nxt]/[prv] the doubly-linked unassigned list (index
   [nvars] is the sentinel) that variable selection scans in tie-break
   order. *)
type search_state = {
  assignment : int array;
  live : int list array;
  domlen : int array;
  unassigned_count : int array;
  nxt : int array;
  prv : int array;
}

let copy_state s =
  {
    assignment = Array.copy s.assignment;
    live = Array.copy s.live;
    domlen = Array.copy s.domlen;
    unassigned_count = Array.copy s.unassigned_count;
    nxt = Array.copy s.nxt;
    prv = Array.copy s.prv;
  }

(* Where the search first branches. The most-constrained-first heuristic
   assigns every singleton-domain variable first — a deterministic,
   choice-free "spine" — so the probe freezes the search state at the first
   selected variable with >= 2 candidates, and each parallel job {e resumes}
   from a private copy of that snapshot instead of re-deriving the spine
   per candidate. *)
type spine = {
  sp_state : search_state; (* shared read-only: every job copies it *)
  sp_var : int;
  sp_cands : int list;
  sp_budget : int; (* nodes_left on arrival at the branching node *)
}

(* [order_pos.(v)] is the static tie-break position of variable [v]:
   selection breaks most-constrained ties toward lower positions. BFS
   positions (the sequential engine) keep the search local; portfolio
   racers get deterministic permutations of them. *)
let init_state inst live order_pos =
  let nvars = inst.nvars in
  let domlen = Array.make nvars 0 in
  Array.iteri (fun i dom -> domlen.(i) <- List.length dom) live;
  let sentinel = nvars in
  let nxt = Array.make (nvars + 1) sentinel in
  let prv = Array.make (nvars + 1) sentinel in
  let order = Array.init nvars (fun i -> i) in
  Array.sort (fun a b -> compare order_pos.(a) order_pos.(b)) order;
  Array.iter
    (fun v ->
      let last = prv.(sentinel) in
      nxt.(last) <- v;
      prv.(v) <- last;
      nxt.(v) <- sentinel;
      prv.(sentinel) <- v)
    order;
  {
    assignment = Array.make nvars (-1);
    live;
    domlen;
    unassigned_count = Array.map Array.length inst.simplices;
    nxt;
    prv;
  }

(* [record] receives search events with {e variable indices} in the vertex
   fields; [solve_at] translates them to SDS vertex ids when building the
   trail. [cancel] is polled once per search node: the parallel driver and
   the portfolio race use it to abort work that can no longer influence the
   verdict.

   Entries into the tree:
   - [`Fresh budget]: select from the top — with [probe] false this is the
     plain sequential search over [st].
   - [`Resume (v, w, budget)]: [st] is a private copy of a spine snapshot
     positioned at branching variable [v]; try exactly candidate [w] — one
     candidate iteration of the sequential [try_candidates], after which
     the search continues normally. The driver owns the branch node's
     pre-count, so resuming does not repeat it.

   With [probe] set the search stops at the first branching node, returning
   its [`Branch] snapshot instead of counting the node. If it never
   branches (the spine runs to a solution, a refutation, or the budget),
   the probe {e is} the sequential search and its tallies are exact. *)
let run_search ?(cancel = fun () -> false) ?(probe = false) ~red ~counts ~record inst st entry =
  let { assignment; live; domlen; unassigned_count; nxt; prv } = st in
  let sentinel = inst.nvars in
  let detach v =
    nxt.(prv.(v)) <- nxt.(v);
    prv.(nxt.(v)) <- prv.(v)
  in
  (* valid only in LIFO order w.r.t. [detach] — the backtracking discipline *)
  let attach v =
    nxt.(prv.(v)) <- v;
    prv.(nxt.(v)) <- v
  in
  (* trail for backtracking: var domains replaced *)
  let image_ok ci extra_var extra_val =
    (* image of the constraint's simplex, assuming [extra_var := extra_val]
       on top of current assignment; unassigned members are skipped (only
       called when all others are assigned). The image is contained in an
       allowed simplex iff each member's output is: checked by O(log) member
       probes, with no simplex construction in the search's hot loop. *)
    let members = inst.simplices.(ci) in
    List.exists
      (fun m ->
        Array.for_all
          (fun v ->
            let w = if v = extra_var then extra_val else assignment.(v) in
            w < 0 || Simplex.mem w m)
          members)
      inst.allowed.(ci)
  in
  let select_var () =
    if red.static_order then begin
      (* collapse-guided static order: forced (singleton) variables first —
         they are propagation, not choice — otherwise the first unassigned
         variable in schedule order. The [nxt] list is threaded in
         [order_pos] order, so the head is the schedule's next vertex. *)
      let first = nxt.(sentinel) in
      if first = sentinel then -1
      else begin
        let forced = ref (-1) in
        let v = ref first in
        while !v <> sentinel && !forced < 0 do
          if domlen.(!v) <= 1 then forced := !v;
          v := nxt.(!v)
        done;
        if !forced >= 0 then !forced else first
      end
    end
    else begin
      (* most-constrained-first among unassigned, static position as
         tie-break. Scanning in ascending position order with a strict [<]
         update yields the same variable as minimizing
         [(List.length live.(v), order_pos.(v))]; a singleton domain cannot
         be beaten, so the scan stops there. *)
      let best = ref (-1) and best_len = ref max_int in
      let v = ref nxt.(sentinel) in
      while !v <> sentinel && !best_len > 1 do
        if domlen.(!v) < !best_len then begin
          best := !v;
          best_len := domlen.(!v)
        end;
        v := nxt.(!v)
      done;
      !best
    end
  in
  (* Lex-leader symmetry check for the tentative extension [v := w]: for
     each symmetry g, compare the assignment word A with g·A along the
     static schedule until a position is undefined (incomparable — accept),
     strictly smaller (lex-least so far — accept), or strictly greater
     (every completion of A is >lex its g-image, so the lex-least member of
     the orbit lives elsewhere — prune). Sound for refutations under any
     selection order, and for satisfiability because the lex-least solution
     of its orbit survives every constraint. *)
  let sym_ok =
    if Array.length red.autos = 0 then fun _ _ -> true
    else begin
      let autos = red.autos and sched = red.sched in
      let n_autos = Array.length autos and nv = Array.length sched in
      fun v w ->
        let value u = if u = v then w else assignment.(u) in
        let ok = ref true in
        let g = ref 0 in
        while !ok && !g < n_autos do
          let a = autos.(!g) in
          let i = ref 0 and stop = ref false in
          while (not !stop) && !i < nv do
            let u = sched.(!i) in
            let s = value u in
            if s < 0 then stop := true
            else begin
              let t_pre = value a.inv_var.(u) in
              if t_pre < 0 then stop := true
              else begin
                let t = a.out_map.(t_pre) in
                if s < t then stop := true
                else if s > t then begin
                  ok := false;
                  stop := true
                end
                else incr i
              end
            end
          done;
          incr g
        done;
        !ok
    end
  in
  (* forward checking after [v] was just assigned: constraints now missing
     exactly one var filter that var's domain. Returns the restore trail and
     whether every touched domain stayed non-empty. *)
  let forward_check v =
    let pruned = ref [] in
    let consistent = ref true in
    List.iter
      (fun ci ->
        unassigned_count.(ci) <- unassigned_count.(ci) - 1;
        if !consistent && unassigned_count.(ci) = 1 then begin
          let u = ref (-1) in
          Array.iter (fun m -> if assignment.(m) < 0 then u := m) inst.simplices.(ci);
          if !u >= 0 then begin
            let before = live.(!u) in
            let len_before = domlen.(!u) in
            let after = List.filter (fun w' -> image_ok ci !u w') before in
            let len_after = List.length after in
            if len_after < len_before then begin
              counts.n_prunes <- counts.n_prunes + (len_before - len_after);
              record (S_prune { vertex = !u; removed = len_before - len_after });
              pruned := (!u, before, len_before) :: !pruned;
              live.(!u) <- after;
              domlen.(!u) <- len_after;
              if len_after = 0 then consistent := false
            end
          end
        end)
      inst.containing.(v);
    (!pruned, !consistent)
  in
  let undo v pruned =
    List.iter
      (fun (u, dom, len) ->
        live.(u) <- dom;
        domlen.(u) <- len)
      pruned;
    List.iter (fun ci -> unassigned_count.(ci) <- unassigned_count.(ci) + 1) inst.containing.(v);
    attach v;
    assignment.(v) <- -1
  in
  let rec search nodes_left =
    if nodes_left <= 0 then `Budget
    else if cancel () then `Cancelled
    else begin
      let v = select_var () in
      if v < 0 then raise (Found (Array.copy assignment))
      else if probe && domlen.(v) >= 2 then
        `Branch
          { sp_state = copy_state st; sp_var = v; sp_cands = live.(v); sp_budget = nodes_left }
      else visit v nodes_left
    end
  and visit v nodes_left =
    counts.n_nodes <- counts.n_nodes + 1;
    record (S_node { vertex = v; domain = domlen.(v) });
    try_candidates (nodes_left - 1) live.(v) v
  and try_candidates budget cands v =
    match cands with
    | [] -> `Fail budget
    | w :: rest -> (
      (* check completed constraints *)
      let ok =
        List.for_all
          (fun ci ->
            unassigned_count.(ci) > 1 || image_ok ci v w)
          inst.containing.(v)
      in
      if not ok then try_candidates budget rest v
      else if not (sym_ok v w) then begin
        (* symmetry prunes cost no node budget, like the image check above;
           they are counted both as prunes and separately as [n_sym] *)
        counts.n_prunes <- counts.n_prunes + 1;
        counts.n_sym <- counts.n_sym + 1;
        record (S_prune { vertex = v; removed = 1 });
        try_candidates budget rest v
      end
      else begin
        assignment.(v) <- w;
        detach v;
        let pruned, consistent = forward_check v in
        let result =
          if consistent then search (budget - 1) else `Fail (budget - 1)
        in
        match result with
        | (`Budget | `Cancelled) as stop -> stop
        (* a probe's snapshot was copied at the branch: no undo on the way
           out, the probe state is abandoned as-is *)
        | `Branch _ as b -> b
        | `Fail budget' ->
          counts.n_backtracks <- counts.n_backtracks + 1;
          record (S_backtrack { vertex = v; tried = w });
          undo v pruned;
          try_candidates budget' rest v
      end)
  in
  match
    (match entry with
    | `Fresh budget -> search budget
    | `Resume (v, w, budget) -> try_candidates budget [ w ] v)
  with
  | `Fail _ -> `Unsat
  | `Budget -> `Budget
  | `Cancelled -> `Cancelled
  | `Branch sp -> `Branch sp
  | exception Found a -> `Sat a

(* Preprocessing plus a [`Fresh] search: the sequential engine ([probe]
   false), the spine probe ([probe] true), and every portfolio racer all
   enter here, each with its own reducer configuration. *)
let solve_root ?cancel ?(probe = false) ~red ~budget ~counts ~record inst =
  (* The root (empty assignment) always counts as a visited node, even when
     the instance dies in preprocessing — "nodes = 0" would otherwise be
     ambiguous between "refuted instantly" and "never ran". *)
  counts.n_nodes <- counts.n_nodes + 1;
  if Array.exists (fun d -> Array.length d = 0) inst.domains then begin
    record (S_root_unsat "empty initial domain");
    `Unsat
  end
  else begin
    (* live domains as mutable arrays of candidate lists *)
    let live = Array.map Array.to_list inst.domains in
    if not (arc_consistency inst live) then begin
      record (S_root_unsat "arc consistency wiped a domain");
      `Unsat
    end
    else
      run_search ?cancel ~probe ~red ~counts ~record inst
        (init_state inst live red.order_pos)
        (`Fresh budget)
  end

(* Resume a spine snapshot on one candidate: the incremental-replay job.
   The budget is exactly what the sequential [try_candidates] at the branch
   node would grant the candidate ([sp_budget] minus the branch node's own
   tick), so budget-bound verdicts match the candidate-replay driver of
   earlier revisions. *)
let run_job ~cancel ~red ~counts inst sp w =
  run_search ~cancel ~red ~counts
    ~record:(fun _ -> ())
    inst (copy_state sp.sp_state)
    (`Resume (sp.sp_var, w, sp.sp_budget - 1))

let atomic_min cell i =
  let rec go () =
    let cur = Atomic.get cell in
    if i < cur && not (Atomic.compare_and_set cell cur i) then go ()
  in
  go ()

(* ---- portfolio mode ---- *)

let c_pf_races = Wfc_obs.Metrics.counter "par.portfolio_races"

let c_pf_racers = Wfc_obs.Metrics.counter "par.portfolio_racers"

let c_pf_wins_canonical = Wfc_obs.Metrics.counter "par.portfolio_wins_canonical"

let c_pf_wins_diverse = Wfc_obs.Metrics.counter "par.portfolio_wins_diverse"

(* Racer [0] searches in the canonical BFS tie-break order — it IS the
   sequential engine. Racer [1] reverses it; higher racers shuffle the
   identity with a splitmix-style LCG seeded by the racer index, so every
   racer's order is a deterministic permutation. *)
let variant_positions inst i =
  if i = 0 then bfs_positions inst
  else if i = 1 then
    let pos = bfs_positions inst in
    Array.map (fun p -> inst.nvars - 1 - p) pos
  else begin
    let n = inst.nvars in
    let perm = Array.init n (fun v -> v) in
    let state = ref (((i * 0x9E3779B9) + 0x2545F491) land max_int) in
    let rand k =
      state := ((!state * 2862933555777941757) + 3037000493) land max_int;
      !state mod k
    in
    for j = n - 1 downto 1 do
      let k = rand (j + 1) in
      let tmp = perm.(j) in
      perm.(j) <- perm.(k);
      perm.(k) <- tmp
    done;
    perm
  end

let solve_at ?opts ?domains task level =
  let o = match opts with Some o -> o | None -> !process_defaults in
  let budget = o.budget in
  let mode = o.mode in
  let domains = match domains with Some d -> max 1 d | None -> Wfc_par.domains () in
  Wfc_obs.Metrics.with_span (Printf.sprintf "solvability.level.%d" level) @@ fun () ->
  let t0 = Wfc_obs.Metrics.now_s () in
  Wfc_obs.Metrics.incr
    (Wfc_obs.Metrics.counter ("solvability.model." ^ Model.slug o.model));
  let counts = fresh_counts () in
  let sds, verts, inst = build_instance ~model:o.model task level in
  let ring =
    if o.trace then Some (Wfc_obs.Flight.create ~capacity:search_trace_capacity) else None
  in
  let record =
    match ring with None -> fun _ -> () | Some r -> fun e -> Wfc_obs.Flight.push r e
  in
  (* Trail recording degrades to the sequential {e unreduced} engine: the
     flight ring is a single chronological log of one canonical search, and
     interleaved subtree events — or reducer-dependent prune events — would
     destroy its meaning (DESIGN §9, §14). *)
  let use_parallel = domains > 1 && not o.trace in
  let bfs = bfs_positions inst in
  let autos =
    if o.symmetry && not o.trace then build_autos_memo ~model:o.model ~level task sds verts inst
    else [||]
  in
  let collapsed =
    if o.collapse && not o.trace then
      Some (collapse_positions_memo ~model:o.model ~level task sds verts inst)
    else None
  in
  let red =
    match collapsed with
    | Some (pos, _) -> make_reducers ~static_order:true ~autos ~order_pos:pos inst.nvars
    | None -> make_reducers ~static_order:false ~autos ~order_pos:bfs inst.nvars
  in
  let reducing = red.static_order || Array.length red.autos > 0 in
  Wfc_obs.Metrics.add c_sym_orbits (Array.length red.autos);
  (match collapsed with
  | Some (_, eliminated) -> Wfc_obs.Metrics.add c_collapse_len eliminated
  | None -> ());
  (* Racer [i]'s reducer configuration, derived from the primary one: racer
     0 {e is} the primary engine; diverse racers keep the symmetry group
     (each lex order is individually sound) but fall back to dynamic
     most-constrained-first selection under a variant order. When the
     primary runs the collapse schedule, racer 1 gets the plain BFS order —
     the race doubles as collapse-vs-BFS insurance. *)
  let racer_red red i =
    if i = 0 then red
    else
      let pos =
        if red.static_order then variant_positions inst (i - 1)
        else variant_positions inst i
      in
      make_reducers ~static_order:false ~autos:red.autos ~order_pos:pos inst.nvars
  in
  (* One full engine run under one reducer configuration, tallying into its
     own [counts] (the parallel merges below overwrite, so phases must not
     share a record). *)
  let engine red counts =
    if not use_parallel then
      match solve_root ~red ~budget ~counts ~record inst with
      | (`Sat _ | `Unsat | `Budget) as o -> o
      | `Cancelled | `Branch _ -> assert false (* no cancel, no probe *)
    else
      match mode with
      | `Portfolio ->
        (* Race one racer per domain over the same instance under distinct
           variable orders; first verdict wins and cancels the rest. Racer
           0 is the canonical engine and may publish any outcome; diverse
           racers may publish only [`Unsat] — a satisfying assignment (and
           thus the decide table) depends on the search order, but a
           completed refutation does not — so the verdict and any decision
           map equal the sequential engine's whichever racer wins. Stats
           are the winning racer's own search cost (a diverse win can even
           beat the sequential budget to a refutation). *)
        Wfc_obs.Metrics.incr c_pf_races;
        let racers = domains in
        Wfc_obs.Metrics.add c_pf_racers racers;
        let thunk i tok =
          let c = fresh_counts () in
          let cancel () = Wfc_par.Token.cancelled tok in
          match
            solve_root ~cancel ~red:(racer_red red i) ~budget ~counts:c
              ~record:(fun _ -> ())
              inst
          with
          | `Unsat -> Some (`Unsat, c)
          | (`Sat _ | `Budget) as o when i = 0 -> Some (o, c)
          | `Sat _ | `Budget | `Cancelled -> None
          | `Branch _ -> assert false (* racers never probe *)
        in
        (match Wfc_par.race ~domains (Array.init racers thunk) with
        | None ->
          (* racer 0 withdraws only when cancelled, and cancellation
             implies a claimed winner *)
          assert false
        | Some (i, (o, c)) ->
          Wfc_obs.Metrics.incr (if i = 0 then c_pf_wins_canonical else c_pf_wins_diverse);
          counts.n_nodes <- c.n_nodes;
          counts.n_backtracks <- c.n_backtracks;
          counts.n_prunes <- c.n_prunes;
          counts.n_sym <- c.n_sym;
          o)
      | `Batch -> (
        (* Probe: run the sequential search up to its first branching node.
           The spine before it is choice-free; the probe freezes it as an
           immutable snapshot every job resumes from, so the spine is
           derived once instead of once per candidate. If the probe never
           branches it already IS the whole sequential search. The reducers
           thread through probe and jobs alike: the lex check is a pure
           function of the (resumed) assignment and the candidate, so the
           batch tallies match the sequential engine's exactly. *)
        let probe_counts = fresh_counts () in
        match
          solve_root ~probe:true ~red ~budget ~counts:probe_counts
            ~record:(fun _ -> ())
            inst
        with
        | (`Sat _ | `Unsat | `Budget) as o ->
          counts.n_nodes <- probe_counts.n_nodes;
          counts.n_backtracks <- probe_counts.n_backtracks;
          counts.n_prunes <- probe_counts.n_prunes;
          counts.n_sym <- probe_counts.n_sym;
          o
        | `Cancelled -> assert false (* probe has no cancel *)
        | `Branch sp ->
          let cands = Array.of_list sp.sp_cands in
          let n = Array.length cands in
          (* Lowest-index-wins: a subtree's [`Sat]/[`Budget] only cancels
             {e higher}-indexed siblings, so the verdict is decided by the
             first candidate in domain order exactly as in the sequential
             scan, independent of which domain finishes first. *)
          let winner = Atomic.make max_int in
          let job_counts = Array.init n (fun _ -> fresh_counts ()) in
          let job i () =
            let cancel () = Atomic.get winner < i in
            let r = run_job ~cancel ~red ~counts:job_counts.(i) inst sp cands.(i) in
            (match r with
            | `Sat _ | `Budget -> atomic_min winner i
            | `Unsat | `Cancelled | `Branch _ -> ());
            r
          in
          let outcomes = Wfc_par.run_jobs ~domains (Array.init n job) in
          (* The verdict is the first non-refuted subtree in candidate order
             — jobs below it are never cancelled, so they are complete
             refutations exactly as in the sequential scan. *)
          let rec scan i =
            if i = n then (n - 1, `Unsat)
            else
              match outcomes.(i) with
              | `Unsat -> scan (i + 1)
              | (`Sat _ | `Budget) as r -> (i, r)
              | `Cancelled | `Branch _ ->
                (* only jobs strictly above a decided winner are cancelled,
                   and the scan stops at the winner; jobs never probe *)
                assert false
          in
          let last, verdict = scan 0 in
          (* Merge the probe with jobs [0 .. last]: each job's tallies now
             cover exactly its candidate's subtree (the spine is resumed,
             not replayed), so they add up directly — the spine and root
             come from the probe, the branching node counts once on top.
             Cancelled jobs above [last] contributed no part of the
             sequential search and are excluded, which keeps the tallies
             deterministic. *)
          let spine_nodes = probe_counts.n_nodes - 1 in
          counts.n_nodes <- probe_counts.n_nodes + 1;
          counts.n_prunes <- probe_counts.n_prunes;
          counts.n_sym <- probe_counts.n_sym;
          counts.n_backtracks <- 0;
          for i = 0 to last do
            let jc = job_counts.(i) in
            counts.n_nodes <- counts.n_nodes + jc.n_nodes;
            counts.n_prunes <- counts.n_prunes + jc.n_prunes;
            counts.n_sym <- counts.n_sym + jc.n_sym;
            counts.n_backtracks <- counts.n_backtracks + jc.n_backtracks
          done;
          (* when every candidate is refuted, the sequential engine unwinds
             (and counts) each spine assignment once on the way out *)
          (match verdict with
          | `Unsat -> counts.n_backtracks <- counts.n_backtracks + spine_nodes
          | _ -> ());
          verdict)
  in
  let c1 = fresh_counts () in
  let first = engine red c1 in
  let c2 = fresh_counts () in
  (* Reducers change which satisfying assignment is found first, so a
     [`Sat] under active reducers is re-derived by the plain engine — the
     decision map (hence the verdict record) stays byte-identical to the
     unreduced engine's, and both phases' search costs are reported.
     Refutations and budget exhaustions, the cases pruning exists for,
     never rerun. The plain rerun's verdict is taken verbatim: if it
     exhausts the budget, the unreduced engine would have too. One
     exception skips the rerun: under dynamic selection with zero lex
     prunes fired, the search trajectory was step-for-step the plain
     engine's (every [sym_ok] was a no-op), so [first] already is the
     canonical answer. *)
  let outcome =
    match first with
    | `Sat _ when reducing && (red.static_order || c1.n_sym > 0) ->
      engine (make_reducers ~static_order:false ~autos:[||] ~order_pos:bfs inst.nvars) c2
    | o -> o
  in
  counts.n_nodes <- c1.n_nodes + c2.n_nodes;
  counts.n_backtracks <- c1.n_backtracks + c2.n_backtracks;
  counts.n_prunes <- c1.n_prunes + c2.n_prunes;
  counts.n_sym <- c1.n_sym + c2.n_sym;
  let elapsed = Wfc_obs.Metrics.now_s () -. t0 in
  Wfc_obs.Metrics.incr c_calls;
  Wfc_obs.Metrics.add c_nodes counts.n_nodes;
  Wfc_obs.Metrics.add c_backtracks counts.n_backtracks;
  Wfc_obs.Metrics.add c_prunes counts.n_prunes;
  Wfc_obs.Metrics.add c_sym_pruned counts.n_sym;
  Wfc_obs.Metrics.observe h_solve_at elapsed;
  let stats =
    {
      nodes = counts.n_nodes;
      backtracks = counts.n_backtracks;
      prunes = counts.n_prunes;
      elapsed;
    }
  in
  let trail () =
    match ring with
    | None -> []
    | Some r ->
      (* variable indices -> SDS vertex ids *)
      List.map
        (function
          | S_node { vertex; domain } -> S_node { vertex = verts.(vertex); domain }
          | S_prune { vertex; removed } -> S_prune { vertex = verts.(vertex); removed }
          | S_backtrack { vertex; tried } -> S_backtrack { vertex = verts.(vertex); tried }
          | S_root_unsat _ as e -> e)
        (Wfc_obs.Flight.contents r)
  in
  match outcome with
  | `Sat assignment ->
    let table = Hashtbl.create inst.nvars in
    Array.iteri (fun i v -> Hashtbl.replace table v assignment.(i)) verts;
    Solvable
      {
        map =
          { task; level; sds; model = o.model; decide = (fun v -> Hashtbl.find table v) };
        stats;
      }
  | `Unsat -> Unsolvable_at { level; stats; trail = trail () }
  | `Budget -> Exhausted { level; stats }
  | `Cancelled ->
    (* cancellation only exists inside parallel jobs; the merged outcome
       never surfaces it *)
    assert false

(* [solve] reports {e cumulative} stats over every level it tried, and its
   [budget] is likewise cumulative: each level's [solve_at] gets only what
   the previous levels left over ([budget - nodes so far]), so the sweep as
   a whole visits at most [budget] nodes plus one root pre-count per level.
   When a level exhausts the remainder — or nothing is left to hand out —
   the sweep stops with [Exhausted]. *)
let solve ?opts ?domains ~max_level task =
  let o = match opts with Some o -> o | None -> !process_defaults in
  Wfc_obs.Metrics.with_span "solvability.solve" @@ fun () ->
  let rec go level acc last =
    if level > max_level then last
    else
      let remaining = o.budget - acc.nodes in
      if remaining <= 0 then Exhausted { level; stats = acc }
      else
        match solve_at ~opts:{ o with budget = remaining } ?domains task level with
        | Solvable { map; stats } -> Solvable { map; stats = add_stats acc stats }
        | Unsolvable_at { level = l; stats; trail } ->
          let acc = add_stats acc stats in
          go (level + 1) acc (Unsolvable_at { level = l; stats = acc; trail })
        | Exhausted { level = l; stats } -> Exhausted { level = l; stats = add_stats acc stats }
  in
  go 0 zero_stats (Unsolvable_at { level = -1; stats = zero_stats; trail = [] })

type outcome = {
  o_verdict : string;
  o_level : int;
  o_nodes : int;
  o_backtracks : int;
  o_prunes : int;
  o_elapsed : float;
  o_decide : (int * int) list;
}

type store = { lookup : unit -> outcome option; commit : outcome -> unit }

let c_store_hits = Wfc_obs.Metrics.counter "solvability.store.hits"

let c_store_misses = Wfc_obs.Metrics.counter "solvability.store.misses"

let outcome_of_verdict v =
  let stats = stats_of_verdict v in
  let level, decide =
    match v with
    | Solvable { map; _ } ->
      (* Under a restricting model the decision map covers only the affine
         task (the admitted facets' closure) — its vertices are exactly the
         instance variables. *)
      let scx = Chromatic.complex (Sds.complex map.sds) in
      let admitted = admitted_facets map.model map.sds scx in
      ( map.level,
        List.map (fun vtx -> (vtx, map.decide vtx)) (restricted_vertices ~admitted scx) )
    | Unsolvable_at { level; _ } | Exhausted { level; _ } -> (level, [])
  in
  {
    o_verdict = verdict_name v;
    o_level = level;
    o_nodes = stats.nodes;
    o_backtracks = stats.backtracks;
    o_prunes = stats.prunes;
    o_elapsed = stats.elapsed;
    o_decide = decide;
  }

let solve_cached ?opts ?domains ?store ~max_level task =
  match store with
  | None -> (outcome_of_verdict (solve ?opts ?domains ~max_level task), `Computed)
  | Some s -> (
    match s.lookup () with
    | Some o ->
      Wfc_obs.Metrics.incr c_store_hits;
      (o, `Hit)
    | None ->
      Wfc_obs.Metrics.incr c_store_misses;
      let v = solve ?opts ?domains ~max_level task in
      let o = outcome_of_verdict v in
      (match v with Exhausted _ -> () | Solvable _ | Unsolvable_at _ -> s.commit o);
      (o, `Computed))

let verify { task; sds; model; decide; level = _ } =
  let scx = Chromatic.complex (Sds.complex sds) in
  let sd = Sds.subdiv sds in
  (* only the model's affine task is decided, so only it is checked *)
  let admitted = admitted_facets model sds scx in
  let errors = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun v ->
      let w = decide v in
      if Chromatic.color task.Task.output w <> Sds.color sds v then
        add "vertex %d: color not preserved" v)
    (restricted_vertices ~admitted scx);
  List.iter
    (fun s ->
      let img = Simplex.of_list (List.map decide (Simplex.to_list s)) in
      if not (Complex.mem img (Chromatic.complex task.Task.output)) then
        add "simplex %s: image not a simplex" (Simplex.to_string s)
      else begin
        let carrier = Subdiv.simplex_carrier sd s in
        if not (Task.allows task carrier img) then
          add "simplex %s: image violates delta(carrier)" (Simplex.to_string s)
      end)
    (restricted_simplices ~admitted scx);
  match !errors with [] -> Ok () | errs -> Error (String.concat "; " (List.rev errs))
