open Wfc_model

type report = {
  runs : int;
  bound : int;
  depth : int;
}

let ops_before_decision trace =
  let counts = Hashtbl.create 8 in
  let best = ref 0 in
  List.iter
    (fun e ->
      let bump p =
        let c = try Hashtbl.find counts p with Not_found -> 0 in
        Hashtbl.replace counts p (c + 1)
      in
      match e with
      | Trace.E_write { proc; _ } | Trace.E_read { proc; _ } | Trace.E_snapshot { proc; _ }
      | Trace.E_arrive { proc; _ } ->
        bump proc
      | Trace.E_decide { proc; _ } ->
        let c = try Hashtbl.find counts proc with Not_found -> 0 in
        if c > !best then best := c
      | Trace.E_fire _ | Trace.E_note _ | Trace.E_crash _ -> ())
    trace;
  !best

let c_runs = Wfc_obs.Metrics.counter "bounded.runs"

let decision_bound ?max_runs ?crashes make_actions =
  Wfc_obs.Metrics.with_span "bounded.decision_bound" @@ fun () ->
  let bound = ref 0 and depth = ref 0 in
  let runs =
    Explore.explore ?max_runs ?crashes make_actions (fun outcome ->
        let b = ops_before_decision outcome.Runtime.trace in
        if b > !bound then bound := b;
        if outcome.Runtime.time > !depth then depth := outcome.Runtime.time)
  in
  Wfc_obs.Metrics.add c_runs runs;
  { runs; bound = !bound; depth = !depth }
