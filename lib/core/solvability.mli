(** The decision procedure of Proposition 3.1 for bounded round counts.

    A bounded-input task [T = (I, O, Δ)] is wait-free solvable in the IIS
    model iff for some [b] there is a color-preserving simplicial map
    [φ : SDS^b(I) → O] with [φ(s) ∈ Δ(carrier(s, I))] for every simplex [s]
    — and by the paper's main theorem (§4) the same characterizes the
    atomic-snapshot model. For a fixed [b] the condition is a finite
    constraint-satisfaction problem; this module decides it by backtracking
    with forward checking:

    - one variable per vertex of [SDS^b(I)], domain = output vertices of the
      same color whose singleton is allowed for the vertex's carrier;
    - one constraint per simplex [s] of the closure: the image of [s] must
      be a face of some simplex in [Δ(carrier s)].

    Exhausting the search space is a {e proof} that no decision map exists
    at level [b]; it is not a proof for larger [b] (by [9], no algorithm can
    decide all levels at once for three or more processes). *)

type map = {
  task : Wfc_tasks.Task.t;
  level : int;
  sds : Wfc_topology.Sds.t;  (** [SDS^level] of the task's input complex *)
  decide : int -> int;  (** SDS vertex -> output vertex *)
}

type stats = {
  nodes : int;  (** search nodes visited; >= 1 per level tried (the root
                    counts even when preprocessing refutes the instance) *)
  backtracks : int;  (** assignments undone *)
  prunes : int;  (** domain values removed by forward checking *)
  elapsed : float;  (** wall-clock seconds, including instance build *)
}
(** Search cost, carried by {e every} verdict: a negative answer is a
    completed exhaustive search and its cost is part of the result, not a
    side channel. (The old [search_nodes_of_last_call] global is gone.)
    The same tallies feed the [solvability.*] counters of {!Wfc_obs}. *)

(** One step of the backtracking search, for the machine-readable refutation
    trail. [vertex] is an SDS vertex id; [tried] the output vertex whose
    assignment was undone. *)
type search_event =
  | S_node of { vertex : int; domain : int }  (** branching, [domain] candidates live *)
  | S_prune of { vertex : int; removed : int }  (** forward checking removed values *)
  | S_backtrack of { vertex : int; tried : int }
  | S_root_unsat of string  (** refuted in preprocessing, before any branching *)

type verdict =
  | Solvable of { map : map; stats : stats }
  | Unsolvable_at of { level : int; stats : stats; trail : search_event list }
      (** search space of this level exhausted; [trail] is the recorded
          refutation trail — empty unless {!set_search_trace} is on *)
  | Exhausted of { level : int; stats : stats }  (** budget ran out *)

val set_search_trace : bool -> unit
(** Globally enable structured search tracing. Each [solve_at] then records
    node/prune/backtrack events into a bounded ring (capacity 10_000), and
    an unsolvable verdict carries the retained tail as its [trail] — a
    machine-checkable account of how the level was refuted. Off by default;
    the recorder sits on the search's hot path. *)

val search_event_to_json : search_event -> Wfc_obs.Json.t

val stats_of_verdict : verdict -> stats

val verdict_name : verdict -> string
(** ["solvable"] / ["unsolvable"] / ["exhausted"] — the strings used by the
    shared [wfc.obs.v1] JSON schema. *)

val pp_stats : Format.formatter -> stats -> unit

val default_budget : int
(** [5_000_000] — the node budget {!solve_at} and {!solve} use when none is
    given. Exposed because cached verdicts are only reusable under the
    budget they were computed with, so stores key on it. *)

val portfolio : unit -> bool
(** The process default for {!solve_at}'s [mode]: [true] means
    [`Portfolio]. Initialised from the [WFC_PORTFOLIO] environment
    variable ([1]/[true]/[yes]/[on], case-insensitive). *)

val set_portfolio : bool -> unit
(** Override the default mode at run time ([wfc solve --portfolio]). *)

val solve_at :
  ?budget:int ->
  ?domains:int ->
  ?mode:[ `Batch | `Portfolio ] ->
  Wfc_tasks.Task.t ->
  int ->
  verdict
(** Decide level [b] exactly (up to [budget] search nodes,
    default 5_000_000). Stats cover this level only.

    With [domains] (default [Wfc_par.domains ()]) > 1 the search runs one
    of two parallel engines, picked by [mode] (default {!portfolio}):

    - [`Batch] (the default default): a probe runs the search to its first
      branching node and freezes the state there as an immutable spine
      snapshot; each candidate subtree then resumes from a private copy of
      the snapshot as a pool job. A winning ([Solvable] / [Exhausted])
      subtree cancels only higher-indexed siblings, so the verdict —
      including [map.decide] on every SDS vertex — is the one the
      sequential engine returns, and an [Unsolvable_at] merges every
      subtree's exhaustive search into [stats] exactly.
    - [`Portfolio]: one racer per domain runs the {e whole} search under a
      distinct deterministic variable order; the first published verdict
      wins and cancels the rest ({!Wfc_par.race}). Racer 0 is the
      canonical order and may publish anything; diverse racers may publish
      only refutations (order-independent), so verdicts and decide tables
      still equal the sequential engine's. [stats] are the winning racer's
      own cost — not the sequential tallies — and a diverse racer may
      refute within a budget the canonical order would exhaust, in which
      case portfolio strictly improves on [Exhausted]. Tolerates
      single-core machines: any one racer equals the sequential engine.
      Counted in the [par.portfolio_*] metrics.

    Refutation-trail recording ({!set_search_trace}) forces the sequential
    engine; [trail] stays a single chronological log either way. *)

val solve :
  ?budget:int ->
  ?domains:int ->
  ?mode:[ `Batch | `Portfolio ] ->
  max_level:int ->
  Wfc_tasks.Task.t ->
  verdict
(** Try levels [0 .. max_level] in order; returns the first [Solvable], the
    last [Unsolvable_at] if all levels exhaust their search spaces, or
    [Exhausted] as soon as a level overruns the budget. Stats are cumulative
    over all levels tried, and [budget] (default 5_000_000) is a cumulative
    node budget for the whole sweep: each level is granted only what the
    previous levels left ([budget - stats.nodes] so far), so the sweep never
    costs more than one [solve_at] at the same budget. [domains] and [mode]
    are passed through to each {!solve_at}. *)

(** {1 Cached solving} — the entry point of the serving layer (DESIGN §10). *)

type outcome = {
  o_verdict : string;  (** {!verdict_name} of the underlying verdict *)
  o_level : int;  (** solvable: the map's level; otherwise the last level tried *)
  o_nodes : int;
  o_backtracks : int;
  o_prunes : int;
  o_elapsed : float;
  o_decide : (int * int) list;
      (** solvable only: the full decision table, [SDS^o_level] vertex ->
          output vertex, sorted by vertex — a serializable witness of the
          map. Empty otherwise. *)
}
(** A verdict flattened to plain data: what the persistent verdict store
    ([wfc.store.v1]) files and the daemon's wire protocol ships. Under the
    default [`Batch] mode everything except [o_elapsed] is a deterministic
    function of [(task, max_level, budget)] — the search visits the same
    nodes in the same order whatever the domain count (see {!solve_at}) —
    so stored and freshly computed outcomes agree byte-for-byte once
    timing is stripped. [`Portfolio] keeps [o_verdict]/[o_level]/[o_decide]
    deterministic but the node tallies describe whichever racer won. *)

type store = {
  lookup : unit -> outcome option;
  commit : outcome -> unit;
}
(** A verdict store as the solver sees it. The caller fixes the key — task
    digest, level bound, budget — inside the closures; the solver neither
    knows nor cares where outcomes persist. *)

val outcome_of_verdict : verdict -> outcome

val solve_cached :
  ?budget:int ->
  ?domains:int ->
  ?mode:[ `Batch | `Portfolio ] ->
  ?store:store ->
  max_level:int ->
  Wfc_tasks.Task.t ->
  outcome * [ `Hit | `Computed ]
(** {!solve} through a store: a [lookup] hit is returned as-is — counted in
    [solvability.store.hits] — without building a single subdivision; a miss
    ([solvability.store.misses]) runs {!solve} and [commit]s the flattened
    verdict before returning it. [Exhausted] outcomes are {e not} committed:
    a budget overrun is a fact about the budget, not the task. *)

val verify : map -> (unit, string) result
(** Independent re-check of a claimed decision map: color preservation,
    simpliciality, and the [Δ]-condition on every closure simplex. The
    search already guarantees this; tests use it as an oracle. *)
