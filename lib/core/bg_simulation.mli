(** The Borowsky–Gafni simulation: few simulators run a protocol written
    for many processes.

    This is the technology behind the resiliency results the paper points
    to in its conclusion (and behind the original set-consensus
    impossibility [7]): [s] simulators, any of whom may crash, cooperatively
    execute a round-based snapshot protocol written for [m ≥ s] simulated
    processes, such that at most one simulated process is blocked per
    crashed simulator. The characterization of wait-free computations then
    transfers between models — e.g. 2 simulators running a 3-process
    protocol turn a wait-free solution of (3,1)-set consensus into a
    wait-free solution of 2-process consensus, which Prop 3.1 refutes.

    Mechanics, as implemented here:

    - simulated {e writes} are deterministic (the protocol is
      full-information-style: the round-[r] write value is a function of
      the agreed round-[r-1] snapshot), so they need no coordination; a
      simulator "performs" a write by announcing it in its SWMR cell;
    - simulated {e snapshots} are where simulators could diverge, so each
      (process, round) snapshot goes through a {e safe agreement}: a
      simulator proposes the vector of latest writes it can see (derived
      from an atomic snapshot of all simulator cells, hence proposals are
      inclusion-comparable), and the classic level-1/level-2 protocol picks
      one proposal. Safe agreement is wait-free {e except} when a simulator
      crashes between its two writes (the unsafe zone), in which case that
      one agreement may block forever — blocking at most one simulated
      process per crash;
    - each simulator works on the lowest-indexed unfinished simulated
      process that is not currently blocked, so progress is guaranteed:
      with [c < s] crashed simulators at least [m - c] simulated processes
      complete all [k] rounds.

    The simulated history is certified by {!check}: rounds complete in
    order, every snapshot contains the process's own same-round write,
    vectors are pairwise inclusion-comparable and per-process monotone —
    i.e. the completed part is a legal atomic-snapshot execution of the
    simulated protocol. *)

open Wfc_model

type spec = {
  procs : int;  (** m: simulated processes *)
  k : int;  (** rounds of the simulated protocol *)
  init : int -> string;  (** round-1 write value of simulated process j *)
  next : proc:int -> round:int -> string option array -> string;
      (** round-[r+1] value from the agreed round-[r] snapshot *)
}

val full_information_spec : procs:int -> k:int -> spec
(** The simulated protocol of Figure 1 (canonically encoded views). *)

type cost = {
  simulator_ops : int array;  (** shared-memory operations per simulator *)
  agreements : int;  (** safe agreements decided *)
  steps : int;  (** total scheduler decisions *)
}
(** The run's resource consumption, also fed into the [bg.*] counters of
    {!Wfc_obs}. *)

type result = {
  completed : bool array;  (** per simulated process: finished all k rounds *)
  snapshots : (int * int * int array) list;
      (** agreed (process, round, seq vector) snapshots, in agreement order *)
  values : (int * int * string) list;  (** performed simulated writes *)
  trace : string Trace.t Lazy.t;
      (** the runtime event log over the {e simulators}, cells rendered
          compactly on force (empty with the default [Off] sink) *)
  cost : cost;
}

val run :
  ?max_steps:int ->
  ?sink:Runtime.trace_sink ->
  ?on_trap:(string Trace.t -> unit) ->
  simulators:int ->
  spec ->
  Runtime.strategy ->
  result
(** Runs the simulation under an adversary over the {e simulators}.

    [sink] selects event retention (default [Off]); with [Full],
    [result.trace] is a complete, replayable [wfc.trace.v1] event stream.
    [on_trap] receives the retained trace if the run aborts with
    {!Wfc_model.Runtime.Invalid_decision}. *)

val check : spec -> result -> (unit, string) Stdlib.result
(** Certifies the simulated history (see above) and that completed
    processes went through all [k] rounds with consistent deterministic
    write values. *)

val min_completed : simulators:int -> crashed:int -> spec -> int
(** The liveness guarantee: at least [spec.procs - crashed] simulated
    processes complete (each crash can leave at most one safe agreement —
    hence one simulated process — blocked). Exposed for tests to assert
    against. *)
