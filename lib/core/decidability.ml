open Wfc_topology
open Wfc_tasks

type verdict =
  | Solvable_at of int
  | Unsolvable

(* Shortest walk length between two output vertices inside the
   allowed-pairs graph of one input edge; None if disconnected. Because the
   graph is bipartite with the endpoints on opposite sides, any connecting
   walk has odd length, and walks extend freely by +2, so the shortest path
   length is the minimal walk length. *)
let shortest_walk ~pairs w0 w1 =
  if w0 = w1 then Some 0
  else begin
    let adj = Hashtbl.create 32 in
    let add a b =
      let l = try Hashtbl.find adj a with Not_found -> [] in
      if not (List.mem b l) then Hashtbl.replace adj a (b :: l)
    in
    List.iter
      (fun pair ->
        match Simplex.to_list pair with
        | [ a; b ] ->
          add a b;
          add b a
        | _ -> ())
      pairs;
    let dist = Hashtbl.create 32 in
    Hashtbl.replace dist w0 0;
    let queue = Queue.create () in
    Queue.add w0 queue;
    let result = ref None in
    while !result = None && not (Queue.is_empty queue) do
      let v = Queue.take queue in
      let d = Hashtbl.find dist v in
      if v = w1 then result := Some d
      else
        List.iter
          (fun u ->
            if not (Hashtbl.mem dist u) then begin
              Hashtbl.replace dist u (d + 1);
              Queue.add u queue
            end)
          (try Hashtbl.find adj v with Not_found -> [])
    done;
    !result
  end

let rec log3_ceil n = if n <= 1 then 0 else 1 + log3_ceil ((n + 2) / 3)

let two_process (task : Task.t) =
  if task.Task.procs <> 2 then invalid_arg "Decidability.two_process: two processes only";
  let icx = Chromatic.complex task.Task.input in
  let input_vertices = Complex.vertices icx in
  let edges = Complex.faces icx ~dim:1 in
  (* solo-allowed outputs per input vertex *)
  let solo v =
    task.Task.delta (Simplex.singleton v)
    |> List.concat_map Simplex.to_list
    |> List.sort_uniq Stdlib.compare
  in
  let choices = List.map (fun v -> (v, solo v)) input_vertices in
  let combinations =
    List.fold_left (fun acc (_, s) -> acc * List.length s) 1 choices
  in
  if combinations > 1_000_000 then
    invalid_arg "Decidability.two_process: corner-choice space too large";
  (* enumerate corner-image choices; track the best (minimal) level *)
  let best = ref None in
  let rec enumerate assignment = function
    | [] ->
      (* evaluate this choice: per input edge, shortest walk between the
         chosen corner images in the edge's allowed-pairs graph *)
      let rec eval worst = function
        | [] -> Some worst
        | e :: rest -> (
          match Simplex.to_list e with
          | [ a; b ] -> (
            let wa = List.assoc a assignment and wb = List.assoc b assignment in
            match shortest_walk ~pairs:(task.Task.delta e) wa wb with
            | None -> None
            | Some len -> eval (max worst (log3_ceil len)) rest)
          | _ -> None)
      in
      (match eval 0 edges with
      | Some level -> (
        match !best with
        | Some b when b <= level -> ()
        | _ -> best := Some level)
      | None -> ())
    | (v, options) :: rest ->
      List.iter (fun w -> enumerate ((v, w) :: assignment) rest) options
  in
  enumerate [] choices;
  match !best with Some level -> Solvable_at level | None -> Unsolvable

let agrees_with_search ?(max_level = 2) task =
  match (two_process task, Solvability.solve ~max_level task) with
  | Solvable_at exact, Solvability.Solvable { map; _ } ->
    exact = map.Solvability.level
  | Solvable_at exact, Solvability.Unsolvable_at { level = b; _ } ->
    (* the search only looked up to b; exact level must lie beyond *)
    exact > b
  | Unsolvable, Solvability.Unsolvable_at _ -> true
  | Unsolvable, Solvability.Solvable _ -> false
  | _, Solvability.Exhausted _ -> true (* search gave up; nothing to contradict *)
