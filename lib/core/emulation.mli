(** Emulation of atomic-snapshot protocols on iterated immediate snapshots —
    Figure 2, the paper's main result (§4).

    Each emulator process drives its simulated process through [k]
    write/snapshot rounds against the sequence of one-shot IS memories:

    - to emulate the write of value [v] with sequence number [sq], it
      submits (everything it has seen) ∪ [{(i, sq, v)}] to its next memory
      and repeats with the union of what it gets back until its own tuple is
      in the {e intersection} of the returned sets — at that point every
      process at or beyond this memory is guaranteed to see the write
      (Claim 4.1);
    - to emulate a snapshot it does the same with a placeholder tuple
      [(i, sq, ⊥)]; once the placeholder is in the intersection, for each
      cell it returns the highest-sequence-numbered value in the
      intersection (Corollary 4.1 makes this a fresh-enough value, and
      intersection-containment makes the vectors comparable — together,
      atomicity).

    The emulation is non-blocking rather than wait-free per operation, but
    every bounded protocol terminates under every adversary (§4's closing
    remark together with Lemma 3.1).

    The run result carries per-operation intervals in global firing time so
    that {!Wfc_model.Trace.check_snapshot_atomicity} can certify each run. *)

open Wfc_model

(** What to emulate: a protocol of the shape of Figure 1 — [k] alternations
    of [write (value)] / [snapshot], the next value computed from the last
    snapshot. *)
type 'v spec = {
  procs : int;
  k : int;
  init : int -> 'v;  (** value written in round 1 *)
  next : proc:int -> round:int -> 'v option array -> 'v;
      (** value for round [round + 1] from the round-[round] snapshot *)
}

type cost = {
  memories : int;  (** one-shot IIS memories consumed *)
  write_reads : int array;  (** WriteReads performed per process *)
  steps : int;  (** total scheduler decisions *)
}
(** The run's resource consumption, also fed into the [emulation.*]
    counters of {!Wfc_obs}. *)

type 'v result = {
  final_snapshots : 'v option array array;  (** per process: last snapshot *)
  ops : Trace.op_record list;  (** all completed operations, with intervals *)
  trace : string Trace.t Lazy.t;
      (** the runtime event log, values rendered to strings on force (empty
          with the default [Off] sink); lazy so the always-on flight
          recorder costs nothing when the run succeeds and nobody looks *)
  cost : cost;
}

val run :
  ?max_steps:int ->
  ?sink:Runtime.trace_sink ->
  ?on_trap:(string Trace.t -> unit) ->
  ?show:('v -> string) ->
  'v spec ->
  Runtime.strategy ->
  'v result
(** Runs all emulators under the given adversary until every process
    finishes its [k] rounds.

    [sink] selects event retention (default [Off]: no trace, no overhead);
    with [Full], [result.trace] is a complete, replayable [wfc.trace.v1]
    event stream. [show] renders protocol values inside submissions for the
    trace (default [fun _ -> "?"] — pass [Fun.id] for string specs).
    [on_trap] receives the retained trace if the run aborts with
    {!Wfc_model.Runtime.Invalid_decision} — the flight-recorder dump. *)

val check : 'v result -> (unit, string) Stdlib.result
(** Certifies the run: the operation history must be an atomic snapshot
    history ({!Wfc_model.Trace.check_snapshot_atomicity}). *)

val full_information_spec : procs:int -> k:int -> string spec
(** The spec of Figure 1 itself: values are canonical view encodings, so
    the emulated run reproduces the full-information protocol. *)
