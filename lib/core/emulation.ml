open Wfc_model

type 'v spec = {
  procs : int;
  k : int;
  init : int -> 'v;
  next : proc:int -> round:int -> 'v option array -> 'v;
}

type cost = { memories : int; write_reads : int array; steps : int }

type 'v result = {
  final_snapshots : 'v option array array;
  ops : Trace.op_record list;
  trace : string Trace.t Lazy.t;
  cost : cost;
}

let c_memories = Wfc_obs.Metrics.counter "emulation.memories"

let c_write_reads = Wfc_obs.Metrics.counter "emulation.write_reads"

(* A tuple of Figure 2: (id, seq, value-or-placeholder). Kept in sorted
   lists that act as sets. *)
type 'v tuple = { id : int; sq : int; payload : 'v option }

let rec union2 a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: a', y :: b' ->
    let c = Stdlib.compare x y in
    if c = 0 then x :: union2 a' b'
    else if c < 0 then x :: union2 a' b
    else y :: union2 a b'

let rec inter2 a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: a', y :: b' ->
    let c = Stdlib.compare x y in
    if c = 0 then x :: inter2 a' b'
    else if c < 0 then inter2 a' b
    else inter2 a b'

let big_union sets = List.fold_left union2 [] sets

let big_inter = function
  | [] -> []
  | first :: rest -> List.fold_left inter2 first rest

let add_tuple t set = union2 [ t ] set

let mem_tuple t set = List.exists (fun x -> Stdlib.compare x t = 0) set

(* Render a submission (tuple set) for the serialized trace: "id.sq=v" for
   real tuples, "id.sq?" for snapshot placeholders. *)
let render_submission show set =
  let tuple t =
    match t.payload with
    | Some v -> Printf.sprintf "%d.%d=%s" t.id t.sq (show v)
    | None -> Printf.sprintf "%d.%d?" t.id t.sq
  in
  "{" ^ String.concat " " (List.map tuple set) ^ "}"

let run ?(max_steps = 2_000_000) ?(sink = Runtime.Off) ?on_trap ?(show = fun _ -> "?") spec
    strategy =
  let n = spec.procs in
  let ops = ref [] in
  let final_snapshots = Array.make n [||] in
  let write_reads = Array.make n 0 in
  let op_index = Array.make n 0 in
  let record proc kind t_start t_end =
    let index = op_index.(proc) in
    op_index.(proc) <- index + 1;
    ops := { Trace.proc; index; kind; t_start; t_end } :: !ops
  in
  (* The generic Figure 2 procedure: push [marker] into the next memory and
     keep WriteReading unions until the marker is in the intersection of the
     returned sets; then hand the intersection (plus timing) to [finish]. *)
  let procedure ~proc ~level ~known ~marker ~finish =
    let submission = add_tuple marker known in
    let rec attempt level first_time submission =
      Action.Write_read
        {
          level;
          value = submission;
          k =
            (fun { Action.time; seen } ->
              write_reads.(proc) <- write_reads.(proc) + 1;
              let first_time = match first_time with None -> Some time | s -> s in
              let inter = big_inter seen in
              if mem_tuple marker inter then
                finish ~level:(level + 1) ~t_start:(Option.get first_time) ~t_end:time
                  ~inter ~known:(big_union seen)
              else attempt (level + 1) first_time (big_union seen));
        }
    in
    attempt level None submission
  in
  let latest_per_cell inter =
    let vec = Array.make n 0 in
    let vals = Array.make n None in
    List.iter
      (fun t ->
        match t.payload with
        | Some v when t.sq > vec.(t.id) ->
          vec.(t.id) <- t.sq;
          vals.(t.id) <- Some v
        | Some _ | None -> ())
      inter;
    (vec, vals)
  in
  let emulator i =
    let rec round ~sq ~level ~known ~value =
      if sq > spec.k then Action.Decide []
      else
        (* write of round sq *)
        procedure ~proc:i ~level ~known
          ~marker:{ id = i; sq; payload = Some value }
          ~finish:(fun ~level ~t_start ~t_end ~inter:_ ~known ->
            record i (`Write sq) t_start t_end;
            (* snapshot of round sq *)
            procedure ~proc:i ~level ~known
              ~marker:{ id = i; sq; payload = None }
              ~finish:(fun ~level ~t_start ~t_end ~inter ~known ->
                let vec, vals = latest_per_cell inter in
                record i (`Snapshot vec) t_start t_end;
                final_snapshots.(i) <- vals;
                let value' = spec.next ~proc:i ~round:sq vals in
                round ~sq:(sq + 1) ~level ~known ~value:value'))
    in
    round ~sq:1 ~level:0 ~known:[] ~value:(spec.init i)
  in
  let actions = Array.init n emulator in
  let render = Trace.map (render_submission show) in
  let on_trap = Option.map (fun f tr -> f (render tr)) on_trap in
  let outcome = Runtime.run ~max_steps ~sink ?on_trap actions strategy in
  Wfc_obs.Metrics.add c_memories outcome.Runtime.memories_used;
  Wfc_obs.Metrics.add c_write_reads (Array.fold_left ( + ) 0 write_reads);
  {
    final_snapshots;
    ops = List.rev !ops;
    (* deferred: rendering every submission to strings costs more than the
       run itself, and the flight-recorder mode must stay near-free when
       nothing fails and nobody reads the trace *)
    trace = lazy (render outcome.Runtime.trace);
    cost =
      {
        memories = outcome.Runtime.memories_used;
        write_reads;
        steps = outcome.Runtime.time;
      };
  }

let check r = Trace.check_snapshot_atomicity r.ops

let full_information_spec ~procs ~k =
  {
    procs;
    k;
    init = (fun i -> Printf.sprintf "#%d" i);
    next =
      (fun ~proc ~round cells ->
        let parts =
          Array.to_list (Array.map (function None -> "_" | Some s -> s) cells)
        in
        Printf.sprintf "P%d.%d[%s]" proc round (String.concat ";" parts));
  }
