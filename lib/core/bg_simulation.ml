open Wfc_model

type spec = {
  procs : int;
  k : int;
  init : int -> string;
  next : proc:int -> round:int -> string option array -> string;
}

let full_information_spec ~procs ~k =
  {
    procs;
    k;
    init = (fun j -> Printf.sprintf "#%d" j);
    next =
      (fun ~proc ~round cells ->
        let parts = Array.to_list (Array.map (function None -> "_" | Some s -> s) cells) in
        Printf.sprintf "P%d.%d[%s]" proc round (String.concat ";" parts));
  }

(* What a simulator announces in its SWMR cell. Everything is monotone:
   sets only grow, safe-agreement levels only move 1 -> {0, 2}. *)
type sa_state = { level : int; proposal : int array (* latest round per simulated proc *) }

type cell = {
  performed : (int * int * string) list; (* simulated writes (j, r, value) known performed *)
  sa : ((int * int) * sa_state) list; (* safe agreement states per (j, round) *)
  agreed : ((int * int) * int array) list; (* decided snapshots *)
}

type cost = { simulator_ops : int array; agreements : int; steps : int }

type result = {
  completed : bool array;
  snapshots : (int * int * int array) list;
  values : (int * int * string) list;
  trace : string Trace.t Lazy.t;
  cost : cost;
}

(* Render a simulator cell for the serialized trace: performed writes as
   "j.r", live safe-agreement slots as "j.r@level", decided snapshots as
   "j.r!". Values are omitted — they are recomputable from the agreements. *)
let render_cell c =
  let perf = List.map (fun (j, r, _) -> Printf.sprintf "%d.%d" j r) c.performed in
  let sa = List.map (fun ((j, r), st) -> Printf.sprintf "%d.%d@%d" j r st.level) c.sa in
  let agr = List.map (fun ((j, r), _) -> Printf.sprintf "%d.%d!" j r) c.agreed in
  "{" ^ String.concat " " (perf @ sa @ agr) ^ "}"

let c_agreements = Wfc_obs.Metrics.counter "bg.agreements"

let c_simulator_ops = Wfc_obs.Metrics.counter "bg.simulator_ops"

(* ----- pure helpers on knowledge ----- *)

let merge_performed cells =
  List.sort_uniq Stdlib.compare (List.concat_map (fun c -> c.performed) cells)

let merge_agreed cells =
  List.sort_uniq Stdlib.compare (List.concat_map (fun c -> c.agreed) cells)

let sa_levels_for cells key =
  (* (simulator index, state) pairs present for this agreement *)
  List.filter_map
    (fun (i, c) -> Option.map (fun st -> (i, st)) (List.assoc_opt key c.sa))
    cells

let latest_vector ~procs performed =
  let v = Array.make procs 0 in
  List.iter (fun (j, r, _) -> if r > v.(j) then v.(j) <- r) performed;
  v

let value_of performed j r =
  List.find_map (fun (j', r', w) -> if j' = j && r' = r then Some w else None) performed

let run ?(max_steps = 2_000_000) ?(sink = Runtime.Off) ?on_trap ~simulators spec strategy =
  let m = spec.procs in
  let empty_cell = { performed = []; sa = []; agreed = [] } in
  (* side channels filled by the simulator closures *)
  let ops_count = Array.make simulators 0 in
  let final_knowledge = ref empty_cell in
  let agreement_log = ref [] in
  (* [j]'s round-[r] write value, computable from knowledge *)
  let write_value knowledge j r =
    if r = 1 then Some (spec.init j)
    else
      match List.assoc_opt (j, r - 1) knowledge.agreed with
      | None -> None
      | Some vector ->
        let cells =
          Array.init m (fun j' ->
              if vector.(j') = 0 then None else value_of knowledge.performed j' vector.(j'))
        in
        Some (spec.next ~proc:j ~round:(r - 1) cells)
  in
  let simulator i =
    (* mutable private mirror of my cell plus learned knowledge *)
    let my = ref empty_cell in
    let knowledge = ref empty_cell in
    let stall = ref 0 in
    let stall_limit = 30 * simulators * m * (spec.k + 1) in
    let publish k = Action.Write (!my, k) in
    let observe cells k =
      let cell_list = Array.to_list cells |> List.filter_map (fun c -> c) in
      let fresh =
        {
          performed = merge_performed (!knowledge :: cell_list);
          agreed = merge_agreed (!knowledge :: cell_list);
          sa = !my.sa;
        }
      in
      if
        List.length fresh.performed = List.length !knowledge.performed
        && List.length fresh.agreed = List.length !knowledge.agreed
      then incr stall
      else stall := 0;
      knowledge := fresh;
      k cell_list
    in
    let count k =
      ops_count.(i) <- ops_count.(i) + 1;
      k
    in
    let set_sa key st =
      my := { !my with sa = (key, st) :: List.remove_assoc key !my.sa }
    in
    let add_performed entry =
      if not (List.mem entry !my.performed) then
        my := { !my with performed = entry :: !my.performed };
      knowledge := { !knowledge with performed = merge_performed [ !my; !knowledge ] }
    in
    let add_agreed key vector =
      if not (List.mem_assoc key !my.agreed) then begin
        my := { !my with agreed = (key, vector) :: !my.agreed };
        agreement_log := (fst key, snd key, vector) :: !agreement_log
      end;
      knowledge := { !knowledge with agreed = merge_agreed [ !my; !knowledge ] }
    in
    (* one attempt to advance simulated process j; continues with [next]
       regardless of whether progress happened *)
    let advance j next =
      let finished = List.mem_assoc (j, spec.k) !knowledge.agreed in
      if finished then next ()
      else begin
        (* first round whose snapshot is not agreed *)
        let rec first_round r =
          if r > spec.k then None
          else if List.mem_assoc (j, r) !knowledge.agreed then first_round (r + 1)
          else Some r
        in
        match first_round 1 with
        | None -> next ()
        | Some r -> (
          let have_write = value_of !knowledge.performed j r <> None in
          let refresh_then_continue () =
            (* defensive: should be unreachable, but never spin without an
               operation — refresh knowledge instead *)
            count (Action.Snapshot (fun cells -> observe cells (fun _ -> next ())))
          in
          if not have_write then begin
            match write_value !knowledge j r with
            | None -> refresh_then_continue ()
            | Some w ->
              add_performed (j, r, w);
              count (publish (fun () -> next ()))
          end
          else begin
            (* drive safe agreement for (j, r) *)
            let key = (j, r) in
            match List.assoc_opt key !my.sa with
            | None ->
              (* derive a proposal from one atomic snapshot *)
              count
                (Action.Snapshot
                   (fun cells ->
                     observe cells (fun cell_list ->
                         match List.assoc_opt key (merge_agreed cell_list) with
                         | Some vector ->
                           add_agreed key vector;
                           count (publish (fun () -> next ()))
                         | None ->
                           let proposal = latest_vector ~procs:m !knowledge.performed in
                           (* the proposal concerns rounds <= r for j *)
                           proposal.(j) <- min proposal.(j) r;
                           set_sa key { level = 1; proposal };
                           count
                             (publish (fun () ->
                                  (* decide my level from a snapshot *)
                                  count
                                    (Action.Snapshot
                                       (fun cells ->
                                         observe cells (fun cell_list ->
                                             let indexed =
                                               List.mapi (fun idx c -> (idx, c)) cell_list
                                             in
                                             let states = sa_levels_for indexed key in
                                             let two_exists =
                                               List.exists (fun (_, st) -> st.level = 2) states
                                             in
                                             let lvl = if two_exists then 0 else 2 in
                                             set_sa key
                                               { level = lvl;
                                                 proposal = (List.assoc key !my.sa).proposal };
                                             count (publish (fun () -> next ()))))))))))
            | Some { level = 1; _ } ->
              (* shouldn't persist: level 1 is always resolved within the
                 same advance chain; refresh and move on *)
              refresh_then_continue ()
            | Some _ ->
              (* try to finalize: no level-1 entries anywhere => decide *)
              count
                (Action.Snapshot
                   (fun cells ->
                     observe cells (fun cell_list ->
                         match List.assoc_opt key (merge_agreed cell_list) with
                         | Some vector ->
                           add_agreed key vector;
                           count (publish (fun () -> next ()))
                         | None ->
                           let indexed = List.mapi (fun idx c -> (idx, c)) cell_list in
                           let states = sa_levels_for indexed key in
                           let blocked = List.exists (fun (_, st) -> st.level = 1) states in
                           if blocked then next ()
                           else begin
                             let twos =
                               List.filter (fun (_, st) -> st.level = 2) states
                               |> List.sort (fun (a, _) (b, _) -> compare a b)
                             in
                             match twos with
                             | [] -> next () (* everyone abstained?! impossible; retry *)
                             | (_, st) :: _ ->
                               add_agreed key st.proposal;
                               count (publish (fun () -> next ()))
                           end)))
          end)
      end
    in
    let rec loop j_cursor =
      let all_done =
        List.for_all
          (fun j -> List.mem_assoc (j, spec.k) !knowledge.agreed)
          (List.init m (fun j -> j))
      in
      if all_done || !stall > stall_limit then begin
        final_knowledge :=
          {
            performed = merge_performed [ !knowledge; !final_knowledge ];
            agreed = merge_agreed [ !knowledge; !final_knowledge ];
            sa = [];
          };
        Action.Decide !my
      end
      else begin
        let j = j_cursor mod m in
        advance j (fun () -> loop (j_cursor + 1))
      end
    in
    (* every simulator starts by publishing its (empty) cell so that
       snapshots distinguish "empty" from "absent" *)
    count (publish (fun () -> loop 0))
  in
  let actions = Array.init simulators simulator in
  let render = Trace.map render_cell in
  let on_trap = Option.map (fun f tr -> f (render tr)) on_trap in
  let outcome = Runtime.run ~max_steps ~sink ?on_trap actions strategy in
  let knowledge = !final_knowledge in
  let completed =
    Array.init m (fun j -> List.mem_assoc (j, spec.k) knowledge.agreed)
  in
  let snapshots = List.rev !agreement_log in
  Wfc_obs.Metrics.add c_agreements (List.length snapshots);
  Wfc_obs.Metrics.add c_simulator_ops (Array.fold_left ( + ) 0 ops_count);
  {
    completed;
    snapshots;
    values = knowledge.performed;
    trace = lazy (render outcome.Runtime.trace);
    cost =
      { simulator_ops = ops_count; agreements = List.length snapshots; steps = outcome.Runtime.time };
  }

let check spec r =
  let m = spec.procs in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let vector_of = Hashtbl.create 64 in
  let conflict = ref None in
  List.iter
    (fun (j, rd, v) ->
      (match Hashtbl.find_opt vector_of (j, rd) with
      | Some v' when v' <> v -> conflict := Some (j, rd)
      | _ -> ());
      Hashtbl.replace vector_of (j, rd) v)
    r.snapshots;
  (* contiguity of rounds and self-inclusion *)
  let rec check_procs j =
    if j = m then Ok ()
    else begin
      let rounds =
        List.filter_map (fun (j', rd, _) -> if j' = j then Some rd else None) r.snapshots
        |> List.sort_uniq Stdlib.compare
      in
      let expected = List.init (List.length rounds) (fun i -> i + 1) in
      if rounds <> expected then err "P%d: non-contiguous agreed rounds" j
      else if r.completed.(j) && List.length rounds <> spec.k then
        err "P%d: completed but %d rounds agreed" j (List.length rounds)
      else begin
        let bad_self =
          List.exists
            (fun rd ->
              match Hashtbl.find_opt vector_of (j, rd) with
              | Some v -> v.(j) <> rd
              | None -> true)
            rounds
        in
        if bad_self then err "P%d: snapshot misses its own round write" j
        else check_procs (j + 1)
      end
    end
  in
  let pointwise_le a b =
    let ok = ref true in
    Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
    !ok
  in
  let rec check_comparable = function
    | [] -> Ok ()
    | (j1, r1, v1) :: rest -> (
      match
        List.find_opt
          (fun (_, _, v2) -> (not (pointwise_le v1 v2)) && not (pointwise_le v2 v1))
          rest
      with
      | Some (j2, r2, _) ->
        err "snapshots P%d#%d and P%d#%d incomparable" j1 r1 j2 r2
      | None -> check_comparable rest)
  in
  let check_monotone () =
    let rec go = function
      | [] -> Ok ()
      | (j, rd, v) :: rest ->
        (match Hashtbl.find_opt vector_of (j, rd + 1) with
        | Some v' when not (pointwise_le v v') -> err "P%d: round %d not monotone" j rd
        | _ -> go rest)
    in
    go r.snapshots
  in
  let check_values () =
    (* deterministic recomputation of write values *)
    let value j rd = value_of r.values j rd in
    let rec go = function
      | [] -> Ok ()
      | (j, rd, w) :: rest ->
        let expect =
          if rd = 1 then Some (spec.init j)
          else
            match Hashtbl.find_opt vector_of (j, rd - 1) with
            | None -> None (* write performed, snapshot not agreed: fine *)
            | Some vector ->
              let cells =
                Array.init m (fun j' ->
                    if vector.(j') = 0 then None else value j' vector.(j'))
              in
              Some (spec.next ~proc:j ~round:(rd - 1) cells)
        in
        (match expect with
        | Some e when e <> w -> err "P%d round %d: value mismatch" j rd
        | _ -> go rest)
    in
    go r.values
  in
  match !conflict with
  | Some (j, rd) -> err "safe agreement violated: two vectors for P%d round %d" j rd
  | None -> (
    match check_procs 0 with
    | Error _ as e -> e
    | Ok () -> (
      match check_comparable r.snapshots with
      | Error _ as e -> e
      | Ok () -> (
        match check_monotone () with
        | Error _ as e -> e
        | Ok () -> check_values ())))

let min_completed ~simulators:_ ~crashed spec = max 0 (spec.procs - crashed)
