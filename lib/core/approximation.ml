open Wfc_topology

let approximate_filtered ?(admissible = fun _ _ -> true) ~source ~target () =
  if not (Complex.equal (Chromatic.complex source.Subdiv.base) (Chromatic.complex target.Subdiv.base))
  then Error "source and target subdivide different bases"
  else begin
    let tcx = Chromatic.complex target.Subdiv.cx in
    let target_facets = Complex.facets tcx in
    let best_vertex v =
      let p = source.Subdiv.point v in
      let carrier_v = source.Subdiv.carrier v in
      (* Scan target facets containing p; collect (w, lambda_w) candidates
         whose carrier is a face of carrier(v). *)
      let best = ref None in
      List.iter
        (fun f ->
          let ws = Simplex.to_list f in
          let pts = List.map target.Subdiv.point ws in
          match Point.solve_barycentric pts p with
          | None -> ()
          | Some ls ->
            if List.for_all (fun l -> Rat.sign l >= 0) ls then
              List.iter2
                (fun w l ->
                  if
                    Rat.sign l > 0
                    && Simplex.subset (target.Subdiv.carrier w) carrier_v
                    && admissible v w
                  then
                    match !best with
                    | Some (_, l') when Rat.compare l l' <= 0 -> ()
                    | _ -> best := Some (w, l))
                ws ls)
        target_facets;
      Option.map fst !best
    in
    let scx = Chromatic.complex source.Subdiv.cx in
    let table = Hashtbl.create 256 in
    let missing = ref None in
    List.iter
      (fun v ->
        match best_vertex v with
        | Some w -> Hashtbl.replace table v w
        | None -> if !missing = None then missing := Some v)
      (Complex.vertices scx);
    match !missing with
    | Some v -> Error (Printf.sprintf "no admissible target vertex for source vertex %d" v)
    | None ->
      let phi = Simplicial_map.make ~src:scx ~dst:tcx (fun v -> Hashtbl.find table v) in
      (match Simplicial_map.check_simplicial phi with
      | Error f ->
        Error (Printf.sprintf "not simplicial on facet %s (mesh too coarse)" (Simplex.to_string f))
      | Ok () ->
        if not (Subdiv.is_carrier_monotone source target phi) then
          Error "not carrier-monotone"
        else Ok phi)
  end

let approximate ~source ~target = approximate_filtered ~source ~target ()

let chromatic_geometric ~source ~target =
  let ok =
    approximate_filtered
      ~admissible:(fun v w ->
        Chromatic.color source.Subdiv.cx v = Chromatic.color target.Subdiv.cx w)
      ~source ~target ()
  in
  match ok with
  | Error _ as e -> e
  | Ok phi ->
    if
      Simplicial_map.is_color_preserving
        ~src_color:(Chromatic.color source.Subdiv.cx)
        ~dst_color:(Chromatic.color target.Subdiv.cx)
        phi
    then Ok phi
    else Error "not color preserving"

type scheme = [ `Bsd | `Sds ]

let min_level ?(max_k = 6) ~scheme ~target () =
  let base = target.Subdiv.base in
  let rec go k =
    if k > max_k then None
    else begin
      let source =
        match scheme with
        | `Bsd -> Subdivision.subdiv (Subdivision.iterate base k)
        | `Sds -> Sds.subdiv (Sds.iterate base k)
      in
      match approximate ~source ~target with
      | Ok phi -> Some (k, phi)
      | Error _ -> go (k + 1)
    end
  in
  go 1

let chromatic ?budget ?(max_k = 4) ~target () =
  let task = Wfc_tasks.Simplex_agreement.chromatic target in
  let rec go k =
    if k > max_k then None
    else
      match Solvability.solve_at ~opts:(Solvability.options ?budget ()) task k with
      | Solvability.Solvable { map; _ } -> Some (k, map)
      | Solvability.Unsolvable_at _ | Solvability.Exhausted _ -> go (k + 1)
  in
  go 0
