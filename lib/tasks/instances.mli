(** Concrete task instances from the paper and its surroundings.

    Each constructor returns a {!Task.t} built by enumeration, ready for the
    solvability checker. Sizes are exponential in [procs] and value counts;
    all instances here are meant for [procs <= 3]-ish experiments, matching
    the decidability boundary the paper cites ([9]: solvability is
    undecidable from 3 processes on — small instances are the honest scope
    of any checker). *)

val consensus : procs:int -> values:string list -> Task.t
(** Every participant decides the same value, which must be some
    participant's input. With [procs >= 2] this is the FLP-style
    wait-free-unsolvable task. *)

val set_consensus : procs:int -> k:int -> Task.t
(** The [(procs, k)] set consensus of Chaudhuri [4] (§3.2): process [i]
    inputs its own id; participants decide at most [k] distinct ids, each
    the id of a participant. Trivially solvable for [k = procs] (decide your
    own id); wait-free unsolvable for every [k < procs] — the theorem of
    [5, 6, 7] that the paper's framework re-derives. *)

val adaptive_renaming : procs:int -> names:int -> Task.t
(** Participants pick distinct names in [1 .. min names (q(q+1)/2)] where
    [q] is the participation size — the size-adaptive output constraint that
    makes renaming non-trivial as a colored task. [names] caps the total
    namespace. *)

val approximate_agreement : procs:int -> grid:int -> Task.t
(** ε-agreement with [ε = 1/grid] on the unit interval: inputs are the
    endpoints [0] and [1]; outputs are grid points [j/grid]; participants'
    outputs must lie within one grid step of each other and inside the range
    of the participants' inputs. The minimal IIS round count needed grows
    with [grid] — the library's cleanest solvable-but-not-trivially-so
    family. *)

val binary_consensus : procs:int -> Task.t
(** [consensus] with values ["0"] and ["1"]. *)

val id_task : procs:int -> Task.t
(** The trivial task: everyone outputs its own input id. Solvable with
    [b = 0]; used as a sanity floor. *)

val k_test_and_set : procs:int -> k:int -> Task.t
(** [(procs, k)] test-and-set: every participant outputs [win] or [lose];
    between 1 and [k] participants win, and a solo participant must win.
    [(2,1)] is classical test-and-set, which has consensus number 2 and is
    therefore wait-free unsolvable from read/write registers — another
    impossibility the checker certifies level by level. *)

val fetch_and_increment_order : procs:int -> Task.t
(** A strong ordering task: participants output distinct ranks
    [0 .. q-1] where [q] is the participation size (the counting behaviour
    of fetch&increment). Solvable for one process, unsolvable wait-free for
    two or more (rank 0 is a consensus winner). *)

val loop_agreement :
  Wfc_topology.Complex.t ->
  corners:int * int * int ->
  paths:int list * int list * int list ->
  Task.t
(** Loop agreement over a complex [C] for three processes: process [i]
    alone outputs its corner [v_i]; two participants [{i, j}] output
    vertices spanning a simplex lying on the designated path [p_ij]; all
    three output any simplex of [C]. Wait-free solvability hinges on the
    loop [p01 · p12 · p20] being contractible in [C] — a disk admits a
    decision map, a bare circle does not. Paths must be vertex paths in
    [C]'s 1-skeleton connecting the right corners (checked). *)

val loop_agreement_on_disk : unit -> Task.t
(** Loop agreement over [SDS(s^2)] with the subdivided boundary sides as
    paths: the loop is contractible, so the task is solvable (the identity
    on [SDS(s^2)] is a decision map at [b = 1]). *)

val loop_agreement_on_circle : unit -> Task.t
(** The same corners and paths, but over the boundary circle only: the loop
    cannot be filled, and the task is wait-free unsolvable. *)

val known : string list
(** The instance names {!by_name} accepts — the task vocabulary shared by
    [wfc solve], [wfc query] and the daemon's wire protocol. *)

val by_name : name:string -> procs:int -> param:int -> Task.t
(** Instance lookup by name: the single registry behind the CLI and the
    serving layer, so a task named over the wire is built by exactly the
    code an inline solve would run. [param] is the task's free parameter
    ([k] for set-consensus/tas, [names] for renaming, [grid] for approx);
    instances without one ignore it.
    @raise Invalid_argument on an unknown name. *)
