(** Distributed tasks as input/output chromatic complexes (§3.2).

    A task over [n + 1] processes is a triple [(Iⁿ, Oⁿ, Δ)]: the input
    complex [Iⁿ] has a vertex per (process, possible input value) pair and a
    simplex per input tuple; the output complex [Oⁿ] likewise for outputs;
    and [Δ] maps every input simplex to the output simplices its
    participants are allowed to produce, color (= process) sets matching.

    Values are strings so that every concrete task fits one representation;
    {!of_relation} builds the complexes by enumerating tuples against a
    legality predicate. *)

type t = {
  name : string;
  procs : int;  (** n + 1 *)
  input : Wfc_topology.Chromatic.t;
  output : Wfc_topology.Chromatic.t;
  input_label : int -> string;  (** value carried by an input vertex *)
  output_label : int -> string;
  delta : Wfc_topology.Simplex.t -> Wfc_topology.Simplex.t list;
      (** maximal allowed output simplices for an input simplex *)
}

val of_relation :
  name:string ->
  procs:int ->
  inputs:(int -> string list) ->
  outputs:(int -> string list) ->
  legal:(participants:int list -> input:(int -> string) -> output:(int -> string) -> bool) ->
  t
(** Builds a task by enumeration. For every non-empty participant set [P],
    every assignment of inputs to [P], and every assignment of outputs to
    [P], the tuple is included iff [legal] accepts it. Input simplices are
    all input assignments (inputs are independent); [Δ] of an input simplex
    collects the output tuples legal for exactly its participants and
    inputs.
    @raise Invalid_argument if some (participants, input) pair admits no
    legal output — a task must specify at least one outcome for every input
    tuple. *)

val input_vertex : t -> proc:int -> value:string -> int option

val output_vertex : t -> proc:int -> value:string -> int option

val proc_of_input : t -> int -> int
(** Color (process id) of an input vertex. *)

val proc_of_output : t -> int -> int

val well_formed : t -> (unit, string) result
(** Checks the structural invariants: proper colorings, [Δ] non-empty on
    every input simplex, color sets preserved by [Δ], and [Δ] members are
    simplices of the output complex. *)

val allows : t -> Wfc_topology.Simplex.t -> Wfc_topology.Simplex.t -> bool
(** [allows t si so]: the output simplex [so] is a face of some simplex in
    [Δ si] — the per-simplex condition of Proposition 3.1. *)

val product : t -> t -> t
(** The product task: every participant receives a pair of inputs and must
    output a pair of outputs such that each projection is legal for the
    respective factor. Solving the product means solving both tasks in one
    wait-free protocol, so the product of solvable tasks is solvable (run
    both maps at the larger level), and a product with an unsolvable factor
    is unsolvable (project). Values are encoded ["a|b"]; both factors must
    have the same [procs]. Sizes multiply — keep the factors small. *)

val canonical_json : t -> Wfc_obs.Json.t
(** A canonical, order-insensitive JSON rendering of [(I, O, Δ)]. Vertices
    are represented by their content — [(color, label)] pairs — never by
    their arena ids, simplices as color-sorted vertex lists, complexes as
    render-sorted facet lists, and [Δ] as a render-sorted list of
    [(input simplex, sorted allowed outputs)] entries. Two tasks built from
    the same combinatorial data produce identical bytes regardless of
    enumeration order, vertex numbering, or simplex ordering. The task
    [name] is deliberately excluded: the digest addresses content. *)

val digest : t -> string
(** Hex digest of {!canonical_json}'s canonical bytes — the
    content-addressed key under which verdict stores ([wfc.store.v1]) file
    this task. Stable across processes and task re-construction. *)

val pp_stats : Format.formatter -> t -> unit

type automorphism = {
  a_input : (int, int) Hashtbl.t;  (** input vertex map [σ_I] *)
  a_output : (int, int) Hashtbl.t;  (** output vertex map [σ_O] *)
}
(** A task symmetry: a pair of chromatic automorphisms of [I] and [O] over
    one shared process (color) permutation [π], equivariant under [Δ] —
    [Δ(σ_I s) = σ_O(Δ s)] as simplex sets for every input simplex [s]. Such
    a pair maps decision maps to decision maps, which is what licenses the
    solvability engine's orbit pruning (DESIGN §14). *)

val automorphisms : ?limit:int -> t -> automorphism list
(** The non-identity symmetries of [(I, O, Δ)]: for every process
    permutation, every pair of {!Wfc_topology.Automorphism.automorphisms}
    of the input and output complexes realizing it, filtered by exact
    [Δ]-equivariance over the whole input closure. Deterministic order; at
    most [limit] (default 32) are returned — a subset of the group is
    always sound for pruning. The identity pair is omitted. *)
