open Wfc_topology

type restriction = All | Facet_pred of (Sds.t -> Simplex.t -> bool)

type t = { name : string; description : string; restriction : restriction }

(* Walk the iterated subdivision from the top: at each level the facet is
   a subdivided copy of a previous-level facet, recovered by projecting
   every vertex [(v, S)] to its process vertex [v]; the ordered partition
   that generated the facet is the level's round schedule. *)
let per_level cond sds facet =
  let rec go sds facet =
    match Sds.prev sds with
    | None -> true
    | Some lower ->
      cond (Sds.facet_partition sds facet)
      && go lower (Simplex.of_list (List.map (Sds.own sds) (Simplex.to_list facet)))
  in
  go sds facet

let wait_free =
  {
    name = "wait-free";
    description = "all IIS runs (the paper's wait-free model)";
    restriction = All;
  }

let block_sizes partition = List.map List.length partition

let participants partition = List.fold_left (fun n b -> n + List.length b) 0 partition

let t_resilient ~t =
  if t < 0 then invalid_arg "Model.t_resilient: t must be >= 0";
  {
    name = Printf.sprintf "t-resilient:%d" t;
    description =
      Printf.sprintf
        "runs whose every view misses at most %d process(es): each round's first \
         concurrency class keeps >= participants - %d members"
        t t;
    restriction =
      Facet_pred
        (per_level (fun partition ->
             match block_sizes partition with
             | [] -> true
             | first :: _ -> first >= participants partition - t));
  }

let k_set_affine ~k =
  if k < 1 then invalid_arg "Model.k_set_affine: k must be >= 1";
  {
    name = Printf.sprintf "k-set:%d" k;
    description =
      Printf.sprintf
        "runs in which every round grants the full snapshot to >= %d process(es) (last \
         concurrency class has size >= %d, clamped to the participant count)"
        k k;
    restriction =
      Facet_pred
        (per_level (fun partition ->
             match List.rev (block_sizes partition) with
             | [] -> true
             | last :: _ -> last >= min k (participants partition)));
  }

let admits m sds facet =
  match m.restriction with All -> true | Facet_pred pred -> pred sds facet

let equal a b = String.equal a.name b.name

let to_string m = m.name

let of_string s =
  let s = String.trim s in
  let parametric ~prefix ~of_int =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some n -> (
        match of_int n with
        | m -> Some (Ok m)
        | exception Invalid_argument e -> Some (Error e))
      | None -> Some (Error (Printf.sprintf "model %S: %S takes an integer parameter" s prefix))
    else None
  in
  if s = "wait-free" then Ok wait_free
  else
    match parametric ~prefix:"t-resilient:" ~of_int:(fun t -> t_resilient ~t) with
    | Some r -> r
    | None -> (
      match parametric ~prefix:"k-set:" ~of_int:(fun k -> k_set_affine ~k) with
      | Some r -> r
      | None ->
        Error
          (Printf.sprintf
             "unknown model %S (expected wait-free, t-resilient:T or k-set:K)" s))

let slug_of_name name = String.map (function ':' -> '-' | c -> c) name

let slug m = slug_of_name m.name

let builtins =
  [
    ("wait-free", wait_free.description);
    ("t-resilient:T", "admit runs missing at most T processes per view (T >= 0)");
    ( "k-set:K",
      "admit runs granting the full round snapshot to at least K processes (K >= 1; K=1 \
       is wait-free)" );
  ]
