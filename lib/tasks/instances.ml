let consensus ~procs ~values =
  Task.of_relation
    ~name:(Printf.sprintf "consensus-%d" procs)
    ~procs
    ~inputs:(fun _ -> values)
    ~outputs:(fun _ -> values)
    ~legal:(fun ~participants ~input ~output ->
      match participants with
      | [] -> false
      | p0 :: _ ->
        let v = output p0 in
        List.for_all (fun p -> output p = v) participants
        && List.exists (fun p -> input p = v) participants)

let binary_consensus ~procs = consensus ~procs ~values:[ "0"; "1" ]

let set_consensus ~procs ~k =
  Task.of_relation
    ~name:(Printf.sprintf "set-consensus-%d-%d" procs k)
    ~procs
    ~inputs:(fun i -> [ string_of_int i ])
    ~outputs:(fun _ -> List.init procs string_of_int)
    ~legal:(fun ~participants ~input:_ ~output ->
      let decided = List.map output participants in
      let distinct = List.sort_uniq Stdlib.compare decided in
      List.length distinct <= k
      && List.for_all
           (fun d -> List.exists (fun p -> string_of_int p = d) participants)
           distinct)

let adaptive_renaming ~procs ~names =
  Task.of_relation
    ~name:(Printf.sprintf "adaptive-renaming-%d-%d" procs names)
    ~procs
    ~inputs:(fun i -> [ string_of_int i ])
    ~outputs:(fun _ -> List.init names (fun j -> string_of_int (j + 1)))
    ~legal:(fun ~participants ~input:_ ~output ->
      let q = List.length participants in
      let bound = min names (q * (q + 1) / 2) in
      let picked = List.map (fun p -> int_of_string (output p)) participants in
      List.length (List.sort_uniq Stdlib.compare picked) = q
      && List.for_all (fun nm -> 1 <= nm && nm <= bound) picked)

let approximate_agreement ~procs ~grid =
  (* grid point j/grid encoded by its numerator j *)
  let point_of s = int_of_string s in
  Task.of_relation
    ~name:(Printf.sprintf "approx-agreement-%d-1/%d" procs grid)
    ~procs
    ~inputs:(fun _ -> [ "0"; string_of_int grid ])
    ~outputs:(fun _ -> List.init (grid + 1) string_of_int)
    ~legal:(fun ~participants ~input ~output ->
      let outs = List.map (fun p -> point_of (output p)) participants in
      let ins = List.map (fun p -> point_of (input p)) participants in
      let omin = List.fold_left min max_int outs and omax = List.fold_left max min_int outs in
      let imin = List.fold_left min max_int ins and imax = List.fold_left max min_int ins in
      omax - omin <= 1 && omin >= imin && omax <= imax)

let id_task ~procs =
  Task.of_relation
    ~name:(Printf.sprintf "identity-%d" procs)
    ~procs
    ~inputs:(fun i -> [ string_of_int i ])
    ~outputs:(fun i -> [ string_of_int i ])
    ~legal:(fun ~participants:_ ~input:_ ~output:_ -> true)

let k_test_and_set ~procs ~k =
  Task.of_relation
    ~name:(Printf.sprintf "%d-test-and-set-%d" k procs)
    ~procs
    ~inputs:(fun i -> [ string_of_int i ])
    ~outputs:(fun _ -> [ "win"; "lose" ])
    ~legal:(fun ~participants ~input:_ ~output ->
      let winners = List.length (List.filter (fun p -> output p = "win") participants) in
      1 <= winners && winners <= k)

let fetch_and_increment_order ~procs =
  Task.of_relation
    ~name:(Printf.sprintf "fai-order-%d" procs)
    ~procs
    ~inputs:(fun i -> [ string_of_int i ])
    ~outputs:(fun _ -> List.init procs string_of_int)
    ~legal:(fun ~participants ~input:_ ~output ->
      let q = List.length participants in
      let ranks = List.sort_uniq Stdlib.compare (List.map output participants) in
      List.length ranks = q
      && List.for_all (fun r -> int_of_string r < q) ranks)

let loop_agreement cx ~corners:(v0, v1, v2) ~paths:(p01, p12, p02) =
  let open Wfc_topology in
  let check_path name p a b =
    let ok =
      match (p, List.rev p) with
      | x :: _, y :: _ -> x = a && y = b
      | _ -> false
    in
    if not ok then invalid_arg (Printf.sprintf "loop_agreement: %s does not connect its corners" name);
    let rec edges = function
      | x :: (y :: _ as rest) -> Simplex.of_list [ x; y ] :: edges rest
      | [ _ ] | [] -> []
    in
    if not (List.for_all (fun e -> Complex.mem e cx) (edges p)) then
      invalid_arg (Printf.sprintf "loop_agreement: %s is not a path in the complex" name)
  in
  check_path "p01" p01 v0 v1;
  check_path "p12" p12 v1 v2;
  check_path "p02" p02 v0 v2;
  let corner = [| v0; v1; v2 |] in
  let path_of i j =
    match (i, j) with
    | 0, 1 | 1, 0 -> p01
    | 1, 2 | 2, 1 -> p12
    | 0, 2 | 2, 0 -> p02
    | _ -> invalid_arg "loop_agreement: three processes only"
  in
  Task.of_relation
    ~name:(Printf.sprintf "loop-agreement(%s)" (Complex.name cx))
    ~procs:3
    ~inputs:(fun i -> [ string_of_int i ])
    ~outputs:(fun _ -> List.map string_of_int (Complex.vertices cx))
    ~legal:(fun ~participants ~input:_ ~output ->
      let ws =
        List.sort_uniq Stdlib.compare (List.map (fun p -> int_of_string (output p)) participants)
      in
      let w = Simplex.of_list ws in
      Complex.mem w cx
      &&
      match participants with
      | [ i ] -> ws = [ corner.(i) ]
      | [ i; j ] -> List.for_all (fun x -> List.mem x (path_of i j)) ws
      | _ -> true)

(* Canonical instances over SDS(s^2) and its boundary. *)
let disk_setup () =
  let open Wfc_topology in
  let s = Sds.standard ~dim:2 ~levels:1 in
  let cx = Chromatic.complex (Sds.complex s) in
  let corner i =
    List.find
      (fun v -> Simplex.equal (Sds.carrier s v) (Simplex.of_list [ i ]))
      (Complex.vertices cx)
  in
  let v0 = corner 0 and v1 = corner 1 and v2 = corner 2 in
  let side i j a b =
    let face = Option.get (Subdiv.face (Sds.subdiv s) (Simplex.of_list [ i; j ])) in
    Option.get (Fillin.path face ~src:a ~dst:b)
  in
  (cx, (v0, v1, v2), (side 0 1 v0 v1, side 1 2 v1 v2, side 0 2 v0 v2))

let loop_agreement_on_disk () =
  let cx, corners, paths = disk_setup () in
  loop_agreement cx ~corners ~paths

let loop_agreement_on_circle () =
  let cx, corners, paths = disk_setup () in
  let circle = Option.get (Wfc_topology.Complex.boundary cx) in
  loop_agreement
    (Wfc_topology.Complex.with_name "sds-boundary" circle)
    ~corners ~paths

let known =
  [
    "consensus"; "set-consensus"; "renaming"; "approx"; "identity"; "tas"; "fai";
    "loop-disk"; "loop-circle";
  ]

let by_name ~name ~procs ~param =
  match name with
  | "consensus" -> binary_consensus ~procs
  | "set-consensus" -> set_consensus ~procs ~k:param
  | "renaming" -> adaptive_renaming ~procs ~names:param
  | "approx" -> approximate_agreement ~procs ~grid:param
  | "identity" -> id_task ~procs
  | "tas" -> k_test_and_set ~procs ~k:param
  | "fai" -> fetch_and_increment_order ~procs
  | "loop-disk" -> loop_agreement_on_disk ()
  | "loop-circle" -> loop_agreement_on_circle ()
  | t -> invalid_arg ("unknown task: " ^ t)
