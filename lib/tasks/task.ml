open Wfc_topology

type t = {
  name : string;
  procs : int;
  input : Chromatic.t;
  output : Chromatic.t;
  input_label : int -> string;
  output_label : int -> string;
  delta : Simplex.t -> Simplex.t list;
}

(* Enumerate all assignments of one value (from a per-process list) to each
   process of [participants]. *)
let rec assignments values = function
  | [] -> [ [] ]
  | p :: rest ->
    let tails = assignments values rest in
    List.concat_map (fun v -> List.map (fun tail -> (p, v) :: tail) tails) (values p)

let of_relation ~name ~procs ~inputs ~outputs ~legal =
  let all = List.init procs (fun i -> i) in
  let subsets = Wfc_model.Schedule.nonempty_subsets all in
  (* vertex registries *)
  let make_registry () =
    let ids = Hashtbl.create 64 and back = Hashtbl.create 64 and next = ref 0 in
    let intern key =
      match Hashtbl.find_opt ids key with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        Hashtbl.replace ids key id;
        Hashtbl.replace back id key;
        id
    in
    (intern, back)
  in
  let intern_in, back_in = make_registry () in
  let intern_out, back_out = make_registry () in
  let input_facets = ref [] in
  let output_simplices = ref [] in
  let delta_tbl : Simplex.t list Simplex.Tbl.t = Simplex.Tbl.create 256 in
  List.iter
    (fun participants ->
      let input_tuples = assignments inputs participants in
      let output_tuples = assignments outputs participants in
      List.iter
        (fun input_tuple ->
          let si = Simplex.of_list (List.map intern_in input_tuple) in
          if List.length participants = procs then input_facets := si :: !input_facets;
          let input_fn p = List.assoc p input_tuple in
          let legal_outputs =
            List.filter
              (fun output_tuple ->
                legal ~participants ~input:input_fn ~output:(fun p -> List.assoc p output_tuple))
              output_tuples
          in
          if legal_outputs = [] then
            invalid_arg
              (Printf.sprintf
                 "Task.of_relation(%s): no legal output for participants {%s} with inputs (%s)"
                 name
                 (String.concat "," (List.map string_of_int participants))
                 (String.concat ","
                    (List.map (fun (p, v) -> Printf.sprintf "%d:%s" p v) input_tuple)));
          let so_list =
            List.map (fun tuple -> Simplex.of_list (List.map intern_out tuple)) legal_outputs
          in
          output_simplices := so_list @ !output_simplices;
          Simplex.Tbl.replace delta_tbl si (List.sort_uniq Simplex.compare so_list))
        input_tuples)
    subsets;
  let input_cx = Complex.of_simplices ~name:(name ^ "-in") !input_facets in
  let output_cx = Complex.of_simplices ~name:(name ^ "-out") !output_simplices in
  let color_of back v = fst (Hashtbl.find back v) in
  let label_of back v = snd (Hashtbl.find back v) in
  {
    name;
    procs;
    input = Chromatic.make input_cx ~color:(color_of back_in);
    output = Chromatic.make output_cx ~color:(color_of back_out);
    input_label = label_of back_in;
    output_label = label_of back_out;
    delta =
      (fun si ->
        match Simplex.Tbl.find_opt delta_tbl si with
        | Some l -> l
        | None -> invalid_arg "Task.delta: not an input simplex");
  }

let find_vertex chroma label_of ~proc ~value =
  List.find_opt
    (fun v -> Chromatic.color chroma v = proc && label_of v = value)
    (Complex.vertices (Chromatic.complex chroma))

let input_vertex t ~proc ~value = find_vertex t.input t.input_label ~proc ~value

let output_vertex t ~proc ~value = find_vertex t.output t.output_label ~proc ~value

let proc_of_input t v = Chromatic.color t.input v

let proc_of_output t v = Chromatic.color t.output v

let allows t si so =
  List.exists (fun m -> Simplex.subset so m) (t.delta si)

let well_formed t =
  let icx = Chromatic.complex t.input and ocx = Chromatic.complex t.output in
  let errors = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun si ->
      match t.delta si with
      | exception Invalid_argument _ -> add "delta undefined on %s" (Simplex.to_string si)
      | [] -> add "delta empty on %s" (Simplex.to_string si)
      | sos ->
        List.iter
          (fun so ->
            if not (Complex.mem so ocx) then
              add "delta(%s) contains non-simplex %s" (Simplex.to_string si)
                (Simplex.to_string so);
            let ci = Chromatic.simplex_colors t.input si in
            let co = Chromatic.simplex_colors t.output so in
            if not (Simplex.equal ci co) then
              add "delta(%s): color mismatch with %s" (Simplex.to_string si)
                (Simplex.to_string so))
          sos)
    (Complex.simplices icx);
  match !errors with [] -> Ok () | errs -> Error (String.concat "; " (List.rev errs))

(* The canonical representation names every vertex by its content — the
   (color, label) pair — so the digest is independent of arena vertex ids
   and of every enumeration order that fed [of_relation]. Sorting happens at
   three layers: vertices inside a simplex by color (proper coloring makes
   colors distinct), simplices inside a complex / Δ-image by their rendered
   canonical bytes, and Δ entries by their rendered input simplex. *)
let canonical_json t =
  let open Wfc_obs.Json in
  let simplex_repr chroma label s =
    let vs =
      List.map (fun v -> (Chromatic.color chroma v, label v)) (Simplex.to_list s)
    in
    Arr (List.map (fun (c, l) -> Arr [ Int c; String l ]) (List.sort compare vs))
  in
  let sort_by_render = List.sort (fun a b -> compare (to_string a) (to_string b)) in
  let complex_repr chroma label =
    Complex.facets (Chromatic.complex chroma)
    |> List.map (simplex_repr chroma label)
    |> sort_by_render
  in
  let delta_repr =
    Complex.simplices (Chromatic.complex t.input)
    |> List.map (fun si ->
           Arr
             [
               simplex_repr t.input t.input_label si;
               Arr
                 (sort_by_render
                    (List.map (simplex_repr t.output t.output_label) (t.delta si)));
             ])
    |> sort_by_render
  in
  Obj
    [
      ("delta", Arr delta_repr);
      ("input", Arr (complex_repr t.input t.input_label));
      ("output", Arr (complex_repr t.output t.output_label));
      ("procs", Int t.procs);
    ]

let digest t = Digest.to_hex (Digest.string (Wfc_obs.Json.to_string (canonical_json t)))

let pp_stats ppf t =
  Format.fprintf ppf "task %s: procs=%d@ input: %a@ output: %a" t.name t.procs
    Chromatic.pp_stats t.input Chromatic.pp_stats t.output

let labels_of_color chroma label_of color =
  Complex.vertices (Chromatic.complex chroma)
  |> List.filter (fun v -> Chromatic.color chroma v = color)
  |> List.map label_of

let tuple_allowed t ~participants ~input ~output =
  (* the full output tuple is allowed for the full input tuple *)
  let si =
    Simplex.of_list
      (List.map
         (fun p ->
           match input_vertex t ~proc:p ~value:(input p) with
           | Some v -> v
           | None -> invalid_arg "Task.tuple_allowed: unknown input value")
         participants)
  in
  match
    List.map
      (fun p ->
        match output_vertex t ~proc:p ~value:(output p) with
        | Some v -> Some v
        | None -> None)
      participants
  with
  | outs when List.for_all Option.is_some outs ->
    allows t si (Simplex.of_list (List.map Option.get outs))
  | _ -> false

let split_pair s =
  match String.index_opt s '|' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> invalid_arg "Task.product: malformed pair label"

let product t1 t2 =
  if t1.procs <> t2.procs then invalid_arg "Task.product: different process counts";
  let pairs l1 l2 = List.concat_map (fun a -> List.map (fun b -> a ^ "|" ^ b) l2) l1 in
  of_relation
    ~name:(Printf.sprintf "%s*%s" t1.name t2.name)
    ~procs:t1.procs
    ~inputs:(fun i ->
      pairs (labels_of_color t1.input t1.input_label i) (labels_of_color t2.input t2.input_label i))
    ~outputs:(fun i ->
      pairs (labels_of_color t1.output t1.output_label i)
        (labels_of_color t2.output t2.output_label i))
    ~legal:(fun ~participants ~input ~output ->
      tuple_allowed t1 ~participants
        ~input:(fun p -> fst (split_pair (input p)))
        ~output:(fun p -> fst (split_pair (output p)))
      && tuple_allowed t2 ~participants
           ~input:(fun p -> snd (split_pair (input p)))
           ~output:(fun p -> snd (split_pair (output p))))

(* ---- task symmetries ---- *)

type automorphism = {
  a_input : (int, int) Hashtbl.t;
  a_output : (int, int) Hashtbl.t;
}

let map_simplex tbl s =
  Simplex.of_list (List.map (fun v -> Hashtbl.find tbl v) (Simplex.to_list s))

let is_identity tbl = Hashtbl.fold (fun k v acc -> acc && k = v) tbl true

let automorphisms ?(limit = 32) t =
  let colors = Chromatic.colors t.input in
  let input_simplices = Complex.simplices (Chromatic.complex t.input) in
  let sorted = List.sort Simplex.compare in
  let equivariant a_input a_output =
    List.for_all
      (fun si ->
        match t.delta (map_simplex a_input si) with
        | lhs ->
          List.equal Simplex.equal (sorted lhs)
            (sorted (List.map (map_simplex a_output) (t.delta si)))
        | exception Invalid_argument _ -> false)
      input_simplices
  in
  let found = ref [] and n = ref 0 in
  List.iter
    (fun perm ->
      if !n < limit then
        let ins = Automorphism.automorphisms t.input ~perm in
        let outs = Automorphism.automorphisms t.output ~perm in
        List.iter
          (fun a_input ->
            List.iter
              (fun a_output ->
                if
                  !n < limit
                  && not (is_identity a_input && is_identity a_output)
                  && equivariant a_input a_output
                then begin
                  found := { a_input; a_output } :: !found;
                  incr n
                end)
              outs)
          ins)
    (Automorphism.color_permutations colors);
  List.rev !found
