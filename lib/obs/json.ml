type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* emitter                                                              *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string j =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6f" f)
      else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          indent (depth + 1);
          emit (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      let fields =
        List.stable_sort (fun (a, _) (b, _) -> String.compare a b) fields
      in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          indent (depth + 1);
          escape_string buf k;
          Buffer.add_string buf ": ";
          emit (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      indent depth;
      Buffer.add_char buf '}'
  in
  emit 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* One value per line, no whitespace: the JSONL shape of the event log.
   Shares canonicalization with [to_string] (sorted keys, %.6f floats) so
   the two renderings of one value always agree field for field. *)
let to_line j =
  let buf = Buffer.create 128 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6f" f)
      else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      let fields =
        List.stable_sort (fun (a, _) (b, _) -> String.compare a b) fields
      in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit v)
        fields;
      Buffer.add_char buf '}'
  in
  emit j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parser                                                               *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  (* UTF-8-encode a \uXXXX escape (surrogate pairs not recombined; each
     half encodes independently, which is enough for our own emitter). *)
  let add_codepoint buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let cp =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          add_codepoint buf cp
        | _ -> fail "unknown escape");
        go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail ("bad number " ^ lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> fail ("bad number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* access and comparison                                                *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> x = y
  | Arr xs, Arr ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    let sort l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
    let xs = sort xs and ys = sort ys in
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) xs ys
  | _ -> false
