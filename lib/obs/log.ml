let schema_version = "wfc.log.v1"

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" -> Ok Warn
  | "error" -> Ok Error
  | s -> Error (Printf.sprintf "unknown log level %S (debug|info|warn|error)" s)

type t = {
  threshold : int;
  m : Mutex.t;
  mutable oc : out_channel option;
}

let open_log ?(level = Info) path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { threshold = severity level; m = Mutex.create (); oc = Some oc }

let enabled t lvl = severity lvl >= t.threshold

(* The envelope fields always win over caller payload: a log line whose
   "level" disagrees with its gating would defeat the validator. *)
let envelope_key k = k = "schema" || k = "ts" || k = "level" || k = "event"

let event t lvl name fields =
  if enabled t lvl then begin
    let line =
      Json.to_line
        (Json.Obj
           (("schema", Json.String schema_version)
           :: ("ts", Json.Float (Metrics.now_s ()))
           :: ("level", Json.String (level_name lvl))
           :: ("event", Json.String name)
           :: List.filter (fun (k, _) -> not (envelope_key k)) fields))
    in
    Mutex.lock t.m;
    (match t.oc with
    | None -> ()
    | Some oc ->
      output_string oc line;
      output_char oc '\n';
      flush oc);
    Mutex.unlock t.m
  end

let close t =
  Mutex.lock t.m;
  (match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    close_out oc);
  Mutex.unlock t.m

(* ------------------------------------------------------------------ *)
(* validation                                                           *)
(* ------------------------------------------------------------------ *)

let validate_line j =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema_version -> Ok ()
    | Some (Json.String s) ->
      Error (Printf.sprintf "schema is %S, expected %S" s schema_version)
    | _ -> Error "missing \"schema\" tag"
  in
  let* () =
    match Json.member "ts" j with
    | Some (Json.Float _ | Json.Int _) -> Ok ()
    | _ -> Error "missing numeric \"ts\""
  in
  let* () =
    match Json.member "level" j with
    | Some (Json.String s) -> Result.map (fun _ -> ()) (level_of_string s)
    | _ -> Error "missing string \"level\""
  in
  match Json.member "event" j with
  | Some (Json.String _) -> Ok ()
  | _ -> Error "missing string \"event\""

let validate contents : (int, string) result =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno count : string list -> (int, string) result = function
    | [] ->
      if count = 0 then Error "empty log: no events" else Ok count
    | line :: rest when String.trim line = "" -> go (lineno + 1) count rest
    | line :: rest -> (
      match Json.parse line with
      | Error e -> Error (Printf.sprintf "line %d: not valid JSON (%s)" lineno e)
      | Ok j -> (
        match validate_line j with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok () -> go (lineno + 1) (count + 1) rest))
  in
  go 1 0 lines
