(** Chrome/Perfetto trace-event export.

    Emits the JSON Trace Event Format that [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto} open directly: an object with a
    ["traceEvents"] array of phase-tagged events. Supported phases are the
    ones the repo needs — complete events (["X"]: a named interval on a
    (pid, tid) track), instants (["i"]), and the metadata events (["M"])
    that name processes and threads in the viewer.

    Timestamps ([ts]) and durations ([dur]) are integers in microseconds,
    per the format. Producers with a logical clock (the runtime's firing
    counter) scale ticks up so the viewer has room to render. *)

type event

val complete :
  ?cat:string ->
  ?args:(string * Json.t) list ->
  name:string -> pid:int -> tid:int -> ts:int -> dur:int -> unit -> event
(** A named interval [\[ts, ts + dur\]] (microseconds) on track (pid, tid). *)

val instant :
  ?cat:string ->
  ?args:(string * Json.t) list ->
  name:string -> pid:int -> tid:int -> ts:int -> unit -> event
(** A thread-scoped instant marker. *)

val process_name : pid:int -> string -> event
(** Metadata: names the pid's row in the viewer. *)

val thread_name : pid:int -> tid:int -> string -> event
(** Metadata: names the (pid, tid) track. *)

val of_spans : ?pid:int -> Metrics.span_node list -> event list
(** Renders a {!Metrics} span tree as nested complete events. Spans carry
    only (calls, total seconds), so the layout is synthetic: siblings are
    placed back to back and children start at their parent's start —
    durations are faithful, absolute offsets are not. *)

val to_json : event list -> Json.t
(** The final artifact: [{"displayTimeUnit": "ms", "traceEvents": [...]}].
    Write it with {!Report.write_file} and open it in Perfetto. *)

val validate : Json.t -> (unit, string) result
(** Structural check used by tests and CI: a ["traceEvents"] array whose
    events carry a string ["ph"]/["name"] and int ["pid"]/["tid"], with
    numeric ["ts"] on non-metadata events and ["dur"] on complete events. *)
