(** Leveled structured event log: one [wfc.log.v1] JSON object per line.

    The telemetry discipline of the repository's other artifacts applied to
    logging: every line is a complete, schema-tagged canonical JSON object
    — machine-validated by [wfc check-json] exactly like [wfc.obs.v1]
    reports and [wfc.trace.v1] traces — never a printf string. Line shape:
    {v
      {"schema":"wfc.log.v1","ts":1723.456789,"level":"info",
       "event":"query","req_id":"...", ...event-specific fields...}
    v}

    [schema], [ts] (wall-clock seconds), [level] and [event] are always
    present; everything else is the emitting site's payload. Lines are
    rendered with {!Json.to_line} (sorted keys, canonical floats), written
    under one mutex and flushed per event, so concurrent daemon threads
    never interleave bytes and a SIGKILLed process loses at most the line
    being written.

    Severity gating is by {!level} at the writer: events below the
    configured threshold cost one atomic load and no allocation. *)

val schema_version : string
(** ["wfc.log.v1"]. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"] / ["info"] / ["warn"] / ["error"]. *)

val level_of_string : string -> (level, string) result

type t

val open_log : ?level:level -> string -> t
(** Opens (appending) a JSONL event log at the path. Default threshold:
    [Info]. @raise Sys_error if the file cannot be opened. *)

val enabled : t -> level -> bool
(** Would an event at this level be written? Lets callers skip building
    expensive payloads. *)

val event : t -> level -> string -> (string * Json.t) list -> unit
(** [event t lvl name fields] writes one line carrying the standard
    envelope plus [fields], if [lvl] passes the threshold. A field named
    [schema], [ts], [level] or [event] in [fields] is ignored — the
    envelope wins. *)

val close : t -> unit
(** Flushes and closes. Further {!event} calls are silently dropped. *)

val validate_line : Json.t -> (unit, string) result
(** One parsed log line: schema tag, numeric [ts], known [level], string
    [event]. *)

val validate : string -> (int, string) result
(** Validates raw file contents as a [wfc.log.v1] JSONL stream: every
    non-empty line must parse as JSON and pass {!validate_line}. Returns
    the number of validated events; errors carry the 1-based line number.
    An empty file is an error (a log with no [serve.start] was never a
    log). *)
