type t = {
  counters : (string * int) list;
  histograms : (string * Metrics.histo_stats) list;
  spans : Metrics.span_node list;
}

let take () =
  {
    counters = Metrics.counters_now ();
    histograms = Metrics.histograms_now ();
    spans = Metrics.spans_now ();
  }

let counter_value t name = List.assoc_opt name t.counters

let diff before after =
  let counters =
    List.map
      (fun (name, v) ->
        let v0 = Option.value ~default:0 (List.assoc_opt name before.counters) in
        (name, max 0 (v - v0)))
      after.counters
  in
  let histograms =
    List.filter_map
      (fun ((name, (h : Metrics.histo_stats)) : string * Metrics.histo_stats) ->
        match List.assoc_opt name before.histograms with
        | None -> Some (name, h)
        | Some (h0 : Metrics.histo_stats) ->
          let count = max 0 (h.count - h0.count) in
          if count = 0 then None
          else
            (* min/max of the delta window are not recoverable from two
               aggregates; report the after-side bounds. *)
            Some (name, { h with Metrics.count; sum = max 0. (h.sum -. h0.sum) }))
      after.histograms
  in
  { counters; histograms; spans = after.spans }

(* ------------------------------------------------------------------ *)
(* rendering                                                            *)
(* ------------------------------------------------------------------ *)

(* Which counters exist at all depends on which libraries the binary links
   (registration happens at module init), so zero-valued counters are
   dropped from both renderings: reports stay deterministic across
   binaries and [--stats] stays readable. *)
let live_counters t = List.filter (fun (_, v) -> v <> 0) t.counters

let to_json t =
  let counters = List.map (fun (name, v) -> (name, Json.Int v)) (live_counters t) in
  let histograms =
    List.map
      (fun (name, (h : Metrics.histo_stats)) ->
        ( name,
          Json.Obj
            [
              ("count", Json.Int h.count);
              ("sum", Json.Float h.sum);
              ("mean", Json.Float (h.sum /. float_of_int h.count));
              ("min", Json.Float h.min);
              ("max", Json.Float h.max);
            ] ))
      t.histograms
  in
  let rec span_json (s : Metrics.span_node) =
    Json.Obj
      [
        ("name", Json.String s.Metrics.span_name);
        ("calls", Json.Int s.Metrics.calls);
        ("seconds", Json.Float s.Metrics.total_s);
        ("children", Json.Arr (List.map span_json s.Metrics.children));
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("histograms", Json.Obj histograms);
      ("spans", Json.Arr (List.map span_json t.spans));
    ]

let to_text t =
  let counters = live_counters t in
  let buf = Buffer.create 256 in
  let name_width =
    List.fold_left
      (fun w (name, _) -> max w (String.length name))
      0
      (counters @ List.map (fun (n, _) -> (n, 0)) t.histograms)
  in
  if counters <> [] then begin
    Buffer.add_string buf "counters\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-*s %12d\n" name_width name v))
      counters
  end;
  if t.histograms <> [] then begin
    Buffer.add_string buf "timers\n";
    List.iter
      (fun (name, (h : Metrics.histo_stats)) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s count=%-6d mean=%.6f min=%.6f max=%.6f\n" name_width name
             h.count
             (h.sum /. float_of_int h.count)
             h.min h.max))
      t.histograms
  end;
  if t.spans <> [] then begin
    Buffer.add_string buf "spans\n";
    let rec walk depth (s : Metrics.span_node) =
      Buffer.add_string buf
        (Printf.sprintf "  %s%-*s %4d call%s %10.6fs\n"
           (String.make (2 * depth) ' ')
           (max 1 (name_width - (2 * depth)))
           s.Metrics.span_name s.Metrics.calls
           (if s.Metrics.calls = 1 then " " else "s")
           s.Metrics.total_s);
      List.iter (walk (depth + 1)) s.Metrics.children
    in
    List.iter (walk 0) t.spans
  end;
  if Buffer.length buf = 0 then "(no metrics recorded)\n" else Buffer.contents buf
