(** Minimal canonical JSON: one tree type, one emitter, one parser.

    Every machine-readable artifact of the repository — [wfc ... --json],
    [bench/main.exe --json], CI smoke checks — flows through this module, so
    there is exactly one serialization to keep schema-compatible. The
    emitter is {e canonical}: object keys are emitted in sorted order and
    floats in a fixed ["%.6f"] format, so equal values produce equal bytes
    and committed artifacts diff cleanly. The parser accepts standard JSON
    (it is not limited to the canonical form) and exists so tests and the CI
    smoke step can round-trip and validate emitted files without external
    tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Canonical, human-readable rendering: two-space indentation, object keys
    sorted, floats as ["%.6f"] (non-finite floats degrade to [null]). *)

val to_line : t -> string
(** Canonical single-line rendering: the same sorted keys and ["%.6f"]
    floats as {!to_string} but with no whitespace and no trailing newline —
    one value per line, the shape JSONL event logs require. *)

val parse : string -> (t, string) result
(** Standard JSON parser (objects, arrays, strings with escapes, numbers —
    an integer literal parses to [Int], anything with [./e/E] to [Float] —
    booleans, null). Errors carry a character offset. *)

val member : string -> t -> t option
(** [member key j] is the value bound to [key] if [j] is an object. *)

val equal : t -> t -> bool
(** Structural equality, insensitive to object key order. *)
