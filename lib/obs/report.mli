(** The one JSON report schema shared by [wfc ... --json] and
    [bench/main.exe --json].

    Shape ([schema = "wfc.obs.v1"]):
    {v
    {
      "schema": "wfc.obs.v1",
      "scenarios": [
        {"name": "...", "seconds": 0.123456, "nodes": 1140,
         "verdict": "solvable", ...extra fields...},
        ...
      ],
      "counters": { "solvability.nodes": 1140, ... },   (optional)
      "histograms": {...}, "spans": [...]               (optional)
    }
    v}

    [nodes] and [verdict] are optional per scenario; the metrics sections
    appear only when a {!Snapshot.t} is supplied. {!validate} is the
    check used by [wfc check-json] in CI, so producers and the validator
    can never drift apart. *)

val schema_version : string
(** ["wfc.obs.v1"]. *)

type scenario = {
  name : string;
  seconds : float;
  nodes : int option;
  verdict : string option;
  extra : (string * Json.t) list;  (** merged into the scenario object *)
}

val scenario :
  ?nodes:int -> ?verdict:string -> ?extra:(string * Json.t) list ->
  string -> float -> scenario
(** [scenario name seconds]. *)

val to_json :
  ?machine:(string * Json.t) list -> ?snapshot:Snapshot.t -> scenario list -> Json.t
(** [machine], when given, is emitted as a top-level ["machine"] object —
    provenance for timing numbers (domain count, git revision, whether the
    container is single-core). {!validate} ignores unknown top-level
    fields, so reports with and without it validate alike. *)

val machine_facts : unit -> (string * Json.t) list
(** The standard [~machine] stamp: [recommended_domain_count], [git_sha]
    (via [git rev-parse HEAD], ["unknown"] outside a checkout) and
    [single_core_container]. Shared by [bench/main.exe] and
    [bench/ladder.exe] so every committed timing artifact carries the same
    provenance fields. *)

val write_file : string -> Json.t -> unit
(** Writes {!Json.to_string} (canonical form) to the path, truncating. *)

val validate :
  ?expect_verdict:string -> ?min_nodes:int -> ?scenario_name:string ->
  Json.t -> (unit, string) result
(** Structural check: schema tag, [scenarios] is an array of objects each
    carrying a string [name] and a number [seconds]; [nodes]/[verdict],
    when present, are an int / a string. With [?scenario_name], the named
    scenario must exist and the [expect_verdict] / [min_nodes] constraints
    apply to it; without it they apply to at least one scenario. *)
