(** Immutable point-in-time captures of the {!Metrics} registry.

    A snapshot is a plain value: taking one never perturbs the registry,
    and two snapshots can be diffed to isolate the cost of a region of
    work. Rendering is either aligned human-readable text ([--stats]) or
    canonical JSON via {!to_json} — the same object that {!Report} embeds,
    so the CLI and the bench harness emit one schema. *)

type t = {
  counters : (string * int) list;  (** name-sorted *)
  histograms : (string * Metrics.histo_stats) list;  (** name-sorted *)
  spans : Metrics.span_node list;  (** first-opened order *)
}

val take : unit -> t

val counter_value : t -> string -> int option

val diff : t -> t -> t
(** [diff before after]: counter and histogram deltas ([after - before],
    clamped at 0 for instruments that were reset in between); spans are
    taken from [after]. *)

val to_json : t -> Json.t
(** [{"counters": {..}, "histograms": {name: {count, sum, mean, min,
    max}}, "spans": [{name, calls, seconds, children}]}]. *)

val to_text : t -> string
(** Aligned text: one dotted-name column per counter/histogram, spans as an
    indented tree. Empty sections are omitted; an empty snapshot renders as
    ["(no metrics recorded)"]. *)
