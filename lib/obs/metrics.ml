(* Process-global registry. Counters are atomics so the hot paths
   (Simplex.intern, the CSP search, the runtime scheduler) pay one
   fetch-and-add per event; everything else (registration, histograms,
   spans, read-out) is cold and shares one mutex. *)

type counter = { cname : string; cell : int Atomic.t }

type histo = {
  hname : string;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type histogram = histo

type span = {
  sname : string;
  mutable calls : int;
  mutable total : float;
  mutable kids : span list; (* reverse first-opened order *)
}

let lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let histograms : (string, histo) Hashtbl.t = Hashtbl.create 16

(* The span forest hangs off a root sentinel shared by every domain; the
   path of open spans is domain-local (DLS), so concurrent domains can
   each nest spans without corrupting one another's LIFO discipline. Spans
   opened at a domain's top level become children of the shared root. *)
let span_root () = { sname = ""; calls = 0; total = 0.; kids = [] }

let root = ref (span_root ())

let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------------------------------------------ *)
(* counters                                                             *)
(* ------------------------------------------------------------------ *)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { cname = name; cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c)

let incr c = ignore (Atomic.fetch_and_add c.cell 1)

let add c n =
  if n < 0 then invalid_arg (Printf.sprintf "Metrics.add %s: negative delta %d" c.cname n);
  ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

let counter_name c = c.cname

(* ------------------------------------------------------------------ *)
(* histograms and timers                                                *)
(* ------------------------------------------------------------------ *)

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h = { hname = name; count = 0; sum = 0.; min_v = infinity; max_v = neg_infinity } in
        Hashtbl.replace histograms name h;
        h)

let observe h x =
  locked (fun () ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. x;
      if x < h.min_v then h.min_v <- x;
      if x > h.max_v then h.max_v <- x)

let now_s () = Unix.gettimeofday ()

let time h f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> observe h (now_s () -. t0)) f

(* ------------------------------------------------------------------ *)
(* spans                                                                *)
(* ------------------------------------------------------------------ *)

let with_span name f =
  let stack = stack () in
  let node =
    locked (fun () ->
        let parent = match !stack with n :: _ -> n | [] -> !root in
        match List.find_opt (fun k -> k.sname = name) parent.kids with
        | Some k ->
          stack := k :: !stack;
          k
        | None ->
          let k = { sname = name; calls = 0; total = 0.; kids = [] } in
          parent.kids <- k :: parent.kids;
          stack := k :: !stack;
          k)
  in
  let t0 = now_s () in
  Fun.protect
    ~finally:(fun () ->
      let dt = now_s () -. t0 in
      locked (fun () ->
          node.calls <- node.calls + 1;
          node.total <- node.total +. dt;
          match !stack with
          | top :: rest when top == node -> stack := rest
          | _ -> assert false (* exits are LIFO per domain by construction *)))
    f

let span_depth () = List.length !(stack ())

(* ------------------------------------------------------------------ *)
(* reset and read-out                                                   *)
(* ------------------------------------------------------------------ *)

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter
        (fun _ h ->
          h.count <- 0;
          h.sum <- 0.;
          h.min_v <- infinity;
          h.max_v <- neg_infinity)
        histograms;
      root := span_root ();
      (* only this domain's open-span path can be cleared; reset is
         specified to run with no spans open on other domains *)
      stack () := [])

type histo_stats = { count : int; sum : float; min : float; max : float }

type span_node = {
  span_name : string;
  calls : int;
  total_s : float;
  children : span_node list;
}

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters_now () =
  locked (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters [])
  |> by_name

let histograms_now () =
  locked (fun () ->
      Hashtbl.fold
        (fun name (h : histo) acc ->
          if h.count = 0 then acc
          else
            (name, { count = h.count; sum = h.sum; min = h.min_v; max = h.max_v })
            :: acc)
        histograms [])
  |> by_name

let spans_now () =
  let rec freeze s =
    {
      span_name = s.sname;
      calls = s.calls;
      total_s = s.total;
      children = List.rev_map freeze s.kids;
    }
  in
  locked (fun () -> List.rev_map freeze !root.kids)
