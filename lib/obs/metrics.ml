(* Process-global registry. Counters are atomics so the hot paths
   (Simplex.intern, the CSP search, the runtime scheduler) pay one
   fetch-and-add per event; everything else (registration, histograms,
   spans, read-out) is cold and shares one mutex. *)

type counter = { cname : string; cell : int Atomic.t }

type histo = {
  hname : string;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type histogram = histo

type span = {
  sname : string;
  mutable calls : int;
  mutable total : float;
  mutable kids : span list; (* reverse first-opened order *)
}

let lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let histograms : (string, histo) Hashtbl.t = Hashtbl.create 16

(* The span forest hangs off a root sentinel shared by every domain; the
   path of open spans is keyed per (domain, sys-thread), so concurrent
   domains AND concurrent threads within one domain (the daemon's solver
   pool) each nest spans without corrupting one another's LIFO discipline.
   Domain-local storage alone is not enough: sys-threads sharing a domain
   would interleave pushes and pops on one stack. Spans opened at a
   thread's top level become children of the shared root. *)
let span_root () = { sname = ""; calls = 0; total = 0.; kids = [] }

let root = ref (span_root ())

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let stacks : (int * int, span list ref) Hashtbl.t = Hashtbl.create 16

let stack_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

(* call under [locked] *)
let stack_of key =
  match Hashtbl.find_opt stacks key with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.replace stacks key s;
    s

(* ------------------------------------------------------------------ *)
(* counters                                                             *)
(* ------------------------------------------------------------------ *)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { cname = name; cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c)

let incr c = ignore (Atomic.fetch_and_add c.cell 1)

let add c n =
  if n < 0 then invalid_arg (Printf.sprintf "Metrics.add %s: negative delta %d" c.cname n);
  ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

let counter_name c = c.cname

(* ------------------------------------------------------------------ *)
(* histograms and timers                                                *)
(* ------------------------------------------------------------------ *)

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h = { hname = name; count = 0; sum = 0.; min_v = infinity; max_v = neg_infinity } in
        Hashtbl.replace histograms name h;
        h)

let observe h x =
  locked (fun () ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. x;
      if x < h.min_v then h.min_v <- x;
      if x > h.max_v then h.max_v <- x)

let now_s () = Unix.gettimeofday ()

let time h f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> observe h (now_s () -. t0)) f

(* ------------------------------------------------------------------ *)
(* spans                                                                *)
(* ------------------------------------------------------------------ *)

let with_span name f =
  let key = stack_key () in
  let node, stack =
    locked (fun () ->
        let stack = stack_of key in
        let parent = match !stack with n :: _ -> n | [] -> !root in
        let k =
          match List.find_opt (fun k -> k.sname = name) parent.kids with
          | Some k -> k
          | None ->
            let k = { sname = name; calls = 0; total = 0.; kids = [] } in
            parent.kids <- k :: parent.kids;
            k
        in
        stack := k :: !stack;
        (k, stack))
  in
  let t0 = now_s () in
  Fun.protect
    ~finally:(fun () ->
      let dt = now_s () -. t0 in
      locked (fun () ->
          node.calls <- node.calls + 1;
          node.total <- node.total +. dt;
          (match !stack with
          | top :: rest when top == node -> stack := rest
          | _ -> assert false (* exits are LIFO per thread by construction *));
          (* a finished thread's key must not pin its stack forever — the
             daemon spawns a thread per connection *)
          if !stack = [] then Hashtbl.remove stacks key))
    f

let span_depth () =
  let key = stack_key () in
  locked (fun () ->
      match Hashtbl.find_opt stacks key with Some s -> List.length !s | None -> 0)

(* ------------------------------------------------------------------ *)
(* reset and read-out                                                   *)
(* ------------------------------------------------------------------ *)

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter
        (fun _ h ->
          h.count <- 0;
          h.sum <- 0.;
          h.min_v <- infinity;
          h.max_v <- neg_infinity)
        histograms;
      root := span_root ();
      (* reset is specified to run with no spans open on any thread *)
      Hashtbl.reset stacks)

type histo_stats = { count : int; sum : float; min : float; max : float }

type span_node = {
  span_name : string;
  calls : int;
  total_s : float;
  children : span_node list;
}

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters_now () =
  locked (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters [])
  |> by_name

let histograms_now () =
  locked (fun () ->
      Hashtbl.fold
        (fun name (h : histo) acc ->
          if h.count = 0 then acc
          else
            (name, { count = h.count; sum = h.sum; min = h.min_v; max = h.max_v })
            :: acc)
        histograms [])
  |> by_name

let spans_now () =
  let rec freeze s =
    {
      span_name = s.sname;
      calls = s.calls;
      total_s = s.total;
      children = List.rev_map freeze s.kids;
    }
  in
  locked (fun () -> List.rev_map freeze !root.kids)
