(** Named monotone counters, histograms/timers, and hierarchical spans.

    This is the process-global metrics registry behind [--stats],
    [--json] and the instrumentation in the topology/model/core libraries.
    Design constraints, in order:

    - {b hot-path cost}: incrementing a counter is one lock-free atomic
      add on a pre-resolved handle — resolve the handle once at module
      initialization ([let c = Metrics.counter "x.y"]), never per event;
    - {b monotonicity}: counters only go up ({!add} rejects negative
      deltas); the only way down is {!reset}, which zeroes every
      instrument at once (handles stay valid across resets);
    - {b determinism}: identical seeded runs perform identical counter
      increments, so counter deltas are themselves reproducible artifacts
      (guarded by tests, like the search-node invariant of the solver).

    Naming convention: dot-separated [library.subsystem.event] paths, all
    lowercase — e.g. [solvability.nodes], [sds.memo.hits],
    [simplex.intern.hits], [runtime.steps]. Counters count events;
    histograms aggregate float observations (timers record seconds).

    Thread-safety: every entry point is domain-safe. Counters are atomics;
    registration (get-or-create), histograms, span accounting and the
    read-out functions share one mutex. The span {e stack} (which span is
    "current") is domain-local: concurrent domains nest spans
    independently, and a span opened at a domain's top level becomes a
    root span in the shared forest. {!reset} clears measurements globally
    but can only unwind the calling domain's open-span path — call it
    while no other domain has a span open.

    Relation to [Simplex.reset]: {!reset} clears {e measurements} only and
    is always safe; [Simplex.reset] clears the interned arena (live data)
    and has strict reachability preconditions. Resetting one never resets
    the other. *)

type counter

val counter : string -> counter
(** Get-or-create by name: the same name always yields the same counter. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Monotone: @raise Invalid_argument on a negative delta. *)

val value : counter -> int

val counter_name : counter -> string

type histogram

val histogram : string -> histogram
(** Get-or-create by name, like {!counter}. *)

val observe : histogram -> float -> unit

val now_s : unit -> float
(** Wall-clock seconds (gettimeofday); the clock used by {!time} and
    {!with_span}. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Runs the thunk and observes its wall-clock duration in seconds (also on
    exception). *)

val with_span : string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a named span nested under the currently open span.
    Same-named siblings accumulate (calls, total seconds) into one node.
    Exits are exception-safe, so the span tree is always well-formed. *)

val span_depth : unit -> int
(** Number of spans currently open {e on the calling domain} (0 at top
    level). *)

val reset : unit -> unit
(** Zeroes all counters and histograms and clears the span tree. Handles
    remain registered and valid. *)

(** {1 Read-out} — consumed by {!Snapshot}; names are returned sorted. *)

type histo_stats = { count : int; sum : float; min : float; max : float }

type span_node = {
  span_name : string;
  calls : int;
  total_s : float;
  children : span_node list;
}

val counters_now : unit -> (string * int) list

val histograms_now : unit -> (string * histo_stats) list
(** Histograms that have at least one observation. *)

val spans_now : unit -> span_node list
(** Root spans in first-opened order, children likewise. *)
