(* Represented as a newest-first list truncated back to [capacity] elements
   whenever it doubles, rather than a circular array: an array of boxed
   elements is major-heap-allocated at realistic capacities, so every push
   would pay the GC write barrier — measurably slower than the runtime's
   unbounded cons-based sink it is meant to undercut.  With the list, a push
   is one cons (amortized O(1) including truncations) and space stays
   O(capacity). *)
type 'a t = {
  capacity : int;
  mutable recent : 'a list; (* newest first; length < 2 * capacity *)
  mutable n : int; (* List.length recent *)
  mutable total : int; (* pushes since creation / clear *)
}

let create ~capacity =
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Flight.create: capacity %d must be positive" capacity);
  { capacity; recent = []; n = 0; total = 0 }

let capacity t = t.capacity

let length t = min t.n t.capacity

let dropped t = t.total - length t

let rec take k l =
  if k = 0 then []
  else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl

let push t x =
  t.recent <- x :: t.recent;
  t.n <- t.n + 1;
  t.total <- t.total + 1;
  if t.n = 2 * t.capacity then begin
    t.recent <- take t.capacity t.recent;
    t.n <- t.capacity
  end

let contents t = List.rev (take (length t) t.recent)

let clear t =
  t.recent <- [];
  t.n <- 0;
  t.total <- 0
