(** Bounded flight recorder: a fixed-capacity ring buffer keeping the most
    recent observations.

    This is the memory-bounded counterpart of an unbounded event log: when
    full, each push evicts the oldest element and bumps {!dropped}. It lets
    tracing stay enabled in benchmarks and long runs at O(capacity) space,
    and the retained suffix is exactly what a post-mortem wants — the last
    events before a failure. Consumers: the runtime's [Ring] trace sink and
    the solvability search-trace recorder.

    Not thread-safe; one writer per recorder (matching the runtime's
    single-threaded scheduler). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently retained ([<= capacity]). *)

val dropped : 'a t -> int
(** Pushes that evicted an older element since creation (or {!clear}). *)

val push : 'a t -> 'a -> unit
(** Amortized O(1); evicts the oldest element when full. *)

val contents : 'a t -> 'a list
(** Retained elements, oldest first. *)

val clear : 'a t -> unit
