(* Chrome trace-event format (the JSON flavor Perfetto and chrome://tracing
   ingest). Events are kept as plain Json objects internally; the smart
   constructors pin down the fields each phase requires. *)

type event = Json.t

let base ~ph ?cat ~name ~pid ~tid fields =
  let fields =
    ("ph", Json.String ph)
    :: ("name", Json.String name)
    :: ("pid", Json.Int pid)
    :: ("tid", Json.Int tid)
    :: fields
  in
  let fields =
    match cat with None -> fields | Some c -> ("cat", Json.String c) :: fields
  in
  Json.Obj fields

let with_args args fields =
  match args with [] -> fields | args -> ("args", Json.Obj args) :: fields

let complete ?cat ?(args = []) ~name ~pid ~tid ~ts ~dur () =
  base ~ph:"X" ?cat ~name ~pid ~tid
    (with_args args [ ("ts", Json.Int ts); ("dur", Json.Int dur) ])

let instant ?cat ?(args = []) ~name ~pid ~tid ~ts () =
  (* "s":"t" scopes the instant to its thread track *)
  base ~ph:"i" ?cat ~name ~pid ~tid
    (with_args args [ ("ts", Json.Int ts); ("s", Json.String "t") ])

let process_name ~pid name =
  base ~ph:"M" ~name:"process_name" ~pid ~tid:0
    [ ("args", Json.Obj [ ("name", Json.String name) ]) ]

let thread_name ~pid ~tid name =
  base ~ph:"M" ~name:"thread_name" ~pid ~tid
    [ ("args", Json.Obj [ ("name", Json.String name) ]) ]

let to_json events =
  Json.Obj
    [ ("displayTimeUnit", Json.String "ms"); ("traceEvents", Json.Arr events) ]

(* ------------------------------------------------------------------ *)
(* span trees                                                           *)
(* ------------------------------------------------------------------ *)

(* Spans aggregate (calls, total seconds) without start timestamps, so the
   export lays them out synthetically: siblings run back to back, children
   start at their parent's start. Durations are faithful; offsets are not
   wall-clock, which is fine for the flame-graph reading Perfetto gives. *)
let of_spans ?(pid = 0) roots =
  let us_of_s s = max 1 (int_of_float (s *. 1e6)) in
  let events = ref [] in
  let rec walk t0 (s : Metrics.span_node) =
    let dur = us_of_s s.Metrics.total_s in
    events :=
      complete ~cat:"span" ~name:s.Metrics.span_name ~pid ~tid:0 ~ts:t0 ~dur
        ~args:[ ("calls", Json.Int s.Metrics.calls) ]
        ()
      :: !events;
    let t = ref t0 in
    List.iter (fun child -> t := !t + walk !t child) s.Metrics.children;
    dur
  in
  let t = ref 0 in
  List.iter (fun r -> t := !t + walk !t r) roots;
  thread_name ~pid ~tid:0 "spans" :: List.rev !events

(* ------------------------------------------------------------------ *)
(* validation                                                           *)
(* ------------------------------------------------------------------ *)

let validate j =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* events =
    match Json.member "traceEvents" j with
    | Some (Json.Arr items) -> Ok items
    | _ -> Error "missing \"traceEvents\" array"
  in
  let check_event i e =
    let* ph =
      match Json.member "ph" e with
      | Some (Json.String p) -> Ok p
      | _ -> err "event %d: missing string \"ph\"" i
    in
    let* () =
      match Json.member "name" e with
      | Some (Json.String _) -> Ok ()
      | _ -> err "event %d: missing string \"name\"" i
    in
    let* () =
      match (Json.member "pid" e, Json.member "tid" e) with
      | Some (Json.Int _), Some (Json.Int _) -> Ok ()
      | _ -> err "event %d: missing int \"pid\"/\"tid\"" i
    in
    let* () =
      if ph = "M" then Ok ()
      else
        match Json.member "ts" e with
        | Some (Json.Int _ | Json.Float _) -> Ok ()
        | _ -> err "event %d (ph=%s): missing numeric \"ts\"" i ph
    in
    if ph = "X" then
      match Json.member "dur" e with
      | Some (Json.Int _ | Json.Float _) -> Ok ()
      | _ -> err "event %d: complete event missing numeric \"dur\"" i
    else Ok ()
  in
  let rec go i = function
    | [] -> Ok ()
    | e :: rest ->
      let* () = check_event i e in
      go (i + 1) rest
  in
  go 0 events
