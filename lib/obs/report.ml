let schema_version = "wfc.obs.v1"

type scenario = {
  name : string;
  seconds : float;
  nodes : int option;
  verdict : string option;
  extra : (string * Json.t) list;
}

let scenario ?nodes ?verdict ?(extra = []) name seconds =
  { name; seconds; nodes; verdict; extra }

let scenario_json s =
  let fields = [ ("name", Json.String s.name); ("seconds", Json.Float s.seconds) ] in
  let fields =
    match s.nodes with None -> fields | Some n -> ("nodes", Json.Int n) :: fields
  in
  let fields =
    match s.verdict with None -> fields | Some v -> ("verdict", Json.String v) :: fields
  in
  Json.Obj (fields @ s.extra)

let to_json ?machine ?snapshot scenarios =
  let base =
    [
      ("schema", Json.String schema_version);
      ("scenarios", Json.Arr (List.map scenario_json scenarios));
    ]
  in
  let base =
    match machine with None -> base | Some m -> base @ [ ("machine", Json.Obj m) ]
  in
  let metrics =
    match snapshot with
    | None -> []
    | Some snap -> (
      match Snapshot.to_json snap with
      | Json.Obj fields -> fields
      | _ -> assert false)
  in
  Json.Obj (base @ metrics)

(* Machine provenance for committed timing artifacts: wall-clock ratios
   between domain-count scenarios or ladder rungs are meaningless without
   knowing how many cores backed the run and which commit produced it. *)
let machine_facts () =
  let recommended = Domain.recommended_domain_count () in
  let git_sha =
    try
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  [
    ("recommended_domain_count", Json.Int recommended);
    ("git_sha", Json.String git_sha);
    ("single_core_container", Json.Bool (recommended = 1));
  ]

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string j))

(* ------------------------------------------------------------------ *)
(* validation                                                           *)
(* ------------------------------------------------------------------ *)

let validate ?expect_verdict ?min_nodes ?scenario_name j =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String v) when v = schema_version -> Ok ()
    | Some (Json.String v) -> err "schema is %S, expected %S" v schema_version
    | _ -> err "missing \"schema\" tag"
  in
  let* scenarios =
    match Json.member "scenarios" j with
    | Some (Json.Arr items) -> Ok items
    | _ -> err "missing \"scenarios\" array"
  in
  let check_shape i s =
    let* () =
      match Json.member "name" s with
      | Some (Json.String _) -> Ok ()
      | _ -> err "scenario %d: missing string \"name\"" i
    in
    let* () =
      match Json.member "seconds" s with
      | Some (Json.Float _ | Json.Int _) -> Ok ()
      | _ -> err "scenario %d: missing numeric \"seconds\"" i
    in
    let* () =
      match Json.member "nodes" s with
      | None | Some (Json.Int _) -> Ok ()
      | _ -> err "scenario %d: \"nodes\" is not an int" i
    in
    match Json.member "verdict" s with
    | None | Some (Json.String _) -> Ok ()
    | _ -> err "scenario %d: \"verdict\" is not a string" i
  in
  let rec shapes i = function
    | [] -> Ok ()
    | s :: rest ->
      let* () = check_shape i s in
      shapes (i + 1) rest
  in
  let* () = shapes 0 scenarios in
  let name_of s =
    match Json.member "name" s with Some (Json.String n) -> n | _ -> ""
  in
  let satisfies s =
    let verdict_ok =
      match expect_verdict with
      | None -> true
      | Some want -> (
        match Json.member "verdict" s with
        | Some (Json.String v) -> v = want
        | _ -> false)
    in
    let nodes_ok =
      match min_nodes with
      | None -> true
      | Some lo -> (
        match Json.member "nodes" s with Some (Json.Int n) -> n >= lo | _ -> false)
    in
    verdict_ok && nodes_ok
  in
  match scenario_name with
  | Some want -> (
    match List.find_opt (fun s -> name_of s = want) scenarios with
    | None -> err "no scenario named %S" want
    | Some s ->
      if satisfies s then Ok ()
      else
        err "scenario %S fails constraints (verdict=%s, min-nodes=%s)" want
          (Option.value ~default:"-" expect_verdict)
          (match min_nodes with None -> "-" | Some n -> string_of_int n))
  | None ->
    if expect_verdict = None && min_nodes = None then Ok ()
    else if List.exists satisfies scenarios then Ok ()
    else
      err "no scenario satisfies constraints (verdict=%s, min-nodes=%s)"
        (Option.value ~default:"-" expect_verdict)
        (match min_nodes with None -> "-" | Some n -> string_of_int n)
