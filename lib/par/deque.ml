(* Monotone [top]/[bottom] cursors over a ring buffer: [top] is the next
   steal slot, [bottom] the next push slot, [bottom - top] the population.
   Slots are cleared on removal so the GC does not retain finished jobs. *)

type 'a t = {
  lock : Mutex.t;
  buf : 'a option array;
  mutable top : int;
  mutable bottom : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Deque.create: capacity < 1";
  { lock = Mutex.create (); buf = Array.make capacity None; top = 0; bottom = 0 }

let capacity t = Array.length t.buf

let length t =
  Mutex.lock t.lock;
  let n = t.bottom - t.top in
  Mutex.unlock t.lock;
  n

let slot t i = i mod Array.length t.buf

let push_bottom t v =
  Mutex.lock t.lock;
  let ok = t.bottom - t.top < Array.length t.buf in
  if ok then begin
    t.buf.(slot t t.bottom) <- Some v;
    t.bottom <- t.bottom + 1
  end;
  Mutex.unlock t.lock;
  ok

let pop_bottom t =
  Mutex.lock t.lock;
  let r =
    if t.bottom = t.top then None
    else begin
      t.bottom <- t.bottom - 1;
      let i = slot t t.bottom in
      let v = t.buf.(i) in
      t.buf.(i) <- None;
      v
    end
  in
  Mutex.unlock t.lock;
  r

let steal t =
  Mutex.lock t.lock;
  let r =
    if t.bottom = t.top then None
    else begin
      let i = slot t t.top in
      let v = t.buf.(i) in
      t.buf.(i) <- None;
      t.top <- t.top + 1;
      v
    end
  in
  Mutex.unlock t.lock;
  r
