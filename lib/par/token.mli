(** A reusable cooperative cancellation token.

    One atomic flag shared between a controller and any number of
    workers: the controller {!cancel}s, workers poll {!cancelled} at
    their own safe points and wind down. Nothing is interrupted
    preemptively — a worker that never polls never notices, which is
    exactly the contract the solver's search loop wants (one poll per
    search node). Tokens are single-trip: once cancelled, forever
    cancelled; create a fresh one per race/batch. *)

type t

val create : unit -> t
(** A fresh, uncancelled token. *)

val cancel : t -> unit
(** Set the flag. Idempotent, domain-safe, wait-free. *)

val cancelled : t -> bool
(** Poll the flag. Wait-free; safe from any domain. *)
