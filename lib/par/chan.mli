(** A blocking multi-producer multi-consumer channel.

    The pool's work-stealing mailbox: batches of jobs are announced to the
    worker domains through a channel, and each idle worker blocks in
    {!recv} until a batch (or shutdown) arrives. Built on a stdlib
    [Mutex]/[Condition] pair — no external dependencies. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Enqueue a value and wake one waiting receiver.
    @raise Invalid_argument if the channel is closed. *)

val send_shared : 'a t -> 'a -> int -> unit
(** [send_shared t v n] enqueues [v] once with a claim count of [n]: the
    next [n] receivers each get [v], and the value leaves the queue with
    the last claim. One lock acquisition and one [Condition.broadcast]
    total — the batched announcement path of {!Pool.run}, which would
    otherwise pay a lock/signal round-trip per woken worker.
    @raise Invalid_argument if the channel is closed or [n < 1]. *)

val recv : 'a t -> 'a option
(** Block until a value (or an unclaimed share of one, see
    {!send_shared}) is available ([Some v]) or the channel is closed
    {e and} drained ([None]). FIFO among values; which of several blocked
    receivers wins is unspecified. *)

val close : 'a t -> unit
(** Close the channel: every blocked and future {!recv} returns [None]
    once the queue is drained. Idempotent. *)

val is_closed : 'a t -> bool
