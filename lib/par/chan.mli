(** A blocking multi-producer multi-consumer channel.

    The pool's work-stealing mailbox: batches of jobs are announced to the
    worker domains through a channel, and each idle worker blocks in
    {!recv} until a batch (or shutdown) arrives. Built on a stdlib
    [Mutex]/[Condition] pair — no external dependencies. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Enqueue a value and wake one waiting receiver.
    @raise Invalid_argument if the channel is closed. *)

val recv : 'a t -> 'a option
(** Block until a value is available ([Some v]) or the channel is closed
    {e and} drained ([None]). FIFO among values; which of several blocked
    receivers wins is unspecified. *)

val close : 'a t -> unit
(** Close the channel: every blocked and future {!recv} returns [None]
    once the queue is drained. Idempotent. *)

val is_closed : 'a t -> bool
