type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
}

let create () =
  { lock = Mutex.create (); nonempty = Condition.create (); q = Queue.create (); closed = false }

let send t v =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Chan.send: closed channel"
  end
  else begin
    Queue.add v t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock
  end

let recv t =
  Mutex.lock t.lock;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.lock
  done;
  let r = if Queue.is_empty t.q then None else Some (Queue.take t.q) in
  Mutex.unlock t.lock;
  r

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c
