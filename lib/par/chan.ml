(* Each queue cell carries a claim count: [send] enqueues a single-claim
   cell, [send_shared] a cell that [claims] receivers in a row will take
   before it leaves the queue. The pool's batch announcement uses the
   latter, so waking [n] workers costs one lock acquisition and one
   broadcast instead of [n] signalled sends. *)
type 'a cell = { value : 'a; mutable claims : int }

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : 'a cell Queue.t;
  mutable closed : bool;
}

let create () =
  { lock = Mutex.create (); nonempty = Condition.create (); q = Queue.create (); closed = false }

let send t v =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Chan.send: closed channel"
  end
  else begin
    Queue.add { value = v; claims = 1 } t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock
  end

let send_shared t v n =
  if n < 1 then invalid_arg "Chan.send_shared: n < 1";
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Chan.send_shared: closed channel"
  end
  else begin
    Queue.add { value = v; claims = n } t.q;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock
  end

let recv t =
  Mutex.lock t.lock;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.lock
  done;
  let r =
    if Queue.is_empty t.q then None
    else begin
      let cell = Queue.peek t.q in
      cell.claims <- cell.claims - 1;
      if cell.claims = 0 then ignore (Queue.pop t.q);
      Some cell.value
    end
  in
  Mutex.unlock t.lock;
  r

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c
