module Chan = Chan
module Deque = Deque
module Pool = Pool
module Token = Token

let env_domains () =
  match Sys.getenv_opt "WFC_DOMAINS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 1 -> n
    | _ -> 1)

let current = ref (env_domains ())

let domains () = !current

let set_domains n = current := max 1 n

(* One global pool, lazily created and grown on demand. Guarded by a mutex
   so concurrent first-batches from two domains cannot double-spawn; in
   practice only the main domain sizes it. *)
let pool_lock = Mutex.create ()

let pool : Pool.t option ref = ref None

let shutdown () =
  Mutex.lock pool_lock;
  let p = !pool in
  pool := None;
  Mutex.unlock pool_lock;
  match p with Some p -> Pool.shutdown p | None -> ()

let () = at_exit shutdown

let obtain ~size =
  Mutex.lock pool_lock;
  let p =
    match !pool with
    | Some p when Pool.size p >= size -> p
    | prev ->
      (match prev with Some p -> Pool.shutdown p | None -> ());
      let p = Pool.create ~size in
      pool := Some p;
      p
  in
  Mutex.unlock pool_lock;
  p

let run_jobs ?domains:d thunks =
  let d = match d with None -> domains () | Some d -> d in
  if d <= 1 || Array.length thunks < 2 then
    Array.map (fun thunk -> thunk ()) thunks
  else
    let p = obtain ~size:d in
    Pool.run ~participants:d p thunks

let map_array ?domains f a = run_jobs ?domains (Array.map (fun x () -> f x) a)

let c_races = Wfc_obs.Metrics.counter "par.races"

let c_race_cancelled = Wfc_obs.Metrics.counter "par.race_cancelled"

let race ?domains thunks =
  let n = Array.length thunks in
  if n = 0 then None
  else begin
    Wfc_obs.Metrics.incr c_races;
    let token = Token.create () in
    let winner = Atomic.make (-1) in
    let results = Array.make n None in
    let job i () =
      match thunks.(i) token with
      | None -> ()
      | Some v ->
        (* publish the value before claiming the index: a reader that sees
           the CAS also sees the write (release/acquire through the atomic) *)
        results.(i) <- Some v;
        if Atomic.compare_and_set winner (-1) i then Token.cancel token
        else Wfc_obs.Metrics.incr c_race_cancelled
    in
    ignore (run_jobs ?domains (Array.init n job));
    match Atomic.get winner with
    | -1 -> None
    | i -> (
      match results.(i) with Some v -> Some (i, v) | None -> assert false)
  end

