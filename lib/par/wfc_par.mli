(** Domain-level parallelism for the wfc engines.

    A process-global worker pool ({!Pool}) plus the configuration knob that
    decides whether the parallel code paths in [Solvability.solve_at] and
    [Sds.subdivide] are taken at all. Parallelism is strictly opt-in:

    - the default degree is read from the [WFC_DOMAINS] environment
      variable (absent, empty, unparsable, or [<= 1] all mean 1 — fully
      sequential, byte-for-byte the historical engine);
    - [wfc --domains N] and {!set_domains} override it at run time.

    With [domains () = 1] nothing is ever spawned and {!run_jobs} runs the
    thunks inline, so sequential users pay nothing.

    The worker pool is created lazily on the first parallel batch and
    resized (teardown + respawn) when {!set_domains} asks for more
    domains than it has; it is torn down at exit. *)

module Chan = Chan
module Deque = Deque
module Pool = Pool
module Token = Token

val domains : unit -> int
(** Current configured parallelism degree, [>= 1]. *)

val set_domains : int -> unit
(** Set the degree for subsequent batches. Values [< 1] are clamped to 1.
    Safe to call between batches; must not be called from inside a job. *)

val run_jobs : ?domains:int -> (unit -> 'a) array -> 'a array
(** Execute independent thunks on up to [domains] domains (default
    {!domains}[ ()]), returning results in input order; exceptions
    propagate like {!Pool.run}. [domains <= 1], a batch of size [< 2], or
    a call from inside another job all run sequentially inline. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [run_jobs] over [fun () -> f a.(i)]: an
    order-preserving parallel map. *)

val race : ?domains:int -> (Token.t -> 'a option) array -> (int * 'a) option
(** Run every thunk (on up to [domains] domains, like {!run_jobs}) and
    return [(i, v)] where [i] is the thunk that {e first} claimed the
    race by returning [Some v]; the shared {!Token} is cancelled the
    instant a winner is claimed, so cooperative losers wind down early.
    Thunks must poll their token and may return [None] to withdraw
    without claiming. Returns [None] only if every thunk withdraws.

    Which thunk wins is timing-dependent by design — callers needing a
    deterministic answer must make every publishable value equivalent
    (the portfolio solver races orders that can only publish
    order-independent verdicts). All thunks are run to completion or
    cooperative exit before [race] returns; counted in [par.races] /
    [par.race_cancelled]. *)

val shutdown : unit -> unit
(** Tear down the global pool (joins the workers). Also registered with
    [at_exit]. A later parallel batch recreates the pool. *)
