(** A pool of OCaml 5 [Domain]s executing batches of independent jobs.

    The pool owns [size - 1] worker domains parked on a shared {!Chan}
    mailbox; the caller's domain is the [size]-th participant. {!run}
    publishes a batch as a bounded work-stealing {!Deque}, wakes workers,
    and drains the deque from the calling domain too, so a pool of size 1
    degenerates to plain sequential execution with no synchronization.

    Jobs must be independent: they run in unspecified order on unspecified
    domains. {!run} preserves {e result} order regardless — slot [i] of the
    returned array is the result of thunk [i] — and re-raises the
    lowest-indexed exception after the whole batch has completed, so a
    failing batch never leaves stray jobs running.

    Nested {!run} from inside a job executes the inner batch sequentially
    on the current domain (the outer batch already owns the workers);
    this keeps the pool deadlock-free by construction. *)

type t

val create : size:int -> t
(** A pool of [size] participating domains ([size - 1] spawned workers).
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val run : ?participants:int -> t -> (unit -> 'a) array -> 'a array
(** Execute every thunk, using at most [participants] domains (defaults
    to {!size}; the caller always participates). Returns results in input
    order. Exceptions raised by thunks are collected; after the batch
    drains, the exception of the lowest-indexed failing thunk is re-raised
    with its backtrace. *)

val shutdown : t -> unit
(** Close the mailbox and join the workers. Idempotent. Calling {!run}
    afterwards executes batches sequentially on the caller. *)
