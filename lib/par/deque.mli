(** A bounded work-stealing double-ended queue.

    One owner pushes and pops at the {e bottom} (LIFO, good locality for
    recursively spawned work); any number of thieves {!steal} from the
    {e top} (FIFO), so the oldest — typically largest — jobs migrate to
    other domains first. The capacity is fixed at creation: a full deque
    rejects the push and the caller runs the job inline instead, which
    bounds memory under runaway fan-out.

    All operations are domain-safe. The implementation is a mutex-guarded
    ring buffer: with the pool's job granularity (a whole solver subtree or
    a whole facet subdivision per job) the lock is nowhere near the hot
    path, and a mutex keeps the memory-model reasoning trivial. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently queued (racy snapshot under concurrency). *)

val push_bottom : 'a t -> 'a -> bool
(** Owner push; [false] if the deque is full. *)

val pop_bottom : 'a t -> 'a option
(** Owner pop (most recently pushed element). *)

val steal : 'a t -> 'a option
(** Thief pop (least recently pushed element). *)
