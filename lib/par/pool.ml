type batch = {
  jobs : (unit -> unit) Deque.t;
  pending : int Atomic.t; (* jobs not yet finished executing *)
  lock : Mutex.t;
  drained : Condition.t;
}

type t = {
  psize : int;
  inbox : batch Chan.t;
  workers : unit Domain.t array;
  mutable live : bool;
}

let c_batches = Wfc_obs.Metrics.counter "par.batches"

let c_jobs = Wfc_obs.Metrics.counter "par.jobs"

let c_steals = Wfc_obs.Metrics.counter "par.steals"

(* Set while a domain is executing a pool job: nested [run]s go sequential
   instead of waiting on workers the outer batch already occupies. *)
let in_job = Domain.DLS.new_key (fun () -> ref false)

let complete b =
  if Atomic.fetch_and_add b.pending (-1) = 1 then begin
    (* last job: wake the caller. The lock round-trip orders the results
       array writes of every participant before the caller's read. *)
    Mutex.lock b.lock;
    Condition.broadcast b.drained;
    Mutex.unlock b.lock
  end

let drain ~stolen b =
  let flag = Domain.DLS.get in_job in
  let rec go () =
    match Deque.steal b.jobs with
    | None -> ()
    | Some job ->
      if stolen then Wfc_obs.Metrics.incr c_steals;
      flag := true;
      (* jobs are exception-wrapped by [run]; Fun.protect is belt and
         braces so a worker never dies with the batch open *)
      Fun.protect ~finally:(fun () ->
          flag := false;
          complete b)
        job;
      go ()
  in
  go ()

let worker inbox =
  let rec serve () =
    match Chan.recv inbox with
    | None -> ()
    | Some b ->
      drain ~stolen:true b;
      serve ()
  in
  serve ()

let create ~size =
  if size < 1 then invalid_arg "Pool.create: size < 1";
  let inbox = Chan.create () in
  let workers = Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker inbox)) in
  { psize = size; inbox; workers; live = true }

let size t = t.psize

let shutdown t =
  if t.live then begin
    t.live <- false;
    Chan.close t.inbox;
    Array.iter Domain.join t.workers
  end

let run_sequential thunks =
  Array.map
    (fun thunk -> match thunk () with v -> Ok v | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    thunks

let reraise_first results =
  Array.map
    (function
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results

let run ?participants t thunks =
  let n = Array.length thunks in
  let participants =
    match participants with None -> t.psize | Some p -> max 1 (min p t.psize)
  in
  if n = 0 then [||]
  else if participants = 1 || n = 1 || (not t.live) || !(Domain.DLS.get in_job) then
    reraise_first (run_sequential thunks)
  else begin
    Wfc_obs.Metrics.incr c_batches;
    Wfc_obs.Metrics.add c_jobs n;
    let results = Array.make n None in
    let b =
      {
        jobs = Deque.create ~capacity:n;
        pending = Atomic.make n;
        lock = Mutex.create ();
        drained = Condition.create ();
      }
    in
    Array.iteri
      (fun i thunk ->
        let wrapped () =
          results.(i) <-
            Some (match thunk () with v -> Ok v | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        in
        (* capacity = n, so the push cannot fail *)
        ignore (Deque.push_bottom b.jobs wrapped))
      thunks;
    (* One shared announcement claims [participants - 1] workers: a single
       mailbox push and one condvar broadcast per batch, instead of a
       lock/signal round-trip per worker. A worker that raced ahead may
       still find the deque empty — the idle drain is harmless. *)
    Chan.send_shared t.inbox b (participants - 1);
    drain ~stolen:false b;
    Mutex.lock b.lock;
    while Atomic.get b.pending > 0 do
      Condition.wait b.drained b.lock
    done;
    Mutex.unlock b.lock;
    reraise_first
      (Array.map (function Some r -> r | None -> assert false (* pending hit 0 *)) results)
  end
