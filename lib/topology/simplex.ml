(* Interned simplices over a hash-consed arena.

   A simplex is a strictly increasing [int array] of vertices, interned in a
   global table so that every vertex set has exactly one live representative.
   Consequences exploited throughout the library:

   - [equal]/[hash] are O(1) (the interned [id]);
   - [card]/[dim] are O(1) (array length);
   - [Tbl] keys on the id, so closure/carrier/delta caches cost one integer
     hash per probe instead of a polymorphic traversal;
   - set operations short-circuit to an existing representative whenever the
     result equals one of the operands, avoiding both allocation and an
     arena probe.

   The arena is sharded by key hash, each shard behind its own [Mutex], so
   domains interning concurrently (the parallel subdivision and solver
   paths) contend only when they hash to the same shard; ids come from one
   atomic counter and stay dense and stable. [reset] empties every shard
   (keeping the canonical empty simplex alive); it is only safe when no
   interned simplex from before the reset is still in use. *)

type t = { id : int; verts : int array }

(* ------------------------------------------------------------------ *)
(* arena                                                                *)
(* ------------------------------------------------------------------ *)

module Key = struct
  type t = int array

  let equal a b =
    a == b
    || (Array.length a = Array.length b
       &&
       let n = Array.length a in
       let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
       go 0)

  let hash a =
    let h = ref 5381 in
    for i = 0 to Array.length a - 1 do
      h := (!h * 33) lxor a.(i)
    done;
    !h land max_int
end

module Arena = Hashtbl.Make (Key)

(* Power of two so shard selection is a mask of the key hash. A vertex set
   always maps to the same shard, which is what makes per-shard mutual
   exclusion sufficient for uniqueness of representatives. *)
let shard_bits = 4

let shard_count = 1 lsl shard_bits

let shard_mask = shard_count - 1

type shard = {
  s_lock : Mutex.t;
  s_arena : t Arena.t;
  s_faces : (int, t list) Hashtbl.t;
      (* faces cached by interned id; a simplex's faces live in its own
         shard, found via [verts] hash, so lookups reuse the same lock *)
}

let shards =
  Array.init shard_count (fun _ ->
      { s_lock = Mutex.create (); s_arena = Arena.create 512; s_faces = Hashtbl.create 128 })

let shard_of_key verts = shards.(Key.hash verts land shard_mask)

let next_id = Atomic.make 0

let max_cached_faces_card = 16

(* [intern verts] takes ownership of [verts] (never copied, never mutated
   afterwards). Ids are allocated by one fetch-and-add, so they stay dense
   across shards; which simplex gets which id can depend on domain
   interleaving, but ids never leak into results (orders are lexicographic
   on vertices), so outputs stay deterministic. *)
let intern verts =
  let sh = shard_of_key verts in
  Mutex.lock sh.s_lock;
  let s =
    match Arena.find_opt sh.s_arena verts with
    | Some s -> s
    | None ->
      let s = { id = Atomic.fetch_and_add next_id 1; verts } in
      Arena.add sh.s_arena verts s;
      s
  in
  Mutex.unlock sh.s_lock;
  s

let empty = intern [||]

let arena_size () =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.s_lock;
      let n = Arena.length sh.s_arena in
      Mutex.unlock sh.s_lock;
      acc + n)
    0 shards

let reset () =
  (* lock all shards in index order (the only multi-shard critical section,
     so the ordering discipline is trivially deadlock-free) *)
  Array.iter (fun sh -> Mutex.lock sh.s_lock) shards;
  Array.iter
    (fun sh ->
      Arena.reset sh.s_arena;
      Hashtbl.reset sh.s_faces)
    shards;
  (* keep the canonical empty simplex (and its id 0) alive across resets *)
  let sh = shard_of_key empty.verts in
  Arena.add sh.s_arena empty.verts empty;
  Atomic.set next_id 1;
  Array.iter (fun sh -> Mutex.unlock sh.s_lock) shards

(* ------------------------------------------------------------------ *)
(* construction                                                         *)
(* ------------------------------------------------------------------ *)

let rec strictly_increasing_arr a i =
  i >= Array.length a - 1 || (a.(i) < a.(i + 1) && strictly_increasing_arr a (i + 1))

let of_list vs = intern (Array.of_list (List.sort_uniq Stdlib.compare vs))

let of_sorted vs =
  let a = Array.of_list vs in
  assert (strictly_increasing_arr a 0);
  intern a

let singleton v = intern [| v |]

(* ------------------------------------------------------------------ *)
(* O(1) observers                                                       *)
(* ------------------------------------------------------------------ *)

let id s = s.id

let card s = Array.length s.verts

let dim s = card s - 1

let is_empty s = card s = 0

let equal a b = a.id = b.id

let hash s = s.id

let min_vertex s =
  if is_empty s then invalid_arg "Simplex.min_vertex: empty simplex";
  s.verts.(0)

let max_vertex s =
  if is_empty s then invalid_arg "Simplex.max_vertex: empty simplex";
  s.verts.(card s - 1)

(* ------------------------------------------------------------------ *)
(* traversal                                                            *)
(* ------------------------------------------------------------------ *)

let to_list s = Array.to_list s.verts

let vertices = to_list

let iter f s = Array.iter f s.verts

let fold f init s = Array.fold_left f init s.verts

let for_all f s = Array.for_all f s.verts

let exists f s = Array.exists f s.verts

let nth s i = s.verts.(i)

(* Lexicographic on the vertex sequences — the same total order the previous
   sorted-list representation got from [Stdlib.compare], so every sorted
   output of the library is unchanged by the interning refactor. *)
let compare a b =
  if a.id = b.id then 0
  else
    let va = a.verts and vb = b.verts in
    let la = Array.length va and lb = Array.length vb in
    let n = if la < lb then la else lb in
    let rec go i =
      if i = n then Stdlib.compare la lb
      else
        let c = Stdlib.compare va.(i) vb.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let mem v s =
  let a = s.verts in
  let rec go lo hi =
    lo <= hi
    &&
    let mid = (lo + hi) / 2 in
    let x = a.(mid) in
    if x = v then true else if x < v then go (mid + 1) hi else go lo (mid - 1)
  in
  go 0 (Array.length a - 1)

(* ------------------------------------------------------------------ *)
(* set algebra (sorted-array merges; results re-interned)               *)
(* ------------------------------------------------------------------ *)

let subset s t =
  s.id = t.id
  ||
  let a = s.verts and b = t.verts in
  let la = Array.length a and lb = Array.length b in
  la <= lb
  &&
  let rec go i j =
    if i = la then true
    else if lb - j < la - i then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) < b.(j) then false
    else go i (j + 1)
  in
  go 0 0

let union s t =
  if s.id = t.id then s
  else
    let a = s.verts and b = t.verts in
    let la = Array.length a and lb = Array.length b in
    if la = 0 then t
    else if lb = 0 then s
    else begin
      let buf = Array.make (la + lb) 0 in
      let rec go i j k =
        if i = la then begin
          Array.blit b j buf k (lb - j);
          k + lb - j
        end
        else if j = lb then begin
          Array.blit a i buf k (la - i);
          k + la - i
        end
        else if a.(i) = b.(j) then begin
          buf.(k) <- a.(i);
          go (i + 1) (j + 1) (k + 1)
        end
        else if a.(i) < b.(j) then begin
          buf.(k) <- a.(i);
          go (i + 1) j (k + 1)
        end
        else begin
          buf.(k) <- b.(j);
          go i (j + 1) (k + 1)
        end
      in
      let n = go 0 0 0 in
      (* |a ∪ b| = |a| iff b ⊆ a: reuse the interned operand *)
      if n = la then s else if n = lb then t else intern (Array.sub buf 0 n)
    end

let inter s t =
  if s.id = t.id then s
  else
    let a = s.verts and b = t.verts in
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then empty
    else begin
      let buf = Array.make (if la < lb then la else lb) 0 in
      let rec go i j k =
        if i = la || j = lb then k
        else if a.(i) = b.(j) then begin
          buf.(k) <- a.(i);
          go (i + 1) (j + 1) (k + 1)
        end
        else if a.(i) < b.(j) then go (i + 1) j k
        else go i (j + 1) k
      in
      let n = go 0 0 0 in
      if n = 0 then empty
      else if n = la then s
      else if n = lb then t
      else intern (Array.sub buf 0 n)
    end

let diff s t =
  if s.id = t.id then empty
  else
    let a = s.verts and b = t.verts in
    let la = Array.length a and lb = Array.length b in
    if la = 0 then empty
    else if lb = 0 then s
    else begin
      let buf = Array.make la 0 in
      let rec go i j k =
        if i = la then k
        else if j = lb then begin
          Array.blit a i buf k (la - i);
          k + la - i
        end
        else if a.(i) = b.(j) then go (i + 1) (j + 1) k
        else if a.(i) < b.(j) then begin
          buf.(k) <- a.(i);
          go (i + 1) j (k + 1)
        end
        else go i (j + 1) k
      in
      let n = go 0 0 0 in
      if n = 0 then empty else if n = la then s else intern (Array.sub buf 0 n)
    end

let remove v s =
  if not (mem v s) then s
  else
    let a = s.verts in
    let n = Array.length a in
    let buf = Array.make (n - 1) 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if a.(i) <> v then begin
        buf.(!k) <- a.(i);
        incr k
      end
    done;
    intern buf

let add v s =
  if mem v s then s
  else
    let a = s.verts in
    let n = Array.length a in
    let buf = Array.make (n + 1) 0 in
    let k = ref 0 in
    let placed = ref false in
    for i = 0 to n - 1 do
      if (not !placed) && a.(i) > v then begin
        buf.(!k) <- v;
        incr k;
        placed := true
      end;
      buf.(!k) <- a.(i);
      incr k
    done;
    if not !placed then buf.(n) <- v;
    intern buf

(* ------------------------------------------------------------------ *)
(* faces                                                                *)
(* ------------------------------------------------------------------ *)

let enumerate_faces s =
  let a = s.verts in
  let n = Array.length a in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let c = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then incr c
    done;
    let buf = Array.make !c 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        buf.(!k) <- a.(i);
        incr k
      end
    done;
    out := intern buf :: !out
  done;
  !out

let faces s =
  let n = card s in
  if n = 0 then []
  else if n > max_cached_faces_card then enumerate_faces s
  else begin
    let sh = shard_of_key s.verts in
    Mutex.lock sh.s_lock;
    let cached = Hashtbl.find_opt sh.s_faces s.id in
    Mutex.unlock sh.s_lock;
    match cached with
    | Some fs -> fs
    | None ->
      (* two domains may enumerate concurrently; both compute the same
         interned list, so the duplicated work is benign and rare *)
      let fs = enumerate_faces s in
      Mutex.lock sh.s_lock;
      Hashtbl.replace sh.s_faces s.id fs;
      Mutex.unlock sh.s_lock;
      fs
  end

let proper_faces s = List.filter (fun f -> f.id <> s.id) (faces s)

let facets s =
  let a = s.verts in
  let n = Array.length a in
  List.init n (fun drop ->
      let buf = Array.make (n - 1) 0 in
      for i = 0 to n - 2 do
        buf.(i) <- a.(if i < drop then i else i + 1)
      done;
      intern buf)

let subsets_of_card k s =
  let rec choose k = function
    | _ when k = 0 -> [ [] ]
    | [] -> []
    | v :: rest ->
      let with_v = List.map (fun sub -> v :: sub) (choose (k - 1) rest) in
      with_v @ choose k rest
  in
  if k < 0 then []
  else List.map (fun vs -> intern (Array.of_list vs)) (choose k (to_list s))

(* ------------------------------------------------------------------ *)
(* printing and containers                                              *)
(* ------------------------------------------------------------------ *)

let to_string s =
  "{" ^ String.concat "," (List.map string_of_int (to_list s)) ^ "}"

let pp ppf s = Format.pp_print_string ppf (to_string s)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
