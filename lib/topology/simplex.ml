(* Interned simplices over a hash-consed arena.

   A simplex is a strictly increasing [int array] of vertices, interned in a
   global table so that every vertex set has exactly one live representative.
   Consequences exploited throughout the library:

   - [equal]/[hash] are O(1) (the interned [id]);
   - [card]/[dim] are O(1) (array length);
   - [Tbl] keys on the id, so closure/carrier/delta caches cost one integer
     hash per probe instead of a polymorphic traversal;
   - set operations short-circuit to an existing representative whenever the
     result equals one of the operands, avoiding both allocation and an
     arena probe.

   The arena is a publication scheme with domain-local caches, replacing
   the earlier 16-shard mutexed table. Three tiers:

   - a {e domain-local} table (DLS) caching every representative this
     domain has resolved: the steady-state path, no locks, no atomics
     beyond one epoch load;
   - a {e frozen} table published through an [Atomic.t]: built under the
     publish lock, never mutated after the swap, so readers probe it
     lock-free (local miss -> frozen probe);
   - a {e delta} table guarded by the single publish [Mutex]: only a key's
     first-ever intern (a frozen miss) takes the lock, allocates the next
     dense id, and files the new representative. When the delta rivals the
     frozen table it is merged into a fresh frozen table and swapped in —
     geometric growth, so total copy work stays linear.

   Ids are allocated under the publish lock, so they are dense and
   contiguous with no gaps even under domain races. [reset] (only safe
   when no pre-reset simplex is still in use) swaps in an empty frozen
   table, clears the delta, and bumps a global epoch that invalidates
   every domain-local cache on its next access; the canonical empty
   simplex keeps id 0 across resets. *)

type t = { id : int; verts : int array }

(* ------------------------------------------------------------------ *)
(* arena                                                                *)
(* ------------------------------------------------------------------ *)

module Key = struct
  type t = int array

  let equal a b =
    a == b
    || (Array.length a = Array.length b
       &&
       let n = Array.length a in
       let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
       go 0)

  let hash a =
    let h = ref 5381 in
    for i = 0 to Array.length a - 1 do
      h := (!h * 33) lxor a.(i)
    done;
    !h land max_int
end

module Arena = Hashtbl.Make (Key)

let next_id = Atomic.make 0

let max_cached_faces_card = 16

(* Publish lock: guards [delta], id allocation, and the frozen swap. The
   frozen table itself is written only while it is private (during the
   merge, before the [Atomic.set]), so reading it without the lock is
   sound — a reader sees either the old or the new fully-built table. *)
let publish_lock = Mutex.create ()

let frozen : t Arena.t Atomic.t = Atomic.make (Arena.create 1)

let delta : t Arena.t = Arena.create 512

(* Bumped by [reset]; domain-local caches compare it on every access and
   drop their contents when it moved. *)
let epoch = Atomic.make 0

type local = {
  mutable l_epoch : int;
  l_arena : t Arena.t; (* representatives this domain has resolved *)
  l_faces : (int, t list) Hashtbl.t; (* faces cached by interned id *)
}

let local_key =
  Domain.DLS.new_key (fun () ->
      { l_epoch = Atomic.get epoch; l_arena = Arena.create 512; l_faces = Hashtbl.create 128 })

let local () =
  let l = Domain.DLS.get local_key in
  let e = Atomic.get epoch in
  if l.l_epoch <> e then begin
    Arena.reset l.l_arena;
    Hashtbl.reset l.l_faces;
    l.l_epoch <- e
  end;
  l

(* Move everything published so far into one fresh table and swap it in.
   Called under [publish_lock] when the delta has grown to the size of the
   frozen table, so each representative is copied O(1) amortized times. *)
let merge_and_swap fz =
  let merged = Arena.create (2 * (Arena.length fz + Arena.length delta) + 16) in
  Arena.iter (fun k v -> Arena.add merged k v) fz;
  Arena.iter (fun k v -> Arena.add merged k v) delta;
  Atomic.set frozen merged;
  Arena.reset delta

(* [intern verts] takes ownership of [verts] (never copied, never mutated
   afterwards). Fast paths in order: domain-local hit (no locks), frozen
   hit (one atomic load, lock-free probe), then the publish lock for the
   delta probe / first-ever intern. Ids are allocated under the lock, so
   they are dense and contiguous; which simplex gets which id can depend
   on domain interleaving, but ids never leak into results (orders are
   lexicographic on vertices), so outputs stay deterministic. *)
let intern verts =
  let l = local () in
  match Arena.find_opt l.l_arena verts with
  | Some s -> s
  | None ->
    let s =
      match Arena.find_opt (Atomic.get frozen) verts with
      | Some s -> s
      | None ->
        Mutex.lock publish_lock;
        let s =
          (* re-probe the frozen table: it may have been swapped between
             the lock-free miss and acquiring the lock *)
          match Arena.find_opt (Atomic.get frozen) verts with
          | Some s -> s
          | None -> (
            match Arena.find_opt delta verts with
            | Some s -> s
            | None ->
              let s = { id = Atomic.fetch_and_add next_id 1; verts } in
              Arena.add delta verts s;
              let fz = Atomic.get frozen in
              if Arena.length delta >= max 64 (Arena.length fz) then merge_and_swap fz;
              s)
        in
        Mutex.unlock publish_lock;
        s
    in
    (* cache under the canonical verts so a duplicate argument array can be
       collected *)
    Arena.add l.l_arena s.verts s;
    s

let empty = intern [||]

let arena_size () =
  Mutex.lock publish_lock;
  (* frozen and delta are disjoint: a key is published to delta only after
     missing frozen under the lock, and merging clears the delta *)
  let n = Arena.length (Atomic.get frozen) + Arena.length delta in
  Mutex.unlock publish_lock;
  n

let reset () =
  Mutex.lock publish_lock;
  (* keep the canonical empty simplex (and its id 0) alive across resets;
     build the replacement frozen table privately, then swap *)
  let fz = Arena.create 16 in
  Arena.add fz empty.verts empty;
  Atomic.set frozen fz;
  Arena.reset delta;
  Atomic.set next_id 1;
  (* invalidate every domain-local cache *)
  Atomic.incr epoch;
  Mutex.unlock publish_lock

(* ------------------------------------------------------------------ *)
(* construction                                                         *)
(* ------------------------------------------------------------------ *)

let rec strictly_increasing_arr a i =
  i >= Array.length a - 1 || (a.(i) < a.(i + 1) && strictly_increasing_arr a (i + 1))

let of_list vs = intern (Array.of_list (List.sort_uniq Stdlib.compare vs))

let of_sorted vs =
  let a = Array.of_list vs in
  assert (strictly_increasing_arr a 0);
  intern a

let singleton v = intern [| v |]

(* ------------------------------------------------------------------ *)
(* O(1) observers                                                       *)
(* ------------------------------------------------------------------ *)

let id s = s.id

let card s = Array.length s.verts

let dim s = card s - 1

let is_empty s = card s = 0

let equal a b = a.id = b.id

let hash s = s.id

let min_vertex s =
  if is_empty s then invalid_arg "Simplex.min_vertex: empty simplex";
  s.verts.(0)

let max_vertex s =
  if is_empty s then invalid_arg "Simplex.max_vertex: empty simplex";
  s.verts.(card s - 1)

(* ------------------------------------------------------------------ *)
(* traversal                                                            *)
(* ------------------------------------------------------------------ *)

let to_list s = Array.to_list s.verts

let vertices = to_list

let iter f s = Array.iter f s.verts

let fold f init s = Array.fold_left f init s.verts

let for_all f s = Array.for_all f s.verts

let exists f s = Array.exists f s.verts

let nth s i = s.verts.(i)

(* Lexicographic on the vertex sequences — the same total order the previous
   sorted-list representation got from [Stdlib.compare], so every sorted
   output of the library is unchanged by the interning refactor. *)
let compare a b =
  if a.id = b.id then 0
  else
    let va = a.verts and vb = b.verts in
    let la = Array.length va and lb = Array.length vb in
    let n = if la < lb then la else lb in
    let rec go i =
      if i = n then Stdlib.compare la lb
      else
        let c = Stdlib.compare va.(i) vb.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let mem v s =
  let a = s.verts in
  let rec go lo hi =
    lo <= hi
    &&
    let mid = (lo + hi) / 2 in
    let x = a.(mid) in
    if x = v then true else if x < v then go (mid + 1) hi else go lo (mid - 1)
  in
  go 0 (Array.length a - 1)

(* ------------------------------------------------------------------ *)
(* set algebra (sorted-array merges; results re-interned)               *)
(* ------------------------------------------------------------------ *)

let subset s t =
  s.id = t.id
  ||
  let a = s.verts and b = t.verts in
  let la = Array.length a and lb = Array.length b in
  la <= lb
  &&
  let rec go i j =
    if i = la then true
    else if lb - j < la - i then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) < b.(j) then false
    else go i (j + 1)
  in
  go 0 0

let union s t =
  if s.id = t.id then s
  else
    let a = s.verts and b = t.verts in
    let la = Array.length a and lb = Array.length b in
    if la = 0 then t
    else if lb = 0 then s
    else begin
      let buf = Array.make (la + lb) 0 in
      let rec go i j k =
        if i = la then begin
          Array.blit b j buf k (lb - j);
          k + lb - j
        end
        else if j = lb then begin
          Array.blit a i buf k (la - i);
          k + la - i
        end
        else if a.(i) = b.(j) then begin
          buf.(k) <- a.(i);
          go (i + 1) (j + 1) (k + 1)
        end
        else if a.(i) < b.(j) then begin
          buf.(k) <- a.(i);
          go (i + 1) j (k + 1)
        end
        else begin
          buf.(k) <- b.(j);
          go i (j + 1) (k + 1)
        end
      in
      let n = go 0 0 0 in
      (* |a ∪ b| = |a| iff b ⊆ a: reuse the interned operand *)
      if n = la then s else if n = lb then t else intern (Array.sub buf 0 n)
    end

let inter s t =
  if s.id = t.id then s
  else
    let a = s.verts and b = t.verts in
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then empty
    else begin
      let buf = Array.make (if la < lb then la else lb) 0 in
      let rec go i j k =
        if i = la || j = lb then k
        else if a.(i) = b.(j) then begin
          buf.(k) <- a.(i);
          go (i + 1) (j + 1) (k + 1)
        end
        else if a.(i) < b.(j) then go (i + 1) j k
        else go i (j + 1) k
      in
      let n = go 0 0 0 in
      if n = 0 then empty
      else if n = la then s
      else if n = lb then t
      else intern (Array.sub buf 0 n)
    end

let diff s t =
  if s.id = t.id then empty
  else
    let a = s.verts and b = t.verts in
    let la = Array.length a and lb = Array.length b in
    if la = 0 then empty
    else if lb = 0 then s
    else begin
      let buf = Array.make la 0 in
      let rec go i j k =
        if i = la then k
        else if j = lb then begin
          Array.blit a i buf k (la - i);
          k + la - i
        end
        else if a.(i) = b.(j) then go (i + 1) (j + 1) k
        else if a.(i) < b.(j) then begin
          buf.(k) <- a.(i);
          go (i + 1) j (k + 1)
        end
        else go i (j + 1) k
      in
      let n = go 0 0 0 in
      if n = 0 then empty else if n = la then s else intern (Array.sub buf 0 n)
    end

let remove v s =
  if not (mem v s) then s
  else
    let a = s.verts in
    let n = Array.length a in
    let buf = Array.make (n - 1) 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if a.(i) <> v then begin
        buf.(!k) <- a.(i);
        incr k
      end
    done;
    intern buf

let add v s =
  if mem v s then s
  else
    let a = s.verts in
    let n = Array.length a in
    let buf = Array.make (n + 1) 0 in
    let k = ref 0 in
    let placed = ref false in
    for i = 0 to n - 1 do
      if (not !placed) && a.(i) > v then begin
        buf.(!k) <- v;
        incr k;
        placed := true
      end;
      buf.(!k) <- a.(i);
      incr k
    done;
    if not !placed then buf.(n) <- v;
    intern buf

(* ------------------------------------------------------------------ *)
(* faces                                                                *)
(* ------------------------------------------------------------------ *)

let enumerate_faces s =
  let a = s.verts in
  let n = Array.length a in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let c = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then incr c
    done;
    let buf = Array.make !c 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        buf.(!k) <- a.(i);
        incr k
      end
    done;
    out := intern buf :: !out
  done;
  !out

let faces s =
  let n = card s in
  if n = 0 then []
  else if n > max_cached_faces_card then enumerate_faces s
  else begin
    let l = local () in
    match Hashtbl.find_opt l.l_faces s.id with
    | Some fs -> fs
    | None ->
      (* per-domain cache: two domains may enumerate the same simplex, but
         both produce the same interned list and never contend a lock *)
      let fs = enumerate_faces s in
      Hashtbl.replace l.l_faces s.id fs;
      fs
  end

let proper_faces s = List.filter (fun f -> f.id <> s.id) (faces s)

let facets s =
  let a = s.verts in
  let n = Array.length a in
  List.init n (fun drop ->
      let buf = Array.make (n - 1) 0 in
      for i = 0 to n - 2 do
        buf.(i) <- a.(if i < drop then i else i + 1)
      done;
      intern buf)

let subsets_of_card k s =
  let rec choose k = function
    | _ when k = 0 -> [ [] ]
    | [] -> []
    | v :: rest ->
      let with_v = List.map (fun sub -> v :: sub) (choose (k - 1) rest) in
      with_v @ choose k rest
  in
  if k < 0 then []
  else List.map (fun vs -> intern (Array.of_list vs)) (choose k (to_list s))

(* ------------------------------------------------------------------ *)
(* printing and containers                                              *)
(* ------------------------------------------------------------------ *)

let to_string s =
  "{" ^ String.concat "," (List.map string_of_int (to_list s)) ^ "}"

let pp ppf s = Format.pp_print_string ppf (to_string s)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
