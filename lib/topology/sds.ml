type t = {
  sd : Subdiv.t;
  prev : t option;
  own_tbl : (int, int) Hashtbl.t; (* top vertex -> prev vertex *)
  snap_tbl : (int, Simplex.t) Hashtbl.t; (* top vertex -> prev simplex *)
}

let of_chromatic a =
  { sd = Subdiv.identity a; prev = None; own_tbl = Hashtbl.create 0; snap_tbl = Hashtbl.create 0 }

let subdiv t = t.sd

let complex t = t.sd.Subdiv.cx

let base t = t.sd.Subdiv.base

let levels t = t.sd.Subdiv.levels

let prev t = t.prev

let own t v =
  match Hashtbl.find_opt t.own_tbl v with
  | Some u -> u
  | None -> invalid_arg "Sds.own: not available (level 0 or unknown vertex)"

let snap t v =
  match Hashtbl.find_opt t.snap_tbl v with
  | Some s -> s
  | None -> invalid_arg "Sds.snap: not available (level 0 or unknown vertex)"

let carrier t v = t.sd.Subdiv.carrier v

let color t v = Chromatic.color (complex t) v

(* Vertices of the next level are pairs (v, S) with v ∈ S; key them by
   (v, interned id of S) so collection costs one integer-pair hash per
   occurrence instead of a polymorphic comparison of vertex lists. *)
module Key = struct
  type t = int * int (* own prev vertex, interned snap id *)

  let equal (a, b) (c, d) = a = c && b = d

  let hash (a, b) = (a * 0x9e3779b1) lxor b
end

module Key_tbl = Hashtbl.Make (Key)

let c_memo_hits = Wfc_obs.Metrics.counter "sds.memo.hits"

let c_memo_misses = Wfc_obs.Metrics.counter "sds.memo.misses"

let c_facets = Wfc_obs.Metrics.counter "sds.facets"

let c_skel_hits = Wfc_obs.Metrics.counter "sds.skeleton.hits"

let c_skel_misses = Wfc_obs.Metrics.counter "sds.skeleton.misses"

(* [subdivide] splits into two halves. [enumerate] is the combinatorial
   search: the vertex universe (all (v, S) with v ∈ S) and the
   ordered-partition facet expansion — the part whose cost explodes with
   the level. [build_level] is the deterministic tail that turns that
   enumeration into a chromatic complex with carriers and Kozlov points.
   The split exists so a persisted skeleton — exactly the enumeration
   output — can skip the search and replay only the tail, bit-for-bit. *)
let enumerate t =
  let prev_cx = complex t in
  let prev_complex = Chromatic.complex prev_cx in
  (* Collect the vertex universe: all (v, S) with v ∈ S a simplex. The
     simplices of the closure are exactly the possible snapshots. *)
  let seen = Key_tbl.create 1024 in
  let pairs = ref [] in
  List.iter
    (fun s ->
      Simplex.iter
        (fun v ->
          let key = (v, Simplex.id s) in
          if not (Key_tbl.mem seen key) then begin
            Key_tbl.add seen key ();
            pairs := (v, s) :: !pairs
          end)
        s)
    (Complex.simplices prev_complex);
  (* Number vertices in the historical order — ascending (v, snap) — so the
     complexes produced are bit-for-bit those of the list-keyed builder. *)
  let ordered =
    List.sort
      (fun (v1, s1) (v2, s2) ->
        if v1 <> v2 then compare v1 v2 else Simplex.compare s1 s2)
      !pairs
  in
  let nverts = List.length ordered in
  let ids = Key_tbl.create nverts in
  List.iteri (fun i (v, s) -> Key_tbl.replace ids (v, Simplex.id s) i) ordered;
  let id_of v s = Key_tbl.find ids (v, Simplex.id s) in
  (* Facets: ordered partitions of each facet of the previous complex. Top
     facets are independent, so they subdivide in parallel when the domain
     pool is enabled; the per-facet map preserves facet order, [ids] is only
     read, and every prefix simplex is already interned (it is a face of a
     closure simplex) or interns through the domain-safe publication arena
     — so the concatenation is bit-for-bit the sequential facet list. *)
  let facets =
    Wfc_par.map_array
      (fun facet ->
        let vs = Simplex.to_list facet in
        List.map
          (fun partition ->
            List.map
              (fun (v, prefix) -> id_of v (Simplex.of_sorted prefix))
              (Ordered_partition.views partition))
          (Ordered_partition.enumerate vs))
      (Array.of_list (Complex.facets prev_complex))
    |> Array.to_list |> List.concat
  in
  (ordered, facets)

let build_level t (ordered, facets) =
  let prev_cx = complex t in
  let prev_complex = Chromatic.complex prev_cx in
  let nverts = List.length ordered in
  Wfc_obs.Metrics.add c_facets (List.length facets);
  let new_complex =
    Complex.of_facets ~name:(Complex.name prev_complex ^ "'") facets
  in
  let own_tbl = Hashtbl.create nverts in
  let snap_tbl = Hashtbl.create nverts in
  List.iteri
    (fun id (v, s) ->
      Hashtbl.replace own_tbl id v;
      Hashtbl.replace snap_tbl id s)
    ordered;
  let color_of id = Chromatic.color prev_cx (Hashtbl.find own_tbl id) in
  let chroma = Chromatic.make ~check:false new_complex ~color:color_of in
  (* Carrier in the base: union of previous carriers over the snapshot. *)
  let carrier_tbl = Hashtbl.create nverts in
  Hashtbl.iter
    (fun id s ->
      let c =
        Simplex.fold (fun acc u -> Simplex.union acc (t.sd.Subdiv.carrier u)) Simplex.empty s
      in
      Hashtbl.replace carrier_tbl id c)
    snap_tbl;
  (* Kozlov realization relative to the previous level's points. *)
  let point_tbl = Hashtbl.create nverts in
  Hashtbl.iter
    (fun id s ->
      let v = Hashtbl.find own_tbl id in
      let q = Simplex.card s in
      let denom = (2 * q) - 1 in
      let terms =
        List.map
          (fun u ->
            let w = if u = v then 1 else 2 in
            (Rat.make w denom, t.sd.Subdiv.point u))
          (Simplex.to_list s)
      in
      Hashtbl.replace point_tbl id (Point.combine terms))
    snap_tbl;
  let sd =
    Subdiv.make ~kind:"sds"
      ~levels:(t.sd.Subdiv.levels + 1)
      ~base:t.sd.Subdiv.base ~cx:chroma
      ~carrier:(fun v -> Hashtbl.find carrier_tbl v)
      ~point:(fun v -> Hashtbl.find point_tbl v)
  in
  { sd; prev = Some t; own_tbl; snap_tbl }

let subdivide t =
  Wfc_obs.Metrics.with_span "sds.subdivide" @@ fun () ->
  build_level t (enumerate t)

(* ---- persisted skeletons (wfc.skeleton.v1) ----

   A skeleton artifact is the [enumerate] output of one subdivision step —
   vertex pairs (own, snapshot) and facet id-lists — keyed by the
   structural digest of the {e base} complex and the target level.
   Rebuilding through [build_level] reproduces the step bit-for-bit, so a
   cold process solving against an already-seen [SDS^b(sⁿ)] loads b small
   artifacts instead of re-running the ordered-partition search. The store
   itself is injected ([set_skeleton_store]) so this library stays
   storage-agnostic; any load failure — absent, torn, wrong digest, wrong
   check — silently falls back to [subdivide] and re-saves. *)

type skeleton_store = {
  load : digest:string -> level:int -> string option;
  save : digest:string -> level:int -> string -> unit;
}

let skeleton_schema = "wfc.skeleton.v1"

let skel_store : skeleton_store option ref = ref None

let set_skeleton_store s = skel_store := s

let skeleton_core ~digest ~level ~pairs ~facets =
  let open Wfc_obs.Json in
  [
    ("schema", String skeleton_schema);
    ("base_digest", String digest);
    ("level", Int level);
    ( "pairs",
      Arr
        (List.map
           (fun (v, s) -> Arr [ Int v; Arr (List.map (fun u -> Int u) s) ])
           pairs) );
    ("facets", Arr (List.map (fun f -> Arr (List.map (fun v -> Int v) f)) facets));
  ]

let encode_skeleton ~digest ~level (ordered, facets) =
  let pairs = List.map (fun (v, s) -> (v, Simplex.to_list s)) ordered in
  let core = skeleton_core ~digest ~level ~pairs ~facets in
  let check =
    Digest.to_hex (Digest.string (Wfc_obs.Json.to_line (Wfc_obs.Json.Obj core)))
  in
  Wfc_obs.Json.to_string
    (Wfc_obs.Json.Obj (core @ [ ("check", Wfc_obs.Json.String check) ]))

let decode_skeleton ~digest ~level data =
  let open Wfc_obs.Json in
  let ( let* ) = Option.bind in
  let* j = Result.to_option (parse data) in
  let* schema = member "schema" j in
  let* base_digest = member "base_digest" j in
  let* lvl = member "level" j in
  let* () =
    if schema = String skeleton_schema && base_digest = String digest && lvl = Int level
    then Some ()
    else None
  in
  let int_of = function Int i when i >= 0 -> Some i | _ -> None in
  let ints_of = function
    | Arr l ->
      List.fold_right
        (fun x acc ->
          let* acc = acc in
          let* i = int_of x in
          Some (i :: acc))
        l (Some [])
    | _ -> None
  in
  let* pairs =
    match member "pairs" j with
    | Some (Arr l) ->
      List.fold_right
        (fun x acc ->
          let* acc = acc in
          match x with
          | Arr [ v; s ] ->
            let* v = int_of v in
            let* s = ints_of s in
            Some ((v, s) :: acc)
          | _ -> None)
        l (Some [])
    | _ -> None
  in
  let* facets =
    match member "facets" j with
    | Some (Arr l) ->
      List.fold_right
        (fun x acc ->
          let* acc = acc in
          let* f = ints_of x in
          Some (f :: acc))
        l (Some [])
    | _ -> None
  in
  (* integrity: the artifact carries the digest of its own core *)
  let* check = member "check" j in
  let core = skeleton_core ~digest ~level ~pairs ~facets in
  let expect = Digest.to_hex (Digest.string (to_line (Obj core))) in
  let* () = if check = String expect then Some () else None in
  let ordered = List.map (fun (v, s) -> (v, Simplex.of_sorted s)) pairs in
  Some (ordered, facets)

(* One subdivision step under the store: replay a persisted skeleton when
   one matches, otherwise enumerate, build, and persist. *)
let next_level ~digest t k' =
  match !skel_store with
  | None -> subdivide t
  | Some st -> (
    match Option.bind (st.load ~digest ~level:k') (decode_skeleton ~digest ~level:k') with
    | Some step ->
      Wfc_obs.Metrics.incr c_skel_hits;
      Wfc_obs.Metrics.with_span "sds.skeleton.replay" @@ fun () ->
      build_level t step
    | None ->
      Wfc_obs.Metrics.incr c_skel_misses;
      Wfc_obs.Metrics.with_span "sds.subdivide" @@ fun () ->
      let step = enumerate t in
      let t' = build_level t step in
      (try st.save ~digest ~level:k' (encode_skeleton ~digest ~level:k' step)
       with _ -> ());
      t')

(* [iterate] memo: keyed by (base name, structural digest, level). The digest
   renders the base's facets with their colors — independent of the simplex
   arena, so it survives [Simplex.reset] semantics — which means two distinct
   complexes that happen to share a name get distinct slots. The old
   name-only key let them evict each other's subdivision chains on every
   alternation (and served whichever chain was filed last, pending an
   [Chromatic.equal] re-check). The name stays in the key so derived complex
   names ("x'", "x''") never alias across differently-named equal bases.
   Levels share their [prev] chain, so solving a task at increasing levels
   re-subdivides only the top level instead of rebuilding from scratch. *)
let memo : (string * string * int, t) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset memo

let structural_digest a =
  let cx = Chromatic.complex a in
  let facet f =
    String.concat ","
      (List.map (fun v -> Printf.sprintf "%d:%d" v (Chromatic.color a v)) (Simplex.to_list f))
  in
  Digest.to_hex
    (Digest.string (String.concat ";" (List.sort compare (List.map facet (Complex.facets cx)))))

let iterate a b =
  if b < 0 then invalid_arg "Sds.iterate: negative level";
  let name = Complex.name (Chromatic.complex a) in
  let digest = structural_digest a in
  let matches t = Chromatic.equal (base t) a in
  let rec cached k =
    if k < 0 then (0, of_chromatic a)
    else
      match Hashtbl.find_opt memo ((name, digest, k)) with
      | Some t when matches t ->
        Wfc_obs.Metrics.incr c_memo_hits;
        (k, t)
      | _ -> cached (k - 1)
  in
  let k0, t0 = cached b in
  Hashtbl.replace memo (name, digest, k0) t0;
  let rec go t k =
    if k = b then t
    else begin
      Wfc_obs.Metrics.incr c_memo_misses;
      let t' = next_level ~digest t (k + 1) in
      Hashtbl.replace memo (name, digest, k + 1) t';
      go t' (k + 1)
    end
  in
  go t0 k0

let standard ~dim ~levels = iterate (Chromatic.standard_simplex dim) levels

let facet_partition t facet =
  if t.prev = None then invalid_arg "Sds.facet_partition: level 0";
  if not (Complex.is_facet facet (Chromatic.complex (complex t))) then
    invalid_arg "Sds.facet_partition: not a facet";
  let vs = Simplex.to_list facet in
  (* Vertices of a facet sorted by snapshot size recover the blocks: block j
     holds the processes whose snapshot is the union of blocks 1..j. *)
  let by_size =
    List.sort
      (fun a b -> compare (Simplex.card (snap t a)) (Simplex.card (snap t b)))
      vs
  in
  let rec blocks = function
    | [] -> []
    | v :: _ as group ->
      let size = Simplex.card (snap t v) in
      let same, rest = List.partition (fun u -> Simplex.card (snap t u) = size) group in
      List.sort Stdlib.compare (List.map (own t) same) :: blocks rest
  in
  blocks by_size

let rec canonical_view t v =
  match t.prev with
  | None -> Printf.sprintf "#%d" v
  | Some p ->
    let members = List.map (canonical_view p) (Simplex.to_list (snap t v)) in
    Printf.sprintf "P%d{%s}" (color t v) (String.concat "," (List.sort Stdlib.compare members))

let count_facets ~dim ~levels =
  let a = Ordered_partition.count (dim + 1) in
  let rec pow acc k = if k = 0 then acc else pow (acc * a) (k - 1) in
  pow 1 levels

let vertex_of_view t ~color:c ~snap:s =
  let found = ref None in
  Hashtbl.iter
    (fun id s' ->
      if !found = None && Simplex.equal s s' && color t id = c then found := Some id)
    t.snap_tbl;
  !found
