type t = {
  sd : Subdiv.t;
  prev : t option;
  face_tbl : (int, Simplex.t) Hashtbl.t; (* vertex -> previous-level simplex *)
}

let of_chromatic a = { sd = Subdiv.identity a; prev = None; face_tbl = Hashtbl.create 0 }

let subdiv t = t.sd

let complex t = t.sd.Subdiv.cx

let levels t = t.sd.Subdiv.levels

let prev t = t.prev

let face_of_vertex t v =
  match Hashtbl.find_opt t.face_tbl v with
  | Some s -> s
  | None -> invalid_arg "Subdivision.face_of_vertex: not available (level 0 or unknown vertex)"

(* Maximal flags of a facet F correspond to permutations of its vertices:
   the permutation (v1, ..., vk) yields the flag {v1} ⊂ {v1,v2} ⊂ ... ⊂ F. *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x -> List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) xs)))
      xs

let subdivide t =
  let prev_cx = complex t in
  let prev_complex = Chromatic.complex prev_cx in
  let faces = Complex.simplices prev_complex in
  let ids = Simplex.Tbl.create (List.length faces) in
  List.iteri (fun i s -> Simplex.Tbl.replace ids s i) faces;
  let id_of s = Simplex.Tbl.find ids s in
  let facets =
    List.concat_map
      (fun facet ->
        let vs = Simplex.to_list facet in
        List.map
          (fun perm ->
            let rec prefixes acc = function
              | [] -> []
              | v :: rest ->
                let acc = Simplex.add v acc in
                id_of acc :: prefixes acc rest
            in
            prefixes Simplex.empty perm)
          (permutations vs))
      (Complex.facets prev_complex)
  in
  let new_complex = Complex.of_facets ~name:(Complex.name prev_complex ^ "~") facets in
  let face_tbl = Hashtbl.create (List.length faces) in
  Simplex.Tbl.iter (fun s i -> Hashtbl.replace face_tbl i s) ids;
  let chroma =
    Chromatic.make ~check:false new_complex ~color:(fun v ->
        Simplex.dim (Hashtbl.find face_tbl v))
  in
  let carrier_tbl = Hashtbl.create (List.length faces) in
  let point_tbl = Hashtbl.create (List.length faces) in
  Hashtbl.iter
    (fun id s ->
      let c =
        Simplex.fold (fun acc u -> Simplex.union acc (t.sd.Subdiv.carrier u)) Simplex.empty s
      in
      Hashtbl.replace carrier_tbl id c;
      Hashtbl.replace point_tbl id
        (Point.barycenter (List.map t.sd.Subdiv.point (Simplex.to_list s))))
    face_tbl;
  let sd =
    Subdiv.make ~kind:"bsd"
      ~levels:(t.sd.Subdiv.levels + 1)
      ~base:t.sd.Subdiv.base ~cx:chroma
      ~carrier:(fun v -> Hashtbl.find carrier_tbl v)
      ~point:(fun v -> Hashtbl.find point_tbl v)
  in
  { sd; prev = Some t; face_tbl }

let iterate a k =
  if k < 0 then invalid_arg "Subdivision.iterate: negative level";
  let rec go acc i = if i = 0 then acc else go (subdivide acc) (i - 1) in
  go (of_chromatic a) k

let sds_to_bsd sds bsd =
  if Sds.levels sds <> 1 || levels bsd <> 1 then
    invalid_arg "Subdivision.sds_to_bsd: both arguments must be one-level subdivisions";
  if not (Complex.equal (Chromatic.complex (Sds.base sds)) (Chromatic.complex (subdiv bsd).Subdiv.base))
  then invalid_arg "Subdivision.sds_to_bsd: different base complexes";
  let barycenter_id = Simplex.Tbl.create 64 in
  Hashtbl.iter (fun id s -> Simplex.Tbl.replace barycenter_id s id) bsd.face_tbl;
  Simplicial_map.make
    ~src:(Chromatic.complex (Sds.complex sds))
    ~dst:(Chromatic.complex (complex bsd))
    (fun v -> Simplex.Tbl.find barycenter_id (Sds.snap sds v))

let count_facets ~dim ~levels =
  let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
  let per_level = fact (dim + 1) in
  let rec pow acc k = if k = 0 then acc else pow (acc * per_level) (k - 1) in
  pow 1 levels
