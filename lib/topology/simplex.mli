(** Simplices as interned, array-backed vertex sets.

    Following the paper (§2), an [n]-dimensional simplex is a set of [n + 1]
    vertices. Vertices are dense integer identifiers managed by the enclosing
    {!Complex}. The canonical representation is a strictly increasing vertex
    array, hash-consed in a global arena: every vertex set has a unique live
    representative carrying a stable {!id}, so {!equal}, {!Tbl} hashing,
    {!card} and {!dim} are all O(1). Set operations ([union], [inter], …)
    work by sorted-array merge and return an existing representative whenever
    the result coincides with an operand.

    The arena is a three-tier publication scheme: each domain keeps a
    local cache of the representatives it has resolved (no locks), misses
    probe a frozen read-only table published through an atomic (lock-free),
    and only a vertex set's first-ever intern takes the single publish
    lock to allocate the next dense id and file the newcomer — so the
    concurrent subdivision and solvability engines intern without a global
    bottleneck. Ids remain dense, contiguous and stable. The arena can be
    emptied with {!reset} for long-running processes. *)

type t

val of_list : int list -> t
(** Sorts and de-duplicates. [of_list [] ] is the empty simplex, which only
    appears transiently (complexes store non-empty simplices). *)

val of_sorted : int list -> t
(** Trusts the input to be strictly increasing (checked with [assert]). *)

val to_list : t -> int list

val vertices : t -> int list
(** Alias of {!to_list}. *)

val singleton : int -> t

val empty : t

val is_empty : t -> bool

val dim : t -> int
(** [card - 1]; the empty simplex has dimension [-1]. O(1). *)

val card : t -> int
(** O(1). *)

val id : t -> int
(** The interned identifier: [equal s t] iff [id s = id t]. Stable for the
    lifetime of the arena (until {!reset}); dense from 0, so it can index
    arrays sized by {!arena_size}. Which id a given vertex set receives may
    depend on domain interleaving when interning runs in parallel — ids are
    identity tokens, never an ordering ({!compare} is lexicographic on the
    vertices). *)

val mem : int -> t -> bool
(** Binary search, O(log card). *)

val min_vertex : t -> int
(** Smallest vertex, O(1). @raise Invalid_argument on the empty simplex. *)

val max_vertex : t -> int
(** Largest vertex, O(1). @raise Invalid_argument on the empty simplex. *)

val nth : t -> int -> int
(** [nth s i] is the [i]-th smallest vertex (unchecked array access). *)

val subset : t -> t -> bool
(** [subset s t] iff [s] is a face of [t] (improper faces included). *)

val equal : t -> t -> bool
(** O(1): interned-id comparison. *)

val hash : t -> int
(** O(1): the interned id. *)

val compare : t -> t -> int
(** Lexicographic on the sorted vertex sequences — the same total order as
    the historical sorted-list representation, so sorted outputs are
    reproducible across the interning refactor. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val remove : int -> t -> t

val add : int -> t -> t

val iter : (int -> unit) -> t -> unit
(** Vertex iteration in increasing order, no allocation. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
(** Left fold over vertices in increasing order, no allocation. *)

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val faces : t -> t list
(** All non-empty faces, including [t] itself. [2^card - 1] of them. Cached
    per interned simplex (for [card <= 16]), so repeated closure
    computations share one enumeration. *)

val proper_faces : t -> t list
(** All non-empty faces excluding [t] itself. *)

val facets : t -> t list
(** Codimension-1 faces: [t] minus each single vertex. *)

val subsets_of_card : int -> t -> t list

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val arena_size : unit -> int
(** Number of distinct simplices currently interned. *)

val reset : unit -> unit
(** Empties the arena and the face cache (the empty simplex survives with
    its identity). Only safe when no simplex interned before the reset is
    still reachable: stale values would compare by [id] against fresh ones.
    Intended for tests and long-running processes between independent
    workloads. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

module Tbl : Hashtbl.S with type key = t
