(** Subdivisions of chromatic complexes, with carriers and realization.

    A value of type {!t} packages a subdivision [B(A)] of a base complex [A]
    (§2): the subdivided complex, the carrier of each of its vertices (the
    smallest simplex of [A] whose convex hull contains it), and a geometric
    realization that expresses every subdivision vertex in barycentric
    coordinates over the base vertices. Both the standard chromatic
    subdivision ({!Sds}) and the barycentric subdivision ({!Subdivision})
    produce this representation, so carrier bookkeeping, face restriction,
    geometric validation and point location are shared here. *)

type t = {
  kind : string;  (** e.g. ["sds"], ["bsd"], ["id"] *)
  levels : int;  (** number of subdivision iterations over [base] *)
  base : Chromatic.t;
  cx : Chromatic.t;  (** the subdivided complex *)
  carrier : int -> Simplex.t;
      (** carrier of a subdivision vertex, as a simplex of [base] *)
  point : int -> Point.t;
      (** realization: barycentric coordinates over the base vertices, in the
          order given by [Complex.vertices (Chromatic.complex base)] *)
  scarrier_cache : Simplex.t Simplex.Tbl.t;
      (** per-subdivision memo of {!simplex_carrier}, keyed on the interned
          simplex id — construct values with {!make} to get a fresh one *)
}

val make :
  kind:string ->
  levels:int ->
  base:Chromatic.t ->
  cx:Chromatic.t ->
  carrier:(int -> Simplex.t) ->
  point:(int -> Point.t) ->
  t
(** Packages a subdivision with an empty carrier cache. *)

val identity : Chromatic.t -> t
(** The trivial subdivision [SDS^0(A) = A]. *)

val simplex_carrier : t -> Simplex.t -> Simplex.t
(** Carrier of a subdivision simplex: the union of its vertices' carriers
    (always a simplex of the base; checked with [assert] on first
    computation, then memoized per interned simplex). *)

val face : t -> Simplex.t -> Complex.t option
(** [face sd q]: the subcomplex of subdivision simplices whose carrier is a
    face of the base simplex [q] — the face [B(s^q)] of the paper. [None]
    when empty. *)

val boundary_vertices : t -> int list
(** Subdivision vertices whose carrier is a proper face of some base facet
    (for a subdivided simplex: the vertices on the boundary sphere). *)

val base_point : t -> int -> Point.t
(** Standard realization of a base vertex: the unit barycentric point. *)

val base_simplex_points : t -> Simplex.t -> Point.t list

val carrier_of_point : t -> Point.t -> Simplex.t option
(** The smallest base simplex whose convex hull contains the point, if the
    point lies in the realization of the base at all. *)

val locate_facet : t -> Point.t -> Simplex.t option
(** Some subdivision facet whose closed realization contains the point. *)

val is_carrier_preserving : t -> t -> Simplicial_map.t -> bool
(** [is_carrier_preserving a b phi]: both subdivisions must share the same
    base; checks [carrier v = carrier (phi v)] for all vertices of [a]. *)

val is_carrier_monotone : t -> t -> Simplicial_map.t -> bool
(** Weaker: [carrier (phi v) ⊆ carrier v]. This is what star-based
    simplicial approximation guarantees. *)

val check_geometric : t -> (unit, string) result
(** Validates that the recorded realization is a genuine subdivision:
    every vertex point is barycentric and supported on its carrier; facet
    point sets are affinely independent; and per base facet the chart
    volumes of the covering subdivision facets sum to the base facet's
    volume. *)

val mesh_sq : t -> Rat.t
(** The squared mesh of the realization: the maximum squared Euclidean
    length of an edge, with vertices read as points of [R^N] in barycentric
    coordinates. The quantitative content of "for all k large enough"
    (Lemma 2.1): iterating a subdivision drives the mesh to zero
    geometrically, which is what makes star-based simplicial approximation
    eventually succeed. *)

val sample_cover_count : t -> Random.State.t -> Simplex.t -> int
(** Picks a random rational point in the interior of the given base facet
    and counts the subdivision facets whose closed hull contains it (a
    subdivision yields 1 for almost every sample; >1 only on shared
    boundaries). *)
