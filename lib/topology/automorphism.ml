type vertex_map = (int, int) Hashtbl.t

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let color_permutations colors =
  let colors = List.sort_uniq compare colors in
  List.map
    (fun image ->
      let assoc = List.combine colors image in
      fun c -> List.assoc c assoc)
    (permutations colors)

(* Same vertex invariants as Iso.signature, minus the color (handled by the
   [perm] constraint directly). *)
let signature c v =
  let facet_dims =
    List.filter_map
      (fun f -> if Simplex.mem v f then Some (Simplex.dim f) else None)
      (Complex.facets c)
    |> List.sort Stdlib.compare
  in
  let membership =
    List.length (List.filter (fun s -> Simplex.mem v s) (Complex.simplices c))
  in
  (facet_dims, membership)

let automorphisms ?(limit = 64) ?(fuel = 200_000) chroma ~perm =
  let c = Chromatic.complex chroma in
  let color = Chromatic.color chroma in
  let vs = Complex.vertices c in
  let sigs = List.map (fun v -> (v, signature c v)) vs in
  let candidates v =
    let s = List.assoc v sigs in
    let cv = perm (color v) in
    List.filter_map
      (fun (w, s') -> if s = s' && color w = cv then Some w else None)
      sigs
  in
  let cand = List.map (fun v -> (v, candidates v)) vs in
  if List.exists (fun (_, cs) -> cs = []) cand then []
  else begin
    let order =
      List.stable_sort
        (fun (_, c1) (_, c2) -> compare (List.length c1) (List.length c2))
        cand
    in
    let mapping : vertex_map = Hashtbl.create (List.length vs) in
    let used = Hashtbl.create (List.length vs) in
    let facets = Complex.facets c in
    (* facets indexed by vertex: assigning v only changes the mapped image
       of facets containing v, so consistency is re-checked incrementally —
       every other facet's image is exactly as it was when its own last
       vertex was assigned. The final [full_check] still certifies the
       complete bijection facet-set-onto. *)
    let facets_at = Hashtbl.create (List.length vs) in
    List.iter
      (fun f ->
        List.iter
          (fun v ->
            let prev = try Hashtbl.find facets_at v with Not_found -> [] in
            Hashtbl.replace facets_at v (f :: prev))
          (Simplex.to_list f))
      facets;
    let consistent v =
      List.for_all
        (fun f ->
          let img =
            List.filter_map (fun u -> Hashtbl.find_opt mapping u) (Simplex.to_list f)
          in
          match img with
          | [] -> true
          | img ->
            let s = Simplex.of_list img in
            Simplex.card s = List.length img && Complex.mem s c)
        (try Hashtbl.find facets_at v with Not_found -> [])
    in
    let full_check () =
      let images =
        List.map
          (fun f ->
            Simplex.of_list (List.map (fun v -> Hashtbl.find mapping v) (Simplex.to_list f)))
          facets
        |> List.sort_uniq Simplex.compare
      in
      List.equal Simplex.equal images facets
    in
    let found = ref [] and nfound = ref 0 in
    let fuel = ref fuel in
    let rec search = function
      | [] -> if full_check () then begin
          found := Hashtbl.copy mapping :: !found;
          incr nfound
        end
      | (v, cs) :: rest ->
        List.iter
          (fun w ->
            if !nfound < limit && !fuel > 0 && not (Hashtbl.mem used w) then begin
              decr fuel;
              Hashtbl.replace mapping v w;
              Hashtbl.replace used w ();
              if consistent v then search rest;
              Hashtbl.remove mapping v;
              Hashtbl.remove used w
            end)
          cs
    in
    search order;
    List.rev !found
  end

let rec lift sds (base_map : vertex_map) =
  match Sds.prev sds with
  | None ->
    let cx = Chromatic.complex (Sds.complex sds) in
    let out : vertex_map = Hashtbl.create 16 in
    let ok = ref true in
    List.iter
      (fun v ->
        match Hashtbl.find_opt base_map v with
        | Some w when Complex.mem_vertex w cx -> Hashtbl.replace out v w
        | _ -> ok := false)
      (Complex.vertices cx);
    if !ok then Some out else None
  | Some p -> (
    match lift p base_map with
    | None -> None
    | Some prev_map ->
      let cx = Chromatic.complex (Sds.complex sds) in
      let vertices = Complex.vertices cx in
      (* reverse index of the top level's (own, snap) naming *)
      let index = Hashtbl.create (List.length vertices) in
      List.iter
        (fun v ->
          Hashtbl.replace index (Sds.own sds v, Simplex.id (Sds.snap sds v)) v)
        vertices;
      let map_prev u = Hashtbl.find_opt prev_map u in
      let out : vertex_map = Hashtbl.create (List.length vertices) in
      let ok = ref true in
      List.iter
        (fun v ->
          if !ok then begin
            let own' = map_prev (Sds.own sds v) in
            let snap' =
              Simplex.fold
                (fun acc u ->
                  match (acc, map_prev u) with
                  | Some l, Some u' -> Some (u' :: l)
                  | _ -> None)
                (Some [])
                (Sds.snap sds v)
            in
            match (own', snap') with
            | Some o, Some members -> (
              match Hashtbl.find_opt index (o, Simplex.id (Simplex.of_list members)) with
              | Some v' -> Hashtbl.replace out v v'
              | None -> ok := false)
            | _ -> ok := false
          end)
        vertices;
      if !ok then Some out else None)
