(** Color-permutation automorphisms of chromatic complexes, and their lifts
    through the standard chromatic subdivision.

    Builds on {!Iso}: where [Iso] decides whether {e some} isomorphism
    exists between two complexes, this module {e enumerates} the
    automorphisms of one chromatic complex that realize a given color
    (process) permutation — the raw material for the task-level symmetry
    group [(I, O, Δ)] assembled by [Wfc_tasks.Task.automorphisms] and
    consumed by the solvability engine's orbit pruning.

    Vertex maps are total maps over the complex's vertices, represented as
    hash tables. Enumeration order is deterministic. *)

type vertex_map = (int, int) Hashtbl.t

val color_permutations : int list -> (int -> int) list
(** All bijections of a color set onto itself (including the identity), in
    a deterministic order. The argument is deduplicated and sorted first.
    Size is factorial in the number of colors — callers keep color sets at
    process-count scale. *)

val automorphisms :
  ?limit:int -> ?fuel:int -> Chromatic.t -> perm:(int -> int) -> vertex_map list
(** Every vertex bijection [σ] of the complex with
    [color (σ v) = perm (color v)] that maps the facet set onto itself
    (a chromatic simplicial automorphism over the given color
    permutation). Backtracking with signature pre-filtering as in {!Iso};
    at most [limit] maps are returned (default 64) and the search gives up
    after [fuel] branch nodes (default 200_000), so pathological complexes
    degrade to a {e subset} of the group — always sound for orbit pruning,
    which only needs each returned map to be a genuine automorphism. *)

val lift : Sds.t -> vertex_map -> vertex_map option
(** Lift a base-complex automorphism level-by-level through an iterated
    standard chromatic subdivision: the vertex [(v, S)] maps to
    [(σ v, σ S)] with [σ] the lift one level down. Subdivision is
    functorial, so the lift of an automorphism always exists and is an
    automorphism of the top complex; [None] signals a map that is not an
    automorphism of the base (some image vertex does not exist). At level
    0 the lift is the map itself. *)
