type t = {
  kind : string;
  levels : int;
  base : Chromatic.t;
  cx : Chromatic.t;
  carrier : int -> Simplex.t;
  point : int -> Point.t;
  scarrier_cache : Simplex.t Simplex.Tbl.t;
}

let make ~kind ~levels ~base ~cx ~carrier ~point =
  { kind; levels; base; cx; carrier; point; scarrier_cache = Simplex.Tbl.create 256 }

let base_vertex_order base = Complex.vertices (Chromatic.complex base)

let base_index base =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace tbl v i) (base_vertex_order base);
  tbl

let identity base =
  let idx = base_index base in
  let n = Hashtbl.length idx in
  make ~kind:"id" ~levels:0 ~base ~cx:base
    ~carrier:(fun v -> Simplex.singleton v)
    ~point:(fun v -> Point.unit n (Hashtbl.find idx v))

let c_carrier_hits = Wfc_obs.Metrics.counter "subdiv.carrier.hits"

let c_carrier_misses = Wfc_obs.Metrics.counter "subdiv.carrier.misses"

let simplex_carrier sd s =
  match Simplex.Tbl.find_opt sd.scarrier_cache s with
  | Some carrier ->
    Wfc_obs.Metrics.incr c_carrier_hits;
    carrier
  | None ->
    Wfc_obs.Metrics.incr c_carrier_misses;
    let carrier = Simplex.fold (fun acc v -> Simplex.union acc (sd.carrier v)) Simplex.empty s in
    assert (Complex.mem carrier (Chromatic.complex sd.base));
    Simplex.Tbl.add sd.scarrier_cache s carrier;
    carrier

let face sd q =
  let survivors =
    List.filter
      (fun s -> Simplex.subset (simplex_carrier sd s) q)
      (Complex.simplices (Chromatic.complex sd.cx))
  in
  if survivors = [] then None
  else Some (Complex.of_simplices ~name:(Complex.name (Chromatic.complex sd.cx) ^ "-face") survivors)

let boundary_vertices sd =
  let base_cx = Chromatic.complex sd.base in
  let proper v =
    let c = sd.carrier v in
    List.exists (fun f -> Simplex.subset c f && not (Simplex.equal c f)) (Complex.facets base_cx)
  in
  List.filter proper (Complex.vertices (Chromatic.complex sd.cx))

let base_point sd v =
  let idx = base_index sd.base in
  Point.unit (Hashtbl.length idx) (Hashtbl.find idx v)

let base_simplex_points sd s = List.map (base_point sd) (Simplex.to_list s)

let carrier_of_point sd p =
  if not (Point.is_barycentric p) then None
  else begin
    let order = Array.of_list (base_vertex_order sd.base) in
    let support = ref [] in
    Array.iteri
      (fun i v -> if not (Rat.is_zero (Point.coord p i)) then support := v :: !support)
      order;
    let s = Simplex.of_list !support in
    if Complex.mem s (Chromatic.complex sd.base) then Some s else None
  end

let locate_facet sd p =
  let facet_contains f =
    let pts = List.map sd.point (Simplex.to_list f) in
    Point.in_simplex pts p
  in
  List.find_opt facet_contains (Complex.facets (Chromatic.complex sd.cx))

let same_base a b = Complex.equal (Chromatic.complex a.base) (Chromatic.complex b.base)

let is_carrier_preserving a b phi =
  same_base a b
  && List.for_all
       (fun v -> Simplex.equal (a.carrier v) (b.carrier (Simplicial_map.apply_vertex phi v)))
       (Complex.vertices (Chromatic.complex a.cx))

let is_carrier_monotone a b phi =
  same_base a b
  && List.for_all
       (fun v -> Simplex.subset (b.carrier (Simplicial_map.apply_vertex phi v)) (a.carrier v))
       (Complex.vertices (Chromatic.complex a.cx))

(* Chart coordinates of a point within a base simplex [sigma]: restrict the
   barycentric coordinates to sigma's vertices and drop the last one. The
   base simplex itself becomes a chart simplex of scaled volume 1. *)
let chart_point sd sigma p =
  let idx = base_index sd.base in
  let vs = Simplex.to_list sigma in
  let coords = List.map (fun v -> Point.coord p (Hashtbl.find idx v)) vs in
  match List.rev coords with
  | [] -> invalid_arg "Subdiv.chart_point: empty simplex"
  | _last :: rev_front -> Point.of_list (List.rev rev_front)

let check_geometric sd =
  let cx = Chromatic.complex sd.cx in
  let errors = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let order = Array.of_list (base_vertex_order sd.base) in
  (* 1. vertex points barycentric, supported on their carrier *)
  List.iter
    (fun v ->
      let p = sd.point v in
      if not (Point.is_barycentric p) then add "vertex %d: point not barycentric" v
      else begin
        let c = sd.carrier v in
        Array.iteri
          (fun i bv ->
            if (not (Rat.is_zero (Point.coord p i))) && not (Simplex.mem bv c) then
              add "vertex %d: point supported outside carrier" v)
          order
      end)
    (Complex.vertices cx);
  (* 2. facets affinely independent, 3. volumes per base facet sum to 1 *)
  List.iter
    (fun sigma ->
      let covering =
        List.filter
          (fun f -> Simplex.equal (simplex_carrier sd f) sigma)
          (Complex.facets cx)
      in
      if covering = [] then add "base facet %s: not covered" (Simplex.to_string sigma)
      else begin
        let vol = ref Rat.zero in
        List.iter
          (fun f ->
            let pts = List.map (fun v -> chart_point sd sigma (sd.point v)) (Simplex.to_list f) in
            let v = Point.simplex_volume_scaled pts in
            if Rat.is_zero v then
              add "facet %s: degenerate (affinely dependent points)" (Simplex.to_string f);
            vol := Rat.add !vol v)
          covering;
        if not (Rat.equal !vol Rat.one) then
          add "base facet %s: chart volumes sum to %s, expected 1" (Simplex.to_string sigma)
            (Rat.to_string !vol)
      end)
    (Complex.facets (Chromatic.complex sd.base));
  match !errors with
  | [] -> Ok ()
  | errs -> Error (String.concat "; " (List.rev errs))

let mesh_sq sd =
  let dist_sq a b =
    let d = Point.sub a b in
    Rat.sum (List.map (fun x -> Rat.mul x x) (Point.to_list d))
  in
  List.fold_left
    (fun acc e ->
      match Simplex.to_list e with
      | [ u; v ] -> Rat.max acc (dist_sq (sd.point u) (sd.point v))
      | _ -> acc)
    Rat.zero
    (Complex.faces (Chromatic.complex sd.cx) ~dim:1)

let sample_cover_count sd st sigma =
  let vs = Simplex.to_list sigma in
  (* Random interior rational point: positive random weights, normalized. *)
  let weights = List.map (fun _ -> 1 + Random.State.int st 997) vs in
  let total = List.fold_left ( + ) 0 weights in
  let coeffs = List.map (fun w -> Rat.make w total) weights in
  let pts = base_simplex_points sd sigma in
  let p = Point.combine (List.combine coeffs pts) in
  let candidates =
    List.filter
      (fun f -> Simplex.subset (simplex_carrier sd f) sigma)
      (Complex.facets (Chromatic.complex sd.cx))
  in
  List.length
    (List.filter
       (fun f -> Point.in_simplex (List.map sd.point (Simplex.to_list f)) p)
       candidates)
