(** Free-face collapsing sequences (Benavides–Rajsbaum).

    A {e free face} of a complex is a simplex [σ] properly contained in
    exactly one other simplex [τ] (which is then maximal); the elementary
    collapse removes the pair [{σ, τ}]. A complex is {e collapsible} when
    some sequence of elementary collapses reduces it to a single vertex.
    The read/write (IIS) protocol complexes searched by Prop 3.1 are
    collapsible — "the read/write protocol complex is collapsible"
    (PAPERS.md) — so [SDS^b(sⁿ)] admits such a sequence, and its reversal
    is an {e expansion order} growing the complex from a cone point
    outward.

    {!run} computes a greedy deterministic collapsing sequence and derives
    from it a static vertex schedule: the vertices of the residual core
    first, then the collapsed vertices in reverse elimination order. The
    solvability engine uses the schedule as a static search order — a
    vertex is only branched on after the schedule has passed through the
    part of the complex its star attaches to, which is what makes the
    order effective for refutations (DESIGN §14). Correctness never
    depends on the greedy collapse succeeding: the schedule is a total
    order on the vertices whatever the residual core is. *)

type result = {
  order : int list;
      (** every vertex of the complex, exactly once: residual-core vertices
          first (ascending id), then collapsed vertices latest-first —
          the expansion order from the core outward *)
  eliminated : int;  (** vertices removed by the collapse *)
  pairs : int;  (** elementary collapses performed *)
  collapsed_to_point : bool;
      (** the residual complex is a single vertex (or the input was) *)
}

val run : Complex.t -> result
(** Greedy deterministic collapse: repeatedly remove a free pair, seeded
    and propagated in a fixed order (descending dimension, then the
    canonical simplex order), so equal complexes produce equal
    schedules. *)

val is_collapsible : Complex.t -> bool
(** Whether the greedy sequence reaches a single vertex. [true] certifies
    collapsibility; [false] only means the greedy order got stuck. *)
