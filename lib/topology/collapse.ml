type result = {
  order : int list;
  eliminated : int;
  pairs : int;
  collapsed_to_point : bool;
}

(* Greedy free-face collapse over the closure, tracked with alive flags and
   per-simplex counts of alive proper cofaces: [σ] is free iff alive with
   exactly one alive proper coface [τ] (then [τ] is maximal — any coface of
   [τ] would be a second coface of [σ]). Removing the pair only changes the
   counts of the faces of [σ] and [τ], so the frontier is maintained with a
   worklist instead of rescanning. Everything is seeded and propagated in a
   fixed order, making the sequence a pure function of the complex. *)
let run c =
  let closure = Complex.simplices c in
  let n = List.length closure in
  let alive : unit Simplex.Tbl.t = Simplex.Tbl.create n in
  let ncof : int ref Simplex.Tbl.t = Simplex.Tbl.create n in
  let cofaces : Simplex.t list Simplex.Tbl.t = Simplex.Tbl.create n in
  List.iter
    (fun s ->
      Simplex.Tbl.replace alive s ();
      if not (Simplex.Tbl.mem ncof s) then Simplex.Tbl.replace ncof s (ref 0))
    closure;
  List.iter
    (fun s ->
      List.iter
        (fun f ->
          incr (Simplex.Tbl.find ncof f);
          Simplex.Tbl.replace cofaces f
            (s :: (try Simplex.Tbl.find cofaces f with Not_found -> [])))
        (Simplex.proper_faces s))
    closure;
  (* Collapse big faces first: the top-dimensional pairs peel off the
     boundary, so vertices fall late and the reversed order grows outward. *)
  let seed =
    List.sort
      (fun a b ->
        let d = compare (Simplex.dim b) (Simplex.dim a) in
        if d <> 0 then d else Simplex.compare a b)
      closure
  in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.add s queue) seed;
  let elim_step = Hashtbl.create 16 in (* vertex -> step of its singleton's removal *)
  let pairs = ref 0 in
  let remove step s =
    Simplex.Tbl.remove alive s;
    if Simplex.card s = 1 then Hashtbl.replace elim_step (Simplex.min_vertex s) step;
    List.iter
      (fun f ->
        if Simplex.Tbl.mem alive f then begin
          let r = Simplex.Tbl.find ncof f in
          decr r;
          if !r = 1 then Queue.add f queue
        end)
      (Simplex.proper_faces s)
  in
  while not (Queue.is_empty queue) do
    let s = Queue.take queue in
    if Simplex.Tbl.mem alive s && !(Simplex.Tbl.find ncof s) = 1 then begin
      match
        List.find_opt
          (fun t -> Simplex.Tbl.mem alive t)
          (try Simplex.Tbl.find cofaces s with Not_found -> [])
      with
      | None -> () (* stale count; cannot happen, but stay total *)
      | Some t ->
        incr pairs;
        remove !pairs s;
        remove !pairs t
    end
  done;
  let vertices = Complex.vertices c in
  let core = List.filter (fun v -> not (Hashtbl.mem elim_step v)) vertices in
  let collapsed =
    List.filter (fun v -> Hashtbl.mem elim_step v) vertices
    |> List.sort (fun a b ->
           let d = compare (Hashtbl.find elim_step b) (Hashtbl.find elim_step a) in
           if d <> 0 then d else compare a b)
  in
  let remaining = Simplex.Tbl.length alive in
  {
    order = core @ collapsed;
    eliminated = List.length collapsed;
    pairs = !pairs;
    collapsed_to_point = remaining = 1 && List.length core = 1;
  }

let is_collapsible c = (run c).collapsed_to_point
