type t = {
  name : string;
  facets : Simplex.t list; (* maximal simplices, sorted *)
  nfacets : int; (* cached [List.length facets] *)
  cdim : int; (* cached max facet dimension *)
  mutable closure : unit Simplex.Tbl.t option; (* cached face set, id-keyed *)
  mutable by_dim : Simplex.t list array option; (* cached faces per dimension *)
}

let name c = c.name

let with_name name c = { c with name }

let facets c = c.facets

let num_facets c = c.nfacets

(* Quadratic fallback for very large simplices, where enumerating all 2^card
   faces would cost more than pairwise subset scans. *)
let drop_non_maximal_scan simplices =
  let sorted = List.sort (fun a b -> compare (Simplex.card b) (Simplex.card a)) simplices in
  let keep = ref [] in
  let kept_tbl = Simplex.Tbl.create 64 in
  let is_dominated s =
    (* [sorted] is scanned largest-first, so any strict superset of [s] is
       already in [keep]. Containment testing per kept facet. *)
    List.exists (fun t -> Simplex.card t > Simplex.card s && Simplex.subset s t) !keep
  in
  List.iter
    (fun s ->
      if (not (Simplex.Tbl.mem kept_tbl s)) && not (is_dominated s) then begin
        Simplex.Tbl.add kept_tbl s ();
        keep := s :: !keep
      end)
    sorted;
  List.sort Simplex.compare !keep

(* Maximality filtering bucketed by cardinality over interned ids: scan
   largest-first; a simplex survives unless a previously kept facet already
   marked it as one of its proper faces. Every face of a kept facet is
   marked, so domination is transitive without any subset tests. Linear in
   the total closure size instead of quadratic in the number of inputs. *)
let drop_non_maximal simplices =
  let seen = Simplex.Tbl.create 256 in
  let uniq =
    List.filter
      (fun s ->
        if Simplex.Tbl.mem seen s then false
        else begin
          Simplex.Tbl.add seen s ();
          true
        end)
      simplices
  in
  let max_card = List.fold_left (fun acc s -> max acc (Simplex.card s)) 0 uniq in
  if max_card > 16 then drop_non_maximal_scan uniq
  else begin
    let buckets = Array.make (max_card + 1) [] in
    List.iter (fun s -> buckets.(Simplex.card s) <- s :: buckets.(Simplex.card s)) uniq;
    let dominated = Simplex.Tbl.create 1024 in
    let keep = ref [] in
    for c = max_card downto 1 do
      List.iter
        (fun s ->
          if not (Simplex.Tbl.mem dominated s) then begin
            keep := s :: !keep;
            List.iter (fun f -> Simplex.Tbl.replace dominated f ()) (Simplex.proper_faces s)
          end)
        buckets.(c)
    done;
    List.sort Simplex.compare !keep
  end

let of_simplices ?(name = "") simplices =
  if simplices = [] then invalid_arg "Complex.of_simplices: empty complex";
  List.iter
    (fun s ->
      if Simplex.is_empty s then invalid_arg "Complex.of_simplices: empty simplex";
      if Simplex.min_vertex s < 0 then invalid_arg "Complex.of_simplices: negative vertex")
    simplices;
  let facets = drop_non_maximal simplices in
  let nfacets = List.length facets in
  let cdim = List.fold_left (fun acc f -> max acc (Simplex.dim f)) (-1) facets in
  { name; facets; nfacets; cdim; closure = None; by_dim = None }

let of_facets ?name facets = of_simplices ?name (List.map Simplex.of_list facets)

let dim c = c.cdim

let closure c =
  match c.closure with
  | Some tbl -> tbl
  | None ->
    let tbl = Simplex.Tbl.create 1024 in
    List.iter
      (fun facet ->
        List.iter
          (fun face -> if not (Simplex.Tbl.mem tbl face) then Simplex.Tbl.add tbl face ())
          (Simplex.faces facet))
      c.facets;
    c.closure <- Some tbl;
    tbl

let by_dim c =
  match c.by_dim with
  | Some a -> a
  | None ->
    let n = dim c in
    let buckets = Array.make (n + 1) [] in
    Simplex.Tbl.iter (fun s () -> buckets.(Simplex.dim s) <- s :: buckets.(Simplex.dim s)) (closure c);
    let a = Array.map (List.sort Simplex.compare) buckets in
    c.by_dim <- Some a;
    a

let simplices c = List.concat (Array.to_list (by_dim c))

let num_simplices c = Simplex.Tbl.length (closure c)

let faces c ~dim:k =
  let a = by_dim c in
  if k < 0 || k >= Array.length a then [] else a.(k)

let vertices c = List.map Simplex.min_vertex (faces c ~dim:0)

let num_vertices c = List.length (faces c ~dim:0)

let max_vertex c = List.fold_left (fun acc v -> max acc v) (-1) (vertices c)

let mem s c = Simplex.Tbl.mem (closure c) s

let mem_vertex v c = mem (Simplex.singleton v) c

let is_pure c =
  let n = dim c in
  List.for_all (fun f -> Simplex.dim f = n) c.facets

let is_facet s c = List.exists (Simplex.equal s) c.facets

let f_vector c = Array.map List.length (by_dim c)

let euler_characteristic c =
  let f = f_vector c in
  let acc = ref 0 in
  Array.iteri (fun k count -> acc := !acc + (if k mod 2 = 0 then count else -count)) f;
  !acc

let skeleton k c =
  if k < 0 then invalid_arg "Complex.skeleton: negative dimension";
  if k >= dim c then c
  else
    of_simplices ~name:(Printf.sprintf "%s-skel%d" c.name k)
      (List.concat_map (fun f -> Simplex.subsets_of_card (k + 1) f) c.facets)

let facet_cover c s = List.filter (fun f -> Simplex.subset s f) c.facets

let star s c =
  if not (mem s c) then raise Not_found;
  of_simplices ~name:(c.name ^ "-star") (facet_cover c s)

let link s c =
  if not (mem s c) then raise Not_found;
  let cover = facet_cover c s in
  let link_facets = List.filter_map (fun f ->
      let d = Simplex.diff f s in
      if Simplex.is_empty d then None else Some d)
      cover
  in
  if link_facets = [] then None else Some (of_simplices ~name:(c.name ^ "-link") link_facets)

let boundary c =
  if not (is_pure c) then invalid_arg "Complex.boundary: complex is not pure";
  let n = dim c in
  if n = 0 then None
  else begin
    let count = Simplex.Tbl.create 256 in
    List.iter
      (fun facet ->
        List.iter
          (fun face ->
            let k = try Simplex.Tbl.find count face with Not_found -> 0 in
            Simplex.Tbl.replace count face (k + 1))
          (Simplex.facets facet))
      c.facets;
    let bdry = Simplex.Tbl.fold (fun face k acc -> if k = 1 then face :: acc else acc) count [] in
    if bdry = [] then None else Some (of_simplices ~name:(c.name ^ "-bdry") bdry)
  end

let induced c vs =
  let vset = List.sort_uniq Stdlib.compare vs in
  let keep = Simplex.of_sorted vset in
  let survivors = List.filter_map (fun f ->
      let s = Simplex.inter f keep in
      if Simplex.is_empty s then None else Some s)
      c.facets
  in
  if survivors = [] then None else Some (of_simplices ~name:(c.name ^ "-ind") survivors)

(* Union-find over an int-indexed array. *)
let components_of_edges nvertex_ids edges =
  let ids = Array.of_list nvertex_ids in
  let index = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) ids;
  let parent = Array.init (Array.length ids) (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter (fun (a, b) -> union (Hashtbl.find index a) (Hashtbl.find index b)) edges;
  let buckets = Hashtbl.create 16 in
  Array.iteri
    (fun i v ->
      let r = find i in
      let l = try Hashtbl.find buckets r with Not_found -> [] in
      Hashtbl.replace buckets r (v :: l))
    ids;
  Hashtbl.fold (fun _ l acc -> List.sort Stdlib.compare l :: acc) buckets []
  |> List.sort Stdlib.compare

let connected_components c =
  let edges =
    List.concat_map
      (fun f ->
        match Simplex.to_list f with
        | [] | [ _ ] -> []
        | v0 :: rest -> List.map (fun v -> (v0, v)) rest)
      c.facets
  in
  components_of_edges (vertices c) edges

let is_connected c = List.length (connected_components c) <= 1

let is_pseudomanifold c =
  is_pure c
  &&
  let n = dim c in
  if n = 0 then num_facets c = 1
  else begin
    (* Ridge incidence at most two, and facet adjacency connected. *)
    let count = Simplex.Tbl.create 256 in
    List.iter
      (fun facet ->
        List.iter
          (fun ridge ->
            let k = try Simplex.Tbl.find count ridge with Not_found -> 0 in
            Simplex.Tbl.replace count ridge (k + 1))
          (Simplex.facets facet))
      c.facets;
    let ok_incidence = Simplex.Tbl.fold (fun _ k acc -> acc && k <= 2) count true in
    ok_incidence
    &&
    (* Connectivity of the facet graph: walk ridges shared by two facets. *)
    let facet_arr = Array.of_list c.facets in
    let index = Simplex.Tbl.create 64 in
    Array.iteri (fun i f -> Simplex.Tbl.add index f i) facet_arr;
    let ridge_owners = Simplex.Tbl.create 256 in
    Array.iteri
      (fun i f ->
        List.iter
          (fun ridge ->
            let l = try Simplex.Tbl.find ridge_owners ridge with Not_found -> [] in
            Simplex.Tbl.replace ridge_owners ridge (i :: l))
          (Simplex.facets f))
      facet_arr;
    let seen = Array.make (Array.length facet_arr) false in
    let rec dfs i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter
          (fun ridge ->
            List.iter dfs (Simplex.Tbl.find ridge_owners ridge))
          (Simplex.facets facet_arr.(i))
      end
    in
    if Array.length facet_arr > 0 then dfs 0;
    Array.for_all (fun b -> b) seen
  end

let relabel f c =
  let rename s =
    let mapped = List.map f (Simplex.to_list s) in
    let s' = Simplex.of_list mapped in
    if Simplex.card s' <> Simplex.card s then
      invalid_arg "Complex.relabel: renaming is not injective on a simplex";
    s'
  in
  of_simplices ~name:c.name (List.map rename c.facets)

let disjoint_union a b =
  let va = vertices a and vb = vertices b in
  let overlap = List.exists (fun v -> List.mem v vb) va in
  if overlap then invalid_arg "Complex.disjoint_union: vertex sets overlap";
  of_simplices ~name:(a.name ^ "+" ^ b.name) (a.facets @ b.facets)

let union a b = of_simplices ~name:(a.name ^ "|" ^ b.name) (a.facets @ b.facets)

let equal a b = List.equal Simplex.equal a.facets b.facets

let subcomplex a b = List.for_all (fun f -> mem f b) a.facets

let full_simplex n =
  if n < 0 then invalid_arg "Complex.full_simplex";
  of_facets ~name:(Printf.sprintf "s%d" n) [ List.init (n + 1) (fun i -> i) ]

let pp ppf c =
  Format.fprintf ppf "@[<v>complex %s (dim %d):@,%a@]"
    (if c.name = "" then "<anon>" else c.name)
    (dim c)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Simplex.pp)
    c.facets

let pp_stats ppf c =
  let f = f_vector c in
  Format.fprintf ppf "%s: dim=%d facets=%d f=(%s) chi=%d"
    (if c.name = "" then "<anon>" else c.name)
    (dim c) (num_facets c)
    (String.concat "," (Array.to_list (Array.map string_of_int f)))
    (euler_characteristic c)
