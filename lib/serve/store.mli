(** Content-addressed persistent verdict store ([wfc.store.v2]).

    A verdict is a pure function of [(task, model, max_level, budget)]: the
    search is deterministic, so once computed it can be reused by every
    later process. This module files one canonical-JSON record per decided
    question under

    {v <dir>/<task digest>.<model slug>.L<max_level>.json v}

    where the digest is {!Wfc_tasks.Task.digest} — content addressing, so
    two differently-named constructions of the same [(I, O, Δ)] share a
    record — and the model slug is {!Wfc_tasks.Model.slug_of_name} of the
    model's canonical name ([wait-free], [k-set-2], ...). The budget rides
    inside the record and is checked on read: a record computed under a
    different budget is a miss, never a wrong answer.

    {b v1 read-compat.} Stores written before models existed file wait-free
    records flat as [<digest>.L<level>.json] with schema [wfc.store.v1] and
    no [model] field. Such records parse (as [model = "wait-free"]), are
    found by wait-free {!find}s, and pass {!verify} under either name;
    {!migrate} rewrites them in place as v2 records under the v2 name.

    Durability: {!put} writes to a [.tmp] file in the same directory,
    fsyncs, then renames — a process killed at any instant leaves either
    the old record, the new record, or a stray [.tmp], never a torn
    [.json]. Reads quarantine: a record that fails to parse or validate is
    moved to [<dir>/quarantine/] (counted in [serve.store.quarantined]) and
    reported as a miss, so one corrupt file can never wedge the store.
    [wfc store verify] surfaces quarantined and stray files; [wfc store gc]
    deletes them. *)

val schema_version : string
(** ["wfc.store.v2"]. *)

val schema_version_v1 : string
(** ["wfc.store.v1"] — still accepted on read. *)

type record = {
  digest : string;  (** {!Wfc_tasks.Task.digest} of the task *)
  task : string;  (** informational: the instance spec, e.g. ["consensus(procs=2,param=2)"] *)
  model : string;  (** canonical {!Wfc_tasks.Model} name, e.g. ["k-set:2"] *)
  procs : int;
  max_level : int;
  budget : int;
  outcome : Wfc_core.Solvability.outcome;
  created_at : float;  (** unix seconds at commit; not part of the verdict *)
}

val record :
  task:Wfc_tasks.Task.t ->
  spec:string ->
  ?model:string ->
  max_level:int ->
  budget:int ->
  Wfc_core.Solvability.outcome ->
  record
(** Builds a record for [outcome], computing the digest and stamping
    [created_at] with the current time. [model] defaults to
    ["wait-free"]. *)

val record_to_json : record -> Wfc_obs.Json.t
(** The full [wfc.store.v2] object, including the provenance fields: the
    search-cost tallies ([nodes], [backtracks], [prunes]) and the
    non-deterministic timing fields ([elapsed], [created_at]). *)

val verdict_json : record -> Wfc_obs.Json.t
(** {!record_to_json} minus the provenance fields: every byte is a
    deterministic function of the question — verdict, level and decide
    table, never search cost. A stored record, a fresh daemon computation,
    an inline [wfc solve], a portfolio win and a reducer-pruned search all
    render the identical object — the invariant the CI smoke diffs. *)

val record_of_json : Wfc_obs.Json.t -> (record, string) result
(** Accepts both schemas: a v1 object parses with [model = "wait-free"]. *)

val validate_json : Wfc_obs.Json.t -> (unit, string) result
(** Structural check used by [wfc check-json] on store artifacts: schema
    tag (v1 or v2), hex digest, model presence (v2), verdict vocabulary,
    decide-table shape, and solvable records must carry a non-empty decide
    table. *)

type t

val open_store : string -> t
(** Opens (creating directories as needed) the store rooted at the path. *)

val dir : t -> string

val path_of : t -> digest:string -> model:string -> max_level:int -> string
(** The v2 record file a question maps to. *)

val find :
  t -> digest:string -> model:string -> max_level:int -> budget:int -> record option
(** The stored verdict for a question, or [None] on: no record, a record
    computed under a different budget, or a corrupt record (which is
    quarantined on the way out). A wait-free question falls back to the v1
    path when no v2 record exists. A record whose body disagrees with the
    requested digest {e or model} is quarantined, never served. Never
    raises on store corruption. *)

val put : t -> record -> unit
(** Atomically files the record under its question's v2 path (tmp + fsync +
    rename), replacing any previous record. *)

val entries : t -> (string * (record, string) result) list
(** Every [*.json] record file (basename, parse result), sorted by name —
    read-only: unlike {!find} this never quarantines, so [wfc store ls] and
    {!verify} can report corruption without mutating the store. *)

type verify_report = {
  valid : int;
  corrupt : (string * string) list;  (** record files failing validation *)
  mismatched : string list;
      (** records whose (digest, model, level) disagree with their filename
          under both the v2 and (for wait-free) v1 naming schemes *)
  quarantined : int;  (** files already sitting in quarantine/ *)
  stray_tmp : int;  (** interrupted writes ([*.tmp]) *)
}

val verify : t -> verify_report

type migrate_report = {
  migrated : int;  (** v1-named wait-free records rewritten as v2 *)
  untouched : int;  (** records already filed under their v2 name *)
  skipped : (string * string) list;  (** (name, reason): corrupt or misfiled *)
}

val migrate : t -> migrate_report
(** [wfc store migrate]: rewrites every well-formed v1-named record as a v2
    [wait-free] record under the v2 name (same outcome and [created_at]),
    removing the v1 file. Corrupt or misfiled records are left in place and
    reported — {!verify} is the tool for those. Idempotent. *)

val gc : t -> removed:int ref -> unit
(** Deletes quarantined records and stray [.tmp] files, counting deletions
    into [removed]. Valid records are never touched. *)
