(** Content-addressed persistent verdict store — the serving layer's view
    of {!Wfc_storage.Engine}.

    A verdict is a pure function of [(task, model, max_level, budget)]: the
    search is deterministic, so once computed it can be reused by every
    later process. Records file under two-level digest-prefix shards

    {v <dir>/ab/cd/<task digest>.<model slug>.L<max_level>.<ext> v}

    where the digest is {!Wfc_tasks.Task.digest} — content addressing, so
    two differently-named constructions of the same [(I, O, Δ)] share a
    record — and [<ext>] is the per-record codec ([.json] canonical JSON /
    [.wfcb] compact binary). The budget rides inside the record and is
    checked on read: a record computed under a different budget is a miss,
    never a wrong answer.

    {b Read-compat.} Flat stores written before sharding ([wfc.store.v2]
    files in the root, and pre-model [wfc.store.v1] [<digest>.L<n>.json]
    wait-free records) are still found by {!find} without migration;
    [wfc store migrate] rewrites them under the sharded layout.

    Durability and hygiene are the engine's: atomic fsync'd writes through
    unique [.wtmp] temps, quarantine-on-read for corrupt or misfiled
    records (counted in [serve.store.quarantined]), an fsync'd
    [MANIFEST.jsonl] feeding [ls]/[verify]/[gc], and a bounded in-process
    LRU of decoded records ([storage.cache.{hit,miss,evict}]) so repeat
    warm lookups make no syscall. See {!Wfc_storage.Engine} for the full
    contract. *)

val schema_version : string
(** ["wfc.store.v2"]. *)

val schema_version_v1 : string
(** ["wfc.store.v1"] — still accepted on read. *)

type record = Wfc_storage.Record.record = {
  digest : string;  (** {!Wfc_tasks.Task.digest} of the task *)
  task : string;  (** informational: the instance spec, e.g. ["consensus(procs=2,param=2)"] *)
  model : string;  (** canonical {!Wfc_tasks.Model} name, e.g. ["k-set:2"] *)
  procs : int;
  max_level : int;
  budget : int;
  outcome : Wfc_core.Solvability.outcome;
  created_at : float;  (** unix seconds at commit; not part of the verdict *)
}

val record :
  task:Wfc_tasks.Task.t ->
  spec:string ->
  ?model:string ->
  max_level:int ->
  budget:int ->
  Wfc_core.Solvability.outcome ->
  record
(** Builds a record for [outcome], computing the digest and stamping
    [created_at] with the current time. [model] defaults to
    ["wait-free"]. *)

val record_to_json : record -> Wfc_obs.Json.t
(** The full [wfc.store.v2] object, including the provenance fields: the
    search-cost tallies ([nodes], [backtracks], [prunes]) and the
    non-deterministic timing fields ([elapsed], [created_at]). *)

val verdict_json : record -> Wfc_obs.Json.t
(** {!record_to_json} minus the provenance fields: every byte is a
    deterministic function of the question — verdict, level and decide
    table, never search cost. A stored record, a fresh daemon computation,
    an inline [wfc solve], a portfolio win and a reducer-pruned search all
    render the identical object — the invariant the CI smoke diffs. *)

val record_of_json : Wfc_obs.Json.t -> (record, string) result
(** Accepts both schemas: a v1 object parses with [model = "wait-free"]. *)

val validate_json : Wfc_obs.Json.t -> (unit, string) result
(** Structural check used by [wfc check-json] on store artifacts. *)

type t = Wfc_storage.Engine.t

val open_store :
  ?cache_cap:int -> ?codec:Wfc_storage.Codec.t -> string -> t
(** Opens (creating directories as needed) the store rooted at the path.
    [codec] selects the write encoding (default JSON); [cache_cap] bounds
    the decoded-record LRU. *)

val engine : t -> Wfc_storage.Engine.t
(** The underlying engine (identity — for callers needing engine-only
    operations like [ls] or the skeleton keyspace). *)

val attach_skeletons : t -> unit
(** Installs this store's skeleton keyspace as the process-wide
    {!Wfc_topology.Sds.skeleton_store}: cold solves against already-seen
    subdivisions replay persisted [SDS] steps instead of re-enumerating
    ([sds.skeleton.hits] / [sds.skeleton.misses]). *)

val dir : t -> string

val path_of : t -> digest:string -> model:string -> max_level:int -> string
(** The sharded record file a question maps to under the store's codec. *)

val find :
  t -> digest:string -> model:string -> max_level:int -> budget:int -> record option
(** The stored verdict for a question, or [None] on: no record, a record
    computed under a different budget, or a corrupt record (which is
    quarantined on the way out). Served from the LRU when warm. A wait-free
    question falls back to the flat v1 path when no sharded or flat v2
    record exists. A record whose body disagrees with the requested digest
    {e or model} is quarantined, never served. Never raises on store
    corruption. *)

val put : t -> record -> unit
(** Atomically files the record under its sharded path (unique temp +
    fsync + rename), retiring any superseded flat or other-codec copy, and
    appends to the manifest. *)

val entries : t -> (string * (record, string) result) list
(** Live manifest verdict entries (store-relative path, parse result),
    sorted — read-only: unlike {!find} this never quarantines, so
    [wfc store ls] and {!verify} can report corruption without mutating
    the store. *)

type verify_report = Wfc_storage.Engine.verify_report = {
  valid : int;
  corrupt : (string * string) list;  (** record files failing validation *)
  mismatched : string list;
      (** records whose body disagrees with their filed path under every
          accepted naming scheme (sharded v3, flat v2, wait-free v1) *)
  quarantined : int;  (** files already sitting in quarantine/ *)
  stray_tmp : int;  (** interrupted writes ([*.wtmp]) *)
  unindexed : int;  (** files with no live manifest line (e.g. flat
                        pre-migration records) *)
  missing : int;  (** live manifest lines whose file is gone *)
  bad_manifest_lines : int;  (** unparseable (torn) manifest lines *)
}

val verify : t -> verify_report

type migrate_report = Wfc_storage.Engine.migrate_report = {
  migrated : int;  (** flat-named records rewritten under sharded paths *)
  untouched : int;  (** records already filed canonically and indexed *)
  adopted : int;  (** canonical files re-indexed into the manifest *)
  skipped : (string * string) list;  (** (name, reason): corrupt or misfiled *)
}

val migrate : t -> migrate_report
(** [wfc store migrate]: rewrites every well-formed flat-named (v1 or v2)
    record under its sharded v3 path (same outcome and [created_at]),
    removing the flat file, and adopts unindexed canonical files into the
    manifest. Corrupt or misfiled records are left in place and reported —
    {!verify} is the tool for those. Idempotent. *)

val gc : t -> removed:int ref -> unit
(** Deletes quarantined records and stray temp files (counting deletions
    into [removed]) and compacts the manifest. Valid records are never
    touched. *)
