open Wfc_core

let version = "1.0.0"

type config = {
  socket : string;
  store_dir : string;
  queue_capacity : int;
  solvers : int;
  report : string option;
  on_ready : (unit -> unit) option;
  gate : (string -> unit) option;
  log : string option;
  log_level : Wfc_obs.Log.level;
  slow_ms : float option;
}

let config ?(queue_capacity = 64) ?(solvers = 2) ?log ?(log_level = Wfc_obs.Log.Info)
    ?slow_ms ~socket ~store_dir () =
  {
    socket;
    store_dir;
    queue_capacity;
    solvers = max 1 solvers;
    report = None;
    on_ready = None;
    gate = None;
    log;
    log_level;
    slow_ms;
  }

let c_requests = Wfc_obs.Metrics.counter "serve.requests"

let c_hits = Wfc_obs.Metrics.counter "serve.hits"

let c_misses = Wfc_obs.Metrics.counter "serve.misses"

let c_coalesced = Wfc_obs.Metrics.counter "serve.coalesced"

let c_shed = Wfc_obs.Metrics.counter "serve.shed"

let c_errors = Wfc_obs.Metrics.counter "serve.errors"

let c_slow = Wfc_obs.Metrics.counter "serve.slow"

let h_latency = Wfc_obs.Metrics.histogram "serve.latency.seconds"

let h_depth = Wfc_obs.Metrics.histogram "serve.queue.depth"

(* Stage histograms: the request lifecycle cut where it actually spends
   time. decode = frame JSON -> typed request; admission = the store-lookup
   / enqueue decision under the state mutex; queue_wait = admitted ->
   picked by a worker; solve = the search itself; store_put = persisting
   the fresh verdict; encode = response -> socket bytes. *)
let h_stage_decode = Wfc_obs.Metrics.histogram "serve.stage.decode.seconds"

let h_stage_admission = Wfc_obs.Metrics.histogram "serve.stage.admission.seconds"

let h_stage_queue_wait = Wfc_obs.Metrics.histogram "serve.stage.queue_wait.seconds"

let h_stage_solve = Wfc_obs.Metrics.histogram "serve.stage.solve.seconds"

let h_stage_store_put = Wfc_obs.Metrics.histogram "serve.stage.store_put.seconds"

let h_stage_encode = Wfc_obs.Metrics.histogram "serve.stage.encode.seconds"

(* Latency split by how the answer was produced and by what model was
   asked: a warm store-hit population and a cold search population do not
   belong in one histogram, and per-model curves show which restriction is
   expensive. Source handles are pre-resolved; model handles go through the
   registry's get-or-create (mutexed, cheap against a solve). *)
let h_latency_store = Wfc_obs.Metrics.histogram "serve.latency.store.seconds"

let h_latency_computed = Wfc_obs.Metrics.histogram "serve.latency.computed.seconds"

let h_latency_coalesced = Wfc_obs.Metrics.histogram "serve.latency.coalesced.seconds"

let h_latency_of_source = function
  | Wire.From_store -> h_latency_store
  | Wire.Computed -> h_latency_computed
  | Wire.Coalesced -> h_latency_coalesced

let h_latency_of_model model_name =
  Wfc_obs.Metrics.histogram
    ("serve.latency.model." ^ Wfc_tasks.Model.slug_of_name model_name ^ ".seconds")

(* Worker-side stage costs of one computation; the handler adds its own
   wait into [total_s] when it builds the wire timing. *)
type stages = { queue_wait_s : float; solve_s : float; store_s : float }

let no_stages = { queue_wait_s = 0.; solve_s = 0.; store_s = 0. }

(* One admitted question. A job is in [inflight] from admission until its
   result is published, and in [queue] only until the solver pops it —
   coalescing keys on [inflight], so a query arriving while its twin is
   {e being solved} still attaches instead of recomputing. *)
type job = {
  j_spec : Wire.spec;
  j_task : Wfc_tasks.Task.t;
  j_digest : string;
  j_model : Wfc_tasks.Model.t;  (** parsed at admission; unknown names never enqueue *)
  j_req_id : string;  (** the admitting request's id, for worker-side log lines *)
  j_enqueued_at : float;
  mutable j_result : (Store.record * stages, string) result option;
}

(* Per-worker introspection for [wfc stats]: what each scheduler thread is
   doing right now, mutated under the state mutex. *)
type worker_info = {
  mutable w_state : [ `Idle | `Solving of string ];
  mutable w_jobs : int;  (** computations finished by this worker *)
}

(* The scheduler's pending work, grouped by task digest for fairness: the
   [rotation] round-robins over digests that have pending jobs, so a burst
   of levels on one digest cannot starve a cold query on another. A digest
   appears in [rotation] exactly once while its [by_digest] queue is
   non-empty. [npending] counts admitted-not-yet-solving jobs (the shed
   bound); jobs being solved are tracked only through [inflight]. *)
type state = {
  cfg : config;
  store : Store.t;
  started_at : float;
  log : Wfc_obs.Log.t option;
  m : Mutex.t;
  work_cv : Condition.t;  (** signalled: work arrived or shutdown began *)
  done_cv : Condition.t;  (** broadcast: some job published its result *)
  by_digest : (string, job Queue.t) Hashtbl.t;
  rotation : string Queue.t;
  mutable npending : int;
  inflight : (string, job) Hashtbl.t;
  workers_info : worker_info array;
  req_seq : int Atomic.t;  (** daemon-assigned request ids for old clients *)
  stopping : bool Atomic.t;
}

let key_of ~digest ~model ~max_level = Printf.sprintf "%s:%s:L%d" digest model max_level

let locked st f =
  Mutex.lock st.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.m) f

let log_event st level name fields =
  match st.log with None -> () | Some l -> Wfc_obs.Log.event l level name fields

let spec_fields (spec : Wire.spec) =
  let open Wfc_obs.Json in
  [
    ("task", String spec.Wire.task);
    ("procs", Int spec.Wire.procs);
    ("param", Int spec.Wire.param);
    ("max_level", Int spec.Wire.max_level);
    ("model", String spec.Wire.model);
    ("symmetry", Bool spec.Wire.symmetry);
    ("collapse", Bool spec.Wire.collapse);
  ]

(* ---- the solve scheduler ---- *)

let enqueue_job st job =
  (match Hashtbl.find_opt st.by_digest job.j_digest with
  | Some q -> Queue.push job q
  | None ->
    let q = Queue.create () in
    Queue.push job q;
    Hashtbl.replace st.by_digest job.j_digest q;
    Queue.push job.j_digest st.rotation);
  st.npending <- st.npending + 1

(* Pop the next job round-robin over digests; caller holds [st.m] and has
   checked [npending > 0]. The digest goes to the back of the rotation if
   it still has pending jobs, and leaves the table otherwise. *)
let dequeue_job st =
  let digest = Queue.pop st.rotation in
  let q = Hashtbl.find st.by_digest digest in
  let job = Queue.pop q in
  if Queue.is_empty q then Hashtbl.remove st.by_digest digest
  else Queue.push digest st.rotation;
  st.npending <- st.npending - 1;
  (* depth is sampled on BOTH edges of the queue: enqueue alone records
     only arrival bursts and a histogram that never sees the drain *)
  Wfc_obs.Metrics.observe h_depth (float_of_int st.npending);
  job

(* The solve goes through the store hook even though admission already
   missed: an inline [wfc query --store] process sharing the directory may
   have filed the verdict while this job sat in the queue, and the hook's
   lookup catches that for free. Exhausted outcomes are answered but never
   persisted (see Solvability.solve_cached). *)
let compute st (job : job) ~queue_wait_s =
  (match st.cfg.gate with Some g -> g job.j_digest | None -> ());
  let max_level = job.j_spec.Wire.max_level in
  let model = job.j_spec.Wire.model in
  let budget = Solvability.default_budget in
  let find () = Store.find st.store ~digest:job.j_digest ~model ~max_level ~budget in
  let fresh outcome =
    Store.record ~task:job.j_task ~spec:(Wire.spec_to_string job.j_spec) ~model ~max_level
      ~budget outcome
  in
  let committed = ref None in
  let store_s = ref 0. in
  let hook =
    {
      Solvability.lookup =
        (fun () -> Option.map (fun r -> r.Store.outcome) (find ()));
      commit =
        (fun outcome ->
          let r = fresh outcome in
          let t0 = Wfc_obs.Metrics.now_s () in
          Store.put st.store r;
          store_s := !store_s +. (Wfc_obs.Metrics.now_s () -. t0);
          committed := Some r);
    }
  in
  let t0 = Wfc_obs.Metrics.now_s () in
  let result =
    Solvability.solve_cached
      ~opts:
        (Solvability.options ~budget ~model:job.j_model
           ~symmetry:job.j_spec.Wire.symmetry ~collapse:job.j_spec.Wire.collapse ())
      ~max_level ~store:hook job.j_task
  in
  (* the commit above runs inside solve_cached; subtract it back out so
     solve_s is pure search time *)
  let solve_s = max 0. (Wfc_obs.Metrics.now_s () -. t0 -. !store_s) in
  let stages = { queue_wait_s; solve_s; store_s = !store_s } in
  Wfc_obs.Metrics.observe h_stage_solve solve_s;
  if !store_s > 0. then Wfc_obs.Metrics.observe h_stage_store_put !store_s;
  match result with
  | _, `Hit -> (
    match find () with
    | Some r -> Ok (r, stages)
    | None -> Error "store record vanished mid-solve")
  | outcome, `Computed -> (
    match !committed with Some r -> Ok (r, stages) | None -> Ok (fresh outcome, stages))

(* Each of the [cfg.solvers] worker threads loops here, so distinct cold
   questions are solved concurrently (within one computation the search
   still fans out across the Wfc_par domain pool). On shutdown a worker
   keeps draining until no pending job is left — every admitted question
   gets its answer — and only then exits. *)
let worker_loop (st, idx) =
  let info = st.workers_info.(idx) in
  let rec next () =
    let job =
      locked st (fun () ->
          while st.npending = 0 && not (Atomic.get st.stopping) do
            Condition.wait st.work_cv st.m
          done;
          if st.npending = 0 then None
          else begin
            let job = dequeue_job st in
            info.w_state <- `Solving job.j_digest;
            Some job
          end)
    in
    match job with
    | None -> () (* stopping and drained *)
    | Some job ->
      let queue_wait_s =
        max 0. (Wfc_obs.Metrics.now_s () -. job.j_enqueued_at)
      in
      Wfc_obs.Metrics.observe h_stage_queue_wait queue_wait_s;
      let result =
        try compute st job ~queue_wait_s
        with e -> Error (Printf.sprintf "solver failed: %s" (Printexc.to_string e))
      in
      (match result with
      | Error e ->
        Wfc_obs.Metrics.incr c_errors;
        log_event st Wfc_obs.Log.Error "solve.error"
          (("req_id", Wfc_obs.Json.String job.j_req_id)
          :: ("message", Wfc_obs.Json.String e)
          :: spec_fields job.j_spec)
      | Ok _ -> ());
      locked st (fun () ->
          job.j_result <- Some result;
          info.w_state <- `Idle;
          info.w_jobs <- info.w_jobs + 1;
          Hashtbl.remove st.inflight
            (key_of ~digest:job.j_digest ~model:job.j_spec.Wire.model
               ~max_level:job.j_spec.Wire.max_level);
          Condition.broadcast st.done_cv);
      next ()
  in
  next ()

(* ---- per-connection handler ---- *)

let fresh_req_id st =
  Printf.sprintf "wfc-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add st.req_seq 1)

(* Store lookups happen under the state mutex: the miss -> enqueue decision
   must be atomic against a twin handler or the store would be raced into
   double computation. Record files are a few KiB, so the hold is short. *)
let handle_query st ~req_id (spec : Wire.spec) =
  Wfc_obs.Metrics.incr c_requests;
  let t0 = Wfc_obs.Metrics.now_s () in
  let failed msg =
    Wfc_obs.Metrics.incr c_errors;
    Wfc_obs.Metrics.observe h_latency (Wfc_obs.Metrics.now_s () -. t0);
    log_event st Wfc_obs.Log.Error "query.error"
      (("req_id", Wfc_obs.Json.String req_id)
      :: ("message", Wfc_obs.Json.String msg)
      :: spec_fields spec);
    Wire.Failed msg
  in
  (* Every answered verdict funnels through here: one place observes the
     latency histograms, writes the query log line, and flags outliers. *)
  let served ~source ~stages (record : Store.record) =
    let total_s = Wfc_obs.Metrics.now_s () -. t0 in
    Wfc_obs.Metrics.observe h_latency total_s;
    Wfc_obs.Metrics.observe (h_latency_of_source source) total_s;
    Wfc_obs.Metrics.observe (h_latency_of_model spec.Wire.model) total_s;
    let timing =
      {
        Wire.queue_wait_s = stages.queue_wait_s;
        solve_s = stages.solve_s;
        store_s = stages.store_s;
        total_s;
      }
    in
    let o = record.Store.outcome in
    let outcome_fields =
      let open Wfc_obs.Json in
      [
        ("source", String (Wire.source_name source));
        ("verdict", String o.Solvability.o_verdict);
        ("level", Int o.Solvability.o_level);
        ("nodes", Int o.Solvability.o_nodes);
        ("backtracks", Int o.Solvability.o_backtracks);
        ("prunes", Int o.Solvability.o_prunes);
      ]
    in
    let timing_fields =
      let open Wfc_obs.Json in
      [
        ("queue_wait_s", Float timing.Wire.queue_wait_s);
        ("solve_s", Float timing.Wire.solve_s);
        ("store_s", Float timing.Wire.store_s);
        ("total_s", Float timing.Wire.total_s);
      ]
    in
    log_event st Wfc_obs.Log.Info "query"
      (("req_id", Wfc_obs.Json.String req_id)
      :: (spec_fields spec @ outcome_fields @ timing_fields));
    (match st.cfg.slow_ms with
    | Some threshold when total_s *. 1000. >= threshold ->
      Wfc_obs.Metrics.incr c_slow;
      (* the slow-query line repeats the full context: an outlier must be
         diagnosable from this one line, grep-free *)
      log_event st Wfc_obs.Log.Warn "slow_query"
        (("req_id", Wfc_obs.Json.String req_id)
        :: ("threshold_ms", Wfc_obs.Json.Float threshold)
        :: (spec_fields spec @ outcome_fields @ timing_fields))
    | _ -> ());
    Wire.Verdict { source; record; req_id = Some req_id; timing = Some timing }
  in
  match Wfc_tasks.Model.of_string spec.Wire.model with
  | Error msg -> failed msg
  | Ok model -> (
  match Wfc_tasks.Instances.by_name ~name:spec.Wire.task ~procs:spec.Wire.procs ~param:spec.Wire.param with
  | exception Invalid_argument msg -> failed msg
  | task -> (
    let digest = Wfc_tasks.Task.digest task in
    let key = key_of ~digest ~model:spec.Wire.model ~max_level:spec.Wire.max_level in
    let wait_for job =
      let rec poll () =
        match job.j_result with
        | Some r -> r
        | None ->
          Condition.wait st.done_cv st.m;
          poll ()
      in
      locked st poll
    in
    let t_admission = Wfc_obs.Metrics.now_s () in
    let decision =
      locked st (fun () ->
          if Atomic.get st.stopping then `Refuse
          else
            match Hashtbl.find_opt st.inflight key with
            | Some job ->
              Wfc_obs.Metrics.incr c_coalesced;
              `Join job
            | None -> (
              let t_find = Wfc_obs.Metrics.now_s () in
              match
                Store.find st.store ~digest ~model:spec.Wire.model
                  ~max_level:spec.Wire.max_level ~budget:Solvability.default_budget
              with
              | Some r ->
                Wfc_obs.Metrics.incr c_hits;
                `Hit (r, Wfc_obs.Metrics.now_s () -. t_find)
              | None ->
                if st.npending >= st.cfg.queue_capacity then begin
                  Wfc_obs.Metrics.incr c_shed;
                  `Shed
                end
                else begin
                  Wfc_obs.Metrics.incr c_misses;
                  let job =
                    {
                      j_spec = spec;
                      j_task = task;
                      j_digest = digest;
                      j_model = model;
                      j_req_id = req_id;
                      j_enqueued_at = Wfc_obs.Metrics.now_s ();
                      j_result = None;
                    }
                  in
                  Hashtbl.replace st.inflight key job;
                  enqueue_job st job;
                  Wfc_obs.Metrics.observe h_depth (float_of_int st.npending);
                  Condition.signal st.work_cv;
                  `Own job
                end))
    in
    Wfc_obs.Metrics.observe h_stage_admission
      (Wfc_obs.Metrics.now_s () -. t_admission);
    match decision with
    | `Refuse -> failed "daemon is shutting down"
    | `Hit (r, find_s) ->
      served ~source:Wire.From_store ~stages:{ no_stages with store_s = find_s } r
    | `Shed ->
      log_event st Wfc_obs.Log.Warn "shed"
        (("req_id", Wfc_obs.Json.String req_id) :: spec_fields spec);
      Wfc_obs.Metrics.observe h_latency (Wfc_obs.Metrics.now_s () -. t0);
      Wire.Shed
    | `Join job -> (
      match wait_for job with
      | Ok (r, stages) -> served ~source:Wire.Coalesced ~stages r
      | Error e -> failed e)
    | `Own job -> (
      match wait_for job with
      | Ok (r, stages) -> served ~source:Wire.Computed ~stages r
      | Error e -> failed e)))

(* ---- introspection ---- *)

let uptime_s st = Wfc_obs.Metrics.now_s () -. st.started_at

let server_json st =
  let open Wfc_obs.Json in
  let inflight, depth, workers =
    locked st (fun () ->
        ( Hashtbl.length st.inflight,
          st.npending,
          Array.to_list
            (Array.mapi
               (fun i w ->
                 Obj
                   ([ ("id", Int i); ("jobs", Int w.w_jobs) ]
                   @
                   match w.w_state with
                   | `Idle -> [ ("state", String "idle") ]
                   | `Solving digest ->
                     [ ("state", String "solving"); ("digest", String digest) ]))
               st.workers_info) ))
  in
  Obj
    [
      ("version", String version);
      ("uptime_s", Float (uptime_s st));
      ("inflight", Int inflight);
      ("queue_depth", Int depth);
      ("queue_capacity", Int st.cfg.queue_capacity);
      ("solvers", Int st.cfg.solvers);
      ("workers", Arr workers);
    ]

let handle_connection st fd =
  let stop_requested = ref false in
  (try
     let rec loop () =
       match Wire.read_frame fd with
       | Error _ -> ()
       | Ok j ->
         let t_decode = Wfc_obs.Metrics.now_s () in
         let parsed = Wire.request_of_json j in
         Wfc_obs.Metrics.observe h_stage_decode
           (Wfc_obs.Metrics.now_s () -. t_decode);
         let resp =
           match parsed with
           | Error e ->
             Wfc_obs.Metrics.incr c_errors;
             log_event st Wfc_obs.Log.Error "request.error"
               [ ("message", Wfc_obs.Json.String e) ];
             Wire.Failed e
           | Ok Wire.Ping ->
             log_event st Wfc_obs.Log.Debug "ping" [];
             Wire.Pong { version = Some version; uptime_s = Some (uptime_s st) }
           | Ok Wire.Stats ->
             log_event st Wfc_obs.Log.Debug "stats" [];
             Wire.Metrics
               {
                 metrics = Wfc_obs.Snapshot.to_json (Wfc_obs.Snapshot.take ());
                 server = Some (server_json st);
               }
           | Ok Wire.Shutdown ->
             stop_requested := true;
             log_event st Wfc_obs.Log.Info "shutdown.request" [];
             Wire.Bye
           | Ok (Wire.Query { spec; req_id }) ->
             (* a pre-telemetry client carries no id; assign one so every
                log line and response of this request still correlates *)
             let req_id =
               match req_id with Some id -> id | None -> fresh_req_id st
             in
             handle_query st ~req_id spec
         in
         let t_encode = Wfc_obs.Metrics.now_s () in
         Wire.write_frame fd (Wire.response_to_json resp);
         Wfc_obs.Metrics.observe h_stage_encode
           (Wfc_obs.Metrics.now_s () -. t_encode);
         if not !stop_requested then loop ()
     in
     loop ()
   with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if !stop_requested then begin
    Atomic.set st.stopping true;
    locked st (fun () -> Condition.broadcast st.work_cv)
  end

(* ---- socket lifecycle ---- *)

(* A stale socket file (previous daemon SIGKILLed) is replaced; a live one
   is refused — two daemons would race the same store paths' tmp files. *)
let bind_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith (Printf.sprintf "a daemon is already serving on %s" path);
    (try Sys.remove path with Sys_error _ -> ())
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  fd

let run cfg =
  (* a client vanishing mid-response must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let log = Option.map (Wfc_obs.Log.open_log ~level:cfg.log_level) cfg.log in
  let store = Store.open_store cfg.store_dir in
  (* cold solves replay persisted SDS skeletons from this store *)
  Store.attach_skeletons store;
  let st =
    {
      cfg;
      store;
      started_at = Wfc_obs.Metrics.now_s ();
      log;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      by_digest = Hashtbl.create 64;
      rotation = Queue.create ();
      npending = 0;
      inflight = Hashtbl.create 64;
      workers_info =
        Array.init (max 1 cfg.solvers) (fun _ -> { w_state = `Idle; w_jobs = 0 });
      req_seq = Atomic.make 0;
      stopping = Atomic.make false;
    }
  in
  let listen_fd = bind_socket cfg.socket in
  log_event st Wfc_obs.Log.Info "serve.start"
    [
      ("socket", Wfc_obs.Json.String cfg.socket);
      ("store", Wfc_obs.Json.String cfg.store_dir);
      ("solvers", Wfc_obs.Json.Int cfg.solvers);
      ("queue_capacity", Wfc_obs.Json.Int cfg.queue_capacity);
      ("version", Wfc_obs.Json.String version);
    ];
  let initiate_stop _ = Atomic.set st.stopping true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle initiate_stop) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle initiate_stop) in
  let workers = Array.init cfg.solvers (fun i -> Thread.create worker_loop (st, i)) in
  (match cfg.on_ready with Some f -> f () | None -> ());
  (* Accept with a select timeout so a signal- or request-initiated stop is
     noticed within a tick even when no connection ever arrives. *)
  let rec accept_loop () =
    if Atomic.get st.stopping then ()
    else begin
      (match Unix.select [ listen_fd ] [] [] 0.2 with
      | [ _ ], _, _ -> (
        match Unix.accept listen_fd with
        | client, _ -> ignore (Thread.create (fun () -> handle_connection st client) ())
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* stopping: wake and join EVERY worker — each drains admitted work,
     finishes the job it is computing, and only then exits, so no admitted
     question is ever abandoned mid-shutdown *)
  locked st (fun () -> Condition.broadcast st.work_cv);
  Array.iter Thread.join workers;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove cfg.socket with Sys_error _ -> ());
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  let v name = Wfc_obs.Metrics.value (Wfc_obs.Metrics.counter name) in
  log_event st Wfc_obs.Log.Info "serve.stop"
    [
      ("uptime_s", Wfc_obs.Json.Float (uptime_s st));
      ("requests", Wfc_obs.Json.Int (v "serve.requests"));
      ("hits", Wfc_obs.Json.Int (v "serve.hits"));
      ("computed", Wfc_obs.Json.Int (v "serve.misses"));
      ("coalesced", Wfc_obs.Json.Int (v "serve.coalesced"));
      ("shed", Wfc_obs.Json.Int (v "serve.shed"));
      ("errors", Wfc_obs.Json.Int (v "serve.errors"));
    ];
  (match st.log with Some l -> Wfc_obs.Log.close l | None -> ());
  Printf.eprintf
    "wfc serve: %d request(s) — %d hit(s), %d computed, %d coalesced, %d shed, %d error(s)\n%!"
    (v "serve.requests") (v "serve.hits") (v "serve.misses") (v "serve.coalesced")
    (v "serve.shed") (v "serve.errors");
  match cfg.report with
  | None -> ()
  | Some path ->
    Wfc_obs.Report.write_file path
      (Wfc_obs.Report.to_json
         ~snapshot:(Wfc_obs.Snapshot.take ())
         [ Wfc_obs.Report.scenario "serve" 0.0 ]);
    Printf.eprintf "wfc serve: wrote %s\n%!" path
