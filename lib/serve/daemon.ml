open Wfc_core

type config = {
  socket : string;
  store_dir : string;
  queue_capacity : int;
  solvers : int;
  report : string option;
  on_ready : (unit -> unit) option;
  gate : (string -> unit) option;
}

let config ?(queue_capacity = 64) ?(solvers = 2) ~socket ~store_dir () =
  {
    socket;
    store_dir;
    queue_capacity;
    solvers = max 1 solvers;
    report = None;
    on_ready = None;
    gate = None;
  }

let c_requests = Wfc_obs.Metrics.counter "serve.requests"

let c_hits = Wfc_obs.Metrics.counter "serve.hits"

let c_misses = Wfc_obs.Metrics.counter "serve.misses"

let c_coalesced = Wfc_obs.Metrics.counter "serve.coalesced"

let c_shed = Wfc_obs.Metrics.counter "serve.shed"

let c_errors = Wfc_obs.Metrics.counter "serve.errors"

let h_latency = Wfc_obs.Metrics.histogram "serve.latency.seconds"

let h_depth = Wfc_obs.Metrics.histogram "serve.queue.depth"

(* One admitted question. A job is in [inflight] from admission until its
   result is published, and in [queue] only until the solver pops it —
   coalescing keys on [inflight], so a query arriving while its twin is
   {e being solved} still attaches instead of recomputing. *)
type job = {
  j_spec : Wire.spec;
  j_task : Wfc_tasks.Task.t;
  j_digest : string;
  j_model : Wfc_tasks.Model.t;  (** parsed at admission; unknown names never enqueue *)
  mutable j_result : (Store.record, string) result option;
}

(* The scheduler's pending work, grouped by task digest for fairness: the
   [rotation] round-robins over digests that have pending jobs, so a burst
   of levels on one digest cannot starve a cold query on another. A digest
   appears in [rotation] exactly once while its [by_digest] queue is
   non-empty. [npending] counts admitted-not-yet-solving jobs (the shed
   bound); jobs being solved are tracked only through [inflight]. *)
type state = {
  cfg : config;
  store : Store.t;
  m : Mutex.t;
  work_cv : Condition.t;  (** signalled: work arrived or shutdown began *)
  done_cv : Condition.t;  (** broadcast: some job published its result *)
  by_digest : (string, job Queue.t) Hashtbl.t;
  rotation : string Queue.t;
  mutable npending : int;
  inflight : (string, job) Hashtbl.t;
  stopping : bool Atomic.t;
}

let key_of ~digest ~model ~max_level = Printf.sprintf "%s:%s:L%d" digest model max_level

let locked st f =
  Mutex.lock st.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.m) f

(* ---- the solve scheduler ---- *)

let enqueue_job st job =
  (match Hashtbl.find_opt st.by_digest job.j_digest with
  | Some q -> Queue.push job q
  | None ->
    let q = Queue.create () in
    Queue.push job q;
    Hashtbl.replace st.by_digest job.j_digest q;
    Queue.push job.j_digest st.rotation);
  st.npending <- st.npending + 1

(* Pop the next job round-robin over digests; caller holds [st.m] and has
   checked [npending > 0]. The digest goes to the back of the rotation if
   it still has pending jobs, and leaves the table otherwise. *)
let dequeue_job st =
  let digest = Queue.pop st.rotation in
  let q = Hashtbl.find st.by_digest digest in
  let job = Queue.pop q in
  if Queue.is_empty q then Hashtbl.remove st.by_digest digest
  else Queue.push digest st.rotation;
  st.npending <- st.npending - 1;
  job

(* The solve goes through the store hook even though admission already
   missed: an inline [wfc query --store] process sharing the directory may
   have filed the verdict while this job sat in the queue, and the hook's
   lookup catches that for free. Exhausted outcomes are answered but never
   persisted (see Solvability.solve_cached). *)
let compute st (job : job) =
  (match st.cfg.gate with Some g -> g job.j_digest | None -> ());
  let max_level = job.j_spec.Wire.max_level in
  let model = job.j_spec.Wire.model in
  let budget = Solvability.default_budget in
  let find () = Store.find st.store ~digest:job.j_digest ~model ~max_level ~budget in
  let fresh outcome =
    Store.record ~task:job.j_task ~spec:(Wire.spec_to_string job.j_spec) ~model ~max_level
      ~budget outcome
  in
  let committed = ref None in
  let hook =
    {
      Solvability.lookup =
        (fun () -> Option.map (fun r -> r.Store.outcome) (find ()));
      commit =
        (fun outcome ->
          let r = fresh outcome in
          Store.put st.store r;
          committed := Some r);
    }
  in
  match
    Solvability.solve_cached
      ~opts:(Solvability.options ~budget ~model:job.j_model ())
      ~max_level ~store:hook job.j_task
  with
  | _, `Hit -> (
    match find () with Some r -> Ok r | None -> Error "store record vanished mid-solve")
  | outcome, `Computed -> (
    match !committed with Some r -> Ok r | None -> Ok (fresh outcome))

(* Each of the [cfg.solvers] worker threads loops here, so distinct cold
   questions are solved concurrently (within one computation the search
   still fans out across the Wfc_par domain pool). On shutdown a worker
   keeps draining until no pending job is left — every admitted question
   gets its answer — and only then exits. *)
let worker_loop st =
  let rec next () =
    let job =
      locked st (fun () ->
          while st.npending = 0 && not (Atomic.get st.stopping) do
            Condition.wait st.work_cv st.m
          done;
          if st.npending = 0 then None else Some (dequeue_job st))
    in
    match job with
    | None -> () (* stopping and drained *)
    | Some job ->
      let result =
        try compute st job
        with e -> Error (Printf.sprintf "solver failed: %s" (Printexc.to_string e))
      in
      (match result with Error _ -> Wfc_obs.Metrics.incr c_errors | Ok _ -> ());
      locked st (fun () ->
          job.j_result <- Some result;
          Hashtbl.remove st.inflight
            (key_of ~digest:job.j_digest ~model:job.j_spec.Wire.model
               ~max_level:job.j_spec.Wire.max_level);
          Condition.broadcast st.done_cv);
      next ()
  in
  next ()

(* ---- per-connection handler ---- *)

(* Store lookups happen under the state mutex: the miss -> enqueue decision
   must be atomic against a twin handler or the store would be raced into
   double computation. Record files are a few KiB, so the hold is short. *)
let handle_query st (spec : Wire.spec) =
  Wfc_obs.Metrics.incr c_requests;
  let t0 = Wfc_obs.Metrics.now_s () in
  let answer resp =
    Wfc_obs.Metrics.observe h_latency (Wfc_obs.Metrics.now_s () -. t0);
    resp
  in
  match Wfc_tasks.Model.of_string spec.Wire.model with
  | Error msg ->
    Wfc_obs.Metrics.incr c_errors;
    answer (Wire.Failed msg)
  | Ok model -> (
  match Wfc_tasks.Instances.by_name ~name:spec.Wire.task ~procs:spec.Wire.procs ~param:spec.Wire.param with
  | exception Invalid_argument msg ->
    Wfc_obs.Metrics.incr c_errors;
    answer (Wire.Failed msg)
  | task -> (
    let digest = Wfc_tasks.Task.digest task in
    let key = key_of ~digest ~model:spec.Wire.model ~max_level:spec.Wire.max_level in
    let wait_for job =
      let rec poll () =
        match job.j_result with
        | Some r -> r
        | None ->
          Condition.wait st.done_cv st.m;
          poll ()
      in
      locked st poll
    in
    let decision =
      locked st (fun () ->
          if Atomic.get st.stopping then `Refuse
          else
            match Hashtbl.find_opt st.inflight key with
            | Some job ->
              Wfc_obs.Metrics.incr c_coalesced;
              `Join job
            | None -> (
              match
                Store.find st.store ~digest ~model:spec.Wire.model
                  ~max_level:spec.Wire.max_level ~budget:Solvability.default_budget
              with
              | Some r ->
                Wfc_obs.Metrics.incr c_hits;
                `Hit r
              | None ->
                if st.npending >= st.cfg.queue_capacity then begin
                  Wfc_obs.Metrics.incr c_shed;
                  `Shed
                end
                else begin
                  Wfc_obs.Metrics.incr c_misses;
                  let job =
                    {
                      j_spec = spec;
                      j_task = task;
                      j_digest = digest;
                      j_model = model;
                      j_result = None;
                    }
                  in
                  Hashtbl.replace st.inflight key job;
                  enqueue_job st job;
                  Wfc_obs.Metrics.observe h_depth (float_of_int st.npending);
                  Condition.signal st.work_cv;
                  `Own job
                end))
    in
    match decision with
    | `Refuse -> answer (Wire.Failed "daemon is shutting down")
    | `Hit r -> answer (Wire.Verdict { source = Wire.From_store; record = r })
    | `Shed -> answer Wire.Shed
    | `Join job -> (
      match wait_for job with
      | Ok r -> answer (Wire.Verdict { source = Wire.Coalesced; record = r })
      | Error e -> answer (Wire.Failed e))
    | `Own job -> (
      match wait_for job with
      | Ok r -> answer (Wire.Verdict { source = Wire.Computed; record = r })
      | Error e -> answer (Wire.Failed e))))

let handle_connection st fd =
  let stop_requested = ref false in
  (try
     let rec loop () =
       match Wire.read_frame fd with
       | Error _ -> ()
       | Ok j ->
         let resp =
           match Wire.request_of_json j with
           | Error e ->
             Wfc_obs.Metrics.incr c_errors;
             Wire.Failed e
           | Ok Wire.Ping -> Wire.Pong
           | Ok Wire.Stats ->
             Wire.Metrics (Wfc_obs.Snapshot.to_json (Wfc_obs.Snapshot.take ()))
           | Ok Wire.Shutdown ->
             stop_requested := true;
             Wire.Bye
           | Ok (Wire.Query spec) -> handle_query st spec
         in
         Wire.write_frame fd (Wire.response_to_json resp);
         if not !stop_requested then loop ()
     in
     loop ()
   with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  if !stop_requested then begin
    Atomic.set st.stopping true;
    locked st (fun () -> Condition.broadcast st.work_cv)
  end

(* ---- socket lifecycle ---- *)

(* A stale socket file (previous daemon SIGKILLed) is replaced; a live one
   is refused — two daemons would race the same store paths' tmp files. *)
let bind_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith (Printf.sprintf "a daemon is already serving on %s" path);
    (try Sys.remove path with Sys_error _ -> ())
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  fd

let run cfg =
  (* a client vanishing mid-response must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let st =
    {
      cfg;
      store = Store.open_store cfg.store_dir;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      by_digest = Hashtbl.create 64;
      rotation = Queue.create ();
      npending = 0;
      inflight = Hashtbl.create 64;
      stopping = Atomic.make false;
    }
  in
  let listen_fd = bind_socket cfg.socket in
  let initiate_stop _ = Atomic.set st.stopping true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle initiate_stop) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle initiate_stop) in
  let workers = Array.init cfg.solvers (fun _ -> Thread.create worker_loop st) in
  (match cfg.on_ready with Some f -> f () | None -> ());
  (* Accept with a select timeout so a signal- or request-initiated stop is
     noticed within a tick even when no connection ever arrives. *)
  let rec accept_loop () =
    if Atomic.get st.stopping then ()
    else begin
      (match Unix.select [ listen_fd ] [] [] 0.2 with
      | [ _ ], _, _ -> (
        match Unix.accept listen_fd with
        | client, _ -> ignore (Thread.create (fun () -> handle_connection st client) ())
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* stopping: wake and join EVERY worker — each drains admitted work,
     finishes the job it is computing, and only then exits, so no admitted
     question is ever abandoned mid-shutdown *)
  locked st (fun () -> Condition.broadcast st.work_cv);
  Array.iter Thread.join workers;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove cfg.socket with Sys_error _ -> ());
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  let v name = Wfc_obs.Metrics.value (Wfc_obs.Metrics.counter name) in
  Printf.eprintf
    "wfc serve: %d request(s) — %d hit(s), %d computed, %d coalesced, %d shed, %d error(s)\n%!"
    (v "serve.requests") (v "serve.hits") (v "serve.misses") (v "serve.coalesced")
    (v "serve.shed") (v "serve.errors");
  match cfg.report with
  | None -> ()
  | Some path ->
    Wfc_obs.Report.write_file path
      (Wfc_obs.Report.to_json
         ~snapshot:(Wfc_obs.Snapshot.take ())
         [ Wfc_obs.Report.scenario "serve" 0.0 ]);
    Printf.eprintf "wfc serve: wrote %s\n%!" path
