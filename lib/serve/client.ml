type t = { fd : Unix.file_descr }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t req =
  match Wire.write_frame t.fd (Wire.request_to_json req) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
  | () -> (
    match Wire.read_frame t.fd with
    | Error e -> Error e
    | Ok j -> Wire.response_of_json j)

let query ?req_id t spec = request t (Wire.Query { spec; req_id })

let ping t = match request t Wire.Ping with Ok (Wire.Pong _) -> true | _ -> false

let ping_info t =
  match request t Wire.Ping with
  | Ok (Wire.Pong { version; uptime_s }) -> Ok (version, uptime_s)
  | Ok _ -> Error "unexpected response to ping"
  | Error e -> Error e

let stats t =
  match request t Wire.Stats with
  | Ok (Wire.Metrics { metrics; server }) -> Ok (metrics, server)
  | Ok _ -> Error "unexpected response to stats"
  | Error e -> Error e

let shutdown t =
  match request t Wire.Shutdown with
  | Ok Wire.Bye -> Ok ()
  | Ok _ -> Error "unexpected response to shutdown"
  | Error e -> Error e
