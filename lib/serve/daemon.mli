(** The long-running solvability daemon behind [wfc serve].

    One process owns a {!Store.t} and a Unix-domain socket and answers
    {!Wire} queries:

    - {b store hit} ([serve.hits]): the record is served without building a
      single subdivision;
    - {b in-flight dedup} ([serve.coalesced]): a query whose question is
      already queued or being solved attaches to that computation instead
      of re-entering the queue — N concurrent identical queries cost one
      search;
    - {b miss} ([serve.misses]): the question joins a bounded FIFO queue
      and is solved by the single solver thread, which dispatches search
      work onto the {!Wfc_par} domain pool and files the verdict in the
      store before anyone is answered;
    - {b shed} ([serve.shed]): if the queue is full the daemon answers
      [shed] immediately — explicit backpressure; clients fall back to an
      inline solve or retry, the daemon never buffers unboundedly.

    Concurrency model: one accepting thread, one handler thread per
    connection, one solver thread. The solver being single keeps verdict
    computation deterministic and the store free of write races; within a
    computation the search still fans out across domains. Handler threads
    only parse, consult the store, and block on condition variables — all
    heavy lifting happens on the solver.

    Every request is measured ([serve.requests], [serve.latency.seconds],
    [serve.queue.depth]); on shutdown the daemon prints a traffic summary
    and, with [report], writes the final metrics snapshot as a [wfc.obs.v1]
    report. SIGINT/SIGTERM trigger the same clean shutdown as a [shutdown]
    request; SIGKILL at any instant leaves a loadable store ({!Store.put}
    is atomic). *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  store_dir : string;
  queue_capacity : int;  (** pending (not yet solving) questions admitted *)
  report : string option;  (** write a wfc.obs.v1 report here on shutdown *)
  on_ready : (unit -> unit) option;  (** called once the socket accepts *)
  gate : (string -> unit) option;
      (** test/bench instrumentation: the solver thread calls this with the
          question's digest immediately before each computation — a hook to
          hold the solver while clients pile onto the in-flight entry *)
}

val config : ?queue_capacity:int -> socket:string -> store_dir:string -> unit -> config
(** Defaults: queue capacity 64, no report, no hooks. *)

val run : config -> unit
(** Binds the socket (refusing if a live daemon already answers on it,
    replacing it if stale) and serves until a [shutdown] request, SIGINT,
    or SIGTERM. Returns after the solver thread has drained every admitted
    question and the socket file is unlinked.
    @raise Failure if the socket is in use by a live daemon or cannot be
    bound. *)
