(** The long-running solvability daemon behind [wfc serve].

    One process owns a {!Store.t} and a Unix-domain socket and answers
    {!Wire} queries:

    - {b store hit} ([serve.hits]): the record is served without building a
      single subdivision;
    - {b in-flight dedup} ([serve.coalesced]): a query whose question is
      already queued or being solved attaches to that computation instead
      of re-entering the queue — N concurrent identical queries cost one
      search;
    - {b miss} ([serve.misses]): the question joins a bounded queue and is
      picked up by one of the [solvers] scheduler workers, which solves it
      (dispatching search work onto the {!Wfc_par} domain pool) and files
      the verdict in the store before anyone is answered;
    - {b shed} ([serve.shed]): if the pending queue is full the daemon
      answers [shed] immediately — explicit backpressure; clients fall
      back to an inline solve or retry, the daemon never buffers
      unboundedly.

    Concurrency model: one accepting thread, one handler thread per
    connection, and a small scheduler of [solvers] worker threads (default
    2), so distinct cold questions are solved {e concurrently} — no
    head-of-line blocking behind one long search. Pending work is grouped
    by task digest and dispatched round-robin across digests, so a burst
    of questions on one task cannot starve another task's cold query.
    Verdicts stay deterministic because each question is solved by exactly
    one worker with the deterministic engine, and the store's atomic
    [put] makes concurrent commits of {e different} questions safe (two
    workers never hold the same question: coalescing keys on the in-flight
    table). The store-hit fast path never touches the solve queue: handler
    threads answer hits directly under the state mutex, so hit latency is
    unaffected by running solves.

    {b Telemetry.} Every request carries a correlation id (client-supplied
    [req_id] or daemon-assigned) that is echoed in the response and stamped
    on every log line of the request. The lifecycle is measured stage by
    stage — [serve.stage.decode.seconds], [.admission.], [.queue_wait.],
    [.solve.], [.store_put.], [.encode.] — alongside the end-to-end
    [serve.latency.seconds], its per-source splits
    ([serve.latency.store.seconds] / [.computed.] / [.coalesced.]) and
    per-model splits ([serve.latency.model.<slug>.seconds]).
    [serve.queue.depth] is sampled on both enqueue and dequeue, so the
    histogram sees drains as well as arrival bursts. With [log] set the
    daemon appends one [wfc.log.v1] line per event ({!Wfc_obs.Log}):
    [serve.start], [query], [shed], [query.error]/[solve.error],
    [shutdown.request], [serve.stop], plus [ping]/[stats] at debug level;
    with [slow_ms] set, any query slower than the threshold additionally
    emits a [slow_query] warning carrying the full spec, verdict source and
    search statistics. A [stats] request returns the metrics snapshot plus
    a [server] block: version, uptime, in-flight count, queue depth and
    per-worker state. On shutdown the daemon prints a traffic summary and,
    with [report], writes the final metrics snapshot as a [wfc.obs.v1]
    report. SIGINT/SIGTERM trigger the same clean shutdown as a [shutdown]
    request — every scheduler worker drains the pending queue and finishes
    its in-flight job before the daemon exits; SIGKILL at any instant
    leaves a loadable store ({!Store.put} is atomic). *)

val version : string
(** The daemon's version string, reported in [pong] and [stats] responses
    and in the [serve.start] log event. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  store_dir : string;
  queue_capacity : int;  (** pending (not yet solving) questions admitted *)
  solvers : int;  (** scheduler worker threads solving concurrently *)
  report : string option;  (** write a wfc.obs.v1 report here on shutdown *)
  on_ready : (unit -> unit) option;  (** called once the socket accepts *)
  gate : (string -> unit) option;
      (** test/bench instrumentation: a scheduler worker calls this with
          the question's digest immediately before each computation — a
          hook to hold workers while clients pile onto in-flight entries *)
  log : string option;  (** append [wfc.log.v1] event lines here *)
  log_level : Wfc_obs.Log.level;  (** minimum level written to [log] *)
  slow_ms : float option;
      (** emit a [slow_query] warning for any query at least this many
          milliseconds end-to-end; [Some 0.] logs every query as slow *)
}

val config :
  ?queue_capacity:int ->
  ?solvers:int ->
  ?log:string ->
  ?log_level:Wfc_obs.Log.level ->
  ?slow_ms:float ->
  socket:string ->
  store_dir:string ->
  unit ->
  config
(** Defaults: queue capacity 64, 2 solver workers (clamped to [>= 1]), no
    report, no hooks, no event log (level [Info] once one is given), no
    slow-query threshold. *)

val run : config -> unit
(** Binds the socket (refusing if a live daemon already answers on it,
    replacing it if stale) and serves until a [shutdown] request, SIGINT,
    or SIGTERM. Returns after {e all} scheduler workers have drained every
    admitted question and the socket file is unlinked.
    @raise Failure if the socket is in use by a live daemon or cannot be
    bound. *)
