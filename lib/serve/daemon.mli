(** The long-running solvability daemon behind [wfc serve].

    One process owns a {!Store.t} and a Unix-domain socket and answers
    {!Wire} queries:

    - {b store hit} ([serve.hits]): the record is served without building a
      single subdivision;
    - {b in-flight dedup} ([serve.coalesced]): a query whose question is
      already queued or being solved attaches to that computation instead
      of re-entering the queue — N concurrent identical queries cost one
      search;
    - {b miss} ([serve.misses]): the question joins a bounded queue and is
      picked up by one of the [solvers] scheduler workers, which solves it
      (dispatching search work onto the {!Wfc_par} domain pool) and files
      the verdict in the store before anyone is answered;
    - {b shed} ([serve.shed]): if the pending queue is full the daemon
      answers [shed] immediately — explicit backpressure; clients fall
      back to an inline solve or retry, the daemon never buffers
      unboundedly.

    Concurrency model: one accepting thread, one handler thread per
    connection, and a small scheduler of [solvers] worker threads (default
    2), so distinct cold questions are solved {e concurrently} — no
    head-of-line blocking behind one long search. Pending work is grouped
    by task digest and dispatched round-robin across digests, so a burst
    of questions on one task cannot starve another task's cold query.
    Verdicts stay deterministic because each question is solved by exactly
    one worker with the deterministic engine, and the store's atomic
    [put] makes concurrent commits of {e different} questions safe (two
    workers never hold the same question: coalescing keys on the in-flight
    table). The store-hit fast path never touches the solve queue: handler
    threads answer hits directly under the state mutex, so hit latency is
    unaffected by running solves.

    Every request is measured ([serve.requests], [serve.latency.seconds],
    [serve.queue.depth]); on shutdown the daemon prints a traffic summary
    and, with [report], writes the final metrics snapshot as a [wfc.obs.v1]
    report. SIGINT/SIGTERM trigger the same clean shutdown as a [shutdown]
    request — every scheduler worker drains the pending queue and finishes
    its in-flight job before the daemon exits; SIGKILL at any instant
    leaves a loadable store ({!Store.put} is atomic). *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  store_dir : string;
  queue_capacity : int;  (** pending (not yet solving) questions admitted *)
  solvers : int;  (** scheduler worker threads solving concurrently *)
  report : string option;  (** write a wfc.obs.v1 report here on shutdown *)
  on_ready : (unit -> unit) option;  (** called once the socket accepts *)
  gate : (string -> unit) option;
      (** test/bench instrumentation: a scheduler worker calls this with
          the question's digest immediately before each computation — a
          hook to hold workers while clients pile onto in-flight entries *)
}

val config :
  ?queue_capacity:int -> ?solvers:int -> socket:string -> store_dir:string -> unit -> config
(** Defaults: queue capacity 64, 2 solver workers (clamped to [>= 1]), no
    report, no hooks. *)

val run : config -> unit
(** Binds the socket (refusing if a live daemon already answers on it,
    replacing it if stale) and serves until a [shutdown] request, SIGINT,
    or SIGTERM. Returns after {e all} scheduler workers have drained every
    admitted question and the socket file is unlinked.
    @raise Failure if the socket is in use by a live daemon or cannot be
    bound. *)
