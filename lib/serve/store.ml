open Wfc_core

let schema_version = "wfc.store.v2"

let schema_version_v1 = "wfc.store.v1"

type record = {
  digest : string;
  task : string;
  model : string;
  procs : int;
  max_level : int;
  budget : int;
  outcome : Solvability.outcome;
  created_at : float;
}

let c_reads = Wfc_obs.Metrics.counter "serve.store.reads"

let c_puts = Wfc_obs.Metrics.counter "serve.store.puts"

let c_quarantined = Wfc_obs.Metrics.counter "serve.store.quarantined"

let record ~task ~spec ?(model = "wait-free") ~max_level ~budget outcome =
  {
    digest = Wfc_tasks.Task.digest task;
    task = spec;
    model;
    procs = task.Wfc_tasks.Task.procs;
    max_level;
    budget;
    outcome;
    created_at = Unix.gettimeofday ();
  }

(* [verdict_json] is the deterministic core — every byte a function of the
   question, never of the search that answered it. The cost tallies
   (nodes/backtracks/prunes) live in the record envelope with the timing
   fields: a portfolio win or a search reducer changes how much work a
   verdict took, not what the verdict is, so cost is provenance — recorded,
   but outside the canonical object that solve/query/store hits must
   reproduce byte-for-byte. Key order is irrelevant — the canonical emitter
   sorts — but both views share one core builder so they can never
   disagree. *)
let json_fields r =
  let open Wfc_obs.Json in
  let o = r.outcome in
  [
    ("schema", String schema_version);
    ("digest", String r.digest);
    ("task", String r.task);
    ("model", String r.model);
    ("procs", Int r.procs);
    ("max_level", Int r.max_level);
    ("budget", Int r.budget);
    ("verdict", String o.Solvability.o_verdict);
    ("level", Int o.Solvability.o_level);
    ( "decide",
      Arr (List.map (fun (v, w) -> Arr [ Int v; Int w ]) o.Solvability.o_decide) );
  ]

let verdict_json r = Wfc_obs.Json.Obj (json_fields r)

let record_to_json r =
  let open Wfc_obs.Json in
  Obj
    (json_fields r
    @ [
        ("nodes", Int r.outcome.Solvability.o_nodes);
        ("backtracks", Int r.outcome.Solvability.o_backtracks);
        ("prunes", Int r.outcome.Solvability.o_prunes);
        ("elapsed", Float r.outcome.Solvability.o_elapsed);
        ("created_at", Float r.created_at);
      ])

let is_hex_digest s =
  String.length s = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let number_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.Float f) -> Ok f
  | Some (Wfc_obs.Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing or non-number %S" key)

let int_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-int %S" key)

let string_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string %S" key)

let ( let* ) = Result.bind

let record_of_json j =
  let* schema = string_member "schema" j in
  let* () =
    if schema = schema_version || schema = schema_version_v1 then Ok ()
    else
      Error
        (Printf.sprintf "schema %S, expected %S or %S" schema schema_version
           schema_version_v1)
  in
  let* digest = string_member "digest" j in
  let* () = if is_hex_digest digest then Ok () else Error "digest is not 32 hex chars" in
  let* task = string_member "task" j in
  let* model =
    (* v1 records predate models and are implicitly wait-free; v2 must say *)
    if schema = schema_version_v1 then Ok "wait-free"
    else
      let* m = string_member "model" j in
      if m = "" then Error "empty \"model\"" else Ok m
  in
  let* procs = int_member "procs" j in
  let* max_level = int_member "max_level" j in
  let* budget = int_member "budget" j in
  let* verdict = string_member "verdict" j in
  let* () =
    match verdict with
    | "solvable" | "unsolvable" | "exhausted" -> Ok ()
    | v -> Error (Printf.sprintf "unknown verdict %S" v)
  in
  let* level = int_member "level" j in
  let* nodes = int_member "nodes" j in
  let* backtracks = int_member "backtracks" j in
  let* prunes = int_member "prunes" j in
  let* elapsed = number_member "elapsed" j in
  let* created_at = number_member "created_at" j in
  let* decide =
    match Wfc_obs.Json.member "decide" j with
    | Some (Wfc_obs.Json.Arr l) ->
      let pair = function
        | Wfc_obs.Json.Arr [ Wfc_obs.Json.Int v; Wfc_obs.Json.Int w ] -> Ok (v, w)
        | _ -> Error "decide entries must be [vertex, output] int pairs"
      in
      List.fold_right
        (fun e acc ->
          let* acc = acc in
          let* p = pair e in
          Ok (p :: acc))
        l (Ok [])
    | _ -> Error "missing or non-array \"decide\""
  in
  let* () =
    if verdict = "solvable" && decide = [] then
      Error "solvable record with empty decide table"
    else if verdict <> "solvable" && decide <> [] then
      Error "non-solvable record with a decide table"
    else Ok ()
  in
  Ok
    {
      digest;
      task;
      model;
      procs;
      max_level;
      budget;
      outcome =
        {
          Solvability.o_verdict = verdict;
          o_level = level;
          o_nodes = nodes;
          o_backtracks = backtracks;
          o_prunes = prunes;
          o_elapsed = elapsed;
          o_decide = decide;
        };
      created_at;
    }

let validate_json j = Result.map (fun (_ : record) -> ()) (record_of_json j)

type t = { root : string }

let quarantine_dir t = Filename.concat t.root "quarantine"

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let open_store root =
  let t = { root } in
  mkdir_p root;
  mkdir_p (quarantine_dir t);
  t

let dir t = t.root

let basename_of ~digest ~model ~max_level =
  Printf.sprintf "%s.%s.L%d.json" digest (Wfc_tasks.Model.slug_of_name model) max_level

(* the pre-model filename scheme; only wait-free records ever used it *)
let basename_v1 ~digest ~max_level = Printf.sprintf "%s.L%d.json" digest max_level

let path_of t ~digest ~model ~max_level =
  Filename.concat t.root (basename_of ~digest ~model ~max_level)

let quarantine t path =
  Wfc_obs.Metrics.incr c_quarantined;
  let dst = Filename.concat (quarantine_dir t) (Filename.basename path) in
  try Unix.rename path dst with Unix.Unix_error _ -> (try Sys.remove path with Sys_error _ -> ())

let read_record path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (`Unreadable e)
  | contents -> (
    match Wfc_obs.Json.parse contents with
    | Error e -> Error (`Corrupt (Printf.sprintf "invalid JSON (%s)" e))
    | Ok j -> (
      match record_of_json j with Error e -> Error (`Corrupt e) | Ok r -> Ok r))

let find t ~digest ~model ~max_level ~budget =
  let path =
    let v2 = path_of t ~digest ~model ~max_level in
    if Sys.file_exists v2 then Some v2
    else if model = "wait-free" then begin
      (* read-compat: a pre-model store files wait-free records flat *)
      let v1 = Filename.concat t.root (basename_v1 ~digest ~max_level) in
      if Sys.file_exists v1 then Some v1 else None
    end
    else None
  in
  match path with
  | None -> None
  | Some path -> (
    Wfc_obs.Metrics.incr c_reads;
    match read_record path with
    | Ok r when r.digest = digest && r.model = model && r.budget = budget -> Some r
    | Ok r when r.digest <> digest || r.model <> model ->
      (* filed under the wrong name: never serve it *)
      quarantine t path;
      None
    | Ok _ -> None (* different budget: a miss, and the record stays *)
    | Error (`Unreadable _) -> None
    | Error (`Corrupt _) ->
      quarantine t path;
      None)

let put t r =
  let path = path_of t ~digest:r.digest ~model:r.model ~max_level:r.max_level in
  let tmp = path ^ ".tmp" in
  let bytes = Wfc_obs.Json.to_string (record_to_json r) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = Unix.write_substring fd bytes 0 (String.length bytes) in
      if n <> String.length bytes then failwith "Store.put: short write";
      Unix.fsync fd);
  Unix.rename tmp path;
  Wfc_obs.Metrics.incr c_puts

let list_files dir' ~suffix =
  match Sys.readdir dir' with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n suffix)
    |> List.sort compare

let entries t =
  list_files t.root ~suffix:".json"
  |> List.map (fun name ->
         let r =
           match read_record (Filename.concat t.root name) with
           | Ok r -> Ok r
           | Error (`Unreadable e) | Error (`Corrupt e) -> Error e
         in
         (name, r))

type verify_report = {
  valid : int;
  corrupt : (string * string) list;
  mismatched : string list;
  quarantined : int;
  stray_tmp : int;
}

let well_named name r =
  name = basename_of ~digest:r.digest ~model:r.model ~max_level:r.max_level
  || (r.model = "wait-free" && name = basename_v1 ~digest:r.digest ~max_level:r.max_level)

let verify t =
  let valid = ref 0 and corrupt = ref [] and mismatched = ref [] in
  List.iter
    (fun (name, r) ->
      match r with
      | Error e -> corrupt := (name, e) :: !corrupt
      | Ok r -> if well_named name r then incr valid else mismatched := name :: !mismatched)
    (entries t);
  {
    valid = !valid;
    corrupt = List.rev !corrupt;
    mismatched = List.rev !mismatched;
    quarantined = List.length (list_files (quarantine_dir t) ~suffix:"");
    stray_tmp = List.length (list_files t.root ~suffix:".tmp");
  }

type migrate_report = {
  migrated : int;
  untouched : int;
  skipped : (string * string) list;
}

let migrate t =
  let migrated = ref 0 and untouched = ref 0 and skipped = ref [] in
  List.iter
    (fun (name, r) ->
      match r with
      | Error e -> skipped := (name, e) :: !skipped
      | Ok r ->
        let canonical = basename_of ~digest:r.digest ~model:r.model ~max_level:r.max_level in
        if name = canonical then incr untouched
        else if
          r.model = "wait-free"
          && name = basename_v1 ~digest:r.digest ~max_level:r.max_level
        then begin
          (* rewrite as a v2 record (same outcome, same created_at) under
             the (digest, model, level) name, then retire the v1 file *)
          put t r;
          (try Sys.remove (Filename.concat t.root name) with Sys_error _ -> ());
          incr migrated
        end
        else skipped := (name, "filed under a name matching neither scheme") :: !skipped)
    (entries t);
  { migrated = !migrated; untouched = !untouched; skipped = List.rev !skipped }

let gc t ~removed =
  let rm path = try Sys.remove path; incr removed with Sys_error _ -> () in
  List.iter
    (fun n -> rm (Filename.concat t.root n))
    (list_files t.root ~suffix:".tmp");
  List.iter
    (fun n -> rm (Filename.concat (quarantine_dir t) n))
    (list_files (quarantine_dir t) ~suffix:"")
