(* The serving layer's store, now a thin veneer over {!Wfc_storage.Engine}
   — the sharded, manifest-indexed, cache-tiered engine. This module keeps
   the (digest, model, level, budget)-keyed API and record type the rest of
   the serving layer was written against; everything behind it (layout,
   codecs, manifest, LRU) lives in [lib/storage]. *)

module Record = Wfc_storage.Record
module Engine = Wfc_storage.Engine

let schema_version = Record.schema_version

let schema_version_v1 = Record.schema_version_v1

type record = Record.record = {
  digest : string;
  task : string;
  model : string;
  procs : int;
  max_level : int;
  budget : int;
  outcome : Wfc_core.Solvability.outcome;
  created_at : float;
}

let record = Record.make

let record_to_json = Record.record_to_json

let verdict_json = Record.verdict_json

let record_of_json = Record.record_of_json

let validate_json = Record.validate_json

type t = Engine.t

let open_store ?cache_cap ?codec root = Engine.open_store ?cache_cap ?codec root

let engine t = t

(* Point [Sds.iterate] at this store's skeleton keyspace: subdivision steps
   of already-seen complexes replay from one artifact instead of re-running
   the ordered-partition enumeration. Process-wide (the subdivision memo
   is too); integrity checking lives in [Sds]. *)
let attach_skeletons t =
  Wfc_topology.Sds.set_skeleton_store
    (Some
       {
         Wfc_topology.Sds.load =
           (fun ~digest ~level -> Engine.find_skeleton t ~digest ~level);
         save =
           (fun ~digest ~level data ->
             Engine.put_skeleton t ~digest ~level
               ~created_at:(Unix.gettimeofday ()) data);
       })

let dir = Engine.dir

let path_of = Engine.path_of

let find = Engine.find

let put = Engine.put

let entries = Engine.entries

type verify_report = Engine.verify_report = {
  valid : int;
  corrupt : (string * string) list;
  mismatched : string list;
  quarantined : int;
  stray_tmp : int;
  unindexed : int;
  missing : int;
  bad_manifest_lines : int;
}

let verify = Engine.verify

type migrate_report = Engine.migrate_report = {
  migrated : int;
  untouched : int;
  adopted : int;
  skipped : (string * string) list;
}

let migrate = Engine.migrate

let gc = Engine.gc
