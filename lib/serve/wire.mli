(** The daemon's wire protocol: length-prefixed canonical JSON frames over a
    Unix-domain stream socket.

    Framing: each message is a 4-byte big-endian payload length followed by
    that many bytes of JSON. Frames above {!max_frame} are rejected before
    allocation, so a garbled peer cannot make the other side allocate
    gigabytes. The protocol is strict request/response: the client writes
    one request frame and reads exactly one response frame, any number of
    times per connection.

    Requests ([op] tag): {v
      {"op": "query", "task": NAME, "procs": P, "param": K, "max_level": B,
       "model": M, "req_id": ID}
      {"op": "ping"}   {"op": "stats"}   {"op": "shutdown"}
    v}

    [model] is a canonical {!Wfc_tasks.Model} name; a request without the
    field (a pre-model client) is read as ["wait-free"], so old clients keep
    getting exactly the answers they always got. [req_id] is an optional
    opaque correlation id: the daemon echoes it in the verdict response and
    stamps it on every event-log line of the request, and assigns one
    itself when a pre-telemetry client omits it.

    Responses ([status] tag): {v
      {"status": "ok", "source": "store"|"computed"|"coalesced",
       "record": <wfc.store.v2>, "req_id": ID,
       "timing": {"queue_wait_s": Q, "solve_s": S, "store_s": T, "total_s": W}}
      {"status": "shed"}                      queue full — retry or solve inline
      {"status": "pong", "version": V, "uptime_s": U}   {"status": "bye"}
      {"status": "stats", "metrics": {...}, "server": {...}}
      {"status": "error", "message": "..."}
    v}

    [req_id], [timing], [version], [uptime_s] and [server] are all optional
    on decode (absent from a pre-telemetry daemon's responses), mirroring
    the model-field compatibility scheme: new clients against old daemons
    see [None], old clients ignore the new fields, and the [record] bytes —
    the part with verdict semantics — are untouched either way. [timing] is
    the daemon-side stage breakdown: time spent waiting in the solve queue,
    in the search, in store I/O, and end-to-end inside the handler.

    Tasks travel by {e name}: the daemon rebuilds the complex through
    {!Wfc_tasks.Instances.by_name} — the same registry an inline solve uses
    — and content-addresses the result by {!Wfc_tasks.Task.digest}, so a
    wire query and a local solve can never disagree about which question is
    being asked. *)

val max_frame : int
(** 16 MiB. *)

type spec = {
  task : string;
  procs : int;
  param : int;
  max_level : int;
  model : string;
  symmetry : bool;
  collapse : bool;
}
(** A named task question under a named model, as [wfc solve] would pose
    it. [model] is a canonical {!Wfc_tasks.Model} name ("wait-free" for the
    historical behaviour). [symmetry]/[collapse] toggle the engine's search
    reducers ({!Wfc_core.Solvability.options}); they are verdict-preserving,
    so absent fields decode to [true] — pre-reducer clients get the pruned
    engine and byte-identical answers. *)

val spec_to_string : spec -> string
(** ["name(procs=P,param=K)"] — the informational [task] field of store
    records, shared by every producer so records diff cleanly. The model is
    deliberately {e not} part of this string; it travels in the record's
    own [model] field. *)

type request = Query of { spec : spec; req_id : string option } | Ping | Stats | Shutdown

type source = From_store | Computed | Coalesced

val source_name : source -> string
(** ["store"] / ["computed"] / ["coalesced"]. *)

type timing = { queue_wait_s : float; solve_s : float; store_s : float; total_s : float }
(** Per-request stage breakdown, daemon-side seconds. A store hit has
    [queue_wait_s = solve_s = 0.]; a coalesced answer reports the stages of
    the computation it attached to. *)

type response =
  | Verdict of {
      source : source;
      record : Store.record;
      req_id : string option;
      timing : timing option;
    }
  | Shed
  | Pong of { version : string option; uptime_s : float option }
  | Metrics of { metrics : Wfc_obs.Json.t; server : Wfc_obs.Json.t option }
  | Bye
  | Failed of string

val request_to_json : request -> Wfc_obs.Json.t

val request_of_json : Wfc_obs.Json.t -> (request, string) result

val timing_to_json : timing -> Wfc_obs.Json.t

val timing_of_json : Wfc_obs.Json.t -> (timing, string) result

val response_to_json : response -> Wfc_obs.Json.t

val response_of_json : Wfc_obs.Json.t -> (response, string) result

val write_frame : Unix.file_descr -> Wfc_obs.Json.t -> unit
(** Writes one frame, handling short writes. @raise Unix.Unix_error on a
    dead peer (the daemon ignores [SIGPIPE], so a closed socket surfaces
    here as [EPIPE], not a process kill). *)

val read_frame : Unix.file_descr -> (Wfc_obs.Json.t, string) result
(** Reads one frame. [Error] on EOF, a truncated frame, an oversized
    length prefix, or unparsable JSON. *)
