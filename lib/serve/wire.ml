let max_frame = 16 * 1024 * 1024

type spec = {
  task : string;
  procs : int;
  param : int;
  max_level : int;
  model : string;
  symmetry : bool;
  collapse : bool;
}

let spec_to_string s = Printf.sprintf "%s(procs=%d,param=%d)" s.task s.procs s.param

type request = Query of { spec : spec; req_id : string option } | Ping | Stats | Shutdown

type source = From_store | Computed | Coalesced

let source_name = function
  | From_store -> "store"
  | Computed -> "computed"
  | Coalesced -> "coalesced"

type timing = { queue_wait_s : float; solve_s : float; store_s : float; total_s : float }

type response =
  | Verdict of {
      source : source;
      record : Store.record;
      req_id : string option;
      timing : timing option;
    }
  | Shed
  | Pong of { version : string option; uptime_s : float option }
  | Metrics of { metrics : Wfc_obs.Json.t; server : Wfc_obs.Json.t option }
  | Bye
  | Failed of string

let request_to_json r =
  let open Wfc_obs.Json in
  match r with
  | Query { spec = s; req_id } ->
    Obj
      ([
         ("op", String "query");
         ("task", String s.task);
         ("procs", Int s.procs);
         ("param", Int s.param);
         ("max_level", Int s.max_level);
         ("model", String s.model);
         ("symmetry", Bool s.symmetry);
         ("collapse", Bool s.collapse);
       ]
      @ match req_id with None -> [] | Some id -> [ ("req_id", String id) ])
  | Ping -> Obj [ ("op", String "ping") ]
  | Stats -> Obj [ ("op", String "stats") ]
  | Shutdown -> Obj [ ("op", String "shutdown") ]

let ( let* ) = Result.bind

let string_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string %S" key)

let int_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-int %S" key)

(* Absent optional fields decode to [None] — the compatibility scheme that
   lets pre-telemetry and post-telemetry peers interoperate in both
   directions (same contract as the absent-"model" default below). *)
let opt_string_member key j =
  match Wfc_obs.Json.member key j with
  | None -> Ok None
  | Some (Wfc_obs.Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "non-string %S" key)

let number_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.Float f) -> Ok f
  | Some (Wfc_obs.Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing or non-numeric %S" key)

let request_of_json j =
  let* op = string_member "op" j in
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "query" ->
    let* task = string_member "task" j in
    let* procs = int_member "procs" j in
    let* param = int_member "param" j in
    let* max_level = int_member "max_level" j in
    (* pre-model clients omit the field; their questions are wait-free *)
    let* model =
      match Wfc_obs.Json.member "model" j with
      | None -> Ok "wait-free"
      | Some (Wfc_obs.Json.String m) when m <> "" -> Ok m
      | Some _ -> Error "non-string or empty \"model\""
    in
    (* search reducers: pre-reducer clients omit the fields, and the
       reducers are verdict-preserving, so absent means on — same
       compatibility contract as the absent-"model" default above *)
    let bool_member_default key default =
      match Wfc_obs.Json.member key j with
      | None -> Ok default
      | Some (Wfc_obs.Json.Bool b) -> Ok b
      | Some _ -> Error (Printf.sprintf "non-bool %S" key)
    in
    let* symmetry = bool_member_default "symmetry" true in
    let* collapse = bool_member_default "collapse" true in
    let* req_id = opt_string_member "req_id" j in
    if procs < 1 then Error "procs must be >= 1"
    else if max_level < 0 then Error "max_level must be >= 0"
    else
      Ok (Query { spec = { task; procs; param; max_level; model; symmetry; collapse }; req_id })
  | op -> Error (Printf.sprintf "unknown op %S" op)

let timing_to_json t =
  let open Wfc_obs.Json in
  Obj
    [
      ("queue_wait_s", Float t.queue_wait_s);
      ("solve_s", Float t.solve_s);
      ("store_s", Float t.store_s);
      ("total_s", Float t.total_s);
    ]

let timing_of_json j =
  let* queue_wait_s = number_member "queue_wait_s" j in
  let* solve_s = number_member "solve_s" j in
  let* store_s = number_member "store_s" j in
  let* total_s = number_member "total_s" j in
  Ok { queue_wait_s; solve_s; store_s; total_s }

let response_to_json r =
  let open Wfc_obs.Json in
  match r with
  | Verdict { source; record; req_id; timing } ->
    Obj
      ([
         ("status", String "ok");
         ("source", String (source_name source));
         ("record", Store.record_to_json record);
       ]
      @ (match req_id with None -> [] | Some id -> [ ("req_id", String id) ])
      @ match timing with None -> [] | Some t -> [ ("timing", timing_to_json t) ])
  | Shed -> Obj [ ("status", String "shed") ]
  | Pong { version; uptime_s } ->
    Obj
      (("status", String "pong")
      :: ((match version with None -> [] | Some v -> [ ("version", String v) ])
         @ match uptime_s with None -> [] | Some u -> [ ("uptime_s", Float u) ]))
  | Metrics { metrics; server } ->
    Obj
      ([ ("status", String "stats"); ("metrics", metrics) ]
      @ match server with None -> [] | Some s -> [ ("server", s) ])
  | Bye -> Obj [ ("status", String "bye") ]
  | Failed msg -> Obj [ ("status", String "error"); ("message", String msg) ]

let response_of_json j =
  let* status = string_member "status" j in
  match status with
  | "shed" -> Ok Shed
  | "pong" ->
    let* version = opt_string_member "version" j in
    let uptime_s =
      match number_member "uptime_s" j with Ok u -> Some u | Error _ -> None
    in
    Ok (Pong { version; uptime_s })
  | "bye" -> Ok Bye
  | "error" ->
    let* msg = string_member "message" j in
    Ok (Failed msg)
  | "stats" -> (
    match Wfc_obs.Json.member "metrics" j with
    | Some m -> Ok (Metrics { metrics = m; server = Wfc_obs.Json.member "server" j })
    | None -> Error "stats response without \"metrics\"")
  | "ok" -> (
    let* source = string_member "source" j in
    let* source =
      match source with
      | "store" -> Ok From_store
      | "computed" -> Ok Computed
      | "coalesced" -> Ok Coalesced
      | s -> Error (Printf.sprintf "unknown source %S" s)
    in
    let* req_id = opt_string_member "req_id" j in
    let* timing =
      match Wfc_obs.Json.member "timing" j with
      | None -> Ok None
      | Some tj -> Result.map Option.some (timing_of_json tj)
    in
    match Wfc_obs.Json.member "record" j with
    | None -> Error "ok response without \"record\""
    | Some rj ->
      let* record = Store.record_of_json rj in
      Ok (Verdict { source; record; req_id; timing }))
  | s -> Error (Printf.sprintf "unknown status %S" s)

(* ---- framing ---- *)

let really_write fd bytes off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let n = Unix.write fd bytes !off !len in
    off := !off + n;
    len := !len - n
  done

let write_frame fd j =
  let payload = Bytes.unsafe_of_string (Wfc_obs.Json.to_string j) in
  let n = Bytes.length payload in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int n);
  really_write fd header 0 4;
  really_write fd payload 0 n

(* [Ok buf] or [Error `Eof] (clean close at a frame boundary) / [Error `Short]
   (peer died mid-frame). *)
let really_read fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Ok buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then Error `Eof else Error `Short
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame fd =
  match really_read fd 4 with
  | Error `Eof -> Error "connection closed"
  | Error `Short -> Error "truncated frame header"
  | Ok header -> (
    let n = Int32.to_int (Bytes.get_int32_be header 0) in
    if n < 0 || n > max_frame then Error (Printf.sprintf "frame length %d out of bounds" n)
    else
      match really_read fd n with
      | Error (`Eof | `Short) -> Error "truncated frame payload"
      | Ok payload -> (
        match Wfc_obs.Json.parse (Bytes.unsafe_to_string payload) with
        | Ok j -> Ok j
        | Error e -> Error (Printf.sprintf "bad frame payload: %s" e)))
