(** Client side of the daemon's wire protocol.

    Thin and synchronous: connect, exchange one request/response frame at a
    time, close. [wfc query] composes this with an inline-solve fallback —
    see {!Wfc_serve} users in [bin/wfc_cli.ml]. *)

type t

val connect : socket:string -> (t, string) result
(** [Error] when nothing listens on the path — the caller's signal to fall
    back to an inline solve. *)

val close : t -> unit

val request : t -> Wire.request -> (Wire.response, string) result
(** One round-trip. [Error] on a dead daemon or a malformed response. *)

val query : t -> Wire.spec -> (Wire.response, string) result

val ping : t -> bool
(** One [ping] round-trip; [false] on any failure. *)

val shutdown : t -> (unit, string) result
(** Sends [shutdown]; [Ok] once the daemon acknowledges with [bye]. *)
