(** Client side of the daemon's wire protocol.

    Thin and synchronous: connect, exchange one request/response frame at a
    time, close. [wfc query] composes this with an inline-solve fallback —
    see {!Wfc_serve} users in [bin/wfc_cli.ml]. *)

type t

val connect : socket:string -> (t, string) result
(** [Error] when nothing listens on the path — the caller's signal to fall
    back to an inline solve. *)

val close : t -> unit

val request : t -> Wire.request -> (Wire.response, string) result
(** One round-trip. [Error] on a dead daemon or a malformed response. *)

val query : ?req_id:string -> t -> Wire.spec -> (Wire.response, string) result
(** With [?req_id], the daemon echoes the id in the verdict response and
    stamps it on the request's event-log lines; without it, a telemetry
    daemon assigns one itself. *)

val ping : t -> bool
(** One [ping] round-trip; [false] on any failure. *)

val ping_info : t -> (string option * float option, string) result
(** One [ping] round-trip keeping the [pong] payload: daemon version and
    uptime in seconds, each [None] against a pre-telemetry daemon. *)

val stats : t -> (Wfc_obs.Json.t * Wfc_obs.Json.t option, string) result
(** One [stats] round-trip: the metrics snapshot plus the [server]
    introspection block ([None] against a pre-telemetry daemon). *)

val shutdown : t -> (unit, string) result
(** Sends [shutdown]; [Ok] once the daemon acknowledges with [bye]. *)
