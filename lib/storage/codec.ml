(* Per-record codec negotiation: a store can hold canonical-JSON records and
   compact binary records side by side — the manifest (and the file
   extension) says which decoder applies. The compact format exists for the
   millions-of-records regime: the decide table dominates a solvable record
   and packs into LEB128 varints at a fraction of its JSON rendering ("On
   the Bit Complexity of Iterated Memory" motivates compact encodings of
   exactly these iterated-memory objects). Both codecs decode to the same
   {!Record.record}, and the canonical verdict bytes a query answers with
   are rendered from the decoded record — so the codec can never change an
   answer, only the bytes at rest. *)

type t = Json | Compact

let to_string = function Json -> "json" | Compact -> "compact"

let of_string = function
  | "json" -> Ok Json
  | "compact" -> Ok Compact
  | s -> Error (Printf.sprintf "unknown codec %S (expected json or compact)" s)

let extension = function Json -> ".json" | Compact -> ".wfcb"

let of_path path =
  if Filename.check_suffix path ".json" then Some Json
  else if Filename.check_suffix path ".wfcb" then Some Compact
  else None

(* ---- compact binary format ----

   magic "WFCB1", then fields in fixed order:
     digest        16 raw bytes (the 32 hex chars packed)
     task, model   varint length + bytes
     procs, max_level, budget, level,
     nodes, backtracks, prunes          varints
     verdict       1 byte: 0 solvable / 1 unsolvable / 2 exhausted
     elapsed, created_at                IEEE-754 float64, big-endian
     decide        varint count, then per pair: varint delta(vertex), varint output
   Vertices are sorted ascending, so the vertex column is delta-encoded:
   consecutive ids almost always fit one byte. All varints are unsigned
   LEB128; every encoded int is checked non-negative (vertex ids, counts and
   budgets all are). *)

let magic = "WFCB1"

let buf_add_varint b n =
  if n < 0 then invalid_arg "Codec: negative int in compact record";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let buf_add_string b s =
  buf_add_varint b (String.length s);
  Buffer.add_string b s

let buf_add_float b f =
  let bits = Int64.bits_of_float f in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (i * 8)) 0xFFL)))
  done

let hex_to_raw digest =
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> invalid_arg "Codec: non-hex digest"
  in
  String.init 16 (fun i ->
      Char.chr ((nibble digest.[2 * i] lsl 4) lor nibble digest.[(2 * i) + 1]))

let raw_to_hex raw =
  String.concat ""
    (List.init 16 (fun i -> Printf.sprintf "%02x" (Char.code raw.[i])))

let verdict_tag = function
  | "solvable" -> 0
  | "unsolvable" -> 1
  | "exhausted" -> 2
  | v -> invalid_arg (Printf.sprintf "Codec: unknown verdict %S" v)

let verdict_of_tag = function
  | 0 -> Ok "solvable"
  | 1 -> Ok "unsolvable"
  | 2 -> Ok "exhausted"
  | t -> Error (Printf.sprintf "unknown verdict tag %d" t)

let encode_compact (r : Record.record) =
  let open Wfc_core in
  let o = r.Record.outcome in
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_string b (hex_to_raw r.Record.digest);
  buf_add_string b r.Record.task;
  buf_add_string b r.Record.model;
  buf_add_varint b r.Record.procs;
  buf_add_varint b r.Record.max_level;
  buf_add_varint b r.Record.budget;
  buf_add_varint b o.Solvability.o_level;
  buf_add_varint b o.Solvability.o_nodes;
  buf_add_varint b o.Solvability.o_backtracks;
  buf_add_varint b o.Solvability.o_prunes;
  Buffer.add_char b (Char.chr (verdict_tag o.Solvability.o_verdict));
  buf_add_float b o.Solvability.o_elapsed;
  buf_add_float b r.Record.created_at;
  buf_add_varint b (List.length o.Solvability.o_decide);
  let prev = ref 0 in
  List.iter
    (fun (v, w) ->
      buf_add_varint b (v - !prev);
      prev := v;
      buf_add_varint b w)
    o.Solvability.o_decide;
  Buffer.contents b

(* A stateful little-parser over the payload; every read is bounds-checked
   so a truncated or bit-flipped file decodes to [Error], never an
   exception — the engine quarantines on [Error] exactly as it does for
   torn JSON. *)
type cursor = { data : string; mutable pos : int }

let ( let* ) = Result.bind

let take c n =
  if c.pos + n > String.length c.data then Error "truncated compact record"
  else begin
    let s = String.sub c.data c.pos n in
    c.pos <- c.pos + n;
    Ok s
  end

let read_varint c =
  let rec go shift acc =
    if shift > 62 then Error "varint overflow"
    else if c.pos >= String.length c.data then Error "truncated varint"
    else begin
      let byte = Char.code c.data.[c.pos] in
      c.pos <- c.pos + 1;
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then Ok acc else go (shift + 7) acc
    end
  in
  go 0 0

let read_string c =
  let* n = read_varint c in
  take c n

let read_float c =
  let* raw = take c 8 in
  let bits = ref 0L in
  String.iter (fun ch -> bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code ch))) raw;
  Ok (Int64.float_of_bits !bits)

let decode_compact data =
  let c = { data; pos = 0 } in
  let* m = take c (String.length magic) in
  let* () = if m = magic then Ok () else Error "bad magic (not a compact record)" in
  let* raw_digest = take c 16 in
  let digest = raw_to_hex raw_digest in
  let* task = read_string c in
  let* model = read_string c in
  let* procs = read_varint c in
  let* max_level = read_varint c in
  let* budget = read_varint c in
  let* level = read_varint c in
  let* nodes = read_varint c in
  let* backtracks = read_varint c in
  let* prunes = read_varint c in
  let* tag = take c 1 in
  let* verdict = verdict_of_tag (Char.code tag.[0]) in
  let* elapsed = read_float c in
  let* created_at = read_float c in
  let* ndecide = read_varint c in
  let rec pairs prev n acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* dv = read_varint c in
      let* w = read_varint c in
      let v = prev + dv in
      pairs v (n - 1) ((v, w) :: acc)
  in
  let* decide = pairs 0 ndecide [] in
  let* () =
    if c.pos = String.length data then Ok () else Error "trailing bytes after compact record"
  in
  let r =
    {
      Record.digest;
      task;
      model;
      procs;
      max_level;
      budget;
      outcome =
        {
          Wfc_core.Solvability.o_verdict = verdict;
          o_level = level;
          o_nodes = nodes;
          o_backtracks = backtracks;
          o_prunes = prunes;
          o_elapsed = elapsed;
          o_decide = decide;
        };
      created_at;
    }
  in
  let* () = Record.check_record r in
  Ok r

let encode codec r =
  match codec with
  | Json -> Wfc_obs.Json.to_string (Record.record_to_json r)
  | Compact -> encode_compact r

let decode codec data =
  match codec with
  | Json -> (
    match Wfc_obs.Json.parse data with
    | Error e -> Error (Printf.sprintf "invalid JSON (%s)" e)
    | Ok j -> Record.record_of_json j)
  | Compact -> decode_compact data
