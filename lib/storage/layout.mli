(** On-disk layout of the sharded (v3) store: two-level digest-prefix
    shards ([ab/cd/<digest>...]) created lazily, a [skeletons/] keyspace
    beside the verdict shards, a [quarantine/] pen, and the atomic-write
    discipline (unique [.wtmp] temp + fsync + rename) every durable file
    goes through. *)

val shard_of_digest : string -> string * string
(** First and second hex-pair of the digest — the two directory levels. *)

val verdict_basename :
  digest:string -> model:string -> max_level:int -> ext:string -> string

val verdict_rel :
  digest:string -> model:string -> max_level:int -> ext:string -> string
(** Store-relative sharded path of a verdict record, e.g.
    [ab/cd/abcd....k-set-2.L3.json]. [ext] comes from {!Codec.extension}. *)

val flat_basename : digest:string -> model:string -> max_level:int -> string
(** Flat v2 basename ([<digest>.<model-slug>.L<n>.json]) — read-compat and
    migration only. *)

val flat_basename_v1 : digest:string -> max_level:int -> string
(** Flat v1 basename ([<digest>.L<n>.json], implicitly wait-free). *)

val skeleton_root : string

val skeleton_rel : digest:string -> level:int -> string
(** Store-relative path of a persisted [SDS^level] skeleton keyed by the
    structural digest of the base complex. *)

val quarantine_root : string

val manifest_basename : string

val tmp_ext : string
(** [".wtmp"] — the extension of in-flight atomic-write temps. Scans skip
    (but report) these; [gc] reaps them. *)

val tmp_path_for : string -> string
(** A fresh unique temp path in the same directory as the target (pid +
    counter), so concurrent writers never collide. *)

val is_tmp : string -> bool

val mkdir_p : string -> unit

val atomic_write : string -> string -> unit
(** [atomic_write path data]: durable atomic publish — temp in the target
    directory, full write, fsync, rename. Creates parent directories (lazy
    shard creation). *)

val read_file : string -> string

val walk : string -> f:(string -> unit) -> unit
(** Depth-first walk yielding store-relative file paths in sorted order.
    Only rebuild/verify/migrate walk; the serving path never does. *)
