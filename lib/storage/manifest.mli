(** The append-only store index ([MANIFEST.jsonl], schema
    [wfc.manifest.v1]): one canonical single-line JSON entry per mutation,
    fsync'd on append, compacted on [gc], rebuildable from a directory
    walk. [ls]/[verify]/[gc] answer from one sequential read of this file
    instead of a [readdir] of the world. The manifest is derived state:
    records are durable before their manifest line exists, so a torn
    trailing line (crash mid-append) is tolerated and reported, and a lost
    manifest costs a rebuild, never data. *)

val schema_version : string
(** ["wfc.manifest.v1"]. *)

type op = Put | Del

type kind = Verdict | Skeleton

type entry = {
  op : op;
  kind : kind;
  rel : string;  (** store-relative path of the artifact *)
  digest : string;
  model : string;  (** [""] for skeletons *)
  max_level : int;  (** subdivision level for skeletons *)
  budget : int;  (** [0] for skeletons *)
  verdict : string;  (** [""] for skeletons and deletions *)
  level : int;  (** decided level; [0] when not applicable *)
  codec : string;
  created_at : float;
}

val entry_to_json : entry -> Wfc_obs.Json.t

val entry_of_json : Wfc_obs.Json.t -> (entry, string) result

type t
(** An append handle: lazily-opened [O_APPEND] fd, serialized by a mutex. *)

val create : string -> t

val append : t -> entry -> unit
(** Append one entry as a [Json.to_line] line and fsync. *)

val close : t -> unit

type load_report = { entries : entry list; bad_lines : int }

val load : string -> load_report
(** Sequential read of the whole log in order; unparseable lines (torn
    trailing append) are counted, not fatal. Missing file = empty log. *)

val live : entry list -> entry list
(** Replay the log: the latest [Put] per path not followed by a [Del],
    sorted by path. *)

val write_full : string -> entry list -> unit
(** Atomically replace the log with exactly [entries] (compaction /
    rebuild). *)
