(** The sharded, manifest-indexed, cache-tiered store (v3 layout).

    One engine instance serves two keyspaces under one root:

    - {b verdicts} — [ab/cd/<digest>.<model-slug>.L<n>.<ext>], the record
      of one decided [(task, model, max_level, budget)] question, encoded
      by a per-record {!Codec} ([.json] canonical / [.wfcb] compact);
    - {b skeletons} — [skeletons/ab/cd/<digest>.L<b>.json], a persisted
      [SDS^b] subdivision keyed by the structural digest of its base.

    Every mutation appends a fsync'd line to [MANIFEST.jsonl]
    ({!Manifest}); [ls]/[verify]/[gc] answer from that one sequential file.
    The {e serving} path never consults the manifest: {!find} goes LRU →
    direct stat-probes (sharded both codecs, then flat v2/v1 for
    pre-sharding stores), so concurrent writers in other processes are
    visible immediately and manifest staleness can only mis-report, never
    mis-answer.

    Counters: [serve.store.{reads,puts,quarantined}] (disk tier, the
    pre-engine names) and [storage.cache.{hit,miss,evict}] (memory
    tier). *)

type t

val default_cache_cap : int

val open_store : ?cache_cap:int -> ?codec:Codec.t -> string -> t
(** Opens (creating root and quarantine dirs) the store at the path.
    [codec] is the {e write} codec; both codecs are always readable.
    [cache_cap] bounds the decoded-record LRU (default
    {!default_cache_cap}). *)

val dir : t -> string

val codec : t -> Codec.t

val close : t -> unit
(** Releases the manifest append handle. The store stays usable — the
    handle reopens lazily. *)

val path_of : t -> digest:string -> model:string -> max_level:int -> string
(** The sharded path {!put} would write for this question under the
    engine's codec. *)

val find :
  t ->
  digest:string ->
  model:string ->
  max_level:int ->
  budget:int ->
  Record.record option
(** The stored verdict, or [None] on: no record, a different-budget record
    (which stays), or a corrupt/misfiled record (quarantined on the way
    out, with a manifest [Del]). Hits fill and consult the LRU; a cache hit
    makes no syscall. Wait-free questions fall back to flat v1 paths. *)

val put : t -> Record.record -> unit
(** Atomic durable publish under the sharded path, retiring any superseded
    copy (other codec, flat v2/v1 names), then manifest append and cache
    fill. *)

val find_skeleton : t -> digest:string -> level:int -> string option
(** Raw bytes of the persisted [SDS^level] artifact for a base complex
    with this structural digest, if present. Integrity is the caller's
    check (the artifact embeds its own digest). *)

val put_skeleton :
  t -> digest:string -> level:int -> created_at:float -> string -> unit

val ls : t -> Manifest.entry list
(** The live manifest view (both keyspaces), sorted by path — one
    sequential read, no [readdir], no record opens. *)

val entries : t -> (string * (Record.record, string) result) list
(** Live verdict entries with each record file read back —
    (relative path, parse result). Never quarantines. *)

type verify_report = {
  valid : int;
  corrupt : (string * string) list;  (** record files failing decode *)
  mismatched : string list;  (** body disagrees with filed path *)
  quarantined : int;  (** files already in quarantine/ *)
  stray_tmp : int;  (** interrupted atomic writes ([*.wtmp]) *)
  unindexed : int;  (** files on disk with no live manifest line (includes
                        pre-migration flat records) *)
  missing : int;  (** live manifest lines whose file is gone *)
  bad_manifest_lines : int;  (** unparseable (torn) manifest lines *)
}

val verify : t -> verify_report
(** Full reconciliation: one manifest read + one tree walk, cross-checked
    both ways. Read-only. *)

type migrate_report = {
  migrated : int;  (** flat-named records rewritten under sharded paths *)
  untouched : int;  (** records already canonical and indexed *)
  adopted : int;  (** canonical files the manifest had lost, re-indexed *)
  skipped : (string * string) list;  (** (path, reason) *)
}

val migrate : t -> migrate_report
(** v1/v2 → v3: every well-formed record filed under a flat name is
    re-put under its sharded path (same record, current codec) and the old
    file removed; canonical-but-unindexed files (and skeletons) are
    adopted into the manifest. Idempotent. *)

val rebuild_manifest : t -> int
(** Regenerates [MANIFEST.jsonl] from nothing but a tree walk, atomically
    replacing the log; returns the live-entry count. The recovery proof
    that the manifest is derived state. *)

val gc : t -> removed:int ref -> unit
(** Reaps quarantined files and stray [.wtmp] temps (counting into
    [removed]), then compacts the manifest to exactly the live,
    still-on-disk set. *)

val seed : t -> count:int -> unit
(** Populates deterministic synthetic records (bench / CI scale runs). *)

val cache_clear : t -> unit

val cache_keys : t -> string list
(** Cached question keys, warmest first. *)
