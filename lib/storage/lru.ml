(* A bounded LRU over string keys: hash table for O(1) lookup, intrusive
   doubly-linked list for O(1) recency updates and eviction. Not
   thread-safe by itself — the engine takes its lock around every call, so
   the structure stays single-purpose and testable in isolation. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable size : int;
  on_evict : string -> 'a -> unit;
}

let create ?(on_evict = fun _ _ -> ()) cap =
  if cap < 1 then invalid_arg "Lru.create: cap must be >= 1";
  { cap; tbl = Hashtbl.create (min cap 1024); head = None; tail = None; size = 0; on_evict }

let capacity t = t.cap

let size t = t.size

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.value

let mem t key = Hashtbl.mem t.tbl key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.key;
    t.size <- t.size - 1;
    t.on_evict n.key n.value

let put t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
    n.value <- value;
    unlink t n;
    push_front t n
  | None ->
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key n;
    push_front t n;
    t.size <- t.size + 1);
  while t.size > t.cap do
    evict_lru t
  done

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl key;
    t.size <- t.size - 1

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.size <- 0

(* Keys from most to least recently used — the order eviction would take,
   reversed. For tests and stats, not the hot path. *)
let keys_mru_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
