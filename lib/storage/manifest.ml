(* The append-only manifest: one canonical single-line JSON entry per
   mutation, fsync'd. It is the index that lets ls/verify/gc answer from
   one sequential read instead of a readdir of the world, and it is always
   *derived* state: every entry can be rebuilt from a directory walk, so a
   lost or stale manifest costs a rebuild, never data. Writes append; [gc]
   compacts by rewriting the live set. A torn trailing line (crash mid-
   append) is tolerated on load and reported, because the record file
   itself was already durable before its manifest line was written. *)

let schema_version = "wfc.manifest.v1"

type op = Put | Del

type kind = Verdict | Skeleton

type entry = {
  op : op;
  kind : kind;
  rel : string;  (* store-relative path of the artifact *)
  digest : string;
  model : string;  (* "" for skeletons *)
  max_level : int;  (* subdivision level for skeletons *)
  budget : int;  (* 0 for skeletons *)
  verdict : string;  (* "" for skeletons and deletions *)
  level : int;  (* decided level; 0 when not applicable *)
  codec : string;
  created_at : float;
}

let op_to_string = function Put -> "put" | Del -> "del"

let kind_to_string = function Verdict -> "verdict" | Skeleton -> "skeleton"

let entry_to_json e =
  let open Wfc_obs.Json in
  Obj
    [
      ("schema", String schema_version);
      ("op", String (op_to_string e.op));
      ("kind", String (kind_to_string e.kind));
      ("rel", String e.rel);
      ("digest", String e.digest);
      ("model", String e.model);
      ("max_level", Int e.max_level);
      ("budget", Int e.budget);
      ("verdict", String e.verdict);
      ("level", Int e.level);
      ("codec", String e.codec);
      ("created_at", Float e.created_at);
    ]

let ( let* ) = Result.bind

let string_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string %S" key)

let int_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-int %S" key)

let number_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.Float f) -> Ok f
  | Some (Wfc_obs.Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing or non-number %S" key)

let entry_of_json j =
  let* schema = string_member "schema" j in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema schema_version)
  in
  let* op =
    let* s = string_member "op" j in
    match s with
    | "put" -> Ok Put
    | "del" -> Ok Del
    | s -> Error (Printf.sprintf "unknown op %S" s)
  in
  let* kind =
    let* s = string_member "kind" j in
    match s with
    | "verdict" -> Ok Verdict
    | "skeleton" -> Ok Skeleton
    | s -> Error (Printf.sprintf "unknown kind %S" s)
  in
  let* rel = string_member "rel" j in
  let* digest = string_member "digest" j in
  let* model = string_member "model" j in
  let* max_level = int_member "max_level" j in
  let* budget = int_member "budget" j in
  let* verdict = string_member "verdict" j in
  let* level = int_member "level" j in
  let* codec = string_member "codec" j in
  let* created_at = number_member "created_at" j in
  Ok
    {
      op;
      kind;
      rel;
      digest;
      model;
      max_level;
      budget;
      verdict;
      level;
      codec;
      created_at;
    }

(* ---- the append handle ---- *)

type t = {
  path : string;
  mutable fd : Unix.file_descr option;
  mu : Mutex.t;
}

let create path = { path; fd = None; mu = Mutex.create () }

(* A crash mid-append can leave the file ending in a partial line with no
   newline. Appending straight after it would glue the next entry onto the
   torn prefix, losing both; terminating the tail first confines the damage
   to the one line the crash already tore. *)
let ends_without_newline path =
  match Unix.stat path with
  | exception Unix.Unix_error _ -> false
  | st ->
    st.Unix.st_size > 0
    &&
    let rfd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close rfd)
      (fun () ->
        ignore (Unix.lseek rfd (-1) Unix.SEEK_END);
        let last = Bytes.create 1 in
        Unix.read rfd last 0 1 = 1 && Bytes.get last 0 <> '\n')

let fd_of t =
  match t.fd with
  | Some fd -> fd
  | None ->
    Layout.mkdir_p (Filename.dirname t.path);
    let heal = ends_without_newline t.path in
    let fd =
      Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
    in
    if heal then ignore (Unix.write_substring fd "\n" 0 1);
    t.fd <- Some fd;
    fd

let append t entry =
  let line = Wfc_obs.Json.to_line (entry_to_json entry) ^ "\n" in
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let fd = fd_of t in
      let n = String.length line in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd line !written (n - !written)
      done;
      Unix.fsync fd)

let close t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
        t.fd <- None;
        Unix.close fd)

(* ---- reading ---- *)

type load_report = { entries : entry list; bad_lines : int }

let load path =
  if not (Sys.file_exists path) then { entries = []; bad_lines = 0 }
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] in
        let bad = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Wfc_obs.Json.parse line with
               | Error _ -> incr bad
               | Ok j -> (
                 match entry_of_json j with
                 | Error _ -> incr bad
                 | Ok e -> entries := e :: !entries)
           done
         with End_of_file -> ());
        { entries = List.rev !entries; bad_lines = !bad })
  end

(* The live view: replay puts and dels in order, keyed by relative path.
   Returned sorted by path so every consumer (ls, verify, compaction) is
   deterministic. *)
let live entries =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun e ->
      match e.op with
      | Put -> Hashtbl.replace tbl e.rel e
      | Del -> Hashtbl.remove tbl e.rel)
    entries;
  let out = Hashtbl.fold (fun _ e acc -> e :: acc) tbl [] in
  List.sort (fun a b -> compare a.rel b.rel) out

(* Compaction: atomically replace the log with exactly the live set. Used
   by [gc] and by rebuild-from-walk. *)
let write_full path entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Wfc_obs.Json.to_line (entry_to_json e));
      Buffer.add_char buf '\n')
    entries;
  Layout.atomic_write path (Buffer.contents buf)
