open Wfc_core

let schema_version = "wfc.store.v2"

let schema_version_v1 = "wfc.store.v1"

type record = {
  digest : string;
  task : string;
  model : string;
  procs : int;
  max_level : int;
  budget : int;
  outcome : Solvability.outcome;
  created_at : float;
}

let make ~task ~spec ?(model = "wait-free") ~max_level ~budget outcome =
  {
    digest = Wfc_tasks.Task.digest task;
    task = spec;
    model;
    procs = task.Wfc_tasks.Task.procs;
    max_level;
    budget;
    outcome;
    created_at = Unix.gettimeofday ();
  }

(* [verdict_json] is the deterministic core — every byte a function of the
   question, never of the search that answered it. The cost tallies
   (nodes/backtracks/prunes) live in the record envelope with the timing
   fields: a portfolio win or a search reducer changes how much work a
   verdict took, not what the verdict is, so cost is provenance — recorded,
   but outside the canonical object that solve/query/store hits must
   reproduce byte-for-byte. Key order is irrelevant — the canonical emitter
   sorts — but both views share one core builder so they can never
   disagree. *)
let json_fields r =
  let open Wfc_obs.Json in
  let o = r.outcome in
  [
    ("schema", String schema_version);
    ("digest", String r.digest);
    ("task", String r.task);
    ("model", String r.model);
    ("procs", Int r.procs);
    ("max_level", Int r.max_level);
    ("budget", Int r.budget);
    ("verdict", String o.Solvability.o_verdict);
    ("level", Int o.Solvability.o_level);
    ( "decide",
      Arr (List.map (fun (v, w) -> Arr [ Int v; Int w ]) o.Solvability.o_decide) );
  ]

let verdict_json r = Wfc_obs.Json.Obj (json_fields r)

let record_to_json r =
  let open Wfc_obs.Json in
  Obj
    (json_fields r
    @ [
        ("nodes", Int r.outcome.Solvability.o_nodes);
        ("backtracks", Int r.outcome.Solvability.o_backtracks);
        ("prunes", Int r.outcome.Solvability.o_prunes);
        ("elapsed", Float r.outcome.Solvability.o_elapsed);
        ("created_at", Float r.created_at);
      ])

let is_hex_digest s =
  String.length s = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let number_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.Float f) -> Ok f
  | Some (Wfc_obs.Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing or non-number %S" key)

let int_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-int %S" key)

let string_member key j =
  match Wfc_obs.Json.member key j with
  | Some (Wfc_obs.Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string %S" key)

let ( let* ) = Result.bind

(* Semantic checks shared by every decode path (JSON and the compact binary
   codec): whatever the wire format, a record that reaches the engine has a
   well-formed digest, a known verdict, and a decide table consistent with
   it. *)
let check_record r =
  let* () =
    if is_hex_digest r.digest then Ok () else Error "digest is not 32 hex chars"
  in
  let* () = if r.model = "" then Error "empty \"model\"" else Ok () in
  let* () =
    match r.outcome.Solvability.o_verdict with
    | "solvable" | "unsolvable" | "exhausted" -> Ok ()
    | v -> Error (Printf.sprintf "unknown verdict %S" v)
  in
  let o = r.outcome in
  if o.Solvability.o_verdict = "solvable" && o.Solvability.o_decide = [] then
    Error "solvable record with empty decide table"
  else if o.Solvability.o_verdict <> "solvable" && o.Solvability.o_decide <> [] then
    Error "non-solvable record with a decide table"
  else Ok ()

let record_of_json j =
  let* schema = string_member "schema" j in
  let* () =
    if schema = schema_version || schema = schema_version_v1 then Ok ()
    else
      Error
        (Printf.sprintf "schema %S, expected %S or %S" schema schema_version
           schema_version_v1)
  in
  let* digest = string_member "digest" j in
  let* task = string_member "task" j in
  let* model =
    (* v1 records predate models and are implicitly wait-free; v2 must say *)
    if schema = schema_version_v1 then Ok "wait-free"
    else string_member "model" j
  in
  let* procs = int_member "procs" j in
  let* max_level = int_member "max_level" j in
  let* budget = int_member "budget" j in
  let* verdict = string_member "verdict" j in
  let* level = int_member "level" j in
  let* nodes = int_member "nodes" j in
  let* backtracks = int_member "backtracks" j in
  let* prunes = int_member "prunes" j in
  let* elapsed = number_member "elapsed" j in
  let* created_at = number_member "created_at" j in
  let* decide =
    match Wfc_obs.Json.member "decide" j with
    | Some (Wfc_obs.Json.Arr l) ->
      let pair = function
        | Wfc_obs.Json.Arr [ Wfc_obs.Json.Int v; Wfc_obs.Json.Int w ] -> Ok (v, w)
        | _ -> Error "decide entries must be [vertex, output] int pairs"
      in
      List.fold_right
        (fun e acc ->
          let* acc = acc in
          let* p = pair e in
          Ok (p :: acc))
        l (Ok [])
    | _ -> Error "missing or non-array \"decide\""
  in
  let r =
    {
      digest;
      task;
      model;
      procs;
      max_level;
      budget;
      outcome =
        {
          Solvability.o_verdict = verdict;
          o_level = level;
          o_nodes = nodes;
          o_backtracks = backtracks;
          o_prunes = prunes;
          o_elapsed = elapsed;
          o_decide = decide;
        };
      created_at;
    }
  in
  let* () = check_record r in
  Ok r

let validate_json j = Result.map (fun (_ : record) -> ()) (record_of_json j)
