(* The storage engine: sharded layout + manifest index + decoded-record
   LRU, behind the same question-keyed find/put the flat store answered.

   Read path: LRU (no syscalls) → stat-probe of the question's sharded
   paths (both codecs) → flat v2 → flat v1 — probes are direct path stats,
   never a manifest consultation, so a second process appending to the same
   store (inline [wfc query --store] beside a daemon) is visible
   immediately; the manifest only feeds ls/verify/gc, where staleness costs
   a report line, not a wrong answer.

   Write path: encode → atomic publish (unique .wtmp + fsync + rename) →
   retire superseded copies (other codec, flat names) → fsync'd manifest
   append → cache fill. A crash at any instant leaves a store verify can
   explain: at worst a stray temp (reaped by gc) or a durable record whose
   manifest line is missing (reported as unindexed, re-adopted by
   migrate). *)

let c_reads = Wfc_obs.Metrics.counter "serve.store.reads"

let c_puts = Wfc_obs.Metrics.counter "serve.store.puts"

let c_quarantined = Wfc_obs.Metrics.counter "serve.store.quarantined"

let c_hit = Wfc_obs.Metrics.counter "storage.cache.hit"

let c_miss = Wfc_obs.Metrics.counter "storage.cache.miss"

let c_evict = Wfc_obs.Metrics.counter "storage.cache.evict"

let default_cache_cap = 4096

type t = {
  root : string;
  codec : Codec.t;
  cache : Record.record Lru.t;
  cache_mu : Mutex.t;
  manifest : Manifest.t;
}

let manifest_path root = Filename.concat root Layout.manifest_basename

let open_store ?(cache_cap = default_cache_cap) ?(codec = Codec.Json) root =
  Layout.mkdir_p root;
  Layout.mkdir_p (Filename.concat root Layout.quarantine_root);
  {
    root;
    codec;
    cache =
      Lru.create cache_cap ~on_evict:(fun _ _ -> Wfc_obs.Metrics.incr c_evict);
    cache_mu = Mutex.create ();
    manifest = Manifest.create (manifest_path root);
  }

let dir t = t.root

let codec t = t.codec

let close t = Manifest.close t.manifest

let with_cache t f =
  Mutex.lock t.cache_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.cache_mu) (fun () -> f t.cache)

let cache_clear t = with_cache t Lru.clear

let cache_keys t = with_cache t Lru.keys_mru_first

let cache_key ~digest ~model ~max_level =
  Printf.sprintf "%s.%s.L%d" digest (Wfc_tasks.Model.slug_of_name model) max_level

let abs t rel = Filename.concat t.root rel

let path_of t ~digest ~model ~max_level =
  abs t (Layout.verdict_rel ~digest ~model ~max_level ~ext:(Codec.extension t.codec))

(* ---- quarantine ---- *)

let quarantine t rel =
  Wfc_obs.Metrics.incr c_quarantined;
  let path = abs t rel in
  let dst =
    Filename.concat (abs t Layout.quarantine_root) (Filename.basename path)
  in
  (try Unix.rename path dst
   with Unix.Unix_error _ -> (
     try Sys.remove path with Sys_error _ -> ()));
  (* keep the index honest: the artifact is gone from its filed path *)
  Manifest.append t.manifest
    {
      Manifest.op = Del;
      kind = Verdict;
      rel;
      digest = "";
      model = "";
      max_level = 0;
      budget = 0;
      verdict = "";
      level = 0;
      codec = "";
      created_at = 0.;
    }

(* ---- read path ---- *)

let read_record ~rel_or_path path =
  let codec = Option.value (Codec.of_path rel_or_path) ~default:Codec.Json in
  match Layout.read_file path with
  | exception Sys_error e -> Error (`Unreadable e)
  | contents -> (
    match Codec.decode codec contents with
    | Error e -> Error (`Corrupt e)
    | Ok r -> Ok r)

(* The stat-probe order a question resolves through. Both codec extensions
   are probed — codec choice is per record, a store can mix freely — then
   the flat v2 name and (wait-free only) the flat v1 name, so pre-sharding
   stores answer without migration. *)
let candidate_rels ~digest ~model ~max_level =
  let sharded ext = Layout.verdict_rel ~digest ~model ~max_level ~ext in
  let flats =
    Layout.flat_basename ~digest ~model ~max_level
    ::
    (if model = "wait-free" then [ Layout.flat_basename_v1 ~digest ~max_level ]
     else [])
  in
  (sharded ".json" :: sharded ".wfcb" :: flats)

let find t ~digest ~model ~max_level ~budget =
  let key = cache_key ~digest ~model ~max_level in
  match with_cache t (fun c -> Lru.find c key) with
  | Some r ->
    Wfc_obs.Metrics.incr c_hit;
    (* same budget discipline as disk: a different budget is a miss, and
       the record stays *)
    if r.Record.budget = budget then Some r else None
  | None -> (
    Wfc_obs.Metrics.incr c_miss;
    let rel =
      List.find_opt
        (fun rel -> Sys.file_exists (abs t rel))
        (candidate_rels ~digest ~model ~max_level)
    in
    match rel with
    | None -> None
    | Some rel -> (
      Wfc_obs.Metrics.incr c_reads;
      match read_record ~rel_or_path:rel (abs t rel) with
      | Ok r
        when r.Record.digest = digest && r.Record.model = model
             && r.Record.budget = budget ->
        with_cache t (fun c -> Lru.put c key r);
        Some r
      | Ok r when r.Record.digest <> digest || r.Record.model <> model ->
        (* filed under the wrong name: never serve it *)
        quarantine t rel;
        None
      | Ok _ -> None (* different budget: a miss, and the record stays *)
      | Error (`Unreadable _) -> None
      | Error (`Corrupt _) ->
        quarantine t rel;
        None))

(* ---- write path ---- *)

let manifest_put_entry ~rel ~codec (r : Record.record) =
  {
    Manifest.op = Put;
    kind = Verdict;
    rel;
    digest = r.Record.digest;
    model = r.Record.model;
    max_level = r.Record.max_level;
    budget = r.Record.budget;
    verdict = r.Record.outcome.Wfc_core.Solvability.o_verdict;
    level = r.Record.outcome.Wfc_core.Solvability.o_level;
    codec = Codec.to_string codec;
    created_at = r.Record.created_at;
  }

let remove_superseded t rels =
  List.iter
    (fun rel ->
      let path = abs t rel in
      if Sys.file_exists path then begin
        (try Sys.remove path with Sys_error _ -> ());
        Manifest.append t.manifest
          {
            Manifest.op = Del;
            kind = Verdict;
            rel;
            digest = "";
            model = "";
            max_level = 0;
            budget = 0;
            verdict = "";
            level = 0;
            codec = "";
            created_at = 0.;
          }
      end)
    rels

let put t (r : Record.record) =
  let digest = r.Record.digest
  and model = r.Record.model
  and max_level = r.Record.max_level in
  let ext = Codec.extension t.codec in
  let rel = Layout.verdict_rel ~digest ~model ~max_level ~ext in
  Layout.atomic_write (abs t rel) (Codec.encode t.codec r);
  Wfc_obs.Metrics.incr c_puts;
  (* one live copy per question: retire the other-codec sharded file and
     any flat-named predecessor the read path would otherwise still probe *)
  remove_superseded t
    (List.filter
       (fun c -> c <> rel)
       (candidate_rels ~digest ~model ~max_level));
  Manifest.append t.manifest (manifest_put_entry ~rel ~codec:t.codec r);
  with_cache t (fun c -> Lru.put c (cache_key ~digest ~model ~max_level) r)

(* ---- skeleton keyspace ---- *)

let find_skeleton t ~digest ~level =
  let rel = Layout.skeleton_rel ~digest ~level in
  match Layout.read_file (abs t rel) with
  | exception Sys_error _ -> None
  | contents -> Some contents

let put_skeleton t ~digest ~level ~created_at data =
  let rel = Layout.skeleton_rel ~digest ~level in
  Layout.atomic_write (abs t rel) data;
  Manifest.append t.manifest
    {
      Manifest.op = Put;
      kind = Skeleton;
      rel;
      digest;
      model = "";
      max_level = level;
      budget = 0;
      verdict = "";
      level;
      codec = "json";
      created_at;
    }

(* ---- scans: ls / entries / verify / migrate / gc ----

   Everything below reads the manifest (one sequential file) or, for the
   reconciling scans (verify / migrate / rebuild), walks the tree once.
   The serving path above never does either. *)

let ls t =
  let { Manifest.entries; _ } = Manifest.load (manifest_path t.root) in
  Manifest.live entries

let verdict_entries t =
  List.filter (fun e -> e.Manifest.kind = Manifest.Verdict) (ls t)

let entries t =
  List.map
    (fun e ->
      let rel = e.Manifest.rel in
      let r =
        match read_record ~rel_or_path:rel (abs t rel) with
        | Ok r -> Ok r
        | Error (`Unreadable e) | Error (`Corrupt e) -> Error e
      in
      (rel, r))
    (verdict_entries t)

(* A record file is well-named when its filed path is derivable from its
   own body under some accepted scheme: the sharded v3 name, the flat v2
   name, or (wait-free) the flat v1 name. *)
let well_named rel (r : Record.record) =
  let digest = r.Record.digest
  and model = r.Record.model
  and max_level = r.Record.max_level in
  let ext =
    match Codec.of_path rel with
    | Some c -> Codec.extension c
    | None -> ".json"
  in
  rel = Layout.verdict_rel ~digest ~model ~max_level ~ext
  || rel = Layout.flat_basename ~digest ~model ~max_level
  || (model = "wait-free" && rel = Layout.flat_basename_v1 ~digest ~max_level)

type file_class = Manifest_file | Quarantined | Tmp | Skeleton_file | Record_file | Other

let classify rel =
  if rel = Layout.manifest_basename then Manifest_file
  else if String.length rel > 11 && String.sub rel 0 11 = "quarantine/" then
    Quarantined
  else if Layout.is_tmp rel then Tmp
  else if String.length rel > 10 && String.sub rel 0 10 = "skeletons/" then
    Skeleton_file
  else if Codec.of_path rel <> None then Record_file
  else Other

type verify_report = {
  valid : int;
  corrupt : (string * string) list;
  mismatched : string list;
  quarantined : int;
  stray_tmp : int;
  unindexed : int;
  missing : int;
  bad_manifest_lines : int;
}

let verify t =
  let { Manifest.entries = log; bad_lines } = Manifest.load (manifest_path t.root) in
  let live = Manifest.live log in
  let live_tbl = Hashtbl.create 256 in
  List.iter (fun e -> Hashtbl.replace live_tbl e.Manifest.rel false) live;
  let valid = ref 0
  and corrupt = ref []
  and mismatched = ref []
  and quarantined = ref 0
  and stray_tmp = ref 0
  and unindexed = ref 0 in
  let seen rel =
    match Hashtbl.find_opt live_tbl rel with
    | Some _ -> Hashtbl.replace live_tbl rel true
    | None -> incr unindexed
  in
  Layout.walk t.root ~f:(fun rel ->
      match classify rel with
      | Manifest_file | Other -> ()
      | Quarantined -> incr quarantined
      | Tmp -> incr stray_tmp
      | Skeleton_file -> seen rel
      | Record_file -> (
        seen rel;
        match read_record ~rel_or_path:rel (abs t rel) with
        | Error (`Unreadable e) | Error (`Corrupt e) ->
          corrupt := (rel, e) :: !corrupt
        | Ok r ->
          if well_named rel r then incr valid else mismatched := rel :: !mismatched));
  let missing = Hashtbl.fold (fun _ seen n -> if seen then n else n + 1) live_tbl 0 in
  {
    valid = !valid;
    corrupt = List.rev !corrupt;
    mismatched = List.rev !mismatched;
    quarantined = !quarantined;
    stray_tmp = !stray_tmp;
    unindexed = !unindexed;
    missing;
    bad_manifest_lines = bad_lines;
  }

type migrate_report = {
  migrated : int;
  untouched : int;
  adopted : int;
  skipped : (string * string) list;
}

(* v2→v3 migration, idempotent: every record file not already at its
   canonical sharded path is re-put (sharded, current codec, same record
   bytes-wise content and created_at) and its old file removed; canonical
   files missing a manifest line are adopted (indexed in place). A second
   run finds only canonical, indexed files and does nothing. *)
let migrate t =
  let indexed = Hashtbl.create 256 in
  List.iter (fun e -> Hashtbl.replace indexed e.Manifest.rel ()) (ls t);
  let migrated = ref 0 and untouched = ref 0 and adopted = ref 0 and skipped = ref [] in
  let files = ref [] in
  Layout.walk t.root ~f:(fun rel ->
      match classify rel with
      | Record_file -> files := rel :: !files
      | Skeleton_file ->
        if not (Hashtbl.mem indexed rel) then begin
          (* adopt: the artifact is fine where it is, only the index lost it *)
          let b = Filename.basename rel in
          let digest = try String.sub b 0 32 with Invalid_argument _ -> "" in
          let level =
            try Scanf.sscanf (Filename.remove_extension b) "%_s@.L%d" (fun l -> l)
            with Scanf.Scan_failure _ | End_of_file | Failure _ -> 0
          in
          Manifest.append t.manifest
            {
              Manifest.op = Put;
              kind = Skeleton;
              rel;
              digest;
              model = "";
              max_level = level;
              budget = 0;
              verdict = "";
              level;
              codec = "json";
              created_at = 0.;
            };
          incr adopted
        end
      | _ -> ());
  List.iter
    (fun rel ->
      match read_record ~rel_or_path:rel (abs t rel) with
      | Error (`Unreadable e) | Error (`Corrupt e) -> skipped := (rel, e) :: !skipped
      | Ok r ->
        let ext =
          match Codec.of_path rel with
          | Some c -> Codec.extension c
          | None -> ".json"
        in
        let canonical =
          Layout.verdict_rel ~digest:r.Record.digest ~model:r.Record.model
            ~max_level:r.Record.max_level ~ext
        in
        if rel = canonical then
          if Hashtbl.mem indexed rel then incr untouched
          else begin
            let codec = Option.value (Codec.of_path rel) ~default:Codec.Json in
            Manifest.append t.manifest (manifest_put_entry ~rel ~codec r);
            incr adopted
          end
        else if well_named rel r then begin
          (* flat v1/v2 (or other-codec) name: rewrite sharded, retire the
             old file. [put] also removes the flat predecessors itself. *)
          put t r;
          (if Sys.file_exists (abs t rel) then
             try Sys.remove (abs t rel) with Sys_error _ -> ());
          if Hashtbl.mem indexed rel then
            Manifest.append t.manifest
              {
                Manifest.op = Del;
                kind = Verdict;
                rel;
                digest = "";
                model = "";
                max_level = 0;
                budget = 0;
                verdict = "";
                level = 0;
                codec = "";
                created_at = 0.;
              };
          incr migrated
        end
        else skipped := (rel, "filed under a name matching no scheme") :: !skipped)
    (List.sort compare !files);
  { migrated = !migrated; untouched = !untouched; adopted = !adopted; skipped = List.rev !skipped }

(* Rebuild the manifest from nothing but the tree — the recovery path that
   makes the manifest derived state. Returns the number of live entries
   written. *)
let rebuild_manifest t =
  let entries = ref [] in
  Layout.walk t.root ~f:(fun rel ->
      match classify rel with
      | Record_file -> (
        match read_record ~rel_or_path:rel (abs t rel) with
        | Error _ -> ()
        | Ok r ->
          let codec = Option.value (Codec.of_path rel) ~default:Codec.Json in
          entries := manifest_put_entry ~rel ~codec r :: !entries)
      | Skeleton_file ->
        let b = Filename.basename rel in
        let digest = try String.sub b 0 32 with Invalid_argument _ -> "" in
        let level =
          try Scanf.sscanf (Filename.remove_extension b) "%_s@.L%d" (fun l -> l)
          with Scanf.Scan_failure _ | End_of_file | Failure _ -> 0
        in
        entries :=
          {
            Manifest.op = Put;
            kind = Skeleton;
            rel;
            digest;
            model = "";
            max_level = level;
            budget = 0;
            verdict = "";
            level;
            codec = "json";
            created_at = 0.;
          }
          :: !entries
      | _ -> ());
  let entries = List.sort (fun a b -> compare a.Manifest.rel b.Manifest.rel) !entries in
  Manifest.close t.manifest;
  Manifest.write_full (manifest_path t.root) entries;
  List.length entries

let gc t ~removed =
  let rm path = try Sys.remove path; incr removed with Sys_error _ -> () in
  let tmps = ref [] and quarantined = ref [] in
  Layout.walk t.root ~f:(fun rel ->
      match classify rel with
      | Tmp -> tmps := rel :: !tmps
      | Quarantined -> quarantined := rel :: !quarantined
      | _ -> ());
  List.iter (fun rel -> rm (abs t rel)) !tmps;
  List.iter (fun rel -> rm (abs t rel)) !quarantined;
  (* compact: rewrite the log as exactly the live, still-on-disk set *)
  let { Manifest.entries = log; _ } = Manifest.load (manifest_path t.root) in
  let live =
    List.filter (fun e -> Sys.file_exists (abs t e.Manifest.rel)) (Manifest.live log)
  in
  Manifest.close t.manifest;
  Manifest.write_full (manifest_path t.root) live

(* ---- synthetic population (bench / CI) ---- *)

let seed t ~count =
  for i = 0 to count - 1 do
    let digest = Digest.to_hex (Digest.string (Printf.sprintf "wfc-seed-%d" i)) in
    let solvable = i mod 2 = 0 in
    let decide =
      if solvable then List.init (3 + (i mod 5)) (fun v -> (v, v mod 2)) else []
    in
    let r =
      {
        Record.digest;
        task = Printf.sprintf "seed(procs=2,param=%d)" i;
        model = "wait-free";
        procs = 2;
        max_level = i mod 3;
        budget = 5_000_000;
        outcome =
          {
            Wfc_core.Solvability.o_verdict = (if solvable then "solvable" else "unsolvable");
            o_level = i mod 3;
            o_nodes = 100 + i;
            o_backtracks = i mod 7;
            o_prunes = i mod 11;
            o_elapsed = 0.001;
            o_decide = decide;
          };
        created_at = float_of_int i;
      }
    in
    put t r
  done
