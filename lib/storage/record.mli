(** The verdict record: one decided [(task, model, max_level, budget)]
    question, plus its provenance (search cost, timestamps).

    This is the [wfc.store.v2] object of the serving layer, moved into the
    storage engine so every codec (canonical JSON, compact binary) and every
    backend (flat v2, sharded v3) serializes exactly one type. The JSON
    renderings and parsing are byte-for-byte those of the pre-engine
    [Wfc_serve.Store], so existing records, wire frames and [check-json]
    artifacts are unaffected. *)

val schema_version : string
(** ["wfc.store.v2"]. *)

val schema_version_v1 : string
(** ["wfc.store.v1"] — still accepted on read. *)

type record = {
  digest : string;  (** {!Wfc_tasks.Task.digest} of the task *)
  task : string;  (** informational: the instance spec, e.g. ["consensus(procs=2,param=2)"] *)
  model : string;  (** canonical {!Wfc_tasks.Model} name, e.g. ["k-set:2"] *)
  procs : int;
  max_level : int;
  budget : int;
  outcome : Wfc_core.Solvability.outcome;
  created_at : float;  (** unix seconds at commit; not part of the verdict *)
}

val make :
  task:Wfc_tasks.Task.t ->
  spec:string ->
  ?model:string ->
  max_level:int ->
  budget:int ->
  Wfc_core.Solvability.outcome ->
  record
(** Builds a record for [outcome], computing the digest and stamping
    [created_at] with the current time. [model] defaults to
    ["wait-free"]. *)

val record_to_json : record -> Wfc_obs.Json.t
(** The full [wfc.store.v2] object, including the provenance fields: the
    search-cost tallies ([nodes], [backtracks], [prunes]) and the
    non-deterministic timing fields ([elapsed], [created_at]). *)

val verdict_json : record -> Wfc_obs.Json.t
(** {!record_to_json} minus the provenance fields: every byte is a
    deterministic function of the question — verdict, level and decide
    table, never search cost. A stored record, a fresh daemon computation,
    an inline [wfc solve], a portfolio win and a reducer-pruned search all
    render the identical object — the invariant the CI smoke diffs. *)

val record_of_json : Wfc_obs.Json.t -> (record, string) result
(** Accepts both schemas: a v1 object parses with [model = "wait-free"]. *)

val check_record : record -> (unit, string) result
(** The semantic invariants every decode path enforces, whatever the wire
    format: 32-hex digest, non-empty model, known verdict vocabulary, and a
    decide table present iff the verdict is ["solvable"]. *)

val validate_json : Wfc_obs.Json.t -> (unit, string) result
(** Structural check used by [wfc check-json] on store artifacts. *)

val is_hex_digest : string -> bool
