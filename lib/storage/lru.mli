(** A bounded least-recently-used cache over string keys: O(1) [find]
    (which refreshes recency), O(1) [put], eviction from the cold end when
    capacity is exceeded. Not thread-safe — callers lock. *)

type 'a t

val create : ?on_evict:(string -> 'a -> unit) -> int -> 'a t
(** [create cap] makes an empty cache holding at most [cap] entries
    ([cap >= 1]). [on_evict] fires for each capacity eviction (not for
    {!remove} or {!clear}). *)

val capacity : 'a t -> int

val size : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit moves the entry to most-recently-used. *)

val mem : 'a t -> string -> bool
(** Presence test without touching recency. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or overwrite, making the entry most-recently-used, then evict
    from the cold end until within capacity. *)

val remove : 'a t -> string -> unit

val clear : 'a t -> unit

val keys_mru_first : 'a t -> string list
(** All keys, warmest first — for tests and stats. *)
