(* The sharded (v3) on-disk layout. A flat directory of records hits two
   walls at millions of entries: readdir of the root becomes the cost of
   every ls/verify/gc, and one directory holding millions of entries
   degrades the filesystem itself. Sharding by the first four hex chars of
   the digest bounds any directory at ~1/65536 of the population, and the
   digest is uniformly distributed, so the split is even by construction.
   Shards are created lazily on first write — an empty store is one
   directory and a manifest, not 65k empty subdirectories. *)

let shard_of_digest digest =
  if String.length digest < 4 then invalid_arg "Layout.shard_of_digest";
  (String.sub digest 0 2, String.sub digest 2 2)

let rel_of_basename ~digest basename =
  let a, b = shard_of_digest digest in
  Filename.concat a (Filename.concat b basename)

let verdict_basename ~digest ~model ~max_level ~ext =
  Printf.sprintf "%s.%s.L%d%s" digest
    (Wfc_tasks.Model.slug_of_name model)
    max_level ext

let verdict_rel ~digest ~model ~max_level ~ext =
  rel_of_basename ~digest (verdict_basename ~digest ~model ~max_level ~ext)

(* Flat-layout names, kept for read-compat and migration. v2 is the
   pre-engine flat file; v1 additionally predates models (implicitly
   wait-free). *)
let flat_basename ~digest ~model ~max_level =
  Printf.sprintf "%s.%s.L%d.json" digest
    (Wfc_tasks.Model.slug_of_name model)
    max_level

let flat_basename_v1 ~digest ~max_level =
  Printf.sprintf "%s.L%d.json" digest max_level

(* The skeleton keyspace lives beside the verdict shards under its own
   root, sharded the same way; the digest here is the structural digest of
   the complex being subdivided, the level the number of SDS applications. *)
let skeleton_root = "skeletons"

let skeleton_basename ~digest ~level = Printf.sprintf "%s.L%d.json" digest level

let skeleton_rel ~digest ~level =
  Filename.concat skeleton_root
    (rel_of_basename ~digest (skeleton_basename ~digest ~level))

let quarantine_root = "quarantine"

let manifest_basename = "MANIFEST.jsonl"

(* Temp files use an extension no scan ever treats as a record, so a crash
   between create and rename can only leave debris that ls/verify report and
   gc reaps — never a half-record that parses as garbage. The name embeds
   pid + a process-local counter so two writers racing on one key never
   share a temp path. *)
let tmp_ext = ".wtmp"

let tmp_counter = Atomic.make 0

let tmp_path_for path =
  Printf.sprintf "%s.%d.%d%s" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)
    tmp_ext

let is_tmp name = Filename.check_suffix name tmp_ext

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_fsync path data =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length data in
      let written = ref 0 in
      while !written < n do
        written :=
          !written
          + Unix.write_substring fd data !written (n - !written)
      done;
      Unix.fsync fd)

(* Atomic durable publish: write + fsync a uniquely-named temp in the
   destination directory, then rename over the target. Readers see either
   the old bytes or the new bytes, never a prefix. *)
let atomic_write path data =
  mkdir_p (Filename.dirname path);
  let tmp = tmp_path_for path in
  write_fsync tmp data;
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Recursive walk of a store root, yielding paths relative to it. Only used
   by rebuild/verify/migrate — the serving path never walks. *)
let walk root ~f =
  let rec go rel =
    let abs = if rel = "" then root else Filename.concat root rel in
    match Sys.is_directory abs with
    | true ->
      let entries = Sys.readdir abs in
      Array.sort compare entries;
      Array.iter
        (fun name ->
          go (if rel = "" then name else Filename.concat rel name))
        entries
    | false -> f rel
    | exception Sys_error _ -> ()
  in
  if Sys.file_exists root then go ""
