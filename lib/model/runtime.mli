(** Deterministic simulated execution of protocols under an adversary.

    The runtime owns one SWMR cell per process and an unbounded sequence of
    one-shot immediate snapshot memories [M0, M1, ...]. A {!strategy} — the
    adversary — picks every scheduling decision, so every interleaving of
    the real asynchronous machine corresponds to a run here, and runs are
    replayable from the strategy alone.

    Two decision kinds drive the two operation families:

    - [Step p] executes process [p]'s pending cell operation atomically
      (write / read / snapshot);
    - [Fire (level, block)] releases a set of processes that have all
      invoked WriteRead on memory [level] and are waiting inside it. The
      block becomes the next block of the ordered partition for that memory:
      every member receives the union of everything fired at that level so
      far, including the block itself — which is exactly the one-shot
      immediate snapshot semantics of §3.5, and makes the adversary's firing
      choices at a level an ordered partition of its participants.

    Crashed processes take no further steps; a crashed process that had
    arrived at a memory may still be fired (its write is visible) or not —
    the adversary chooses, like a real crash between write and read. *)

type view = {
  time : int;  (** decisions taken so far *)
  runnable : int list;  (** processes with a pending cell operation *)
  arrived : (int * int list) list;
      (** per level with waiting processes: [(level, procs)], level-sorted *)
  decided : int list;
  crashed : int list;
}

type decision =
  | Step of int
  | Fire of int * int list  (** level, block *)
  | Crash of int
  | Halt  (** abandon the run; undecided processes stay undecided *)

type strategy = view -> decision

type 'v outcome = {
  results : 'v option array;  (** decision value per process, if decided *)
  trace : 'v Trace.t;
  time : int;
  memories_used : int;  (** number of IIS memories that saw at least one firing *)
}

(** What happens to the event log as the run executes. [Full] keeps every
    event (the default, and the only mode from which a run can be
    serialized and replayed); [Ring n] is the flight recorder — a bounded
    {!Wfc_obs.Flight} buffer retaining the last [n] events, so tracing can
    stay on in benchmarks and long runs at O(n) space ([outcome.trace] is
    the retained suffix; evictions feed the [runtime.trace.ring_dropped]
    counter); [Off] records nothing. *)
type trace_sink = Full | Ring of int | Off

exception Invalid_decision of string

val run :
  ?max_steps:int ->
  ?sink:trace_sink ->
  ?on_trap:('v Trace.t -> unit) ->
  'v Action.t array -> strategy -> 'v outcome
(** Executes until every non-crashed process has decided, the strategy
    halts, or [max_steps] decisions have been taken (default 1_000_000 —
    exceeding it raises [Invalid_decision], since a correct adversary must
    let wait-free protocols finish).

    [on_trap] is the flight-recorder dump hook: if the run aborts with
    [Invalid_decision], it receives whatever the sink retained (the full
    trace, the ring suffix, or []) before the exception propagates.
    @raise Invalid_decision on an inapplicable decision (stepping a blocked
    process, firing a non-arrived block, re-using a one-shot memory slot,
    etc.). *)

(** {1 Stock adversaries} *)

val round_robin : unit -> strategy
(** Cycles over processes; a blocked process is fired as a singleton —
    produces fully sequential executions. *)

val random : seed:int -> unit -> strategy
(** Seeded random adversary mixing steps and block firings; always makes
    progress. *)

val random_with_crashes : seed:int -> crash:int list -> unit -> strategy
(** Like {!random}, but additionally crashes the given processes at random
    times. *)

val iis_schedule : Wfc_topology.Ordered_partition.t array -> strategy
(** Drives IIS-only protocols deterministically: memory [l] fires the blocks
    of partition [l] in order (each block as soon as all members arrived);
    pending cell operations are stepped round-robin. Levels beyond the array
    are fired as singletons in process-id order. *)

val linear_schedule : int list -> strategy
(** For cell-only protocols: the list is the global order of atomic steps,
    one entry per operation. @raise Invalid_decision (at run time) if the
    designated process has no pending operation. *)

val isolating : victim:int -> unit -> strategy
(** A structured worst-case adversary for IIS protocols: the victim is
    always stepped first and fired {e alone} as the first block of every
    memory, so it never learns anything from the others in the same shot;
    everyone else is then fired together. Against the Figure-2 emulation
    this maximizes the others' retry loops — the victim keeps completing
    instantly while the rest chase its tuples one memory behind. *)
