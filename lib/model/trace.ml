type 'v event =
  | E_write of { time : int; proc : int; value : 'v }
  | E_read of { time : int; proc : int; cell : int; value : 'v option }
  | E_snapshot of { time : int; proc : int; view : 'v option array }
  | E_arrive of { time : int; proc : int; level : int; value : 'v }
  | E_fire of { time : int; level : int; block : int list }
  | E_note of { time : int; proc : int; note : string }
  | E_decide of { time : int; proc : int; value : 'v }
  | E_crash of { time : int; proc : int }

type 'v t = 'v event list

let pp pp_value ppf trace =
  let pp_event ppf = function
    | E_write { time; proc; value } -> Format.fprintf ppf "%4d  P%d write %a" time proc pp_value value
    | E_read { time; proc; cell; value } ->
      Format.fprintf ppf "%4d  P%d read C%d = %a" time proc cell
        (Format.pp_print_option pp_value) value
    | E_snapshot { time; proc; _ } -> Format.fprintf ppf "%4d  P%d snapshot" time proc
    | E_arrive { time; proc; level; _ } -> Format.fprintf ppf "%4d  P%d arrive M%d" time proc level
    | E_fire { time; level; block } ->
      Format.fprintf ppf "%4d  fire M%d {%s}" time level
        (String.concat "," (List.map string_of_int block))
    | E_note { time; proc; note } -> Format.fprintf ppf "%4d  P%d note %s" time proc note
    | E_decide { time; proc; _ } -> Format.fprintf ppf "%4d  P%d decide" time proc
    | E_crash { time; proc } -> Format.fprintf ppf "%4d  P%d crash" time proc
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event ppf trace

let map f trace =
  List.map
    (fun e ->
      match e with
      | E_write { time; proc; value } -> E_write { time; proc; value = f value }
      | E_read { time; proc; cell; value } ->
        E_read { time; proc; cell; value = Option.map f value }
      | E_snapshot { time; proc; view } ->
        E_snapshot { time; proc; view = Array.map (Option.map f) view }
      | E_arrive { time; proc; level; value } ->
        E_arrive { time; proc; level; value = f value }
      | E_fire { time; level; block } -> E_fire { time; level; block }
      | E_note { time; proc; note } -> E_note { time; proc; note }
      | E_decide { time; proc; value } -> E_decide { time; proc; value = f value }
      | E_crash { time; proc } -> E_crash { time; proc })
    trace

let proc_of_event = function
  | E_write { proc; _ }
  | E_read { proc; _ }
  | E_snapshot { proc; _ }
  | E_arrive { proc; _ }
  | E_note { proc; _ }
  | E_decide { proc; _ }
  | E_crash { proc; _ } ->
    Some proc
  | E_fire _ -> None

let steps_of trace p =
  List.length
    (List.filter
       (fun e ->
         match e with
         | E_note _ | E_decide _ | E_crash _ -> false
         | _ -> proc_of_event e = Some p)
       trace)

let fires trace =
  List.filter_map (function E_fire { level; block; _ } -> Some (level, block) | _ -> None) trace

let partitions_of_fires trace =
  (* per level, blocks in firing order; levels sorted *)
  let order = ref [] in
  let by_level = Hashtbl.create 8 in
  List.iter
    (fun (level, block) ->
      (match Hashtbl.find_opt by_level level with
      | None ->
        order := level :: !order;
        Hashtbl.replace by_level level [ block ]
      | Some blocks -> Hashtbl.replace by_level level (block :: blocks)))
    (fires trace);
  List.sort Stdlib.compare !order
  |> List.map (fun level -> (level, List.rev (Hashtbl.find by_level level)))

let is_views_by_level trace =
  List.map
    (fun (level, blocks) -> (level, Wfc_topology.Ordered_partition.views blocks))
    (partitions_of_fires trace)

(* --- Immediate snapshot specification --- *)

type is_views = (int * int list) list

let subset a b = List.for_all (fun x -> List.mem x b) a

let is_self_inclusive views = List.for_all (fun (i, s) -> List.mem i s) views

let is_comparable views =
  List.for_all
    (fun (_, si) -> List.for_all (fun (_, sj) -> subset si sj || subset sj si) views)
    views

let is_immediate views =
  List.for_all
    (fun (i, si) ->
      List.for_all (fun (_, sj) -> (not (List.mem i sj)) || subset si sj) views)
    views

let check_immediate_snapshot ?participants views =
  let participants =
    match participants with
    | Some p -> p
    | None ->
      (* Every process appearing anywhere: view owners plus members (a
         crashed process that wrote is seen but returns nothing). *)
      List.sort_uniq Stdlib.compare (List.concat_map (fun (i, s) -> i :: s) views)
  in
  let in_participants s = List.for_all (fun x -> List.mem x participants) s in
  if not (List.for_all (fun (_, s) -> in_participants s) views) then
    Error "view contains a non-participating process"
  else if not (is_self_inclusive views) then Error "self-inclusion violated"
  else if not (is_comparable views) then Error "comparability violated"
  else if not (is_immediate views) then Error "immediacy violated"
  else Ok ()

let partition_of_views views =
  match check_immediate_snapshot views with
  | Error _ -> None
  | Ok () ->
    (* Blocks are the distinct view sets, ordered by size; the block for a
       view set S is { i : S_i = S }. *)
    let distinct =
      List.sort_uniq
        (fun a b -> compare (List.length a, a) (List.length b, b))
        (List.map snd views)
    in
    let blocks =
      List.map
        (fun s ->
          List.sort Stdlib.compare
            (List.filter_map (fun (i, si) -> if si = s then Some i else None) views))
        distinct
    in
    if Wfc_topology.Ordered_partition.check blocks then Some blocks else None

(* --- Atomicity of emulated snapshot histories --- *)

type op_record = {
  proc : int;
  index : int;
  kind : [ `Write of int | `Snapshot of int array ];
  t_start : int;
  t_end : int;
}

let check_snapshot_atomicity ops =
  let writes =
    List.filter_map (fun o -> match o.kind with `Write s -> Some (o, s) | `Snapshot _ -> None) ops
  in
  let snaps =
    List.filter_map
      (fun o -> match o.kind with `Snapshot v -> Some (o, v) | `Write _ -> None)
      ops
  in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_all checks = match checks with [] -> Ok () | c :: rest -> (
      match c () with Ok () -> check_all rest | Error _ as e -> e)
  in
  let check_write_seqs () =
    (* per process, write sequence numbers are 1, 2, 3, ... in index order *)
    let by_proc = Hashtbl.create 8 in
    List.iter
      (fun (o, s) ->
        let l = try Hashtbl.find by_proc o.proc with Not_found -> [] in
        Hashtbl.replace by_proc o.proc ((o.index, s) :: l))
      writes;
    let ok = ref (Ok ()) in
    Hashtbl.iter
      (fun p l ->
        let l = List.sort Stdlib.compare l in
        List.iteri
          (fun i (_, s) -> if s <> i + 1 then ok := err "P%d: write seq %d at position %d" p s i)
          l)
      by_proc;
    !ok
  in
  let check_real_time () =
    let rec go = function
      | [] -> Ok ()
      | (snap, vec) :: rest ->
        let bad = ref None in
        List.iter
          (fun (w, seq) ->
            (* a write completed strictly before the snapshot started must
               be visible *)
            if w.t_end < snap.t_start && vec.(w.proc) < seq then
              bad := Some (Printf.sprintf
                             "snapshot P%d#%d misses write P%d seq %d completed earlier"
                             snap.proc snap.index w.proc seq);
            (* a write that started strictly after the snapshot ended must
               not be visible *)
            if w.t_start > snap.t_end && vec.(w.proc) >= seq then
              bad := Some (Printf.sprintf
                             "snapshot P%d#%d sees future write P%d seq %d"
                             snap.proc snap.index w.proc seq))
          writes;
        (match !bad with Some m -> Error m | None -> go rest)
    in
    go snaps
  in
  let pointwise_le a b =
    let ok = ref true in
    Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
    !ok
  in
  let check_comparable () =
    let rec go = function
      | [] -> Ok ()
      | (s1, v1) :: rest ->
        (match
           List.find_opt (fun (_, v2) -> (not (pointwise_le v1 v2)) && not (pointwise_le v2 v1)) rest
         with
        | Some (s2, _) ->
          err "snapshots P%d#%d and P%d#%d are incomparable" s1.proc s1.index s2.proc s2.index
        | None -> go rest)
    in
    go snaps
  in
  let check_own_program_order () =
    (* a process's later snapshot dominates its earlier one, and sees its own
       preceding writes *)
    let rec go = function
      | [] -> Ok ()
      | (s1, v1) :: rest ->
        let later =
          List.find_opt
            (fun (s2, v2) -> s2.proc = s1.proc && s2.index > s1.index && not (pointwise_le v1 v2))
            rest
        in
        (match later with
        | Some (s2, _) ->
          err "P%d: snapshot #%d not monotone w.r.t. #%d" s1.proc s2.index s1.index
        | None ->
          let own_writes_before =
            List.filter (fun (w, _) -> w.proc = s1.proc && w.index < s1.index) writes
          in
          let max_own = List.fold_left (fun acc (_, s) -> max acc s) 0 own_writes_before in
          if v1.(s1.proc) < max_own then
            err "P%d: snapshot #%d misses own write seq %d" s1.proc s1.index max_own
          else go rest)
    in
    go snaps
  in
  check_all [ check_write_seqs; check_real_time; check_comparable; check_own_program_order ]
