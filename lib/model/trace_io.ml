module Json = Wfc_obs.Json

let schema_version = "wfc.trace.v1"

type meta = {
  protocol : string;
  procs : int;
  rounds : int;
  seed : int option;
  crash : int list;
}

let meta ?seed ?(crash = []) ~protocol ~procs ~rounds () =
  { protocol; procs; rounds; seed; crash = List.sort_uniq Stdlib.compare crash }

(* ------------------------------------------------------------------ *)
(* serialization                                                        *)
(* ------------------------------------------------------------------ *)

let meta_to_json m =
  Json.Obj
    [
      ("protocol", Json.String m.protocol);
      ("procs", Json.Int m.procs);
      ("rounds", Json.Int m.rounds);
      ("seed", match m.seed with None -> Json.Null | Some s -> Json.Int s);
      ("crash", Json.Arr (List.map (fun p -> Json.Int p) m.crash));
    ]

let opt_value value_to_json = function
  | None -> Json.Null
  | Some v -> value_to_json v

let event_to_json value_to_json e =
  let obj ev time fields = Json.Obj (("ev", Json.String ev) :: ("t", Json.Int time) :: fields) in
  match e with
  | Trace.E_write { time; proc; value } ->
    obj "write" time [ ("proc", Json.Int proc); ("value", value_to_json value) ]
  | Trace.E_read { time; proc; cell; value } ->
    obj "read" time
      [ ("proc", Json.Int proc); ("cell", Json.Int cell); ("value", opt_value value_to_json value) ]
  | Trace.E_snapshot { time; proc; view } ->
    obj "snapshot" time
      [
        ("proc", Json.Int proc);
        ("view", Json.Arr (Array.to_list (Array.map (opt_value value_to_json) view)));
      ]
  | Trace.E_arrive { time; proc; level; value } ->
    obj "arrive" time
      [ ("proc", Json.Int proc); ("level", Json.Int level); ("value", value_to_json value) ]
  | Trace.E_fire { time; level; block } ->
    obj "fire" time
      [ ("level", Json.Int level); ("block", Json.Arr (List.map (fun p -> Json.Int p) block)) ]
  | Trace.E_note { time; proc; note } ->
    obj "note" time [ ("proc", Json.Int proc); ("note", Json.String note) ]
  | Trace.E_decide { time; proc; value } ->
    obj "decide" time [ ("proc", Json.Int proc); ("value", value_to_json value) ]
  | Trace.E_crash { time; proc } -> obj "crash" time [ ("proc", Json.Int proc) ]

let to_json value_to_json m trace =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("meta", meta_to_json m);
      ("events", Json.Arr (List.map (event_to_json value_to_json) trace));
    ]

(* ------------------------------------------------------------------ *)
(* parsing                                                              *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let int_field ctx name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> err "%s: missing int %S" ctx name

let int_list_field ctx name j =
  match Json.member name j with
  | Some (Json.Arr items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Int i :: rest -> go (i :: acc) rest
      | _ -> err "%s: %S contains a non-int" ctx name
    in
    go [] items
  | _ -> err "%s: missing int array %S" ctx name

let meta_of_json j =
  match Json.member "meta" j with
  | None -> Error "missing \"meta\" object"
  | Some m ->
    let* protocol =
      match Json.member "protocol" m with
      | Some (Json.String s) -> Ok s
      | _ -> Error "meta: missing string \"protocol\""
    in
    let* procs = int_field "meta" "procs" m in
    let* rounds = int_field "meta" "rounds" m in
    let* seed =
      match Json.member "seed" m with
      | Some (Json.Int s) -> Ok (Some s)
      | Some Json.Null | None -> Ok None
      | Some _ -> Error "meta: \"seed\" is not an int"
    in
    let* crash = int_list_field "meta" "crash" m in
    Ok { protocol; procs; rounds; seed; crash }

let event_of_json value_of_json i j =
  let ctx = Printf.sprintf "event %d" i in
  let* ev =
    match Json.member "ev" j with
    | Some (Json.String s) -> Ok s
    | _ -> err "%s: missing string \"ev\"" ctx
  in
  let* time = int_field ctx "t" j in
  let value name =
    match Json.member name j with
    | Some v -> value_of_json v
    | None -> err "%s: missing %S" ctx name
  in
  let value_opt name =
    match Json.member name j with
    | Some Json.Null -> Ok None
    | Some v -> Result.map Option.some (value_of_json v)
    | None -> err "%s: missing %S" ctx name
  in
  match ev with
  | "write" ->
    let* proc = int_field ctx "proc" j in
    let* value = value "value" in
    Ok (Trace.E_write { time; proc; value })
  | "read" ->
    let* proc = int_field ctx "proc" j in
    let* cell = int_field ctx "cell" j in
    let* value = value_opt "value" in
    Ok (Trace.E_read { time; proc; cell; value })
  | "snapshot" ->
    let* proc = int_field ctx "proc" j in
    let* view =
      match Json.member "view" j with
      | Some (Json.Arr items) ->
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | Json.Null :: rest -> go (None :: acc) rest
          | v :: rest ->
            let* v = value_of_json v in
            go (Some v :: acc) rest
        in
        go [] items
      | _ -> err "%s: missing array \"view\"" ctx
    in
    Ok (Trace.E_snapshot { time; proc; view })
  | "arrive" ->
    let* proc = int_field ctx "proc" j in
    let* level = int_field ctx "level" j in
    let* value = value "value" in
    Ok (Trace.E_arrive { time; proc; level; value })
  | "fire" ->
    let* level = int_field ctx "level" j in
    let* block = int_list_field ctx "block" j in
    Ok (Trace.E_fire { time; level; block })
  | "note" ->
    let* proc = int_field ctx "proc" j in
    let* note =
      match Json.member "note" j with
      | Some (Json.String s) -> Ok s
      | _ -> err "%s: missing string \"note\"" ctx
    in
    Ok (Trace.E_note { time; proc; note })
  | "decide" ->
    let* proc = int_field ctx "proc" j in
    let* value = value "value" in
    Ok (Trace.E_decide { time; proc; value })
  | "crash" ->
    let* proc = int_field ctx "proc" j in
    Ok (Trace.E_crash { time; proc })
  | other -> err "%s: unknown event kind %S" ctx other

let of_json value_of_json j =
  let* () =
    match Json.member "schema" j with
    | Some (Json.String v) when v = schema_version -> Ok ()
    | Some (Json.String v) -> err "schema is %S, expected %S" v schema_version
    | _ -> Error "missing \"schema\" tag"
  in
  let* m = meta_of_json j in
  let* events =
    match Json.member "events" j with
    | Some (Json.Arr items) -> Ok items
    | _ -> Error "missing \"events\" array"
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
      let* e = event_of_json value_of_json i e in
      go (i + 1) (e :: acc) rest
  in
  let* trace = go 0 [] events in
  Ok (m, trace)

(* The producer-side validator is the parser itself, value-agnostic: any
   JSON is accepted as a payload, everything structural is checked. *)
let validate j = Result.map ignore (of_json (fun v -> Ok v) j)

let string_value s = Json.String s

let string_of_value = function
  | Json.String s -> Ok s
  | _ -> Error "value is not a string"

(* ------------------------------------------------------------------ *)
(* files                                                                *)
(* ------------------------------------------------------------------ *)

let load_file path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse contents with
  | Error e -> Error (Printf.sprintf "%s: not valid JSON (%s)" path e)
  | Ok j -> Ok j

(* ------------------------------------------------------------------ *)
(* deterministic replay                                                 *)
(* ------------------------------------------------------------------ *)

let decisions_of trace =
  (* Exactly the adversary's decision sequence: every Step emits exactly one
     cell-operation event, every Fire/Crash its own event; arrive/note/decide
     events are settled eagerly by the runtime and are regenerated on replay. *)
  List.filter_map
    (function
      | Trace.E_write { proc; _ } | Trace.E_read { proc; _ } | Trace.E_snapshot { proc; _ } ->
        Some (Runtime.Step proc)
      | Trace.E_fire { level; block; _ } -> Some (Runtime.Fire (level, block))
      | Trace.E_crash { proc; _ } -> Some (Runtime.Crash proc)
      | Trace.E_arrive _ | Trace.E_note _ | Trace.E_decide _ -> None)
    trace

let replay decisions =
  let rest = ref decisions in
  fun (_ : Runtime.view) ->
    match !rest with
    | [] -> Runtime.Halt
    | d :: tl ->
      rest := tl;
      d

let replay_of_trace trace = replay (decisions_of trace)

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                      *)
(* ------------------------------------------------------------------ *)

module Te = Wfc_obs.Trace_event

(* One logical firing tick = 1 ms of viewer time, so single-tick intervals
   stay visible at default zoom. *)
let tick_us = 1000

let to_trace_events ?(pid = 0) ~show trace =
  let nprocs =
    1
    + List.fold_left
        (fun acc e ->
          let m = match Trace.proc_of_event e with Some p -> max acc p | None -> acc in
          match e with
          | Trace.E_fire { block; _ } -> List.fold_left max m block
          | _ -> m)
        (-1) trace
  in
  let adversary_tid = nprocs in
  let names =
    Te.process_name ~pid "wfc runtime"
    :: Te.thread_name ~pid ~tid:adversary_tid "adversary"
    :: List.init nprocs (fun p -> Te.thread_name ~pid ~tid:p (Printf.sprintf "P%d" p))
  in
  (* pending WriteRead per process: arrive time and level *)
  let waiting = Hashtbl.create 8 in
  let events =
    List.concat_map
      (fun e ->
        match e with
        | Trace.E_write { time; proc; value } ->
          [
            Te.instant ~cat:"cell" ~name:"write" ~pid ~tid:proc ~ts:(time * tick_us)
              ~args:[ ("value", Json.String (show value)) ]
              ();
          ]
        | Trace.E_read { time; proc; cell; value } ->
          [
            Te.instant ~cat:"cell" ~name:(Printf.sprintf "read C%d" cell) ~pid ~tid:proc
              ~ts:(time * tick_us)
              ~args:
                [ ("value", match value with None -> Json.Null | Some v -> Json.String (show v)) ]
              ();
          ]
        | Trace.E_snapshot { time; proc; _ } ->
          [ Te.instant ~cat:"cell" ~name:"snapshot" ~pid ~tid:proc ~ts:(time * tick_us) () ]
        | Trace.E_arrive { time; proc; level; _ } ->
          Hashtbl.replace waiting proc (time, level);
          []
        | Trace.E_fire { time; level; block } ->
          let spans =
            List.filter_map
              (fun p ->
                match Hashtbl.find_opt waiting p with
                | Some (t0, l) when l = level ->
                  Hashtbl.remove waiting p;
                  Some
                    (Te.complete ~cat:"iis" ~name:(Printf.sprintf "WriteRead M%d" level) ~pid
                       ~tid:p ~ts:(t0 * tick_us)
                       ~dur:((time - t0) * tick_us)
                       ())
                | _ -> None)
              block
          in
          spans
          @ [
              Te.instant ~cat:"iis" ~name:(Printf.sprintf "fire M%d" level) ~pid
                ~tid:adversary_tid ~ts:(time * tick_us)
                ~args:[ ("block", Json.Arr (List.map (fun p -> Json.Int p) block)) ]
                ();
            ]
        | Trace.E_note { time; proc; note } ->
          [ Te.instant ~cat:"note" ~name:note ~pid ~tid:proc ~ts:(time * tick_us) () ]
        | Trace.E_decide { time; proc; value } ->
          [
            Te.instant ~cat:"decide" ~name:"decide" ~pid ~tid:proc ~ts:(time * tick_us)
              ~args:[ ("value", Json.String (show value)) ]
              ();
          ]
        | Trace.E_crash { time; proc } ->
          [ Te.instant ~cat:"crash" ~name:"crash" ~pid ~tid:proc ~ts:(time * tick_us) () ])
      trace
  in
  names @ events
