(** Execution traces and correctness checkers.

    The runtime logs every shared-memory operation with a global sequence
    number. The checkers here are the measuring instruments of the
    experiments: they validate immediate-snapshot outputs against the
    three-part specification of §3.5, and emulated snapshot histories
    against atomicity (Proposition 4.1 / Corollary 4.1). *)

type 'v event =
  | E_write of { time : int; proc : int; value : 'v }
  | E_read of { time : int; proc : int; cell : int; value : 'v option }
  | E_snapshot of { time : int; proc : int; view : 'v option array }
  | E_arrive of { time : int; proc : int; level : int; value : 'v }
      (** the process invoked WriteRead on memory [level] and is now inside
          the operation *)
  | E_fire of { time : int; level : int; block : int list }
      (** the adversary released a block of arrived processes; their
          WriteReads take effect simultaneously *)
  | E_note of { time : int; proc : int; note : string }
  | E_decide of { time : int; proc : int; value : 'v }
  | E_crash of { time : int; proc : int }

type 'v t = 'v event list
(** In execution order. *)

val pp : (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v t -> unit

val map : ('a -> 'b) -> 'a t -> 'b t
(** Maps every stored value (write/arrive/decide payloads, read results,
    snapshot views), preserving structure and times — e.g. to render an
    internal value type to strings before serializing. *)

val proc_of_event : 'v event -> int option
(** The acting process, if the event has one ([E_fire] is the adversary's). *)

val steps_of : 'v t -> int -> int
(** Number of shared-memory operations performed by a process (measures
    per-process work, e.g. emulation overhead). *)

val fires : 'v t -> (int * int list) list
(** The [(level, block)] firing sequence. *)

val partitions_of_fires : 'v t -> (int * Wfc_topology.Ordered_partition.t) list
(** Per memory level (sorted), the blocks fired at it in temporal order —
    the ordered partition the adversary chose for that level. *)

val is_views_by_level : 'v t -> (int * (int * int list) list) list
(** Per memory level, the immediate-snapshot views its firing sequence
    induces: each fired process's view is the union of all blocks up to and
    including its own. Feeding each level's views to
    {!check_immediate_snapshot} is the §3.5 regression oracle for a
    recorded or replayed run. *)

(** {1 Immediate snapshot specification (§3.5)}

    A family of views [S_i ⊆ P] (one per participating process) is a legal
    one-shot immediate snapshot output iff:

    + self-inclusion: [i ∈ S_i];
    + comparability: [S_i ⊆ S_j] or [S_j ⊆ S_i];
    + immediacy: [i ∈ S_j ⟹ S_i ⊆ S_j]. *)

type is_views = (int * int list) list
(** [(process, set of processes in its view)], e.g. after projecting values
    back to the process ids that wrote them. *)

val is_self_inclusive : is_views -> bool

val is_comparable : is_views -> bool

val is_immediate : is_views -> bool

val check_immediate_snapshot : ?participants:int list -> is_views -> (unit, string) result
(** All three properties, with a diagnostic on failure. [participants]
    bounds who may legally appear inside views; it defaults to everyone
    appearing in the given views (view owners and members), which accounts
    for processes that wrote and crashed before returning. *)

val partition_of_views : is_views -> Wfc_topology.Ordered_partition.t option
(** Reconstructs the ordered partition generating legal views (blocks in
    increasing view-size order); [None] if the views are not legal. *)

(** {1 Atomicity of emulated snapshot histories (Prop 4.1)}

    The emulation of Figure 2 produces, per process, a history of completed
    operations on the simulated SWMR snapshot memory. Each operation carries
    the interval [(t_start, t_end)] of global firing times during which it
    executed. A snapshot returns a {e vector}: for every cell, the sequence
    number of the write it read ([0] = nothing read yet). Atomicity holds
    iff snapshot vectors are pairwise comparable (pointwise), each process's
    successive snapshots are monotone, and every vector respects real time:
    it includes any write that completed before the snapshot started and
    nothing that started after it ended. *)

type op_record = {
  proc : int;
  index : int;  (** per-process operation counter *)
  kind : [ `Write of int (** seq *) | `Snapshot of int array (** seq vector *) ];
  t_start : int;
  t_end : int;
}

val check_snapshot_atomicity : op_record list -> (unit, string) result
