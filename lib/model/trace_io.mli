(** Persistent execution traces: the [wfc.trace.v1] format, deterministic
    replay, and Perfetto export.

    A {!Trace.t} plus its run {!meta}data is everything needed to reproduce
    an execution: the runtime is deterministic given the adversary's
    decision sequence, and that sequence can be read back off the trace
    ({!decisions_of}). Record → {!replay} → record again yields a
    byte-identical canonical JSON trace, which makes stored traces both a
    debugging artifact and a regression oracle (re-run the §3.5 and
    Prop 4.1 checkers on the replayed events).

    Serialization goes through {!Wfc_obs.Json}, whose canonical emitter
    (sorted keys, fixed float format) guarantees that equal values produce
    equal bytes. *)

val schema_version : string
(** ["wfc.trace.v1"]. *)

type meta = {
  protocol : string;  (** e.g. ["emulation.full-info"] — which spec to rebuild on replay *)
  procs : int;
  rounds : int;  (** protocol-specific size parameter (emulation: snapshot rounds) *)
  seed : int option;  (** adversary seed, if the run was randomly scheduled *)
  crash : int list;  (** processes the adversary was asked to crash *)
}

val meta :
  ?seed:int -> ?crash:int list -> protocol:string -> procs:int -> rounds:int -> unit -> meta
(** [crash] is sorted and deduplicated. *)

(** {1 Serialization} *)

val to_json : ('v -> Wfc_obs.Json.t) -> meta -> 'v Trace.t -> Wfc_obs.Json.t
(** [{"schema"; "meta"; "events"}]; each event is an object tagged by
    ["ev"] with its logical time under ["t"]. *)

val of_json :
  (Wfc_obs.Json.t -> ('v, string) result) ->
  Wfc_obs.Json.t ->
  (meta * 'v Trace.t, string) result

val validate : Wfc_obs.Json.t -> (unit, string) result
(** Structural validation with opaque payloads — the producer-side parser
    run with an accept-anything value decoder. *)

val string_value : string -> Wfc_obs.Json.t

val string_of_value : Wfc_obs.Json.t -> (string, string) result
(** Value codec for [string Trace.t], the rendered form all built-in
    protocols serialize as. *)

val load_file : string -> (Wfc_obs.Json.t, string) result

(** {1 Deterministic replay} *)

val decisions_of : 'v Trace.t -> Runtime.decision list
(** The adversary's decision sequence, recovered 1:1 from the event stream:
    each cell-operation event was one [Step], each firing one [Fire], each
    crash one [Crash]. Arrive/note/decide events are by-products of eager
    settling and are regenerated on replay. *)

val replay : Runtime.decision list -> Runtime.strategy
(** Consumes the recorded decisions in order; [Halt]s when exhausted. The
    returned strategy is single-use (it owns a cursor). *)

val replay_of_trace : 'v Trace.t -> Runtime.strategy
(** [replay (decisions_of t)]. *)

(** {1 Perfetto export} *)

val to_trace_events :
  ?pid:int -> show:('v -> string) -> 'v Trace.t -> Wfc_obs.Trace_event.event list
(** Chrome [trace_event] timeline of a run: one named thread per process
    plus an ["adversary"] track; WriteRead invocations become complete
    spans from arrival to firing, cell operations / notes / decisions /
    crashes become instants. One logical tick is rendered as 1 ms so
    unit-length intervals stay visible. Wrap with
    {!Wfc_obs.Trace_event.to_json} for a file Perfetto/chrome://tracing
    can open. *)
