type view = {
  time : int;
  runnable : int list;
  arrived : (int * int list) list;
  decided : int list;
  crashed : int list;
}

type decision = Step of int | Fire of int * int list | Crash of int | Halt

type strategy = view -> decision

type 'v outcome = {
  results : 'v option array;
  trace : 'v Trace.t;
  time : int;
  memories_used : int;
}

type trace_sink = Full | Ring of int | Off

exception Invalid_decision of string

type 'v proc_state =
  | Ready of 'v Action.t
  | Waiting of { level : int; value : 'v; k : 'v Action.wr_result -> 'v Action.t }
  | Decided of 'v
  | Crashed

type 'v memory = {
  mutable fired : (int * 'v) list; (* (proc, value) of all fired blocks, proc-sorted *)
  mutable waiting : (int * 'v) list; (* arrived but not fired *)
  mutable used_by : int list; (* one-shot enforcement *)
}

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_decision s)) fmt

let c_steps = Wfc_obs.Metrics.counter "runtime.steps"

let c_fires = Wfc_obs.Metrics.counter "runtime.fires"

let c_crashes = Wfc_obs.Metrics.counter "runtime.crashes"

let c_decides = Wfc_obs.Metrics.counter "runtime.decides"

let c_ring_dropped = Wfc_obs.Metrics.counter "runtime.trace.ring_dropped"

let run ?(max_steps = 1_000_000) ?(sink = Full) ?on_trap initial strategy =
  let n = Array.length initial in
  let states = Array.map (fun a -> Ready a) initial in
  let cells : 'v option array = Array.make n None in
  let memories : (int, 'v memory) Hashtbl.t = Hashtbl.create 16 in
  let memory level =
    match Hashtbl.find_opt memories level with
    | Some m -> m
    | None ->
      let m = { fired = []; waiting = []; used_by = [] } in
      Hashtbl.replace memories level m;
      m
  in
  let trace = ref [] in
  let ring =
    match sink with Ring cap -> Some (Wfc_obs.Flight.create ~capacity:cap) | Full | Off -> None
  in
  let emit =
    match (sink, ring) with
    | Full, _ -> fun e -> trace := e :: !trace
    | Ring _, Some r -> Wfc_obs.Flight.push r
    | Off, _ -> ignore
    | Ring _, None -> assert false
  in
  let current_trace () =
    match (sink, ring) with
    | Full, _ -> List.rev !trace
    | Ring _, Some r -> Wfc_obs.Flight.contents r
    | Off, _ -> []
    | Ring _, None -> assert false
  in
  let time = ref 0 in
  (* Settle a process: consume non-blocking pseudo-operations (notes) are
     still individual decisions? No — notes are free: they carry no shared
     effect, so we process them eagerly to keep strategies focused on real
     operations. Decides are also recorded eagerly. *)
  let rec settle p action =
    match action with
    | Action.Note (note, k) ->
      emit (Trace.E_note { time = !time; proc = p; note });
      settle p (k ())
    | Action.Decide v ->
      Wfc_obs.Metrics.incr c_decides;
      emit (Trace.E_decide { time = !time; proc = p; value = v });
      states.(p) <- Decided v
    | Action.Write_read { level; value; k } ->
      let m = memory level in
      if List.mem p m.used_by then invalid "P%d uses one-shot memory M%d twice" p level;
      m.used_by <- p :: m.used_by;
      m.waiting <- (p, value) :: m.waiting;
      emit (Trace.E_arrive { time = !time; proc = p; level; value });
      states.(p) <- Waiting { level; value; k }
    | (Action.Write _ | Action.Read _ | Action.Snapshot _) as a -> states.(p) <- Ready a
  in
  let guarded f =
    match on_trap with
    | None -> f ()
    | Some trap -> (
      try f ()
      with Invalid_decision _ as e ->
        trap (current_trace ());
        raise e)
  in
  guarded (fun () -> Array.iteri (fun p a -> settle p a) initial);
  let current_view () =
    let runnable = ref [] and decided = ref [] and crashed = ref [] in
    Array.iteri
      (fun p s ->
        match s with
        | Ready _ -> runnable := p :: !runnable
        | Decided _ -> decided := p :: !decided
        | Crashed -> crashed := p :: !crashed
        | Waiting _ -> ())
      states;
    let arrived =
      Hashtbl.fold
        (fun level m acc ->
          (* only processes still waiting (not crashed-and-waiting: crashed
             processes remain listed — the adversary may fire them) *)
          match m.waiting with
          | [] -> acc
          | w -> (level, List.sort Stdlib.compare (List.map fst w)) :: acc)
        memories []
      |> List.sort Stdlib.compare
    in
    {
      time = !time;
      runnable = List.sort Stdlib.compare !runnable;
      arrived;
      decided = List.sort Stdlib.compare !decided;
      crashed = List.sort Stdlib.compare !crashed;
    }
  in
  let alive_work v =
    (* Any non-crashed process that has not decided and can still make
       progress: runnable, or waiting (needs a fire). *)
    v.runnable <> []
    || List.exists
         (fun (_, procs) -> List.exists (fun p -> not (List.mem p v.crashed)) procs)
         v.arrived
  in
  let apply_step p =
    match states.(p) with
    | Ready (Action.Write (v, k)) ->
      cells.(p) <- Some v;
      emit (Trace.E_write { time = !time; proc = p; value = v });
      settle p (k ())
    | Ready (Action.Read (cell, k)) ->
      if cell < 0 || cell >= n then invalid "P%d reads cell %d out of range" p cell;
      let v = cells.(cell) in
      emit (Trace.E_read { time = !time; proc = p; cell; value = v });
      settle p (k v)
    | Ready (Action.Snapshot k) ->
      let snap = Array.copy cells in
      emit (Trace.E_snapshot { time = !time; proc = p; view = snap });
      settle p (k snap)
    | Ready (Action.Note _ | Action.Decide _ | Action.Write_read _) ->
      assert false (* settled eagerly *)
    | Waiting _ -> invalid "Step %d: process is waiting inside a WriteRead" p
    | Decided _ -> invalid "Step %d: process already decided" p
    | Crashed -> invalid "Step %d: process crashed" p
  in
  let apply_fire level block =
    let block = List.sort_uniq Stdlib.compare block in
    if block = [] then invalid "Fire M%d: empty block" level;
    let m = memory level in
    let extracted =
      List.map
        (fun p ->
          match List.assoc_opt p m.waiting with
          | Some v -> (p, v)
          | None -> invalid "Fire M%d: process %d has not arrived" level p)
        block
    in
    m.waiting <- List.filter (fun (p, _) -> not (List.mem p block)) m.waiting;
    m.fired <- List.merge (fun (a, _) (b, _) -> compare a b) m.fired
        (List.sort (fun (a, _) (b, _) -> compare a b) extracted);
    emit (Trace.E_fire { time = !time; level; block });
    let seen = List.map snd m.fired in
    List.iter
      (fun (p, _) ->
        match states.(p) with
        | Waiting { level = l; k; _ } when l = level ->
          settle p (k { Action.time = !time; seen })
        | Crashed -> () (* write took effect; the process never sees the result *)
        | _ -> invalid "Fire M%d: process %d in inconsistent state" level p)
      extracted
  in
  let apply_crash p =
    (match states.(p) with
    | Decided _ -> invalid "Crash %d: process already decided" p
    | Crashed -> invalid "Crash %d: process already crashed" p
    | Ready _ | Waiting _ -> ());
    (* A crash while waiting leaves the written value in the memory: the
       adversary may still fire it. We keep it in [waiting]. *)
    states.(p) <- Crashed;
    emit (Trace.E_crash { time = !time; proc = p })
  in
  let halted = ref false in
  let steps = ref 0 in
  let rec loop () =
    let v = current_view () in
    if (not !halted) && alive_work v then begin
      incr steps;
      if !steps > max_steps then invalid "run exceeded %d decisions" max_steps;
      (match strategy v with
      | Step p ->
        Wfc_obs.Metrics.incr c_steps;
        apply_step p
      | Fire (level, block) ->
        Wfc_obs.Metrics.incr c_fires;
        apply_fire level block
      | Crash p ->
        Wfc_obs.Metrics.incr c_crashes;
        apply_crash p
      | Halt -> halted := true);
      incr time;
      loop ()
    end
  in
  guarded loop;
  (match ring with
  | Some r -> Wfc_obs.Metrics.add c_ring_dropped (Wfc_obs.Flight.dropped r)
  | None -> ());
  let results =
    Array.map (function Decided v -> Some v | Ready _ | Waiting _ | Crashed -> None) states
  in
  let memories_used =
    Hashtbl.fold (fun _ m acc -> if m.fired <> [] then acc + 1 else acc) memories 0
  in
  { results; trace = current_trace (); time = !time; memories_used }

(* --- Stock adversaries --- *)

let round_robin () =
  let next = ref 0 in
  fun v ->
    let n =
      1
      + List.fold_left max (-1)
          (v.runnable @ List.concat_map snd v.arrived @ v.decided @ v.crashed)
    in
    let rec pick tries p =
      if tries > n then Halt
      else if List.mem p v.runnable then begin
        next := (p + 1) mod n;
        Step p
      end
      else if
        List.exists (fun (_, procs) -> List.mem p procs) v.arrived && not (List.mem p v.crashed)
      then begin
        next := (p + 1) mod n;
        let level, _ = List.find (fun (_, procs) -> List.mem p procs) v.arrived in
        Fire (level, [ p ])
      end
      else pick (tries + 1) ((p + 1) mod n)
    in
    pick 0 !next

let random ~seed () =
  let st = Random.State.make [| seed |] in
  fun v ->
    let fireable =
      List.filter_map
        (fun (level, procs) ->
          let live = List.filter (fun p -> not (List.mem p v.crashed)) procs in
          if live = [] then None else Some (level, procs, live))
        v.arrived
    in
    let n_choices = List.length v.runnable + List.length fireable in
    if n_choices = 0 then Halt
    else begin
      let c = Random.State.int st n_choices in
      if c < List.length v.runnable then Step (List.nth v.runnable c)
      else begin
        let level, procs, live = List.nth fireable (c - List.length v.runnable) in
        (* Random non-empty block that contains at least one live process (so
           progress is guaranteed); crashed arrivals may be swept in. *)
        let must = List.nth live (Random.State.int st (List.length live)) in
        let others = List.filter (fun p -> p <> must) procs in
        let block = must :: List.filter (fun _ -> Random.State.bool st) others in
        Fire (level, block)
      end
    end

let random_with_crashes ~seed ~crash () =
  let st = Random.State.make [| seed; 0x5ead |] in
  let pending = ref crash in
  let inner = random ~seed () in
  fun v ->
    let crashable =
      List.filter
        (fun p ->
          (not (List.mem p v.decided))
          && (not (List.mem p v.crashed))
          && (List.mem p v.runnable
             || List.exists (fun (_, procs) -> List.mem p procs) v.arrived))
        !pending
    in
    match crashable with
    | p :: _ when Random.State.int st 4 = 0 ->
      pending := List.filter (fun q -> q <> p) !pending;
      Crash p
    | _ -> inner v

let iis_schedule partitions =
  (* Per level: blocks still to fire, in order. *)
  let remaining = Hashtbl.create 16 in
  let blocks_for level =
    match Hashtbl.find_opt remaining level with
    | Some b -> b
    | None ->
      let b = if level < Array.length partitions then partitions.(level) else [] in
      Hashtbl.replace remaining level b;
      b
  in
  fun v ->
    match v.runnable with
    | p :: _ -> Step p
    | [] ->
      (* fire the lowest level whose next block has fully arrived *)
      let rec try_levels = function
        | [] -> (
          (* fall back: fire singletons for levels beyond the plan *)
          match v.arrived with
          | (level, procs) :: _ -> (
            let live = List.filter (fun p -> not (List.mem p v.crashed)) procs in
            match live with
            | [] -> Halt
            | p :: _ -> if blocks_for level = [] then Fire (level, [ p ]) else Halt)
          | [] -> Halt)
        | (level, procs) :: rest -> (
          match blocks_for level with
          | [] -> try_levels rest
          | block :: more ->
            if List.for_all (fun p -> List.mem p procs) block then begin
              Hashtbl.replace remaining level more;
              Fire (level, block)
            end
            else try_levels rest)
      in
      try_levels v.arrived

let linear_schedule order =
  let rest = ref order in
  fun v ->
    match !rest with
    | [] -> Halt
    | p :: tl ->
      rest := tl;
      if List.mem p v.runnable then Step p
      else invalid "linear_schedule: process %d has no pending cell operation" p

let isolating ~victim () =
 fun v ->
  if List.mem victim v.runnable then Step victim
  else
    let victim_level =
      List.find_opt (fun (_, procs) -> List.mem victim procs) v.arrived
    in
    match victim_level with
    | Some (level, _) -> Fire (level, [ victim ])
    | None -> (
      (* victim is done or crashed: drive the rest, whole blocks at once *)
      match v.runnable with
      | p :: _ -> Step p
      | [] -> (
        match v.arrived with
        | (level, procs) :: _ ->
          let live = List.filter (fun p -> not (List.mem p v.crashed)) procs in
          if live = [] then Halt else Fire (level, procs)
        | [] -> Halt))
