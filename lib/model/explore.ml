exception Too_many of int

let c_runs = Wfc_obs.Metrics.counter "explore.runs"

let decisions_at (v : Runtime.view) =
  let steps = List.map (fun p -> Runtime.Step p) v.Runtime.runnable in
  let fires =
    List.concat_map
      (fun (level, procs) ->
        List.map (fun block -> Runtime.Fire (level, block)) (Schedule.nonempty_subsets procs))
      v.Runtime.arrived
  in
  steps @ fires

(* Replay a decision prefix, then capture the view reached. *)
let replay make_actions prefix =
  let remaining = ref prefix in
  let captured = ref None in
  let strategy v =
    match !remaining with
    | d :: rest ->
      remaining := rest;
      d
    | [] ->
      captured := Some v;
      Runtime.Halt
  in
  let outcome = Runtime.run (make_actions ()) strategy in
  (outcome, !captured)

let explore ?(max_runs = 200_000) ?(crashes = 0) make_actions f =
  let runs = ref 0 in
  let rec go prefix crashed =
    match replay make_actions (List.rev prefix) with
    | outcome, None ->
      (* the run finished during the prefix itself *)
      incr runs;
      Wfc_obs.Metrics.incr c_runs;
      if !runs > max_runs then raise (Too_many !runs);
      f outcome
    | outcome, Some v ->
      let ds = decisions_at v in
      let ds =
        if crashed < crashes then
          ds
          @ List.filter_map
              (fun p ->
                if List.mem p v.Runtime.decided || List.mem p v.Runtime.crashed then None
                else Some (Runtime.Crash p))
              (v.Runtime.runnable @ List.concat_map snd v.Runtime.arrived)
        else ds
      in
      let live_work =
        v.Runtime.runnable <> []
        || List.exists
             (fun (_, procs) ->
               List.exists (fun p -> not (List.mem p v.Runtime.crashed)) procs)
             v.Runtime.arrived
      in
      if not live_work then begin
        incr runs;
        Wfc_obs.Metrics.incr c_runs;
        if !runs > max_runs then raise (Too_many !runs);
        f outcome
      end
      else
        List.iter
          (fun d ->
            let crashed' = match d with Runtime.Crash _ -> crashed + 1 | _ -> crashed in
            go (d :: prefix) crashed')
          ds
  in
  go [] 0;
  !runs
