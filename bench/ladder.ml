(* bench/ladder.exe — the serve-ladder load harness (BENCH_serve_ladder.json).

   Phase-C-style protocol: for each rung of a concurrency ladder, an
   explicit warmup phase (unmeasured requests at that concurrency) followed
   by repeat-based measured runs; the recorded metrics are medians across
   repeats, and the report carries machine/git metadata so the numbers are
   reproducible. Defaults mirror the protocol this harness is modeled on:
   ladder 1,4,8,16,32 — warmup 30 requests x 1 repeat, measured 120
   requests x 3 repeats per rung.

   The daemon runs in-process (same pattern as bench/main.ml's serve
   scenarios) against a store primed with the one question every request
   asks, so the ladder measures the serving layer — socket, framing,
   admission, store hit — not the solver: a rung's throughput difference is
   scheduling and I/O, not search noise.

     dune exec bench/ladder.exe -- \
       [--rungs 1,4,8,16,32] [--repeats 3] [--requests 120] [--warmup 30] \
       [--solvers N] [--log FILE] [--out BENCH_serve_ladder.json]

   Per-rung scenario extras: concurrency, requests, repeats, qps_median,
   latency_p50_s, latency_p95_s (latency percentiles are medians of the
   per-repeat percentiles). *)

let default_rungs = [ 1; 4; 8; 16; 32 ]

type opts = {
  mutable rungs : int list;
  mutable repeats : int;
  mutable requests : int;
  mutable warmup : int;
  mutable solvers : int;
  mutable log : string option;
  mutable out : string;
}

let parse_argv () =
  let o =
    {
      rungs = default_rungs;
      repeats = 3;
      requests = 120;
      warmup = 30;
      solvers = 2;
      log = None;
      out = "BENCH_serve_ladder.json";
    }
  in
  let usage () =
    prerr_endline
      "usage: ladder.exe [--rungs CSV] [--repeats N] [--requests N] [--warmup N]\n\
      \                  [--solvers N] [--log FILE] [--out FILE]";
    exit 2
  in
  let int_of s = match int_of_string_opt s with Some n when n > 0 -> n | _ -> usage () in
  let rec go = function
    | [] -> o
    | "--rungs" :: v :: rest ->
      o.rungs <- List.map int_of (String.split_on_char ',' v);
      go rest
    | "--repeats" :: v :: rest ->
      o.repeats <- int_of v;
      go rest
    | "--requests" :: v :: rest ->
      o.requests <- int_of v;
      go rest
    | "--warmup" :: v :: rest ->
      o.warmup <- int_of v;
      go rest
    | "--solvers" :: v :: rest ->
      o.solvers <- int_of v;
      go rest
    | "--log" :: v :: rest ->
      o.log <- Some v;
      go rest
    | "--out" :: v :: rest ->
      o.out <- v;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

(* ---- statistics ---- *)

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    let a = List.nth sorted ((n - 1) / 2) and b = List.nth sorted (n / 2) in
    (a +. b) /. 2.

(* nearest-rank percentile of a latency sample *)
let percentile p xs =
  let sorted = List.sort compare xs in
  match sorted with
  | [] -> 0.
  | _ ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

(* ---- the in-process daemon ---- *)

let spec =
  {
    Wfc_serve.Wire.task = "set-consensus";
    procs = 3;
    param = 2;
    max_level = 1;
    model = "wait-free";
    symmetry = true;
    collapse = true;
  }

let ask ~socket =
  match Wfc_serve.Client.connect ~socket with
  | Error e -> failwith e
  | Ok c ->
    let r = Wfc_serve.Client.query c spec in
    Wfc_serve.Client.close c;
    (match r with
    | Ok (Wfc_serve.Wire.Verdict _) -> ()
    | Ok Wfc_serve.Wire.Shed -> failwith "ladder query was shed"
    | Ok _ -> failwith "unexpected daemon response"
    | Error e -> failwith e)

(* One burst: [threads] clients issuing [requests] queries total (split as
   evenly as the division allows, remainder spread over the first threads),
   a fresh connection per request — the CLI's traffic shape. Returns
   (elapsed seconds, per-request latencies). *)
let burst ~socket ~threads ~requests =
  let per = requests / threads and extra = requests mod threads in
  let latencies = Array.make threads [] in
  let t0 = Wfc_obs.Metrics.now_s () in
  let worker i =
    let n = per + if i < extra then 1 else 0 in
    let acc = ref [] in
    for _ = 1 to n do
      let q0 = Wfc_obs.Metrics.now_s () in
      ask ~socket;
      acc := (Wfc_obs.Metrics.now_s () -. q0) :: !acc
    done;
    latencies.(i) <- !acc
  in
  let ts = Array.init threads (fun i -> Thread.create worker i) in
  Array.iter Thread.join ts;
  let elapsed = Wfc_obs.Metrics.now_s () -. t0 in
  (elapsed, List.concat (Array.to_list latencies))

let () =
  let o = parse_argv () in
  let socket = Filename.temp_file "wfc-ladder" ".sock" in
  Sys.remove socket;
  let store_dir = Filename.temp_file "wfc-ladder-store" "" in
  Sys.remove store_dir;
  Unix.mkdir store_dir 0o755;
  let ready = Atomic.make false in
  let cfg =
    {
      (Wfc_serve.Daemon.config ~queue_capacity:256 ~solvers:o.solvers ?log:o.log
         ~socket ~store_dir ())
      with
      Wfc_serve.Daemon.on_ready = Some (fun () -> Atomic.set ready true);
    }
  in
  let daemon = Thread.create Wfc_serve.Daemon.run cfg in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  (* prime: the first query computes and persists the verdict; every
     measured request after it is a store hit *)
  ask ~socket;
  Printf.printf "%-12s %10s %12s %12s\n%!" "rung" "qps" "p50_ms" "p95_ms";
  let t_run0 = Wfc_obs.Metrics.now_s () in
  let scenarios =
    List.map
      (fun c ->
        let _ = burst ~socket ~threads:c ~requests:o.warmup in
        let repeats =
          List.init o.repeats (fun _ ->
              let elapsed, lats = burst ~socket ~threads:c ~requests:o.requests in
              ( float_of_int o.requests /. elapsed,
                percentile 50. lats,
                percentile 95. lats,
                elapsed ))
        in
        let qps = median (List.map (fun (q, _, _, _) -> q) repeats) in
        let p50 = median (List.map (fun (_, p, _, _) -> p) repeats) in
        let p95 = median (List.map (fun (_, _, p, _) -> p) repeats) in
        let seconds = median (List.map (fun (_, _, _, e) -> e) repeats) in
        Printf.printf "%-12s %10.0f %12.3f %12.3f\n%!"
          (Printf.sprintf "ladder_c%d" c)
          qps (p50 *. 1000.) (p95 *. 1000.);
        Wfc_obs.Report.scenario
          ~extra:
            [
              ("concurrency", Wfc_obs.Json.Int c);
              ("requests", Wfc_obs.Json.Int o.requests);
              ("repeats", Wfc_obs.Json.Int o.repeats);
              ("qps_median", Wfc_obs.Json.Float qps);
              ("latency_p50_s", Wfc_obs.Json.Float p50);
              ("latency_p95_s", Wfc_obs.Json.Float p95);
            ]
          (Printf.sprintf "ladder_c%d" c)
          seconds)
      o.rungs
  in
  let total_s = Wfc_obs.Metrics.now_s () -. t_run0 in
  (match Wfc_serve.Client.connect ~socket with
  | Ok c ->
    ignore (Wfc_serve.Client.shutdown c);
    Wfc_serve.Client.close c
  | Error _ -> ());
  Thread.join daemon;
  let overall =
    Wfc_obs.Report.scenario
      ~extra:
        [
          ("rungs", Wfc_obs.Json.Arr (List.map (fun c -> Wfc_obs.Json.Int c) o.rungs));
          ("warmup_requests", Wfc_obs.Json.Int o.warmup);
          ("solvers", Wfc_obs.Json.Int o.solvers);
        ]
      "ladder" total_s
  in
  Wfc_obs.Report.write_file o.out
    (Wfc_obs.Report.to_json
       ~machine:(Wfc_obs.Report.machine_facts ())
       (scenarios @ [ overall ]));
  Printf.printf "wrote %s\n" o.out
